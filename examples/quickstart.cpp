// Quickstart: sliding-window aggregation with the dispatching facade.
//
// The facade is the paper's headline idea as an API: declare the aggregate
// operation, and its algebraic traits pick the best algorithm — SlickDeque
// (Inv) for invertible ops, SlickDeque (Non-Inv) for selective ops, DABA
// for anything merely associative.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/sliding_aggregator.h"
#include "ops/ops.h"

int main() {
  using namespace slick;

  // A fixed 4-tuple window over a tiny stream (the paper's Examples 2 & 3
  // use the same flavor of walkthrough).
  core::WindowAggregatorFor<ops::Sum> sum(4);    // -> SlickDeque (Inv)
  core::WindowAggregatorFor<ops::Max> max(4);    // -> SlickDeque (Non-Inv)
  core::WindowAggregatorFor<ops::Average> avg(4);  // -> SlickDeque (Inv)

  const double stream[] = {6, 5, 0, 1, 3, 4, 2, 7};
  std::printf("%6s %18s %18s %18s\n", "tuple", "sum(last 4)", "max(last 4)",
              "avg(last 4)");
  for (double x : stream) {
    sum.slide(ops::Sum::lift(x));
    max.slide(ops::Max::lift(x));
    avg.slide(ops::Average::lift(x));
    std::printf("%6.0f %18.1f %18.1f %18.2f\n", x, sum.query(), max.query(),
                avg.query());
  }

  // Dynamically sized FIFO windows (insert/evict) work the same way:
  core::FifoAggregatorFor<ops::Min> running_min;  // -> monotonic deque
  for (double x : stream) running_min.insert(ops::Min::lift(x));
  running_min.evict();  // drop the oldest (6)
  std::printf("\nmin of last %zu tuples: %.1f\n", running_min.size(),
              running_min.query());
  return 0;
}
