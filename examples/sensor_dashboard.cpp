// Sensor dashboard: the paper's evaluation domain (DEBS12 manufacturing
// equipment) as an application. Three energy channels stream at 100 Hz;
// the dashboard keeps, per channel, a 10-second average, a 60-second peak
// with ArgMax (when did it happen?), and a 60-second standard deviation,
// plus a BoolOr overload alarm across the last second — exercising
// invertible, selective and algebraic ops side by side.
//
// Build & run:  ./build/examples/sensor_dashboard [seconds]

#include <cstdio>
#include <cstdlib>

#include "core/sliding_aggregator.h"
#include "ops/ops.h"
#include "stream/synthetic.h"

int main(int argc, char** argv) {
  using namespace slick;

  const uint64_t seconds = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30;
  constexpr uint64_t kHz = 100;  // DEBS12 sampling rate
  constexpr std::size_t kAvgWindow = 10 * kHz;
  constexpr std::size_t kPeakWindow = 60 * kHz;
  constexpr std::size_t kAlarmWindow = 1 * kHz;
  constexpr double kOverloadThreshold = 105.0;

  stream::SyntheticSensorSource source(2024);

  core::WindowAggregatorFor<ops::Average> avg[3] = {
      core::SlickDequeInv<ops::Average>(kAvgWindow),
      core::SlickDequeInv<ops::Average>(kAvgWindow),
      core::SlickDequeInv<ops::Average>(kAvgWindow)};
  core::WindowAggregatorFor<ops::ArgMax> peak[3] = {
      core::SlickDequeNonInv<ops::ArgMax>(kPeakWindow),
      core::SlickDequeNonInv<ops::ArgMax>(kPeakWindow),
      core::SlickDequeNonInv<ops::ArgMax>(kPeakWindow)};
  core::WindowAggregatorFor<ops::StdDev> jitter[3] = {
      core::SlickDequeInv<ops::StdDev>(kAvgWindow),
      core::SlickDequeInv<ops::StdDev>(kAvgWindow),
      core::SlickDequeInv<ops::StdDev>(kAvgWindow)};
  core::WindowAggregatorFor<ops::BoolOr> overload(kAlarmWindow);

  std::printf("%6s | %28s | %34s | %24s | %s\n", "t(s)", "avg10s (c0/c1/c2)",
              "peak60s (c0/c1/c2)", "stddev10s (c0/c1/c2)", "alarm1s");
  for (uint64_t t = 0; t < seconds * kHz; ++t) {
    const stream::SensorTuple tup = source.Next();
    bool any_overload = false;
    for (int c = 0; c < 3; ++c) {
      const double e = tup.energy[static_cast<std::size_t>(c)];
      avg[c].slide(ops::Average::lift(e));
      peak[c].slide(ops::ArgMax::lift({e, tup.seq}));
      jitter[c].slide(ops::StdDev::lift(e));
      any_overload = any_overload || e > kOverloadThreshold;
    }
    overload.slide(ops::BoolOr::lift(any_overload));

    if ((t + 1) % kHz == 0) {  // refresh the dashboard once per second
      const auto p0 = peak[0].query(), p1 = peak[1].query(),
                 p2 = peak[2].query();
      std::printf(
          "%6llu | %8.2f %8.2f %8.2f | %6.1f@%-4llu %6.1f@%-4llu "
          "%6.1f@%-4llu | %7.2f %7.2f %7.2f | %s\n",
          (unsigned long long)((t + 1) / kHz), avg[0].query(), avg[1].query(),
          avg[2].query(), p0.key, (unsigned long long)(p0.id / kHz), p1.key,
          (unsigned long long)(p1.id / kHz), p2.key,
          (unsigned long long)(p2.id / kHz), jitter[0].query(),
          jitter[1].query(), jitter[2].query(),
          overload.query() ? "OVERLOAD" : "ok");
    }
  }
  return 0;
}
