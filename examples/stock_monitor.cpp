// Stock monitor: the paper's §1 motivating scenario. Multiple clients
// register Aggregate Continuous Queries with different ranges and slides
// over one price stream; the ACQ engine builds a shared execution plan
// (LCM composite slide, Pairs fragments) and answers every query
// incrementally with SlickDeque.
//
// Build & run:  ./build/examples/stock_monitor [tuples]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "engine/acq_engine.h"
#include "ops/ops.h"
#include "util/rng.h"

namespace {

/// A geometric-random-walk price series — the classic toy stock model.
std::vector<double> MakePrices(std::size_t count, uint64_t seed) {
  slick::util::SplitMix64 rng(seed);
  std::vector<double> prices(count);
  double p = 100.0;
  for (std::size_t i = 0; i < count; ++i) {
    p *= 1.0 + 0.002 * (2.0 * rng.NextDouble() - 1.0);
    prices[i] = p;
  }
  return prices;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slick;
  using plan::Pat;
  using plan::QuerySpec;

  const std::size_t tuples =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const std::vector<double> prices = MakePrices(tuples, 7);

  // Three clients watch average price: a day trader (tight window, fast
  // refresh), a swing trader, and a reporting job (range not divisible by
  // slide -> Pairs produces two fragments per slide).
  const std::vector<QuerySpec> avg_queries = {
      {/*range=*/60, /*slide=*/10},   // client A
      {/*range=*/240, /*slide=*/60},  // client B
      {/*range=*/100, /*slide=*/40},  // client C (100 % 40 != 0)
  };
  engine::AcqEngine<core::SlickDequeInv<ops::Average>> avg_engine(avg_queries,
                                                                  Pat::kPairs);

  // Two more clients watch the running high (non-invertible Max) — the
  // engine drives SlickDeque (Non-Inv)'s descending-range deque walk.
  const std::vector<QuerySpec> high_queries = {
      {/*range=*/120, /*slide=*/20},
      {/*range=*/480, /*slide=*/60},
  };
  engine::AcqEngine<core::SlickDequeNonInv<ops::Max>> high_engine(high_queries,
                                                                  Pat::kPairs);

  std::printf("shared AVG plan: composite slide = %llu tuples, %llu partials "
              "per composite, window = %llu partials\n",
              (unsigned long long)avg_engine.plan().composite_slide(),
              (unsigned long long)avg_engine.plan().partials_per_composite_slide(),
              (unsigned long long)avg_engine.plan().window_partials());
  std::printf("shared MAX plan: composite slide = %llu tuples, %llu partials "
              "per composite, window = %llu partials\n\n",
              (unsigned long long)high_engine.plan().composite_slide(),
              (unsigned long long)high_engine.plan().partials_per_composite_slide(),
              (unsigned long long)high_engine.plan().window_partials());

  uint64_t printed = 0;
  for (std::size_t i = 0; i < prices.size(); ++i) {
    avg_engine.Push(prices[i], [&](uint32_t q, double answer) {
      if (printed < 30 || i + 60 >= prices.size()) {
        std::printf("t=%6zu  client %c  avg(last %4llu) = %8.3f\n", i + 1,
                    static_cast<char>('A' + q),
                    (unsigned long long)avg_queries[q].range, answer);
        ++printed;
      }
    });
    high_engine.Push(prices[i], [&](uint32_t q, double answer) {
      if (printed < 30 || i + 60 >= prices.size()) {
        std::printf("t=%6zu  client %c  high(last %4llu) = %8.3f\n", i + 1,
                    static_cast<char>('D' + q),
                    (unsigned long long)high_queries[q].range, answer);
        ++printed;
      }
    });
  }

  std::printf("\nprocessed %llu tuples, produced %llu + %llu answers\n",
              (unsigned long long)avg_engine.tuples_processed(),
              (unsigned long long)avg_engine.answers_produced(),
              (unsigned long long)high_engine.answers_produced());
  return 0;
}
