// Multi-tenant DSMS session: the paper's target deployment, end to end.
// Tenants register and cancel Aggregate Continuous Queries while the
// stream flows (DynamicAcqEngine — the paper's §6 "dynamic environments"
// future work); the sharing optimizer decides which queries execute in one
// shared plan (§2.3); per-symbol keyed windows track group-by state; and a
// checkpoint of a window structure is taken and restored mid-stream.
//
// Build & run:  ./build/examples/multi_tenant

#include <cstdio>
#include <sstream>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "engine/dynamic_engine.h"
#include "engine/keyed_engine.h"
#include "ops/ops.h"
#include "plan/optimizer.h"
#include "stream/synthetic.h"

int main() {
  using namespace slick;
  using plan::Pat;
  using plan::QuerySpec;

  stream::SyntheticSensorSource source(11);

  // --- 1. The optimizer decides how to group tenants' queries (§2.3). ---
  const std::vector<QuerySpec> tenant_queries = {
      {600, 100}, {1200, 100}, {3000, 200},  // dashboards at 1 Hz-ish rates
      {700, 7},                              // an odd-cadence auditor
  };
  const plan::Grouping grouping =
      plan::OptimizeGrouping(tenant_queries, Pat::kPairs);
  std::printf("sharing optimizer: %zu group(s); cost %.2f ops/tuple "
              "(max-share %.2f, no-share %.2f)\n",
              grouping.groups.size(), grouping.cost_per_tuple,
              plan::MaxSharingCost(tenant_queries, Pat::kPairs),
              plan::NoSharingCost(tenant_queries, Pat::kPairs));

  // --- 2. Dynamic registry: tenants come and go mid-stream. ---
  engine::DynamicAcqEngine<core::SlickDequeInv<ops::Average>> avg_engine(
      Pat::kPairs);
  const uint32_t tenant_a = avg_engine.AddQuery({600, 100});
  uint32_t answers_a = 0, answers_b = 0;
  uint32_t tenant_b = 0;

  for (uint64_t t = 0; t < 30000; ++t) {
    const auto tup = source.Next();
    if (t == 10000) {
      tenant_b = avg_engine.AddQuery({1200, 300});
      std::printf("t=%llu: tenant B registered (range 1200, slide 300)\n",
                  (unsigned long long)t);
    }
    if (t == 20000) {
      avg_engine.RemoveQuery(tenant_a);
      std::printf("t=%llu: tenant A cancelled\n", (unsigned long long)t);
    }
    avg_engine.Push(tup.energy[0], [&](uint32_t id, double answer) {
      if (id == tenant_a) ++answers_a;
      if (id == tenant_b) ++answers_b;
      if (answers_a + answers_b <= 5 || answer < 0) {
        std::printf("  t=%-6llu tenant %c avg = %.3f\n",
                    (unsigned long long)(t + 1), id == tenant_a ? 'A' : 'B',
                    answer);
      }
    });
  }
  std::printf("tenant A received %u answers, tenant B %u\n\n", answers_a,
              answers_b);

  // --- 3. Group-by-key: per-channel peak windows. ---
  engine::KeyedWindows<core::SlickDequeNonInv<ops::Max>> peaks(1000);
  for (int i = 0; i < 5000; ++i) {
    const auto tup = source.Next();
    for (uint64_t c = 0; c < 3; ++c) {
      peaks.Push(c, tup.energy[c]);
    }
  }
  peaks.ForEach([](uint64_t key, double peak) {
    std::printf("channel %llu: 10s peak = %.2f\n", (unsigned long long)key,
                peak);
  });

  // --- 4. Checkpoint / restore (fault tolerance). ---
  core::SlickDequeInv<ops::Sum> window(1024);
  for (int i = 0; i < 2000; ++i) window.slide(source.Next().energy[1]);
  std::stringstream checkpoint;
  window.SaveState(checkpoint);
  core::SlickDequeInv<ops::Sum> recovered(1);
  const bool ok = recovered.LoadState(checkpoint);
  std::printf("\ncheckpoint: %zu bytes, restore %s, answers match: %s\n",
              checkpoint.str().size(), ok ? "ok" : "FAILED",
              ok && recovered.query() == window.query() ? "yes" : "NO");
  return 0;
}
