// Algorithm comparison: runs every final-aggregation algorithm in the
// library over the same stream and window, verifies they agree on every
// answer, and reports their throughput — a miniature of the paper's Exp 1
// that doubles as a live demonstration that the seven algorithms are
// interchangeable behind the fixed-window interface.
//
// Build & run:  ./build/examples/algo_comparison [window] [tuples]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "ops/ops.h"
#include "stream/synthetic.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

template <typename Agg>
double Run(const char* name, std::size_t window,
           const std::vector<double>& data, double reference_last) {
  using Op = typename Agg::op_type;
  Agg agg(window);
  double last = 0.0;
  const uint64_t t0 = NowNs();
  for (double x : data) {
    agg.slide(Op::lift(x));
    last = static_cast<double>(agg.query());
  }
  const double mtps =
      static_cast<double>(data.size()) * 1e3 / static_cast<double>(NowNs() - t0);
  const bool agrees =
      reference_last == 0.0 || std::abs(last - reference_last) < 1e-6;
  std::printf("  %-24s %10.2f Mtuples/s   last answer %12.4f  %s\n", name,
              mtps, last, agrees ? "" : "<-- MISMATCH");
  return last;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slick;

  const std::size_t window =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1024;
  const std::size_t tuples =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2'000'000;

  stream::SyntheticSensorSource source(42);
  const std::vector<double> data = source.MakeEnergySeries(tuples, 0);

  std::printf("window = %zu, tuples = %zu\n\nSum (invertible):\n", window,
              tuples);
  double ref = Run<window::NaiveWindow<ops::Sum>>("naive", window, data, 0.0);
  Run<window::FlatFat<ops::Sum>>("flatfat", window, data, ref);
  Run<window::BInt<ops::Sum>>("bint", window, data, ref);
  Run<window::FlatFit<ops::Sum>>("flatfit", window, data, ref);
  Run<core::Windowed<window::TwoStacks<ops::Sum>>>("twostacks", window, data,
                                                   ref);
  Run<core::Windowed<window::Daba<ops::Sum>>>("daba", window, data, ref);
  Run<core::SlickDequeInv<ops::Sum>>("slickdeque(inv)", window, data, ref);

  std::printf("\nMax (non-invertible):\n");
  ref = Run<window::NaiveWindow<ops::Max>>("naive", window, data, 0.0);
  Run<window::FlatFat<ops::Max>>("flatfat", window, data, ref);
  Run<window::BInt<ops::Max>>("bint", window, data, ref);
  Run<window::FlatFit<ops::Max>>("flatfit", window, data, ref);
  Run<core::Windowed<window::TwoStacks<ops::Max>>>("twostacks", window, data,
                                                   ref);
  Run<core::Windowed<window::Daba<ops::Max>>>("daba", window, data, ref);
  Run<core::SlickDequeNonInv<ops::Max>>("slickdeque(non-inv)", window, data,
                                        ref);
  return 0;
}
