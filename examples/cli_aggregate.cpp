// cli_aggregate: sliding-window aggregation as a command-line filter, built
// on the type-erased runtime API (the operation is chosen by name, not by
// template parameter).
//
// Usage:  cli_aggregate <op> <window> [every] [< numbers.txt]
//   op     one of: sum count product sum_of_squares average std_dev
//          geo_mean max min range
//   window window length in values
//   every  print one answer every `every` values (default 1)
//
// Reads one number per line from stdin; with no piped input it demos on
// 40 synthetic sensor readings.
//
// Example:  seq 1 100 | ./build/examples/cli_aggregate average 10 10

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include "core/any_aggregator.h"
#include "stream/synthetic.h"

int main(int argc, char** argv) {
  using namespace slick;

  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <op> <window> [every]\n", argv[0]);
    std::fprintf(stderr,
                 "  op: sum count product sum_of_squares average std_dev "
                 "geo_mean max min range\n");
    return 2;
  }
  core::OpKind kind;
  if (!core::ParseOpKind(argv[1], &kind)) {
    std::fprintf(stderr, "unknown op '%s'\n", argv[1]);
    return 2;
  }
  const std::size_t window = std::strtoull(argv[2], nullptr, 10);
  const uint64_t every = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  if (window == 0 || every == 0) {
    std::fprintf(stderr, "window and every must be positive\n");
    return 2;
  }

  core::AnyWindowAggregator agg = core::AnyWindowAggregator::Make(kind, window);
  uint64_t n = 0;
  auto feed = [&](double x) {
    agg.slide(x);
    if (++n % every == 0) {
      std::printf("%llu\t%s(last %zu) = %.6g\n", (unsigned long long)n,
                  core::ToString(kind), window, agg.query());
    }
  };

  if (isatty(STDIN_FILENO)) {
    std::fprintf(stderr, "# no piped input; demoing on synthetic sensor data\n");
    stream::SyntheticSensorSource source(1);
    for (int i = 0; i < 40; ++i) feed(source.Next().energy[0]);
    return 0;
  }

  char line[256];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    char* end = nullptr;
    const double x = std::strtod(line, &end);
    if (end != line) feed(x);
  }
  return 0;
}
