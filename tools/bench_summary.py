#!/usr/bin/env python3
"""Merge per-bench --json result files into committed BENCH_<name>.json
snapshots, and gate CI on batch-ingestion throughput.

Merge mode:
    python3 tools/bench_summary.py --name batch --out-dir . exp5.json ...

  Each input is either a bench_common.h JsonReport array (rows with the
  shared {bench, config, tuples_per_sec, p50_ns, p99_ns} schema) or a
  google-benchmark JSON report (detected by its top-level "benchmarks"
  key, stored verbatim under "google_benchmark"). The merged snapshot is

    {"name": <name>, "rows": [...], "google_benchmark": [...]}

  written to <out-dir>/BENCH_<name>.json with stable ordering so re-runs
  diff cleanly.

Check mode:
    python3 tools/bench_summary.py --check exp5.json \
        --min-batch 64 --min-speedup 1.0

  For every (algo, op) group among mode=="single" rows that has a
  batch==1 baseline, requires the BEST row with batch >= --min-batch to
  reach at least --min-speedup x the baseline tuples_per_sec (best-of, so
  one noisy point on a loaded CI box does not fail the gate). --algos
  restricts the gate to a comma-separated algo list — CI passes the
  algorithms with real bulk fast paths and leaves the per-tuple-by-design
  ones (DABA) ungated. Exits non-zero listing every violation.

Baseline-ratio mode:
    python3 tools/bench_summary.py --check exp5_super.json \
        --baseline exp5_fast.json --max-regression 0.03

  Compares each row of --check against the row with the same (bench,
  config) key in --baseline and fails if tuples_per_sec dropped by more
  than --max-regression (fractional). CI uses this to prove the
  supervised runtime (checkpointing on, fault injection compiled out)
  costs < 3% against the same binary's unsupervised run on the same
  box — a paired same-run comparison, so it is robust to machine-speed
  variation in a way absolute thresholds are not. Rows missing from the
  baseline are reported but do not fail the gate.

Cost-ratio mode:
    python3 tools/bench_summary.py --check exp6_ooo.json \
        --num-algo ooo-tree --den-algo slick-inv --max-cost-ratio 1.2 \
        --where frac_ooo=0,op=sum

  Pairs rows within ONE file by config-minus-algo and requires the
  --num-algo row's per-tuple cost (1 / tuples_per_sec) to stay within
  --max-cost-ratio x the --den-algo row's. CI uses this to prove the
  out-of-order tree's in-order ingest path costs at most 1.2x the
  SlickDeque slide loop (DESIGN.md §13) — a paired same-run comparison,
  robust to runner speed. --where restricts to rows whose config matches
  every key=value given (e.g. only the frac_ooo=0 in-order lane).
  --best-pair collapses each side to its best matched rate and compares
  once — the SIMD-vs-scalar-twin gates use it so identical-code
  small-batch pairs cannot flake the check.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def split_inputs(paths):
    """Partition input files into JsonReport rows and google-benchmark blobs."""
    rows, gbench = [], []
    for path in paths:
        doc = load(path)
        if isinstance(doc, dict) and "benchmarks" in doc:
            gbench.append(doc)
        elif isinstance(doc, list):
            for row in doc:
                if not isinstance(row, dict) or "bench" not in row:
                    raise ValueError(f"{path}: row without 'bench' key: {row!r}")
                rows.append(row)
        else:
            raise ValueError(f"{path}: neither a JsonReport array nor a "
                             "google-benchmark report")
    return rows, gbench


def row_sort_key(row):
    config = row.get("config", {})
    return (row.get("bench", ""),
            sorted(config.items()),
            row.get("tuples_per_sec", 0.0))


def merge(args):
    rows, gbench = split_inputs(args.files)
    rows.sort(key=row_sort_key)
    out = {"name": args.name, "rows": rows}
    if gbench:
        out["google_benchmark"] = gbench
    path = f"{args.out_dir}/BENCH_{args.name}.json"
    with open(path, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=1)
        f.write("\n")
    print(f"wrote {path}: {len(rows)} rows"
          + (f", {len(gbench)} google-benchmark reports" if gbench else ""))
    return 0


def row_key(row, ignore=()):
    """Identity of a bench row for baseline pairing: bench + config minus
    the knobs that deliberately differ between the paired runs (e.g.
    checkpoint_interval when gating supervised vs unsupervised)."""
    config = row.get("config", {})
    items = tuple(sorted((k, v) for k, v in config.items()
                         if k not in ignore))
    return (row.get("bench", ""), items)


def check_baseline(args):
    ignore = tuple(k for k in args.ignore_config_keys.split(",") if k)
    rows, _ = split_inputs([args.check])
    base_rows, _ = split_inputs([args.baseline])
    baseline = {row_key(r, ignore): r["tuples_per_sec"] for r in base_rows}

    compared, failures = 0, []
    for row in rows:
        key = row_key(row, ignore)
        if key not in baseline:
            print(f"note: no baseline row for {key[0]} {dict(key[1])}")
            continue
        compared += 1
        base = baseline[key]
        cur = row["tuples_per_sec"]
        floor = (1.0 - args.max_regression) * base
        ratio = cur / base if base else float("inf")
        tag = "ok" if cur >= floor else "REGRESSED"
        print(f"{tag}: {key[0]} {dict(key[1])}: {cur:.0f} vs baseline "
              f"{base:.0f} tuples/s ({ratio:.3f}x)")
        if cur < floor:
            failures.append(
                f"{key[0]} {dict(key[1])}: {cur:.0f} < "
                f"{1.0 - args.max_regression:g}x baseline {base:.0f}")

    if compared == 0:
        print("baseline check: no comparable rows", file=sys.stderr)
        return 1
    if failures:
        print(f"baseline regression check FAILED "
              f"(> {args.max_regression:.0%} drop):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"baseline regression check passed ({compared} rows within "
          f"{args.max_regression:.0%})")
    return 0


def check_cost_ratio(args):
    rows, _ = split_inputs([args.check])
    where = dict(kv.split("=", 1) for kv in args.where.split(",") if kv)

    def matches(row):
        config = row.get("config", {})
        return all(config.get(k) == v for k, v in where.items())

    num, den = {}, {}
    for row in rows:
        if not matches(row):
            continue
        algo = row.get("config", {}).get("algo")
        key = row_key(row, ignore=("algo",))
        if algo == args.num_algo:
            num[key] = row["tuples_per_sec"]
        elif algo == args.den_algo:
            den[key] = row["tuples_per_sec"]

    if args.best_pair:
        # Collapse each side to its best rate over the matched rows and
        # compare once. CI uses this for the SIMD-vs-scalar-twin gates:
        # the per-batch pairs include configurations (batch=1) where both
        # twins run identical code and the per-pair ratio is pure runner
        # noise, while the claim under test is only "the vectorized build
        # is never slower where it matters" — i.e. at its best operating
        # point, which best-vs-best isolates.
        if not num or not den:
            print("cost-ratio check: no comparable row pairs",
                  file=sys.stderr)
            return 1
        num_tps = max(num.values())
        den_tps = max(den.values())
        num, den = {("best", ()): num_tps}, {("best", ()): den_tps}

    compared, failures = 0, []
    for key, num_tps in sorted(num.items()):
        if key not in den:
            print(f"note: no {args.den_algo} row pairs {dict(key[1])}")
            continue
        compared += 1
        den_tps = den[key]
        # Per-tuple cost ratio: how much slower the numerator algo is.
        ratio = den_tps / num_tps if num_tps else float("inf")
        tag = "ok" if ratio <= args.max_cost_ratio else "FAILED"
        print(f"{tag}: {args.num_algo} vs {args.den_algo} {dict(key[1])}: "
              f"{num_tps:.0f} vs {den_tps:.0f} tuples/s "
              f"(cost ratio {ratio:.3f}x)")
        if ratio > args.max_cost_ratio:
            failures.append(
                f"{dict(key[1])}: cost ratio {ratio:.3f}x > "
                f"{args.max_cost_ratio:g}x")

    if compared == 0:
        print("cost-ratio check: no comparable row pairs", file=sys.stderr)
        return 1
    if failures:
        print(f"cost-ratio check FAILED ({args.num_algo} vs "
              f"{args.den_algo}):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"cost-ratio check passed ({compared} pairs within "
          f"{args.max_cost_ratio:g}x)")
    return 0


def check(args):
    rows, _ = split_inputs([args.check])
    wanted = set(args.algos.split(",")) if args.algos else None
    groups = {}
    for row in rows:
        config = row.get("config", {})
        if config.get("mode") != "single" or "batch" not in config:
            continue
        if wanted is not None and config.get("algo") not in wanted:
            continue
        key = (config.get("algo", "?"), config.get("op", "?"))
        groups.setdefault(key, {})[int(config["batch"])] = row["tuples_per_sec"]

    if not groups:
        print("check: no single-mode batch rows found", file=sys.stderr)
        return 1

    failures = []
    for (algo, op), by_batch in sorted(groups.items()):
        if 1 not in by_batch:
            continue
        base = by_batch[1]
        big = {b: r for b, r in by_batch.items() if b >= args.min_batch}
        if not big:
            continue
        best_batch, best = max(big.items(), key=lambda kv: kv[1])
        if best < args.min_speedup * base:
            failures.append(
                f"{algo}/{op} best batch={best_batch}: {best:.0f} tuples/s "
                f"< {args.min_speedup:g}x baseline {base:.0f}")
        else:
            print(f"ok: {algo}/{op} best batch={best_batch}: "
                  f"{best / base:.2f}x baseline")
    if failures:
        print("batch-throughput check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("batch-throughput check passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="input --json result files")
    parser.add_argument("--name", help="snapshot name (BENCH_<name>.json)")
    parser.add_argument("--out-dir", default=".", help="snapshot directory")
    parser.add_argument("--check", metavar="FILE",
                        help="gate batch throughput in FILE instead of merging")
    parser.add_argument("--min-batch", type=int, default=64)
    parser.add_argument("--min-speedup", type=float, default=1.0)
    parser.add_argument("--algos", default="",
                        help="comma-separated algo filter for --check")
    parser.add_argument("--baseline", metavar="FILE",
                        help="with --check: paired baseline result file; "
                             "gate per-row tuples_per_sec ratio instead of "
                             "batch speedup")
    parser.add_argument("--max-regression", type=float, default=0.03,
                        help="with --baseline: max fractional drop vs the "
                             "baseline row (default 0.03 = 3%%)")
    parser.add_argument("--ignore-config-keys", default="",
                        help="with --baseline: comma-separated config keys "
                             "excluded from row pairing (knobs that differ "
                             "between the paired runs by design)")
    parser.add_argument("--num-algo",
                        help="with --check: algo whose per-tuple cost is "
                             "gated (cost-ratio mode)")
    parser.add_argument("--den-algo",
                        help="with --check: the reference algo the "
                             "numerator is compared against")
    parser.add_argument("--max-cost-ratio", type=float, default=1.2,
                        help="cost-ratio mode: max allowed per-tuple cost "
                             "multiple (default 1.2)")
    parser.add_argument("--where", default="",
                        help="cost-ratio mode: comma-separated key=value "
                             "config filters applied before pairing")
    parser.add_argument("--best-pair", action="store_true",
                        help="cost-ratio mode: compare the best "
                             "tuples_per_sec of each algo over the matched "
                             "rows (one comparison) instead of per-config "
                             "pairs — used for SIMD-vs-scalar-twin gates "
                             "where small-batch pairs are pure noise")
    args = parser.parse_args()

    if args.check and args.baseline:
        return check_baseline(args)
    if args.check and args.num_algo:
        if not args.den_algo:
            parser.error("--num-algo requires --den-algo")
        return check_cost_ratio(args)
    if args.check:
        return check(args)
    if not args.name:
        parser.error("--name is required in merge mode")
    if not args.files:
        parser.error("at least one input file is required in merge mode")
    return merge(args)


if __name__ == "__main__":
    sys.exit(main())
