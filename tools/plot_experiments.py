#!/usr/bin/env python3
"""Renders the paper's figures from bench output.

Usage:
    build/bench/exp1_single_query > exp1.txt
    tools/plot_experiments.py exp1.txt          # writes exp1_fig10.png etc.

Parses the table sections emitted by exp1_single_query (Figs 10-11),
exp2_multi_query (Figs 12-13) and exp4_memory (Fig 15): a '== title =='
header, a '# window col1 col2 ...' header row, then numeric rows. Requires
matplotlib; degrades to CSV dumps without it.
"""

import re
import sys
from pathlib import Path


def parse_sections(text):
    """Yields (title, columns, rows) per table section."""
    sections = []
    title, cols, rows = None, None, []
    for line in text.splitlines():
        m = re.match(r"== (.*) ==", line)
        if m:
            if title and rows:
                sections.append((title, cols, rows))
            title, cols, rows = m.group(1), None, []
            continue
        if line.startswith("#") and title and cols is None:
            body = line.lstrip("# ").split("(")[0]
            cols = body.split()
            continue
        if title and cols:
            parts = line.split()
            if not parts:
                continue
            try:
                row = [float(p.replace("-", "nan") if p == "-" else p)
                       for p in parts[: len(cols)]]
            except ValueError:
                continue
            if len(row) == len(cols):
                rows.append(row)
    if title and rows:
        sections.append((title, cols, rows))
    return sections


def slug(title):
    s = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    return s[:60]


def dump_csv(path, cols, rows):
    with open(path, "w") as f:
        f.write(",".join(cols) + "\n")
        for row in rows:
            f.write(",".join(str(x) for x in row) + "\n")
    print(f"wrote {path}")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    text = Path(sys.argv[1]).read_text()
    sections = parse_sections(text)
    if not sections:
        print("no table sections found")
        return 1

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib unavailable; dumping CSVs instead")

    for title, cols, rows in sections:
        base = slug(title)
        if plt is None:
            dump_csv(base + ".csv", cols, rows)
            continue
        xs = [r[0] for r in rows]
        fig, ax = plt.subplots(figsize=(7, 4.2))
        for ci in range(1, len(cols)):
            ys = [r[ci] for r in rows]
            style = "-o" if "slick" in cols[ci] else "--s"
            ax.plot(xs, ys, style, label=cols[ci], linewidth=2 if "slick" in cols[ci] else 1)
        ax.set_xscale("log", base=2)
        if all(y is not None and y > 0 for r in rows for y in r[1:] if y == y):
            ax.set_yscale("log")
        ax.set_xlabel(cols[0])
        ax.set_title(title)
        ax.legend(fontsize=7)
        ax.grid(True, alpha=0.3)
        out = base + ".png"
        fig.tight_layout()
        fig.savefig(out, dpi=130)
        plt.close(fig)
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
