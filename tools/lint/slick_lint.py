#!/usr/bin/env python3
"""slick_lint: repo-specific C++ invariants clang-tidy cannot express.

Rules (IDs are what `// slick-lint: allow(<id>)` suppresses, on the same
line or the line directly above the finding):

  atomic-memory-order   Every std::atomic load/store/fetch/exchange/CAS/wait
                        call names an explicit std::memory_order argument.
                        Scope: every scanned file.
  atomic-alignas        A std::atomic data member in the cross-thread dirs
                        (src/runtime/, src/telemetry/, src/net/) is cache-line
                        padded:
                        alignas(...) on the member itself or on the
                        enclosing struct/class declaration.
  relaxed-justified     Every memory_order_relaxed use in the cross-thread
                        dirs carries an ordering argument: a
                        comment containing the word "relaxed" on the same
                        line or within the preceding 10 lines. Forces the
                        "why is relaxed enough here" proof to live next to
                        the code (see DESIGN.md §9).
  pragma-once           Headers open with `#pragma once` (first
                        non-comment, non-blank line).
  banned-call           No std::rand/srand, time(nullptr)/time(NULL), or
                        std::endl in src/ (use util/rng.h, util/clock.h,
                        and '\n' respectively).

Exit codes: 0 clean, 1 findings, 2 usage/IO error.

Division of labor vs tools/analyze/slick_analyzer.py (DESIGN.md §15): this
file is the fast line-oriented lint — style-adjacent, zero-setup invariants
where a regex over one file is enough (padding, comments, banned tokens,
pragma once). The analyzer owns everything that needs name resolution or a
call graph: hot-path purity (SLICK_REALTIME), claim/publish pairing,
[[nodiscard]] coverage, and AST-accurate atomic-order checking. The one
rule both cover is atomic memory order, deliberately: the lint catches it
in any editor with no model to build, the analyzer re-checks it with
type/typedef awareness the regex cannot have.

Usage: slick_lint.py [--root DIR] [paths...]
  With no paths: scans the default roots (src bench tests tools examples)
  relative to --root (default: repo root = two levels above this file),
  skipping tools/lint/fixtures and tools/analyze/fixtures (the
  seeded-violation corpora).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# ---------------------------------------------------------------------------
# Shared machinery
# ---------------------------------------------------------------------------

ALLOW_RE = re.compile(r"slick-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Atomic member functions that accept a std::memory_order argument. `.wait`
# is included (std::atomic::wait takes an order); a non-atomic `.wait()`
# needs an allow comment, which has not yet been necessary in this repo.
# Matches both value access (`x.load`) and pointer-to-atomic (`p->load`);
# the opening paren is located separately so calls split across lines
# (`x.load\n  (...)`) are still seen.
ATOMIC_CALL_RE = re.compile(
    r"(?:\.|->)\s*(load|store|fetch_add|fetch_sub|fetch_and|fetch_or"
    r"|fetch_xor|exchange|compare_exchange_weak|compare_exchange_strong"
    r"|test_and_set|wait)\b"
)

RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
ATOMIC_MEMBER_RE = re.compile(
    r"^\s*(?:alignas\s*\([^)]*\)\s*)?(?:mutable\s+)?std::atomic<[^;]*;\s*(?://.*)?$"
)
STRUCT_DECL_RE = re.compile(r"^\s*(?:template\s*<[^>]*>\s*)?(?:struct|class)\b")
BANNED = [
    (re.compile(r"\bstd::rand\b|\bstd::srand\b|(?<![\w:])srand\s*\("),
     "std::rand/srand is banned in src/ — use util::SplitMix64 (util/rng.h)"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL)\s*\)"),
     "time(nullptr) is banned in src/ — use util/clock.h"),
    (re.compile(r"\bstd::endl\b"),
     "std::endl is banned in src/ — write '\\n' (no gratuitous flushes)"),
]

# src/runtime/shm/ is named even though src/runtime/ already prefixes it:
# cross-PROCESS shared memory must never silently fall out of the
# cross-thread atomics rules if the runtime tree is ever reorganized.
CROSS_THREAD_DIRS = ("src/runtime/", "src/runtime/shm/", "src/telemetry/",
                     "src/net/")
DEFAULT_ROOTS = ("src", "bench", "tests", "tools", "examples")
EXCLUDE_PARTS = ("tools/lint/fixtures", "tools/analyze/fixtures")
RELAXED_COMMENT_WINDOW = 10


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def comment_text(line: str) -> str:
    """The `// ...` portion of a line ('' if none)."""
    idx = line.find("//")
    return line[idx:] if idx >= 0 else ""


def code_text(line: str) -> str:
    """The line with any trailing // comment stripped."""
    idx = line.find("//")
    return line[:idx] if idx >= 0 else line


def allowed(lines: list[str], lineno: int, rule: str) -> bool:
    """True if an allow(<rule>) pragma covers 1-based line `lineno`."""
    for cand in (lineno, lineno - 1):
        if 1 <= cand <= len(lines):
            m = ALLOW_RE.search(comment_text(lines[cand - 1]))
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                return True
    return False


def balanced_call_args(lines: list[str], lineno: int, col: int,
                       max_lines: int = 10) -> str:
    """Text of a call's argument list starting at the '(' at (lineno, col),
    both 0-based, spanning up to max_lines lines."""
    depth, out = 0, []
    for i in range(lineno, min(lineno + max_lines, len(lines))):
        segment = code_text(lines[i])
        start = col if i == lineno else 0
        for ch in segment[start:]:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "".join(out)
            elif depth >= 1:
                out.append(ch)
        out.append(" ")
    return "".join(out)  # unbalanced (macro soup); caller treats as-is


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def find_call_paren(lines: list[str], lineno: int, col: int,
                    max_lines: int = 3):
    """(line, col) of the first non-whitespace char at/after (lineno, col)
    if it is '(' — both 0-based — else None.  Spans line breaks so
    `x.load\\n  (...)` is recognized as a call."""
    for i in range(lineno, min(lineno + max_lines, len(lines))):
        segment = code_text(lines[i])
        start = col if i == lineno else 0
        for j in range(start, len(segment)):
            if segment[j].isspace():
                continue
            return (i, j) if segment[j] == "(" else None
    return None


def check_atomic_memory_order(rel: str, lines: list[str]) -> list[Finding]:
    findings = []
    for i, line in enumerate(lines):
        for m in ATOMIC_CALL_RE.finditer(code_text(line)):
            paren = find_call_paren(lines, i, m.end())
            if paren is None:
                continue  # member pointer / name mention, not a call
            args = balanced_call_args(lines, paren[0], paren[1])
            if "memory_order" in args:
                continue
            if allowed(lines, i + 1, "atomic-memory-order"):
                continue
            findings.append(Finding(
                rel, i + 1, "atomic-memory-order",
                f".{m.group(1)}() without an explicit std::memory_order "
                "argument"))
    return findings


def check_atomic_alignas(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith(CROSS_THREAD_DIRS):
        return []
    findings = []
    for i, line in enumerate(lines):
        if not ATOMIC_MEMBER_RE.match(line):
            continue
        if "alignas" in code_text(line):
            continue
        # Enclosing struct/class padded as a whole? Nearest declaration
        # heading above the member decides.
        enclosing_has_alignas = False
        for j in range(i - 1, -1, -1):
            if STRUCT_DECL_RE.match(lines[j]):
                enclosing_has_alignas = "alignas" in code_text(lines[j])
                break
        if enclosing_has_alignas:
            continue
        if allowed(lines, i + 1, "atomic-alignas"):
            continue
        findings.append(Finding(
            rel, i + 1, "atomic-alignas",
            "cross-thread std::atomic member without alignas padding "
            "(member or enclosing struct) — false-sharing hazard"))
    return findings


def check_relaxed_justified(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith(CROSS_THREAD_DIRS):
        return []
    findings = []
    for i, line in enumerate(lines):
        if not RELAXED_RE.search(code_text(line)):
            continue
        lo = max(0, i - RELAXED_COMMENT_WINDOW)
        justified = any(
            "relaxed" in comment_text(lines[j]).lower()
            for j in range(lo, i + 1))
        if justified:
            continue
        if allowed(lines, i + 1, "relaxed-justified"):
            continue
        findings.append(Finding(
            rel, i + 1, "relaxed-justified",
            "memory_order_relaxed without a nearby '// relaxed: ...' "
            "ordering argument (same line or previous "
            f"{RELAXED_COMMENT_WINDOW} lines)"))
    return findings


def check_pragma_once(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.endswith(".h"):
        return []
    in_block_comment = False
    for i, line in enumerate(lines):
        stripped = line.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if not stripped or stripped.startswith("//"):
            continue
        if stripped.startswith("/*"):
            in_block_comment = "*/" not in stripped
            continue
        if stripped == "#pragma once":
            return []
        if allowed(lines, i + 1, "pragma-once"):
            return []
        return [Finding(rel, i + 1, "pragma-once",
                        "header does not open with #pragma once")]
    return [Finding(rel, 1, "pragma-once",
                    "header does not open with #pragma once")]


def check_banned_calls(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith("src/"):
        return []
    findings = []
    for i, line in enumerate(lines):
        code = code_text(line)
        for pattern, message in BANNED:
            if pattern.search(code) and not allowed(lines, i + 1,
                                                    "banned-call"):
                findings.append(Finding(rel, i + 1, "banned-call", message))
    return findings


CHECKS = (
    check_atomic_memory_order,
    check_atomic_alignas,
    check_relaxed_justified,
    check_pragma_once,
    check_banned_calls,
)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def lint_file(root: pathlib.Path, path: pathlib.Path) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as e:
        print(f"slick_lint: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    findings = []
    for check in CHECKS:
        findings.extend(check(rel, lines))
    return findings


def gather(root: pathlib.Path, args_paths: list[str]) -> list[pathlib.Path]:
    paths: list[pathlib.Path] = []
    defaulted = not args_paths
    roots = args_paths or [str(root / r) for r in DEFAULT_ROOTS]
    for r in roots:
        p = pathlib.Path(r)
        if not p.is_absolute():
            p = root / p
        if p.is_file():
            paths.append(p)
        elif p.is_dir():
            paths.extend(q for q in sorted(p.rglob("*"))
                         if q.suffix in (".h", ".cc") and q.is_file())
        elif defaulted:
            continue  # a default root a partial tree doesn't have
        else:
            print(f"slick_lint: no such path: {r}", file=sys.stderr)
            sys.exit(2)
    skip = tuple(pathlib.PurePosixPath(e) for e in EXCLUDE_PARTS)
    out = []
    for p in paths:
        rel = pathlib.PurePosixPath(p.relative_to(root).as_posix())
        if any(str(rel).startswith(str(e) + "/") or rel == e for e in skip):
            continue
        out.append(p)
    return out


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to lint (default: the repo's "
                         f"{' '.join(DEFAULT_ROOTS)} trees)")
    opts = ap.parse_args(argv)
    root = pathlib.Path(
        opts.root) if opts.root else pathlib.Path(__file__).resolve().parents[2]
    root = root.resolve()
    findings: list[Finding] = []
    for path in gather(root, opts.paths):
        findings.extend(lint_file(root, path))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"slick_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
