#pragma once
// Fixture: src/net/ is a cross-thread dir (PR 7) — the atomic-alignas and
// relaxed-justified rules must fire here exactly as they do in
// src/runtime/. Never compiled; slick_lint_test.py pins the findings.

#include <atomic>
#include <cstdint>

namespace fixture {

struct Connection {
  std::atomic<uint64_t> frames{0};          // atomic-alignas violation
  alignas(64) std::atomic<bool> open{true};  // padded: no finding
  // slick-lint: allow(atomic-alignas)
  std::atomic<uint64_t> waived{0};          // explicitly waived: no finding
};

class Telemetry {
 public:
  uint64_t Total() const {
    // No ordering-argument comment anywhere in the window ........ filler
    return frames_.load(std::memory_order_relaxed);  // finding expected
  }

  uint64_t TotalJustified() const {
    // relaxed: single-writer counter, snapshot tolerates staleness.
    return frames_.load(std::memory_order_relaxed);  // justified: no finding
  }

 private:
  alignas(64) std::atomic<uint64_t> frames_{0};
};

}  // namespace fixture
