#pragma once
// Fixture: a fully conforming telemetry header — zero findings expected.

#include <atomic>
#include <cstdint>

namespace fixture {

struct alignas(64) CleanCounter {
  std::atomic<uint64_t> v{0};

  // relaxed: monotonic event count, readers tolerate lag.
  void Add(uint64_t n) { v.fetch_add(n, std::memory_order_relaxed); }
  // relaxed: statistical read.
  uint64_t Get() const { return v.load(std::memory_order_relaxed); }
};

}  // namespace fixture
