#pragma once
// Fixture: seeded atomic-memory-order / atomic-alignas / relaxed-justified
// violations (plus the allow-pragma escape hatches) for slick_lint_test.py.
// Never compiled; the exact findings are pinned by the test.

#include <atomic>
#include <cstdint>

namespace fixture {

struct UnpaddedFlags {
  std::atomic<bool> closed{false};          // atomic-alignas violation
  alignas(64) std::atomic<uint64_t> ok{0};  // padded: no finding
  // slick-lint: allow(atomic-alignas)
  std::atomic<int> waived{0};               // explicitly waived: no finding
};

struct alignas(64) PaddedAsAWhole {
  std::atomic<uint64_t> fine{0};  // enclosing struct padded: no finding
};

class Ring {
 public:
  void Publish(uint64_t v) {
    // Implicit seq_cst — both violations below.
    tail_.store(v);                // atomic-memory-order violation
    (void)tail_.load();            // atomic-memory-order violation
    tail_.fetch_add(               // atomic-memory-order violation
        1);
    // No ordering-argument comment anywhere near the next load .... filler
    // ............................................................ filler
    (void)gauge_.load(std::memory_order_relaxed);  // finding expected here
    // relaxed: telemetry gauge, no data published through it.
    (void)gauge_.load(std::memory_order_relaxed);  // justified: no finding
    gauge_.store(0, std::memory_order_release);    // explicit: no finding
  }

 private:
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) std::atomic<uint64_t> gauge_{0};
};

}  // namespace fixture
