#pragma once
#include <atomic>

// Seeded violations: atomic calls the original single-line `\.` regex
// missed — pointer-to-atomic access (`->`) and calls whose argument list
// or opening paren lands on the next line.
namespace fixture {

struct SplitAtomics {
  // Violation (atomic-memory-order): pointer-to-atomic, defaulted order.
  static unsigned bump(std::atomic<unsigned>* p) {
    return p->fetch_add(1);
  }

  // Violation (atomic-memory-order): args split across lines, no order.
  unsigned peek_split() const {
    return ctr_.load(
    );
  }

  // Violation (atomic-memory-order): paren itself on the next line.
  unsigned peek_next_line() const {
    return ctr_.load
        ();
  }

  // Clean: split call that does name an order.
  unsigned peek_ordered() const {
    return ctr_.load(
        std::memory_order_acquire);
  }

  // Clean: pointer-to-atomic with an explicit order.
  static void reset(std::atomic<unsigned>* p) {
    p->store(0u, std::memory_order_release);
  }

  alignas(64) std::atomic<unsigned> ctr_{0};
};

}  // namespace fixture
