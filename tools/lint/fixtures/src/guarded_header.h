#ifndef FIXTURE_GUARDED_HEADER_H_
#define FIXTURE_GUARDED_HEADER_H_
// Fixture: classic include guard instead of #pragma once → one
// pragma-once finding on the first non-comment line.

namespace fixture {
inline int One() { return 1; }
}  // namespace fixture

#endif  // FIXTURE_GUARDED_HEADER_H_
