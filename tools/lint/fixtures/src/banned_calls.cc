// Fixture: seeded banned-call violations. Never compiled.

#include <cstdlib>
#include <ctime>
#include <iostream>

namespace fixture {

inline unsigned Seed() {
  return static_cast<unsigned>(time(nullptr));  // banned-call violation
}

inline int Noise() {
  return std::rand();  // banned-call violation
}

inline void Print(int v) {
  std::cout << v << std::endl;  // banned-call violation
  // std::endl in a comment only: no finding
  std::cout << v << std::endl;  // slick-lint: allow(banned-call)
}

}  // namespace fixture
