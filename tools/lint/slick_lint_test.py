#!/usr/bin/env python3
"""Tests for slick_lint.py: exact findings + exit codes over the seeded
fixture corpus, plus a clean run over the real tree. Run from anywhere:

    python3 tools/lint/slick_lint_test.py          # or via ctest: slick_lint
"""

import pathlib
import subprocess
import sys
import unittest

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parents[1]
LINT = HERE / "slick_lint.py"
FIXTURES = HERE / "fixtures"

EXPECTED_FIXTURE_FINDINGS = [
    ("src/banned_calls.cc", 10, "banned-call"),
    ("src/banned_calls.cc", 14, "banned-call"),
    ("src/banned_calls.cc", 18, "banned-call"),
    ("src/guarded_header.h", 1, "pragma-once"),
    ("src/net/bad_connection.h", 12, "atomic-alignas"),
    ("src/net/bad_connection.h", 22, "relaxed-justified"),
    ("src/runtime/bad_atomics.h", 12, "atomic-alignas"),
    ("src/runtime/bad_atomics.h", 26, "atomic-memory-order"),
    ("src/runtime/bad_atomics.h", 27, "atomic-memory-order"),
    ("src/runtime/bad_atomics.h", 28, "atomic-memory-order"),
    ("src/runtime/bad_atomics.h", 32, "relaxed-justified"),
    # split_atomics.h regression-pins the regex fixes: `->` on a
    # pointer-to-atomic and calls whose paren/args continue on the next
    # line were false negatives of the original single-line `\.` pattern.
    ("src/runtime/split_atomics.h", 12, "atomic-memory-order"),
    ("src/runtime/split_atomics.h", 17, "atomic-memory-order"),
    ("src/runtime/split_atomics.h", 23, "atomic-memory-order"),
]


def run_lint(*args):
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, check=False)


def parse(stdout):
    out = []
    for line in stdout.splitlines():
        loc, rest = line.split(": [", 1)
        path, lineno = loc.rsplit(":", 1)
        rule = rest.split("]", 1)[0]
        out.append((path, int(lineno), rule))
    return out


class FixtureCorpus(unittest.TestCase):
    def test_exact_findings_and_exit_code(self):
        proc = run_lint("--root", str(FIXTURES))
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertEqual(parse(proc.stdout), EXPECTED_FIXTURE_FINDINGS)
        self.assertIn("14 finding(s)", proc.stderr)

    def test_clean_file_exits_zero(self):
        proc = run_lint("--root", str(FIXTURES),
                        "src/telemetry/clean_counters.h")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertEqual(proc.stdout, "")

    def test_single_violating_file(self):
        proc = run_lint("--root", str(FIXTURES), "src/guarded_header.h")
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(parse(proc.stdout),
                         [("src/guarded_header.h", 1, "pragma-once")])

    def test_missing_explicit_path_is_usage_error(self):
        proc = run_lint("--root", str(FIXTURES), "src/does_not_exist.h")
        self.assertEqual(proc.returncode, 2)
        self.assertIn("no such path", proc.stderr)


class RealTree(unittest.TestCase):
    def test_repo_is_clean(self):
        """The acceptance gate: src/ (and friends) lint clean."""
        proc = run_lint("--root", str(REPO))
        self.assertEqual(proc.returncode, 0,
                         "repo must lint clean:\n" + proc.stdout)

    def test_fixture_corpus_is_excluded_from_default_scan(self):
        # The default scan includes tools/ — the seeded violations under
        # tools/lint/fixtures must not leak into it (previous test passing
        # already implies this; this pins the reason).
        proc = run_lint("--root", str(REPO), "tools")
        self.assertEqual(proc.returncode, 0, proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
