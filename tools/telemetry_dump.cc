// Live telemetry demo/smoke tool: drives the parallel sharded runtime over
// the synthetic energy stream and dumps the telemetry layer's JSON
// snapshots while the system is serving — queue depth, watermark lag,
// backpressure drops, ring high-water, per-shard ⊕ counts (via
// ops::ThreadCountingOp) and the merged per-batch drain-latency histogram.
//
// Output is one JSON object per line (JSONL): `{"epoch":...,"answer":...,
// "runtime":{...}}` per reporting interval, then a final quiescent
// snapshot after stop() where the conservation identity
// tuples_in == tuples_out and in_flight == 0 is asserted.
//
// Flags: --window=W (default 8192)   --shards=N (default 4)
//        --tuples=T (default 500000) --ring=R (default 1024)
//        --batch=B (default 64)      --epochs=E snapshots (default 8)
//        --drop (use kDropNewest backpressure)  --seed=S
//        --policy=P (block | drop-newest | block-with-deadline |
//                    shed-oldest | error; overrides --drop)
//        --checkpoint-interval=C (default 0; C > 0 runs supervised with
//                                 periodic worker checkpoints)
//        --deadline-us=D (block-with-deadline budget, default 5000)
//        --shm=NAME (inspect a live shm ring segment instead of running
//                    the demo: prints cursors, reaper telemetry and the
//                    full lease table as one JSON object — read-only, so
//                    safe against a serving ring; see RUNBOOK.md)
//
// Supervised runs additionally assert the fault-tolerant conservation
// identity: admitted == processed + in_flight at every epoch cut, and the
// final snapshot reports worker_restarts / checkpoints / replayed so the
// JSONL stream doubles as a smoke test for the recovery telemetry.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "ops/arith.h"
#include "ops/counting.h"
#include "runtime/parallel_engine.h"
#include "runtime/shm/shm_ring.h"
#include "telemetry/json.h"
#include "util/check.h"

namespace slick {
namespace {

using Op = ops::ThreadCountingOp<ops::Sum>;
using Agg = core::SlickDequeInv<Op>;
using Engine = runtime::ParallelShardedEngine<Agg>;

runtime::Backpressure ParsePolicy(const std::string& name) {
  for (const auto policy :
       {runtime::Backpressure::kBlock, runtime::Backpressure::kDropNewest,
        runtime::Backpressure::kBlockWithDeadline,
        runtime::Backpressure::kShedOldest, runtime::Backpressure::kError}) {
    if (name == runtime::BackpressureName(policy)) return policy;
  }
  SLICK_CHECK(false, "unknown --policy (want block | drop-newest | "
                     "block-with-deadline | shed-oldest | error)");
  return runtime::Backpressure::kBlock;
}

const char* SpanStateName(uint64_t s) {
  switch (static_cast<runtime::LeaseSpan>(s)) {
    case runtime::LeaseSpan::kIdle: return "idle";
    case runtime::LeaseSpan::kIntent: return "intent";
    case runtime::LeaseSpan::kOwned: return "owned";
  }
  return "corrupt";
}

/// --shm=NAME: read-only triage dump of a live (or abandoned) shm ring
/// segment — the on-call path for a leases_reclaimed / zombie_fences
/// spike or a suspected stuck lease (RUNBOOK.md). PROT_READ mapping:
/// cannot perturb the ring it inspects.
int DumpShmSegment(const std::string& name) {
  const runtime::ShmSegmentInfo info = runtime::InspectShmSegment(name);
  if (!info.ok) {
    std::fprintf(stderr, "telemetry_dump: --shm=%s: %s\n", name.c_str(),
                 info.error.c_str());
    return 1;
  }
  std::printf("{\"segment\":\"%s\",\"capacity\":%" PRIu64
              ",\"slot_size\":%" PRIu64 ",\"closed\":%s,"
              "\"head\":%" PRIu64 ",\"tail\":%" PRIu64 ",\"claim\":%" PRIu64
              ",\"unconsumed\":%" PRIu64 ",\"highwater\":%" PRIu64
              ",\"leases_reclaimed\":%" PRIu64 ",\"slots_tombstoned\":%" PRIu64
              ",\"zombie_fences\":%" PRIu64 ",\"leases\":[",
              name.c_str(), info.capacity, info.slot_size,
              info.closed ? "true" : "false", info.head, info.tail,
              info.claim, info.tail - info.head, info.highwater,
              info.leases_reclaimed, info.slots_tombstoned,
              info.zombie_fences);
  bool first = true;
  for (const runtime::ShmLeaseInfo& l : info.leases) {
    if (l.pid == 0 && l.span_state ==
                          static_cast<uint64_t>(runtime::LeaseSpan::kIdle)) {
      continue;  // free row: noise in a triage dump
    }
    std::printf("%s{\"row\":%zu,\"pid\":%" PRIu64 ",\"epoch\":%" PRIu64
                ",\"heartbeat_ns\":%" PRIu64 ",\"span\":[%" PRIu64
                ",%" PRIu64 "],\"span_state\":\"%s\",\"fenced_at_ns\":%" PRIu64
                "}",
                first ? "" : ",", l.row, l.pid, l.epoch, l.heartbeat_ns,
                l.span_begin, l.span_end, SpanStateName(l.span_state),
                l.fenced_at_ns);
    first = false;
  }
  std::printf("]}\n");
  return 0;
}

int Run(const bench::Flags& flags) {
  const std::string shm = flags.GetString("shm", "");
  if (!shm.empty()) return DumpShmSegment(shm);
  const std::size_t window = flags.GetU64("window", 8192);
  const std::size_t shards = flags.GetU64("shards", 4);
  const uint64_t tuples = flags.GetU64("tuples", 500000);
  const uint64_t epochs = flags.GetU64("epochs", 8);
  Engine::Options opt;
  opt.ring_capacity = flags.GetU64("ring", 1024);
  opt.batch = flags.GetU64("batch", 64);
  opt.backpressure = flags.GetU64("drop", 0) != 0
                         ? runtime::Backpressure::kDropNewest
                         : runtime::Backpressure::kBlock;
  const std::string policy = flags.GetString("policy", "");
  if (!policy.empty()) opt.backpressure = ParsePolicy(policy);
  opt.checkpoint_interval = flags.GetU64("checkpoint-interval", 0);
  opt.deadline_ns = flags.GetU64("deadline-us", 5000) * 1000;
  const bool supervised = opt.checkpoint_interval > 0;

  SLICK_CHECK(window % shards == 0, "window must be a multiple of shards");
  Engine engine(window, shards, opt);

  const std::vector<double> data =
      bench::BenchSeries(flags, 1 << 18, flags.GetU64("seed", 42));
  std::size_t di = 0;
  const uint64_t per_epoch = tuples / (epochs == 0 ? 1 : epochs);
  uint64_t fed = 0;
  for (uint64_t e = 0; e < epochs; ++e) {
    for (uint64_t i = 0; i < per_epoch; ++i) {
      engine.push(Op::lift(data[di]));
      di = di + 1 == data.size() ? 0 : di + 1;
      ++fed;
    }
    engine.flush();
    double answer = 0.0;
    const bool quiescent = engine.ready();
    if (quiescent) answer = engine.query();  // quiescent epoch cut
    const telemetry::RuntimeSnapshot snap = engine.snapshot();
    if (quiescent) {
      // The recovery-aware conservation identity must hold exactly at a
      // quiescent cut, supervised or not — replayed tuples never inflate
      // tuples_out, drops never vanish.
      SLICK_CHECK(snap.total_in() ==
                      snap.total_out() + snap.total_in_flight(),
                  "conservation violated at epoch cut");
    }
    std::printf("{\"epoch\":%" PRIu64 ",\"fed\":%" PRIu64
                ",\"answer\":%.3f,\"runtime\":%s}\n",
                e, fed, answer, telemetry::ToJson(snap).c_str());
  }

  engine.stop();
  const telemetry::RuntimeSnapshot final_snap = engine.snapshot();
  // Quiescent conservation: everything admitted was processed, nothing is
  // left in flight, and the histogram saw every drain batch.
  SLICK_CHECK(final_snap.total_in() == final_snap.total_out(),
              "telemetry conservation violated after stop()");
  SLICK_CHECK(final_snap.total_in_flight() == 0,
              "ring not drained after stop()");
  SLICK_CHECK(final_snap.total_in() + final_snap.total_dropped() +
                      final_snap.total_staged() ==
                  fed,
              "admitted + dropped + staged != fed");
  if (supervised) {
    // Each shard saw tuples/shards >> interval tuples, so every worker
    // must have committed at least one checkpoint; with no injected
    // faults nothing may have restarted or replayed.
    uint64_t checkpoints = 0;
    for (const auto& s : final_snap.shards) checkpoints += s.checkpoints;
    SLICK_CHECK(checkpoints > 0, "supervised run committed no checkpoints");
    SLICK_CHECK(final_snap.total_restarts() == 0 &&
                    final_snap.total_replayed() == 0,
                "fault-free run reported restarts or replay");
  }
  std::printf("{\"final\":%s}\n", telemetry::ToJson(final_snap).c_str());
  return 0;
}

}  // namespace
}  // namespace slick

int main(int argc, char** argv) {
  return slick::Run(slick::bench::Flags(argc, argv));
}
