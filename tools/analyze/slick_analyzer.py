#!/usr/bin/env python3
"""slick-analyzer: semantic static analysis for the SlickDeque hot paths.

The regex lint (tools/lint/slick_lint.py) is the fast textual pre-check; this
analyzer is the semantic layer behind it.  It understands functions, call
graphs, and statements, so it can answer questions the regex lint cannot:

  realtime-purity    A function annotated SLICK_REALTIME (src/util/
                     annotations.h) transitively reaches heap allocation, a
                     mutex/condition_variable, a blocking call, or `throw`.
                     The walk stops at SLICK_REALTIME_ALLOW(reason); a bare
                     ALLOW with an empty reason is itself a finding
                     (allow-without-reason).
  claim-publish      A function calls TryClaimPush/TryClaimPop/ClaimPop but
                     no path reaches the matching PublishPush/ReleasePop and
                     the claim handle does not escape (returned or passed
                     on).  This is the silent-wedge bug class the MPMC model
                     checker can only find per-scenario.
  ignored-result     A statement discards the result of a must-use call:
                     Try*/try_*/Poll*/poll_*/Offer/ClaimPop/ReadFramed, or
                     any repo function returning FrameError/Admission/Status
                     or carrying SLICK_NODISCARD.  `(void)` casts suppress.
  nodiscard-missing  A function whose name or return type makes it must-use
                     does not carry SLICK_NODISCARD (or [[nodiscard]]).
  atomic-order       An atomic member call (load/store/fetch_*/exchange/
                     compare_exchange_*/test_and_set/wait) without an
                     explicit std::memory_order argument.  Statement-level:
                     catches calls split across lines and calls through
                     `->`, the regex lint's documented blind spots.

Two frontends produce the same model (functions, call edges, impurity sites,
atomic ops, claim/publish events, statement-position calls):

  * clang  — clang.cindex over the exported compile_commands.json.  Used
             when the `clang` python module and a compile DB are available
             (CI installs python3-clang).  Resolves types, typedefs, and
             `auto` precisely.
  * tokens — a pure-python C++ token-level parser.  No dependencies; runs
             everywhere (it gates the fixture corpus in ctest).  Resolution
             is name-based: a call whose name matches a repo-defined
             function becomes a call-graph edge (repo definitions shadow
             the std lists); otherwise the name is classified against
             curated allocation/blocking/lock lists.

Suppression: `// slick-analyze: allow(<check-id>)` on the finding line or
the line above, mirroring the lint's `slick-lint: allow(...)`.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.

See DESIGN.md §15 for the architecture and the annotation policy.
"""

from __future__ import annotations

import argparse
import bisect
import json
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Knowledge base shared by both frontends.
# --------------------------------------------------------------------------

# Call names that allocate when they do NOT resolve to a repo-defined
# function.  Deliberately excludes collision-prone names that the repo
# defines with non-allocating semantics (insert, erase, clear, close, read,
# write, open) — the clang frontend resolves those precisely; the token
# frontend leans on repo-shadowing plus this curated list.
ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
    "make_unique", "make_shared", "allocate",
    "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
    "resize", "reserve", "append", "assign", "substr", "to_string",
    "stoi", "stol", "stoul", "stoull", "stod",
}

# Bare identifiers that mean a lock/CV lives in this function.
LOCK_TYPES = {
    "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
    "condition_variable", "condition_variable_any",
}
LOCK_CALLS = {"lock", "try_lock", "unlock", "lock_shared", "unlock_shared"}

# Call names that block or deschedule.
BLOCKING_CALLS = {
    "wait", "wait_for", "wait_until", "notify_all_at_thread_exit",
    "yield", "sleep_for", "sleep_until", "nanosleep", "usleep", "sleep",
    "epoll_wait", "ppoll", "poll", "select", "recv", "send", "sendmsg",
    "recvmsg", "accept", "accept4", "connect", "futex",
}

ATOMIC_OPS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "test_and_set", "wait", "notify_one",
    "notify_all",
}
# Atomic ops that take no memory_order argument do not need one;
# notify_one/notify_all are ordering-free by spec.
ATOMIC_ORDER_FREE = {"notify_one", "notify_all"}

# Must-use call-name patterns (checked against the base name at call sites
# and definition sites).
MUSTUSE_NAME_RE = re.compile(r"^(?:Try|Poll)[A-Z]|^(?:try|poll)_")
MUSTUSE_EXACT = {"Offer", "ClaimPop", "ReadFramed"}
# Return types whose values must not be dropped.
MUSTUSE_TYPES = {"FrameError", "Admission", "Status"}

CLAIM_CALLS = {
    "TryClaimPush": "push",
    "TryClaimPop": "pop",
    "ClaimPop": "pop",
}
PUBLISH_CALLS = {"PublishPush": "push", "ReleasePop": "pop"}

CPP_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "sizeof", "alignof", "alignas",
    "decltype", "typeid", "new", "delete", "throw", "try", "catch",
    "static_assert", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "co_await", "co_yield", "co_return", "requires",
    "noexcept", "const", "constexpr", "consteval", "constinit", "volatile",
    "inline", "static", "extern", "thread_local", "mutable", "virtual",
    "explicit", "friend", "public", "private", "protected", "operator",
    "template", "typename", "using", "namespace", "class", "struct",
    "union", "enum", "auto", "void", "bool", "char", "short", "int",
    "long", "float", "double", "signed", "unsigned", "true", "false",
    "nullptr", "this", "override", "final", "defined",
}

ALLOW_RE = re.compile(r"slick-analyze:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

CHECK_IDS = (
    "realtime-purity", "allow-without-reason", "claim-publish",
    "ignored-result", "nodiscard-missing", "atomic-order",
)


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def key(self):
        return (self.path, self.line, self.rule, self.message)


@dataclass
class Impurity:
    kind: str          # alloc | lock | block | throw
    line: int
    detail: str


@dataclass
class CallSite:
    name: str
    line: int
    member: bool = False      # x.f() / p->f(): receiver unknown
    qual: str | None = None   # X::f(): explicit qualifier X


@dataclass
class AtomicOp:
    op: str
    line: int
    has_order: bool


@dataclass
class ClaimSite:
    kind: str          # push | pop
    name: str
    line: int
    var: str | None
    escaped: bool = False


@dataclass
class StmtCall:
    """A call in statement position whose result is discarded."""
    name: str
    line: int
    void_cast: bool    # preceded by a (void) cast → deliberate discard


@dataclass
class FuncInfo:
    name: str                  # base name (TryClaimPush)
    qname: str                 # qualified-ish (SpscRing::TryClaimPush)
    path: str
    line: int
    cls: str | None = None     # enclosing (or ::-qualified) class name
    realtime: bool = False
    allow_reason: str | None = None   # None = no ALLOW; "" = bare ALLOW
    nodiscard: bool = False
    return_tokens: tuple = ()
    calls: list = field(default_factory=list)
    impurities: list = field(default_factory=list)
    atomics: list = field(default_factory=list)
    claims: list = field(default_factory=list)
    publishes: dict = field(default_factory=lambda: {"push": 0, "pop": 0})
    stmt_calls: list = field(default_factory=list)


@dataclass
class Model:
    functions: list = field(default_factory=list)
    # base name -> [FuncInfo] for repo-shadow resolution
    by_name: dict = field(default_factory=dict)
    notices: list = field(default_factory=list)

    def add(self, fn):
        self.functions.append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)


# --------------------------------------------------------------------------
# Token frontend: lexer.
# --------------------------------------------------------------------------

@dataclass
class Tok:
    kind: str   # ident | num | str | punct
    text: str
    line: int


TOK_RE = re.compile(
    r"""
      (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<rawstr>R"(?P<rsdelim>[^(\s]*)\((?:.|\n)*?\)(?P=rsdelim)")
    | (?P<string>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<num>\.?[0-9](?:[\w.]|[eEpP][+-])*)
    | (?P<punct>->\*?|::|\[\[|\]\]|<<=|>>=|<=>|\.\.\.|<<|>>|<=|>=|==|!=
                |&&|\|\||\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|=|.)
    """,
    re.DOTALL | re.VERBOSE,
)


def strip_preprocessor(text: str) -> str:
    """Blank out preprocessor logical lines, preserving newlines."""
    out = []
    cont = False
    for line in text.split("\n"):
        if cont or line.lstrip().startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append("")
        else:
            cont = False
            out.append(line)
    return "\n".join(out)


def tokenize(text: str) -> list:
    text = strip_preprocessor(text)
    starts = [0]
    for i, ch in enumerate(text):
        if ch == "\n":
            starts.append(i + 1)
    toks = []
    for m in TOK_RE.finditer(text):
        line = bisect.bisect_right(starts, m.start())
        if m.lastgroup == "comment":
            continue
        kind = m.lastgroup
        txt = m.group()
        if kind == "rawstr":
            kind = "string"
        if kind == "punct" and txt.isspace():
            continue
        if txt.strip() == "":
            continue
        toks.append(Tok(kind if kind != "string" else "str", txt, line))
    return toks


def match_brace(toks, i):
    """toks[i] is '{'; return index just past the matching '}'."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(toks)


def match_paren(toks, i):
    """toks[i] is '('; return index of the matching ')' (or len)."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks)


def skip_template_args(toks, i):
    """toks[i] is '<'; best-effort skip of a template argument list.
    Returns index just past the matching '>', or None if it does not look
    like template arguments."""
    depth = 0
    j = i
    limit = i + 160
    while j < len(toks) and j < limit:
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}", "&&", "||"):
            return None
        elif t == "(":
            j = match_paren(toks, j)
        j += 1
    return None


# --------------------------------------------------------------------------
# Token frontend: scope parser.
# --------------------------------------------------------------------------

FUNC_TAIL_OK = {"const", "noexcept", "override", "final", "&", "&&", "try"}
FUNC_TAIL_REST = {":", "->", "requires"}   # everything after these is free-form


def find_function_candidate(header):
    """Return (name, param_open_idx, param_close_idx) for the function this
    header declares/defines, or None."""
    n = len(header)
    j = 0
    while j < n - 1:
        t = header[j]
        name = None
        pidx = None
        if t.kind == "ident" and t.text not in CPP_KEYWORDS:
            name = t.text
            if j > 0 and header[j - 1].text == "~":
                name = "~" + name
            k = j + 1
            if k < n and header[k].text == "<":
                past = skip_template_args(header, k)
                if past is not None and past < n and header[past].text == "(":
                    k = past
            if k < n and header[k].text == "(":
                pidx = k
        elif t.text == "operator":
            k = j + 1
            sym = ""
            # operator() / operator[] / operator== etc.
            if k + 1 < n and header[k].text == "(" and header[k + 1].text == ")":
                sym, k = "()", k + 2
            else:
                while k < n and header[k].kind == "punct" and header[k].text != "(":
                    sym += header[k].text
                    k += 1
                if k < n and header[k].kind == "ident" and not sym:
                    # conversion operator: operator bool ( )
                    sym = header[k].text
                    k += 1
            if k < n and header[k].text == "(":
                name, pidx = "operator" + sym, k
        if name is not None and pidx is not None:
            close = match_paren(header, pidx)
            if close < n or close == n - 1:
                tail = header[close + 1:] if close + 1 <= n else []
                if _tail_ok(tail):
                    return name, j, pidx, close
        j += 1
    return None


def _tail_ok(tail):
    i = 0
    n = len(tail)
    while i < n:
        t = tail[i].text
        if t in FUNC_TAIL_REST:
            return True
        if t == "noexcept":
            if i + 1 < n and tail[i + 1].text == "(":
                i = match_paren(tail, i + 1)
            i += 1
            continue
        if t in FUNC_TAIL_OK:
            i += 1
            continue
        if t == "=":
            return False   # = default / = delete / = 0
        return False
    return True


def header_annotations(header):
    """Extract SLICK_REALTIME / SLICK_REALTIME_ALLOW / nodiscard markers."""
    realtime = False
    allow = None
    nodiscard = False
    i = 0
    n = len(header)
    while i < n:
        t = header[i]
        if t.text == "SLICK_REALTIME":
            realtime = True
        elif t.text == "SLICK_REALTIME_ALLOW":
            allow = ""
            if i + 1 < n and header[i + 1].text == "(":
                close = match_paren(header, i + 1)
                parts = [x.text[1:-1] for x in header[i + 2:close]
                         if x.kind == "str"]
                allow = " ".join(parts)
                i = close
        elif t.text in ("SLICK_NODISCARD", "nodiscard"):
            nodiscard = True
        i += 1
    return realtime, allow, nodiscard


def classify_header(header):
    """Classify what a '{' opens.  Returns one of:
    ('namespace', name) ('class', name) ('function', cand) ('skip', None)
    ('absorb', None) — brace-init inside a ctor-init list, keep scanning."""
    h = list(header)
    # Strip leading template<...> groups.
    while h and h[0].text == "template":
        if len(h) > 1 and h[1].text == "<":
            past = skip_template_args(h, 1)
            if past is None:
                return ("skip", None)
            h = h[past:]
        else:
            h = h[1:]
    if not h:
        return ("skip", None)
    if h[0].text == "namespace":
        name = h[1].text if len(h) > 1 and h[1].kind == "ident" else ""
        return ("namespace", name)
    if h[0].text == "extern" and len(h) > 1 and h[1].kind == "str":
        return ("namespace", "")
    if any(t.text == "enum" for t in h[:3]):
        return ("skip", None)
    cand = find_function_candidate(h)
    if cand is not None:
        name, nidx, popen, pclose = cand
        tail = h[pclose + 1:]
        # A brace directly after an identifier inside a ctor-init list is a
        # member brace-init, not the function body.
        if any(t.text == ":" for t in tail) and header and \
                header[-1].kind == "ident":
            return ("absorb", None)
        return ("function", (name, h, popen, pclose))
    for i, t in enumerate(h):
        if t.text in ("class", "struct", "union"):
            j = i + 1
            while j < len(h) and (h[j].text in ("alignas",) or
                                  h[j].text == "[["):
                if h[j].text == "alignas" and j + 1 < len(h) and \
                        h[j + 1].text == "(":
                    j = match_paren(h, j + 1) + 1
                elif h[j].text == "[[":
                    while j < len(h) and h[j].text != "]]":
                        j += 1
                    j += 1
                else:
                    j += 1
            if j < len(h) and h[j].kind == "ident":
                return ("class", h[j].text)
            return ("skip", None)
    return ("skip", None)


class TokenFileParser:
    def __init__(self, path, text, model):
        self.path = path
        self.model = model
        self.toks = tokenize(text)

    def run(self):
        self.parse_scope(0, [])

    def parse_scope(self, i, scopes):
        toks = self.toks
        header = []
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.text == "}":
                return i + 1
            if t.text == ";":
                self.classify_decl(header, scopes)
                header = []
                i += 1
                continue
            if t.text == ":" and header and header[-1].text in (
                    "public", "private", "protected"):
                header = []
                i += 1
                continue
            if t.text == "{":
                kind, payload = classify_header(header)
                if kind == "namespace":
                    i = self.parse_scope(i + 1, scopes + [("ns", payload)])
                    header = []
                elif kind == "class":
                    i = self.parse_scope(i + 1, scopes + [("cls", payload)])
                    header = []
                elif kind == "function":
                    name, h, popen, pclose = payload
                    end = match_brace(toks, i)
                    self.emit_function(name, h, toks[i + 1:end - 1], scopes,
                                       t.line)
                    i = end
                    header = []
                elif kind == "absorb":
                    end = match_brace(toks, i)
                    header.extend(toks[i:end])
                    i = end
                else:
                    i = match_brace(toks, i)
                    header = []
                continue
            header.append(t)
            i += 1
        return i

    def classify_decl(self, header, scopes):
        """A ';'-terminated statement at class/namespace scope: detect
        must-use declarations missing SLICK_NODISCARD."""
        if not header:
            return
        if header[0].text in ("using", "typedef", "friend", "template"):
            return
        if any(t.text == "=" for t in header):
            return   # = default / = delete / member initializers
        cand = find_function_candidate(header)
        if cand is None:
            return
        name, nidx, popen, pclose = cand
        ret = tuple(t.text for t in header[:nidx])
        fn = FuncInfo(name=name,
                      qname="::".join([s for _k, s in scopes if s] + [name]),
                      path=self.path, line=header[nidx].line,
                      cls=self._enclosing_cls(scopes, header, nidx),
                      return_tokens=ret)
        fn.realtime, fn.allow_reason, fn.nodiscard = header_annotations(header)
        self.check_mustuse_decl(fn)

    def check_mustuse_decl(self, fn):
        mustuse = bool(MUSTUSE_NAME_RE.search(fn.name)) or \
            fn.name in MUSTUSE_EXACT or \
            any(t in MUSTUSE_TYPES for t in fn.return_tokens)
        if mustuse:
            # Registered even when already SLICK_NODISCARD: the annotated
            # declaration is what exempts an out-of-class definition (which
            # cannot legally repeat the attribute) in check_nodiscard.
            self.model.add(fn)   # decl-only, used by nodiscard check

    @staticmethod
    def _enclosing_cls(scopes, header, nidx):
        """Class owning this function: an explicit X:: qualifier on an
        out-of-class definition wins, else the innermost class scope."""
        j = nidx
        if j >= 1 and header[j - 1].text == "~":
            j -= 1
        if j >= 2 and header[j - 1].text == "::":
            k = j - 2
            if header[k].text == ">":   # SpscRing<T>::foo
                depth = 0
                while k >= 0:
                    if header[k].text in (">", ">>"):
                        depth += 2 if header[k].text == ">>" else 1
                    elif header[k].text == "<":
                        depth -= 1
                        if depth == 0:
                            k -= 1
                            break
                    k -= 1
            if k >= 0 and header[k].kind == "ident":
                return header[k].text
        if scopes and scopes[-1][0] == "cls":
            return scopes[-1][1]
        return None

    def emit_function(self, name, header, body, scopes, line):
        cand = find_function_candidate(header)
        nidx = cand[1] if cand else 0
        fn = FuncInfo(name=name,
                      qname="::".join([s for _k, s in scopes if s] + [name]),
                      path=self.path, line=line,
                      cls=self._enclosing_cls(scopes, header, nidx),
                      return_tokens=tuple(t.text for t in header[:nidx]))
        fn.realtime, fn.allow_reason, fn.nodiscard = header_annotations(header)
        self.scan_body(fn, body)
        self.model.add(fn)

    # -- body scanning ----------------------------------------------------

    def scan_body(self, fn, body):
        n = len(body)
        claimed_vars = {}
        i = 0
        while i < n:
            t = body[i]
            if t.text == "throw" and (i + 1 >= n or body[i + 1].text != "("):
                fn.impurities.append(Impurity("throw", t.line, "throw"))
            elif t.text == "new":
                if i + 1 < n and (body[i + 1].kind == "ident" or
                                  body[i + 1].text == "("):
                    fn.impurities.append(Impurity("alloc", t.line, "new"))
            elif t.kind == "ident" and t.text in LOCK_TYPES:
                fn.impurities.append(
                    Impurity("lock", t.line, t.text))
            elif t.kind == "ident" and t.text not in CPP_KEYWORDS:
                i = self.scan_ident(fn, body, i, claimed_vars)
                continue
            i += 1
        # Escape analysis for claim handles.
        for c in fn.claims:
            if c.var and claimed_vars.get(c.var):
                c.escaped = True

    def scan_ident(self, fn, body, i, claimed_vars):
        """body[i] is a non-keyword identifier.  Detect calls, atomics,
        claims, statement-position discards.  Returns next index."""
        n = len(body)
        name = body[i].text
        k = i + 1
        if k < n and body[k].text == "<":
            past = skip_template_args(body, k)
            if past is not None and past < n and body[past].text == "(":
                k = past
        if k >= n or body[k].text != "(":
            # Not a call.  Track claim-handle escapes: `return var;` or
            # var passed as an argument of a later call is detected in
            # scan_call; `return var` handled here.
            if i > 0 and body[i - 1].text == "return" and name in claimed_vars:
                claimed_vars[name] = True
            return i + 1
        close = match_paren(body, k)
        args = body[k + 1:close]
        line = body[i].line

        # Member access? (x.load(...) / p->load(...))  Qualifier? (X::f())
        prev = body[i - 1].text if i > 0 else None
        is_member = prev in (".", "->")
        qual = None
        if prev == "::" and i >= 2 and body[i - 2].kind == "ident":
            qual = body[i - 2].text

        if is_member and name in ATOMIC_OPS:
            # Only top-level argument tokens count: a memory_order inside a
            # nested call must not satisfy the outer atomic op.
            has_order = False
            depth = 0
            for a in args:
                if a.text in ("(", "[", "{"):
                    depth += 1
                elif a.text in (")", "]", "}"):
                    depth -= 1
                elif depth == 0 and a.kind == "ident" and \
                        a.text.startswith("memory_order"):
                    has_order = True
            fn.atomics.append(AtomicOp(name, line, has_order))

        # Record the call edge / classification.
        fn.calls.append(CallSite(name, line, member=is_member, qual=qual))

        if name in CLAIM_CALLS:
            var = self.assigned_var(body, i)
            chain0 = self.chain_start(body, i)
            returned = chain0 > 0 and body[chain0 - 1].text == "return"
            fn.claims.append(ClaimSite(CLAIM_CALLS[name], name, line, var,
                                       escaped=returned))
            if var is not None:
                claimed_vars.setdefault(var, False)
        if name in PUBLISH_CALLS:
            fn.publishes[PUBLISH_CALLS[name]] += 1

        # Claim handles passed into other calls escape.
        if name not in CLAIM_CALLS and name not in PUBLISH_CALLS:
            for a in args:
                if a.kind == "ident" and a.text in claimed_vars:
                    claimed_vars[a.text] = True

        # Statement-position discard?
        start = self.chain_start(body, i)
        before = body[start - 1].text if start > 0 else "{"
        after = body[close + 1].text if close + 1 < n else ";"
        if before in (";", "{", "}", ")", "else", "do") and after == ";":
            void_cast = (start >= 3 and body[start - 1].text == ")" and
                         body[start - 2].text == "void" and
                         body[start - 3].text == "(")
            stmt_pos = True
            if before == ")" and not void_cast:
                # Only `if (...) call();`-style statements: the ')' must
                # close a control clause, not an enclosing call's args.
                stmt_pos = self.closes_control_clause(body, start - 1)
            if stmt_pos:
                fn.stmt_calls.append(StmtCall(name, line, void_cast))

        # Scan arguments recursively (nested calls).
        j = k + 1
        while j < close:
            t = body[j]
            if t.text == "throw":
                fn.impurities.append(Impurity("throw", t.line, "throw"))
            elif t.text == "new":
                fn.impurities.append(Impurity("alloc", t.line, "new"))
            elif t.kind == "ident" and t.text in LOCK_TYPES:
                fn.impurities.append(Impurity("lock", t.line, t.text))
            elif t.kind == "ident" and t.text not in CPP_KEYWORDS:
                j = self.scan_ident(fn, body, j, claimed_vars)
                continue
            j += 1
        return close + 1

    @staticmethod
    def chain_start(body, i):
        """Walk back over `a.b_->c::` chains from the call-name index."""
        j = i
        while j >= 2 and body[j - 1].text in (".", "->", "::") and \
                (body[j - 2].kind == "ident" or body[j - 2].text in
                 (")", "]", "this", ">")):
            j -= 2
            # also hop over `(...)`/`[...]` suffixes: keep it simple — only
            # ident chains, which covers the repo idiom.
        return j

    @staticmethod
    def closes_control_clause(body, rp):
        """body[rp] is ')'; True if its matching '(' follows if/for/while."""
        depth = 0
        j = rp
        while j >= 0:
            t = body[j].text
            if t == ")":
                depth += 1
            elif t == "(":
                depth -= 1
                if depth == 0:
                    return j > 0 and body[j - 1].text in ("if", "for",
                                                          "while", "switch")
            j -= 1
        return False

    def assigned_var(self, body, i):
        """For a claim call at index i, find `T* var = [chain.]Claim(...)`."""
        j = self.chain_start(body, i)
        if j >= 2 and body[j - 1].text == "=" and body[j - 2].kind == "ident":
            return body[j - 2].text
        return None


# --------------------------------------------------------------------------
# clang.cindex frontend (used when python3-clang + compile DB exist).
# --------------------------------------------------------------------------

def clang_available():
    try:
        import clang.cindex  # noqa: F401
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


class ClangFrontend:
    """Builds the same Model via libclang.  Precision upgrades over the
    token frontend: resolved callees (no name shadowing), canonical types
    for atomics through typedefs/auto, annotate-attribute reading."""

    def __init__(self, compile_db_dir, root, model):
        self.root = os.path.realpath(root)
        self.model = model
        self.db_dir = compile_db_dir
        self.seen = set()

    def run(self, paths):
        import clang.cindex as ci
        want = {os.path.realpath(p) for p in paths}
        index = ci.Index.create()
        try:
            db = ci.CompilationDatabase.fromDirectory(self.db_dir)
            commands = list(db.getAllCompileCommands())
        except Exception as e:
            self.model.notices.append(f"compile DB unreadable: {e}")
            return False
        parsed_any = False
        for cmd in commands:
            src = os.path.realpath(os.path.join(cmd.directory, cmd.filename))
            if not src.startswith(self.root):
                continue
            args = [a for a in list(cmd.arguments)[1:]
                    if a not in ("-c", "-o", cmd.filename, src)]
            args = [a for a in args if not a.endswith(".o")]
            args += ["-DSLICK_ANALYZE", "-Wno-everything",
                     "-Wno-unknown-attributes"]
            try:
                tu = index.parse(src, args=args)
            except Exception as e:
                self.model.notices.append(f"parse failed for {src}: {e}")
                continue
            parsed_any = True
            self.walk_tu(tu, want)
        return parsed_any

    def in_scope(self, cursor, want):
        loc = cursor.location
        if loc.file is None:
            return False
        return os.path.realpath(loc.file.name) in want

    def walk_tu(self, tu, want):
        import clang.cindex as ci
        K = ci.CursorKind
        fn_kinds = {K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                    K.DESTRUCTOR, K.FUNCTION_TEMPLATE, K.CONVERSION_FUNCTION}

        def visit(cursor):
            if cursor.kind in fn_kinds:
                if cursor.is_definition() and self.in_scope(cursor, want):
                    self.emit(cursor)
                    return
            for ch in cursor.get_children():
                visit(ch)

        visit(tu.cursor)

    def emit(self, cursor):
        import clang.cindex as ci
        K = ci.CursorKind
        loc = cursor.location
        path = os.path.relpath(os.path.realpath(loc.file.name), os.getcwd())
        key = (path, loc.line, cursor.spelling)
        if key in self.seen:
            return
        self.seen.add(key)

        parent = cursor.semantic_parent
        qname = cursor.spelling
        if parent is not None and parent.kind in (
                K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
            qname = f"{parent.spelling}::{cursor.spelling}"

        fn = FuncInfo(name=cursor.spelling, qname=qname, path=path,
                      line=loc.line)
        ret = cursor.result_type.spelling if cursor.result_type else ""
        fn.return_tokens = tuple(re.findall(r"\w+", ret))
        for ch in cursor.get_children():
            if ch.kind == K.ANNOTATE_ATTR:
                sp = ch.spelling or ""
                if sp == "slick::realtime":
                    fn.realtime = True
                elif sp.startswith("slick::realtime_allow:"):
                    fn.allow_reason = sp.split(":", 1)[1]
        if "[[nodiscard]]" in self.extent_text(cursor) or \
                "SLICK_NODISCARD" in self.extent_text(cursor):
            fn.nodiscard = True

        claimed = {}
        self.walk_body(fn, cursor, claimed)
        for c in fn.claims:
            if c.var and claimed.get(c.var):
                c.escaped = True
        self.model.add(fn)

    @staticmethod
    def extent_text(cursor):
        try:
            toks = [t.spelling for t in cursor.get_tokens()]
            # Only the tokens before the body brace.
            if "{" in toks:
                toks = toks[:toks.index("{")]
            return " ".join(toks)
        except Exception:
            return ""

    def walk_body(self, fn, cursor, claimed):
        import clang.cindex as ci
        K = ci.CursorKind

        def canonical(t):
            try:
                return t.get_canonical().spelling
            except Exception:
                return ""

        def visit(node, stmt_parent):
            k = node.kind
            line = node.location.line or fn.line
            if k == K.CXX_NEW_EXPR:
                fn.impurities.append(Impurity("alloc", line, "new"))
            elif k == K.CXX_THROW_EXPR:
                fn.impurities.append(Impurity("throw", line, "throw"))
            elif k == K.VAR_DECL:
                ct = canonical(node.type)
                if any(lt in ct for lt in LOCK_TYPES):
                    fn.impurities.append(Impurity("lock", line, ct))
            elif k == K.CALL_EXPR:
                name = node.spelling or ""
                fn.calls.append(CallSite(name, line))
                ref = node.referenced
                resolved_in_repo = False
                if ref is not None and ref.location.file is not None:
                    f = os.path.realpath(ref.location.file.name)
                    resolved_in_repo = f.startswith(self.root)
                if not resolved_in_repo:
                    if name in ALLOC_CALLS:
                        fn.impurities.append(Impurity("alloc", line, name))
                    elif name in BLOCKING_CALLS and name not in ATOMIC_OPS:
                        fn.impurities.append(Impurity("block", line, name))
                    elif name in LOCK_CALLS:
                        fn.impurities.append(Impurity("lock", line, name))
                if name in ATOMIC_OPS:
                    base_atomic = False
                    for ch in node.get_children():
                        ct = canonical(ch.type)
                        if "atomic" in ct:
                            base_atomic = True
                        break
                    if base_atomic:
                        has_order = any(
                            "memory_order" in canonical(a.type)
                            for a in node.get_arguments() if a is not None)
                        fn.atomics.append(AtomicOp(name, line, has_order))
                        if name == "wait":
                            fn.impurities.append(
                                Impurity("block", line, name))
                if name in CLAIM_CALLS:
                    var = None
                    if stmt_parent is not None and \
                            stmt_parent.kind == K.VAR_DECL:
                        var = stmt_parent.spelling
                    fn.claims.append(
                        ClaimSite(CLAIM_CALLS[name], name, line, var))
                    if var:
                        claimed.setdefault(var, False)
                if name in PUBLISH_CALLS:
                    fn.publishes[PUBLISH_CALLS[name]] += 1
                if name not in CLAIM_CALLS and name not in PUBLISH_CALLS:
                    for a in node.get_arguments():
                        if a is None:
                            continue
                        for d in a.walk_preorder():
                            if d.kind == K.DECL_REF_EXPR and \
                                    d.spelling in claimed:
                                claimed[d.spelling] = True
                if stmt_parent is not None and \
                        stmt_parent.kind == K.COMPOUND_STMT:
                    fn.stmt_calls.append(StmtCall(name, line, False))
            elif k == K.RETURN_STMT:
                for d in node.walk_preorder():
                    if d.kind == K.DECL_REF_EXPR and d.spelling in claimed:
                        claimed[d.spelling] = True
            for ch in node.get_children():
                visit(ch, node)

        for ch in cursor.get_children():
            if ch.kind == K.COMPOUND_STMT:
                visit(ch, None)


# --------------------------------------------------------------------------
# Checks (frontend-neutral).
# --------------------------------------------------------------------------

IMPURITY_LABEL = {
    "alloc": "heap allocation",
    "lock": "lock/condition variable",
    "block": "blocking call",
    "throw": "throw",
}


def check_purity(model):
    findings = []
    for fn in model.functions:
        if fn.allow_reason is not None and len(fn.allow_reason.strip()) < 4:
            findings.append(Finding(
                fn.path, fn.line, "allow-without-reason",
                f"{fn.qname}: SLICK_REALTIME_ALLOW must carry a written "
                f"reason (see DESIGN.md §15.4)"))
    roots = [fn for fn in model.functions if fn.realtime]
    for root in roots:
        findings.extend(walk_purity(model, root))
    return findings


def walk_purity(model, root):
    findings = []
    seen = set()
    stack = [(root, (root.qname,))]
    while stack:
        fn, chain = stack.pop()
        if id(fn) in seen:
            continue
        seen.add(id(fn))
        if fn is not root and fn.allow_reason is not None:
            continue   # documented exception: stop the walk
        if fn is root and fn.allow_reason is not None:
            continue
        for imp in fn.impurities:
            via = " -> ".join(chain)
            findings.append(Finding(
                fn.path, imp.line, "realtime-purity",
                f"{IMPURITY_LABEL[imp.kind]} ({imp.detail}) reachable from "
                f"SLICK_REALTIME {root.qname} via {via}"))
        for call in fn.calls:
            callees = resolve_call(model, fn, call)
            defined = [c for c in callees if c.calls or c.impurities or
                       c.atomics or not _decl_only(c)]
            if defined:
                for c in defined:
                    if id(c) not in seen:
                        stack.append((c, chain + (c.qname,)))
            else:
                imp = classify_external(call.name)
                if imp is not None:
                    via = " -> ".join(chain)
                    findings.append(Finding(
                        fn.path, call.line, "realtime-purity",
                        f"{IMPURITY_LABEL[imp]} ({call.name}) reachable "
                        f"from SLICK_REALTIME {root.qname} via {via}"))
    return findings


def resolve_call(model, caller, call):
    """C++-flavoured lookup for the token frontend.  An explicit X::f()
    qualifier narrows to class X; an unqualified non-member call prefers
    same-class definitions (the repo's own helper shadows any same-named
    function elsewhere, e.g. TwoStacksRing::Wrap vs AnyWindowAggregator::
    Wrap).  Member calls (x.f()/p->f()) keep the conservative global
    fan-out — the receiver's type is unknown at token level."""
    callees = model.by_name.get(call.name, ())
    if call.qual:
        narrowed = [c for c in callees if c.cls == call.qual]
        if narrowed:
            return narrowed
    elif not call.member and caller.cls:
        narrowed = [c for c in callees if c.cls == caller.cls]
        if narrowed:
            return narrowed
    return callees


def _decl_only(fn):
    return not fn.calls and not fn.impurities and not fn.atomics and \
        not fn.claims and not fn.stmt_calls


def classify_external(name):
    if name in ALLOC_CALLS:
        return "alloc"
    if name in BLOCKING_CALLS:
        return "block"
    if name in LOCK_CALLS:
        return "lock"
    return None


def check_claims(model):
    findings = []
    for fn in model.functions:
        for claim in fn.claims:
            if fn.publishes[claim.kind] > 0:
                continue
            if claim.escaped:
                continue
            pair = "PublishPush" if claim.kind == "push" else "ReleasePop"
            findings.append(Finding(
                fn.path, claim.line, "claim-publish",
                f"{fn.qname}: {claim.name} result neither reaches "
                f"{pair} nor escapes — a claimed slot would wedge the ring"))
    return findings


def mustuse_names(model):
    names = set(MUSTUSE_EXACT)
    for fn in model.functions:
        if MUSTUSE_NAME_RE.search(fn.name) or fn.name in MUSTUSE_EXACT:
            names.add(fn.name)
        elif fn.nodiscard or any(t in MUSTUSE_TYPES
                                 for t in fn.return_tokens):
            names.add(fn.name)
    return names


def check_ignored(model):
    findings = []
    names = mustuse_names(model)
    for fn in model.functions:
        for sc in fn.stmt_calls:
            if sc.void_cast:
                continue
            if sc.name in names or MUSTUSE_NAME_RE.search(sc.name):
                findings.append(Finding(
                    fn.path, sc.line, "ignored-result",
                    f"{fn.qname}: result of must-use call {sc.name}() is "
                    f"discarded (cast to (void) if deliberate)"))
    return findings


def check_nodiscard(model):
    findings = []
    seen = set()
    for fn in model.functions:
        mustuse = bool(MUSTUSE_NAME_RE.search(fn.name)) or \
            fn.name in MUSTUSE_EXACT or \
            any(t in MUSTUSE_TYPES for t in fn.return_tokens)
        if not mustuse or fn.nodiscard:
            continue
        # Out-of-class definitions don't repeat the attribute; the in-class
        # declaration carries it.  Skip when any same-name sibling does.
        if any(sib.nodiscard and sib.cls == fn.cls
               for sib in model.by_name.get(fn.name, ())):
            continue
        if "void" in fn.return_tokens and not \
                any(t in MUSTUSE_TYPES for t in fn.return_tokens):
            continue
        key = (fn.path, fn.line)
        if key in seen:
            continue
        seen.add(key)
        findings.append(Finding(
            fn.path, fn.line, "nodiscard-missing",
            f"{fn.qname}: must-use function lacks SLICK_NODISCARD "
            f"(src/util/annotations.h)"))
    return findings


def check_atomics(model):
    findings = []
    for fn in model.functions:
        for op in fn.atomics:
            if op.op in ATOMIC_ORDER_FREE:
                continue
            if not op.has_order:
                findings.append(Finding(
                    fn.path, op.line, "atomic-order",
                    f"{fn.qname}: atomic {op.op}() without an explicit "
                    f"std::memory_order (defaulted seq_cst hides intent)"))
    return findings


ALL_CHECKS = (check_purity, check_claims, check_ignored, check_nodiscard,
              check_atomics)


# --------------------------------------------------------------------------
# Suppression + driver.
# --------------------------------------------------------------------------

def load_lines(path, cache={}):
    if path not in cache:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                cache[path] = f.read().split("\n")
        except OSError:
            cache[path] = []
    return cache[path]


def suppressed(finding):
    lines = load_lines(finding.path)
    for ln in (finding.line, finding.line - 1):
        if 1 <= ln <= len(lines):
            m = ALLOW_RE.search(lines[ln - 1])
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                if finding.rule in rules:
                    return True
    return False


# Seeded-violation corpora must never leak into a directory scan of the
# real tree; explicit file arguments still reach them (the fixture tests
# pass the fixture directory explicitly).
EXCLUDE_PARTS = ("tools/analyze/fixtures", "tools/lint/fixtures")


def collect_files(paths, exts=(".h", ".hpp", ".cc", ".cpp")):
    out = []
    explicit_dirs = [os.path.normpath(p) for p in paths]
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _dirnames, filenames in os.walk(p):
                norm = os.path.normpath(dirpath)
                if any(x in norm for x in EXCLUDE_PARTS) and \
                        not any(x in d for d in explicit_dirs
                                for x in EXCLUDE_PARTS):
                    continue
                for fname in sorted(filenames):
                    if fname.endswith(exts):
                        out.append(os.path.join(dirpath, fname))
        elif os.path.isfile(p):
            out.append(p)
        else:
            print(f"slick-analyzer: no such path: {p}", file=sys.stderr)
            return None
    return sorted(set(out))


def build_model(files, frontend, compile_db, root):
    model = Model()
    used = "tokens"
    if frontend in ("auto", "clang") and compile_db and clang_available():
        fe = ClangFrontend(os.path.dirname(compile_db) or ".", root, model)
        if fe.run(files):
            used = "clang"
        else:
            model = Model()
    elif frontend == "clang":
        print("slick-analyzer: error: --frontend clang requested but the "
              "python clang module (python3-clang) or libclang is "
              "unavailable", file=sys.stderr)
        return None, None
    if used == "tokens":
        if frontend == "auto":
            model.notices.append(
                "libclang unavailable — using the token-level fallback "
                "frontend (name-based resolution; see DESIGN.md §15.2)")
        for path in files:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    text = f.read()
            except OSError as e:
                print(f"slick-analyzer: cannot read {path}: {e}",
                      file=sys.stderr)
                return None, None
            TokenFileParser(path, text, model).run()
    return model, used


def analyze(files, frontend="auto", compile_db=None, root="."):
    model, used = build_model(files, frontend, compile_db, root)
    if model is None:
        return None, None, None
    findings = []
    for check in ALL_CHECKS:
        findings.extend(check(model))
    findings = [f for f in findings if not suppressed(f)]
    dedup = {}
    for f in findings:
        dedup[f.key()] = f
    findings = sorted(dedup.values(),
                      key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings, model, used


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="slick_analyzer.py",
        description="Semantic static analysis for SlickDeque hot paths "
                    "(see module docstring / DESIGN.md §15).")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories (default: src/)")
    ap.add_argument("--root", default=".",
                    help="repo root (default: cwd)")
    ap.add_argument("--frontend", choices=("auto", "clang", "tokens"),
                    default="auto")
    ap.add_argument("--compile-db", default=None,
                    help="path to compile_commands.json (enables the clang "
                         "frontend)")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 on findings (default behavior; kept for "
                         "CI-invocation symmetry with slick_lint.py)")
    ap.add_argument("--github", action="store_true",
                    help="emit GitHub Actions ::error annotations")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--list-realtime", action="store_true",
                    help="list SLICK_REALTIME-annotated functions and exit")
    args = ap.parse_args(argv)

    if args.list_checks:
        for c in CHECK_IDS:
            print(c)
        return 0

    os.chdir(args.root)
    paths = args.paths or ["src"]
    compile_db = args.compile_db
    if compile_db is None:
        cand = os.path.join("build", "compile_commands.json")
        if os.path.isfile(cand):
            compile_db = cand

    files = collect_files(paths)
    if files is None:
        return 2
    if args.list_realtime:
        model, _used = build_model(files, args.frontend, compile_db,
                                   os.getcwd())
        if model is None:
            return 2
        for fn in sorted(model.functions, key=lambda f: (f.path, f.line)):
            if fn.realtime:
                print(fn.qname)
        return 0
    result = analyze(files, frontend=args.frontend, compile_db=compile_db,
                     root=os.getcwd())
    if result[0] is None:
        return 2
    findings, model, used = result
    for note in model.notices:
        print(f"slick-analyzer: note: {note}", file=sys.stderr)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        if args.github:
            print(f"::error file={f.path},line={f.line},"
                  f"title=slick-analyzer {f.rule}::{f.message}")
    n = len(findings)
    nfn = len(model.functions)
    print(f"slick-analyzer [{used}]: {len(files)} file(s), {nfn} "
          f"function(s), {n} finding(s)", file=sys.stderr)
    return 1 if n else 0


if __name__ == "__main__":
    sys.exit(main())
