#!/usr/bin/env python3
"""Tests for slick_analyzer.py: exact findings + exit codes over the seeded
fixture corpus (one positive and one negative fixture per check family),
plus a clean run over the real src/ tree. Run from anywhere:

    python3 tools/analyze/slick_analyzer_test.py   # or via ctest

The fixture assertions run the token frontend, which has no dependencies.
When python3-clang/libclang is present (CI), the clang-frontend class also
runs and must agree with the token frontend on the fixture corpus.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parents[1]
ANALYZER = HERE / "slick_analyzer.py"
FIXTURES = HERE / "fixtures"

sys.path.insert(0, str(HERE))
import slick_analyzer  # noqa: E402

# One positive fixture per check family; the *_ok.h negatives must stay
# silent.  (path, line, rule) — exact, order is the analyzer's sort.
EXPECTED_FIXTURE_FINDINGS = [
    ("tools/analyze/fixtures/atomic_bad.h", 15, "atomic-order"),
    ("tools/analyze/fixtures/atomic_bad.h", 19, "atomic-order"),
    ("tools/analyze/fixtures/atomic_bad.h", 24, "atomic-order"),
    ("tools/analyze/fixtures/atomic_bad.h", 28, "atomic-order"),
    ("tools/analyze/fixtures/claim_bad.h", 21, "claim-publish"),
    ("tools/analyze/fixtures/claim_bad.h", 30, "claim-publish"),
    ("tools/analyze/fixtures/ignored_bad.h", 19, "ignored-result"),
    ("tools/analyze/fixtures/ignored_bad.h", 20, "ignored-result"),
    ("tools/analyze/fixtures/ignored_bad.h", 21, "ignored-result"),
    ("tools/analyze/fixtures/nodiscard_bad.h", 13, "nodiscard-missing"),
    ("tools/analyze/fixtures/nodiscard_bad.h", 14, "nodiscard-missing"),
    ("tools/analyze/fixtures/nodiscard_bad.h", 17, "nodiscard-missing"),
    ("tools/analyze/fixtures/purity_bad.h", 14, "realtime-purity"),
    ("tools/analyze/fixtures/purity_bad.h", 24, "allow-without-reason"),
    ("tools/analyze/fixtures/purity_bad.h", 28, "realtime-purity"),
]

NEGATIVE_FIXTURES = ["atomic_ok.h", "claim_ok.h", "ignored_ok.h",
                     "nodiscard_ok.h", "purity_ok.h"]


def run_analyzer(*args):
    return subprocess.run(
        [sys.executable, str(ANALYZER), *args],
        capture_output=True, text=True, check=False)


def parse(stdout):
    out = []
    for line in stdout.splitlines():
        if line.startswith("::"):
            continue  # GitHub annotation mirror lines
        loc, rest = line.split(": [", 1)
        path, lineno = loc.rsplit(":", 1)
        rule = rest.split("]", 1)[0]
        out.append((path.replace("\\", "/"), int(lineno), rule))
    return out


class FixtureCorpus(unittest.TestCase):
    """Each of the four check families (purity incl. allow-without-reason,
    claim-publish, ignored-result + nodiscard-missing, atomic-order) is
    pinned by at least one failing fixture here."""

    def test_exact_findings_and_exit_code(self):
        proc = run_analyzer("--root", str(REPO), "--frontend", "tokens",
                            "tools/analyze/fixtures")
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertEqual(parse(proc.stdout), EXPECTED_FIXTURE_FINDINGS)
        self.assertIn("15 finding(s)", proc.stderr)

    def test_every_check_family_has_a_failing_fixture(self):
        rules = {r for (_p, _l, r) in EXPECTED_FIXTURE_FINDINGS}
        self.assertEqual(rules, {"realtime-purity", "allow-without-reason",
                                 "claim-publish", "ignored-result",
                                 "nodiscard-missing", "atomic-order"})

    def test_negative_fixtures_are_clean(self):
        for name in NEGATIVE_FIXTURES:
            with self.subTest(fixture=name):
                proc = run_analyzer(
                    "--root", str(REPO), "--frontend", "tokens",
                    f"tools/analyze/fixtures/{name}")
                self.assertEqual(proc.returncode, 0,
                                 f"{name}:\n{proc.stdout}{proc.stderr}")
                self.assertEqual(proc.stdout, "")

    def test_single_violating_file(self):
        proc = run_analyzer("--root", str(REPO), "--frontend", "tokens",
                            "tools/analyze/fixtures/claim_bad.h")
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(
            [r for (_p, _l, r) in parse(proc.stdout)],
            ["claim-publish", "claim-publish"])

    def test_suppression_comment_is_honored(self):
        # atomic_ok.h's DebugPeek carries slick-analyze: allow(atomic-order)
        # one line above a defaulted load — covered by the negative-fixture
        # test; here pin that removing the allow would fire, by scanning the
        # same construct in atomic_bad.h (line 15 has no allow and fires).
        proc = run_analyzer("--root", str(REPO), "--frontend", "tokens",
                            "tools/analyze/fixtures/atomic_ok.h")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_missing_path_is_usage_error(self):
        proc = run_analyzer("--root", str(REPO),
                            "tools/analyze/fixtures/does_not_exist.h")
        self.assertEqual(proc.returncode, 2)
        self.assertIn("no such path", proc.stderr)

    def test_github_annotations(self):
        proc = run_analyzer("--root", str(REPO), "--frontend", "tokens",
                            "--github", "tools/analyze/fixtures/atomic_bad.h")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("::error file=", proc.stdout)
        self.assertIn("atomic-order", proc.stdout)

    def test_list_checks(self):
        proc = run_analyzer("--list-checks")
        self.assertEqual(proc.returncode, 0)
        self.assertEqual(proc.stdout.split(),
                         list(slick_analyzer.CHECK_IDS))


class TokenFrontendUnits(unittest.TestCase):
    def _model(self, text, path="t.h"):
        model = slick_analyzer.Model()
        slick_analyzer.TokenFileParser(path, text, model).run()
        return model

    def test_multiline_atomic_call_is_seen(self):
        m = self._model("struct S { std::atomic<int> a;\n"
                        "int f() { return a.load(\n); } };")
        f = m.by_name["f"][0]
        self.assertEqual([(a.op, a.has_order) for a in f.atomics],
                         [("load", False)])

    def test_pointer_arrow_atomic_is_seen(self):
        m = self._model("inline void g(std::atomic<int>* p) {"
                        " p->store(1); }")
        g = m.by_name["g"][0]
        self.assertEqual([(a.op, a.has_order) for a in g.atomics],
                         [("store", False)])

    def test_nested_order_does_not_satisfy_outer(self):
        m = self._model(
            "inline void h(std::atomic<int>& x, std::atomic<int>& y) {"
            " x.store(y.load(std::memory_order_relaxed)); }")
        h = m.by_name["h"][0]
        ops = {a.op: a.has_order for a in h.atomics}
        self.assertFalse(ops["store"])
        self.assertTrue(ops["load"])

    def test_ctor_init_list_with_brace_init(self):
        # Brace-init inside a ctor-init list must not truncate parsing.
        m = self._model("struct R { int a_; int b_;\n"
                        "R(int a) : a_{a}, b_{0} { Touch(); }\n"
                        "void Touch(); };")
        self.assertIn("R", m.by_name)
        self.assertEqual([c.name for c in m.by_name["R"][0].calls],
                         ["Touch"])

    def test_preprocessor_and_raw_strings_ignored(self):
        m = self._model('#define LOAD(x) (x).load()\n'
                        'inline int f() { const char* s = R"(a.load())";\n'
                        'return s != nullptr; }')
        f = m.by_name["f"][0]
        self.assertEqual(f.atomics, [])

    def test_template_function_and_operator(self):
        m = self._model("template <typename T> struct Q {\n"
                        "T& operator[](unsigned long i) { return d_[i]; }\n"
                        "T* d_; };")
        self.assertIn("operator[]", m.by_name)


class RealTree(unittest.TestCase):
    def test_src_is_clean(self):
        """The acceptance gate: src/ analyzes clean (token frontend)."""
        proc = run_analyzer("--root", str(REPO), "--frontend", "tokens",
                            "src")
        self.assertEqual(proc.returncode, 0,
                         "src/ must analyze clean:\n" + proc.stdout)

    def test_fixture_corpus_excluded_from_directory_scan(self):
        proc = run_analyzer("--root", str(REPO), "--frontend", "tokens",
                            "tools")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_hot_paths_are_annotated(self):
        """The annotation sweep is real: the ring claim/publish surface and
        the worker drain loop carry SLICK_REALTIME."""
        proc = run_analyzer("--root", str(REPO), "--frontend", "tokens",
                            "--list-realtime", "src/runtime")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        names = set(proc.stdout.split())
        for expected in ("slick::SpscRing::TryClaimPush",
                         "slick::SpscRing::PublishPush",
                         "slick::MpmcRing::TryClaimPush",
                         "slick::MpmcRing::ReleasePop",
                         "slick::ShardWorker::Run"):
            self.assertIn(expected, names, proc.stdout)


@unittest.skipUnless(slick_analyzer.clang_available(),
                     "python3-clang/libclang not installed")
class ClangFrontend(unittest.TestCase):
    """When libclang is available (CI), the clang frontend must agree with
    the token frontend on the fixture corpus at the (file, rule) level."""

    def test_fixtures_match_token_frontend(self):
        with tempfile.TemporaryDirectory() as td:
            main = pathlib.Path(td) / "fixture_tu.cc"
            includes = "\n".join(
                f'#include "{p.name}"'
                for p in sorted(FIXTURES.glob("*_bad.h")) +
                sorted(FIXTURES.glob("*_ok.h")))
            main.write_text(includes + "\n")
            db = [{
                "directory": td,
                "command": f"clang++ -std=c++20 -DSLICK_ANALYZE "
                           f"-I {FIXTURES} -c {main}",
                "file": str(main),
            }]
            dbp = pathlib.Path(td) / "compile_commands.json"
            dbp.write_text(json.dumps(db))
            files = sorted(str(p) for p in FIXTURES.glob("*_*.h"))
            findings, _model, used = slick_analyzer.analyze(
                files, frontend="clang", compile_db=str(dbp), root=td)
            self.assertEqual(used, "clang")
            got = sorted((pathlib.Path(f.path).name, f.rule)
                         for f in findings)
            want = sorted((pathlib.Path(p).name, r)
                          for (p, _l, r) in EXPECTED_FIXTURE_FINDINGS)
            self.assertEqual(got, want)


if __name__ == "__main__":
    unittest.main(verbosity=2)
