#pragma once
#include <cstdint>

#include "fixture_prelude.h"

// Positive fixture: ignored-result findings — must-use verdicts dropped on
// the floor in statement position.
namespace fixture {

enum class Admission : uint8_t { kAccepted, kShed };

struct Gate {
  SLICK_NODISCARD bool TryEnter(uint64_t id);
  SLICK_NODISCARD Admission Offer(uint64_t id, uint64_t t);
  void Close();
};

inline void Pump(Gate& g, uint64_t id) {
  g.TryEnter(id);  // finding: ignored-result (Try* verdict dropped)
  g.Offer(id, 0);  // finding: ignored-result (Admission dropped)
  if (id != 0) g.TryEnter(id);  // finding: discarded in a braceless if
  g.Close();  // fine: not must-use
}

}  // namespace fixture
