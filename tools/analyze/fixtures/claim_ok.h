#pragma once
#include <cstddef>
#include <cstdint>

#include "fixture_prelude.h"

// Negative fixture: every claim either reaches its publish/release or
// escapes the function (returned or handed to a helper).
namespace fixture {

struct SoundRing {
  SLICK_NODISCARD uint64_t* TryClaimPush(std::size_t max, std::size_t* got);
  SLICK_NODISCARD const uint64_t* ClaimPop(std::size_t max,
                                           std::size_t* got);
  void PublishPush(std::size_t n);
  void ReleasePop(std::size_t n);

  // Paired claim/publish in one function: fine.
  bool PushOne(uint64_t v) {
    std::size_t got = 0;
    uint64_t* span = TryClaimPush(1, &got);
    if (span == nullptr) return false;
    span[0] = v;
    PublishPush(1);
    return true;
  }

  // The handle escapes by return: the caller owns the publish obligation.
  uint64_t* BeginPush(std::size_t* got) { return TryClaimPush(4, got); }

  // The handle escapes into a helper that completes the protocol.
  uint64_t DrainVia(uint64_t (*reduce)(const uint64_t*, std::size_t)) {
    std::size_t got = 0;
    const uint64_t* span = ClaimPop(8, &got);
    uint64_t acc = reduce(span, got);
    ReleasePop(got);
    return acc;
  }
};

}  // namespace fixture
