#pragma once
#include <cstdint>
#include <vector>

#include "fixture_prelude.h"

// Negative fixture: annotated functions that stay pure, and a documented
// ALLOW whose impure subtree must NOT be reported.
namespace fixture {

class ColdBuffer {
 public:
  ColdBuffer(uint64_t cap) : cap_(cap) { ring_.resize(cap); }  // ctor: cold

  // Pure O(1) hot path: index math plus a store into preallocated memory.
  SLICK_REALTIME void Push(uint64_t v) {
    ring_[head_ & (cap_ - 1)] = v;
    head_ = head_ + 1;
  }

  // Documented exception: the walk stops here; Doubling() is never
  // reported.  (Named distinctly from purity_bad.h's helpers: the token
  // frontend resolves calls by name across the whole scanned set.)
  SLICK_REALTIME_ALLOW("amortized doubling, one realloc per 2^k pushes")
  void PushSlow(uint64_t v) {
    if (head_ == cap_) Doubling();
    Push(v);
  }

 private:
  void Doubling() { ring_.resize(cap_ * 2); }

  std::vector<uint64_t> ring_;
  uint64_t head_ = 0;
  uint64_t cap_;
};

}  // namespace fixture
