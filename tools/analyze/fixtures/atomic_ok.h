#pragma once
#include <atomic>
#include <cstdint>

#include "fixture_prelude.h"

// Negative fixture: explicit orders everywhere, order-free notifies, and a
// deliberate seq_cst default carrying a suppression comment.
namespace fixture {

struct Cursor {
  std::atomic<uint64_t> seq{0};

  uint64_t Peek() const { return seq.load(std::memory_order_acquire); }

  uint64_t PeekSplit() const {
    return seq.load(               // split across lines, but ordered
        std::memory_order_relaxed);
  }

  void BumpVia(std::atomic<uint64_t>* p) {
    p->fetch_add(1, std::memory_order_acq_rel);
  }

  void Wake() {
    seq.notify_one();  // notify_* takes no order by spec
  }

  uint64_t DebugPeek() const {
    // slick-analyze: allow(atomic-order)
    return seq.load();  // deliberate: debug-only, seq_cst is fine
  }
};

}  // namespace fixture
