#pragma once

// Minimal stand-in for src/util/annotations.h so fixtures parse (and, under
// the clang frontend, compile) standalone.  The token frontend matches the
// macro names textually; the clang frontend needs the attribute expansion.
#if defined(__clang__) && defined(SLICK_ANALYZE)
#define SLICK_REALTIME [[clang::annotate("slick::realtime")]]
#define SLICK_REALTIME_ALLOW(reason) \
  [[clang::annotate("slick::realtime_allow:" reason)]]
#else
#define SLICK_REALTIME
#define SLICK_REALTIME_ALLOW(reason)
#endif
#define SLICK_NODISCARD [[nodiscard]]
