#pragma once
#include <cstdint>

#include "fixture_prelude.h"

// Negative fixture: must-use functions correctly carrying SLICK_NODISCARD
// (or the raw attribute), plus look-alikes that are not must-use.  The
// class is named differently from nodiscard_bad.h's Decoder so that its
// annotated members cannot exempt the bad fixture's same-named members
// (check_nodiscard treats an annotated same-class sibling as the decl
// that covers an out-of-class definition).
namespace fixture {

enum class FrameError : uint8_t { kOk, kTruncated };

struct CheckedDecoder {
  SLICK_NODISCARD bool TryDecode(const uint8_t* p, uint64_t n);
  [[nodiscard]] FrameError ReadHeader(const uint8_t* p);

  SLICK_NODISCARD bool try_advance(uint64_t n) {
    cursor_ = cursor_ + n;
    return cursor_ < limit_;
  }

  // Not must-use: `Trace` does not match Try[A-Z], returns nothing typed.
  void Trace(uint64_t n);
  // Not must-use: using-alias with a Try prefix is a type, not a function.
  using TryPolicy = uint64_t;

  uint64_t cursor_ = 0;
  uint64_t limit_ = 0;
};

}  // namespace fixture
