#pragma once
#include <cstdint>
#include <vector>

#include "fixture_prelude.h"

// Positive fixture: realtime-purity + allow-without-reason findings.
namespace fixture {

class HotPath {
 public:
  // Direct allocation on an annotated hot path.
  SLICK_REALTIME void Publish(uint64_t v) {
    log_.push_back(v);  // finding: heap allocation via push_back
  }

  // Transitive: Drain -> Refill -> `new` two hops down the call graph.
  SLICK_REALTIME uint64_t Drain() {
    Refill();
    return log_.size();
  }

  // A bare ALLOW must carry a reason: finding allow-without-reason.
  SLICK_REALTIME_ALLOW("") void Checkpoint() { scratch_ = new uint64_t[8]; }

 private:
  void Refill() { Grow(); }
  void Grow() { scratch_ = new uint64_t[16]; }  // finding via Drain

  std::vector<uint64_t> log_;
  uint64_t* scratch_ = nullptr;
};

}  // namespace fixture
