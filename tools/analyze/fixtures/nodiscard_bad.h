#pragma once
#include <cstdint>

#include "fixture_prelude.h"

// Positive fixture: nodiscard-missing — must-use names and must-use return
// types without SLICK_NODISCARD, both on declarations and on definitions.
namespace fixture {

enum class FrameError : uint8_t { kOk, kTruncated };

struct Decoder {
  bool TryDecode(const uint8_t* p, uint64_t n);  // finding: Try* name
  FrameError ReadHeader(const uint8_t* p);       // finding: FrameError type

  // finding: definition with a must-use name, no SLICK_NODISCARD
  bool try_advance(uint64_t n) {
    cursor_ = cursor_ + n;
    return cursor_ < limit_;
  }

  uint64_t cursor_ = 0;
  uint64_t limit_ = 0;
};

}  // namespace fixture
