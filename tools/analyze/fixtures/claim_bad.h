#pragma once
#include <cstddef>
#include <cstdint>

#include "fixture_prelude.h"

// Positive fixture: claim-publish findings — claimed slots that neither
// publish/release nor escape the function.
namespace fixture {

struct LeakyRing {
  SLICK_NODISCARD uint64_t* TryClaimPush(std::size_t max, std::size_t* got);
  SLICK_NODISCARD const uint64_t* ClaimPop(std::size_t max,
                                           std::size_t* got);
  void PublishPush(std::size_t n);
  void ReleasePop(std::size_t n);

  // Claims a write span, fills it, forgets PublishPush: consumer wedges.
  bool PushOne(uint64_t v) {
    std::size_t got = 0;
    uint64_t* span = TryClaimPush(1, &got);  // finding: claim-publish
    if (span == nullptr) return false;
    span[0] = v;
    return true;
  }

  // Claims a read span, sums it, forgets ReleasePop: producer starves.
  uint64_t DrainOnce() {
    std::size_t got = 0;
    const uint64_t* span = ClaimPop(8, &got);  // finding: claim-publish
    uint64_t acc = 0;
    for (std::size_t i = 0; i < got; ++i) acc += span[i];
    return acc;
  }
};

}  // namespace fixture
