#pragma once
#include <cstdint>

#include "fixture_prelude.h"

// Negative fixture: must-use results that are consumed, branched on, or
// deliberately discarded with (void).
namespace fixture {

enum class Admission : uint8_t { kAccepted, kShed };

struct Gate {
  SLICK_NODISCARD bool TryEnter(uint64_t id);
  SLICK_NODISCARD Admission Offer(uint64_t id, uint64_t t);
};

inline uint64_t Pump(Gate& g, uint64_t id) {
  uint64_t admitted = 0;
  if (g.TryEnter(id)) ++admitted;            // branched on: fine
  const Admission a = g.Offer(id, 0);        // assigned: fine
  if (a == Admission::kAccepted) ++admitted;
  (void)g.TryEnter(id + 1);                  // deliberate discard: fine
  const bool ok =
      g.TryEnter(id + 2);                    // split across lines: fine
  return admitted + (ok ? 1 : 0);
}

}  // namespace fixture
