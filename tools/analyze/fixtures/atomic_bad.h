#pragma once
#include <atomic>
#include <cstdint>

#include "fixture_prelude.h"

// Positive fixture: atomic-order findings, including the two regex-lint
// blind spots (calls split across lines, calls through a pointer with ->).
namespace fixture {

struct Cursor {
  std::atomic<uint64_t> seq{0};

  uint64_t Peek() const {
    return seq.load();  // finding: defaulted seq_cst
  }

  uint64_t PeekSplit() const {
    return seq.load(          // finding: call split across lines —
    );                        // invisible to a line-based regex
  }

  void BumpVia(std::atomic<uint64_t>* p) {
    p->fetch_add(1);  // finding: pointer-to-atomic through ->
  }

  void Exchange(std::atomic<uint64_t>& other) {
    other.exchange(
        seq.load(std::memory_order_acquire));  // finding: outer exchange
  }
};

}  // namespace fixture
