#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ops/traits.h"
#include "plan/shared_plan.h"
#include "telemetry/sink.h"
#include "util/check.h"
#include "util/clock.h"
#include "window/aggregator.h"

namespace slick::engine {

/// End-to-end Aggregate Continuous Query processor: registers a set of
/// compatible ACQs, builds their shared execution plan (paper §2.3),
/// partial-aggregates the raw stream along the plan's edges, feeds each
/// completed partial to the final aggregator `Agg`, and emits every due
/// query answer.
///
/// `Agg` is any fixed-window aggregator (Naive, FlatFAT, B-Int, FlatFIT,
/// SlickDeque (Inv)/(Non-Inv), or Windowed<...> for single-query plans).
/// Answers during warm-up treat not-yet-seen history as ⊕'s identity,
/// matching the paper's identity-initialized window (Algorithms 1 and 2).
///
/// `Tel` selects the telemetry sink at compile time (telemetry/sink.h).
/// The default NullEngineSink compiles every hook away, so the
/// uninstrumented engine is bit-identical to the pre-telemetry hot loop;
/// HistogramEngineSink additionally brackets each Push with clock reads
/// and records per-push latency into a wait-free log histogram.
template <typename Agg, typename Tel = telemetry::NullEngineSink>
class AcqEngine {
 public:
  using op_type = typename Agg::op_type;
  using input_type = typename op_type::input_type;
  using value_type = typename op_type::value_type;
  using result_type = typename op_type::result_type;

  /// `stream_offset` positions the engine mid-stream: report phases behave
  /// as if `stream_offset` tuples had already passed (all contributing ⊕'s
  /// identity). Used by DynamicAcqEngine to rebuild plans on the fly while
  /// keeping every query's slide phase aligned with the global stream.
  AcqEngine(std::vector<plan::QuerySpec> queries, plan::Pat pat,
            uint64_t stream_offset = 0)
      : plan_(plan::SharedPlan::Build(queries, pat)),
        agg_(MakeAggregator(plan_)) {
    // Pre-compute each step's ranges in descending order for aggregators
    // with a fused multi-answer path (SlickDeque (Non-Inv)).
    step_ranges_.reserve(plan_.steps().size());
    for (const plan::PlanStep& step : plan_.steps()) {
      std::vector<std::size_t> ranges;
      ranges.reserve(step.reports.size());
      for (const plan::ReportEntry& r : step.reports) {
        ranges.push_back(static_cast<std::size_t>(r.range_in_partials));
      }
      step_ranges_.push_back(std::move(ranges));
    }
    // Seek to the offset's position within the composite cycle.
    uint64_t off = stream_offset % plan_.composite_slide();
    while (off >= plan_.steps()[step_idx_].partial_len) {
      off -= plan_.steps()[step_idx_].partial_len;
      ++step_idx_;
    }
    in_partial_ = off;  // mid-partial: the missing prefix acts as identity
  }

  /// Feeds one raw stream element. For every answer that becomes due,
  /// calls sink(query_index, result).
  template <typename Sink>
  void Push(const input_type& x, Sink&& sink) {
    uint64_t t0 = 0;
    if constexpr (Tel::kLatency) t0 = util::MonotonicNanos();
    tel_.OnTuple();
    const plan::PlanStep& step = plan_.steps()[step_idx_];
    partial_ = in_partial_ == 0
                   ? op_type::lift(x)
                   : op_type::combine(partial_, op_type::lift(x));
    ++tuples_;
    if (++in_partial_ >= step.partial_len) {
      agg_.slide(std::move(partial_));
      tel_.OnPartial();
      in_partial_ = 0;
      EmitAnswers(step, sink);
      step_idx_ = step_idx_ + 1 == plan_.steps().size() ? 0 : step_idx_ + 1;
    }
    if constexpr (Tel::kLatency) tel_.OnLatency(util::MonotonicNanos() - t0);
  }

  const plan::SharedPlan& plan() const { return plan_; }
  const Agg& aggregator() const { return agg_; }
  /// Mutable access for state restoration (checkpoint recovery).
  Agg& mutable_aggregator() { return agg_; }
  uint64_t tuples_processed() const { return tuples_; }
  uint64_t answers_produced() const { return answers_; }

  /// The compile-time-selected telemetry sink (counters/histogram live
  /// here when Tel is not the null sink).
  const Tel& telemetry() const { return tel_; }
  Tel& telemetry() { return tel_; }

  std::size_t memory_bytes() const { return sizeof(*this) + agg_.memory_bytes(); }

 private:
  static Agg MakeAggregator(const plan::SharedPlan& plan) {
    SLICK_CHECK(plan.executable(),
                "plan has mid-partial ranges and cannot drive execution");
    const auto window = static_cast<std::size_t>(plan.window_partials());
    if constexpr (std::is_constructible_v<Agg, std::size_t,
                                          std::vector<std::size_t>>) {
      // SlickDeque (Inv): register every distinct range up front (the
      // Preparation phase's answers map).
      std::vector<std::size_t> ranges;
      ranges.reserve(plan.distinct_ranges().size());
      for (uint64_t r : plan.distinct_ranges()) {
        ranges.push_back(static_cast<std::size_t>(r));
      }
      return Agg(window, std::move(ranges));
    } else {
      return Agg(window);
    }
  }

  template <typename Sink>
  void EmitAnswers(const plan::PlanStep& step, Sink& sink) {
    if (step.reports.empty()) return;
    if constexpr (requires(std::vector<result_type>& out) {
                    agg_.query_multi(step_ranges_[0], out);
                  }) {
      multi_out_.clear();
      agg_.query_multi(step_ranges_[step_idx_], multi_out_);
      for (std::size_t i = 0; i < step.reports.size(); ++i) {
        sink(step.reports[i].query, multi_out_[i]);
        ++answers_;
      }
      tel_.OnAnswer(step.reports.size());
    } else {
      for (const plan::ReportEntry& r : step.reports) {
        sink(r.query,
             agg_.query(static_cast<std::size_t>(r.range_in_partials)));
        ++answers_;
      }
      tel_.OnAnswer(step.reports.size());
    }
  }

  plan::SharedPlan plan_;
  Agg agg_;
  [[no_unique_address]] Tel tel_;
  std::vector<std::vector<std::size_t>> step_ranges_;  // descending, per step
  std::vector<result_type> multi_out_;
  value_type partial_ = op_type::identity();
  uint64_t in_partial_ = 0;
  std::size_t step_idx_ = 0;
  uint64_t tuples_ = 0;
  uint64_t answers_ = 0;
};

}  // namespace slick::engine

