#pragma once

#include <algorithm>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <utility>
#include <vector>

#include "core/sliding_aggregator.h"
#include "engine/time_acq_engine.h"
#include "ops/traits.h"
#include "telemetry/sink.h"
#include "util/check.h"
#include "util/serde.h"
#include "window/aggregator.h"

namespace slick::engine {

/// Event-time multi-ACQ processing for OUT-OF-ORDER streams (DESIGN.md
/// §13). Where TimeAcqEngine requires non-decreasing timestamps and
/// reduces time windows to the count-based pane machinery, this engine
/// ingests tuples in any order into a window::OooTree and drives answer
/// emission from a WATERMARK:
///
///   wm = (max event time observed) − (allowed lateness L)
///
/// A query with slide s answers at every boundary t = m·s (m >= 1) once
/// t <= wm, over the window [t − range, t) — the same half-open boundary
/// convention as TimeAcqEngine, so on an in-order stream with L = 0 the
/// two engines emit identical answer sequences (checked differentially in
/// tests/event_time_test.cc). Boundaries are emitted in ascending time
/// order; queries due at the same boundary emit in query-index order.
/// Empty windows answer ⊕'s identity, like the pane engine's gap panes.
///
/// Lateness policy (no retractions): a tuple behind the watermark is still
/// ADMITTED as long as its timestamp can appear in a not-yet-emitted
/// window — i.e. ts >= the eviction floor, the minimum over queries of
/// (next boundary − range). Already-emitted answers are never revised.
/// Below the floor the tuple is dropped and counted (late_dropped()).
/// Choose L at least the maximum expected out-of-order displacement to
/// drop nothing. (With range < slide a tuple in the dead gap between
/// windows is dropped too — no window, past or future, covers it.)
///
/// Eviction is watermark-driven and batched: after each emission round the
/// floor advances and one Tree::BulkEvict(floor) chops every expired entry,
/// so steady watermark progress costs amortized O(1) per evicted entry.
///
/// Telemetry maps the pane hooks onto boundaries: OnPaneClose(empty, b)
/// fires once per emitted boundary with the boundary time as the
/// watermark gauge, so EngineCounters.watermark reports real event-time
/// progress and `max_ts − watermark` is the true event-time lag.
///
/// Checkpointing: SaveState/LoadState persist the tree plus the emission
/// cursors, and the tree's serialized form is a pure function of content,
/// so supervised recovery replay converges to byte-identical checkpoints
/// (use util::SaveStateFramed / LoadStateFramed for CRC framing).
template <ops::AggregateOp RawOp,
          typename Tree = core::OooAggregatorFor<RawOp>,
          typename Tel = telemetry::NullEngineSink>
class EventTimeAcqEngine {
  static_assert(window::OutOfOrderAggregator<Tree>,
                "Tree must be a timestamped out-of-order aggregator");

 public:
  using input_type = typename RawOp::input_type;
  using value_type = typename RawOp::value_type;
  using result_type = typename RawOp::result_type;

  static constexpr uint32_t kTag = util::MakeTag('E', 'T', 'A', '1');

  explicit EventTimeAcqEngine(std::vector<TimeQuerySpec> queries,
                              uint64_t lateness = 0)
      : queries_(std::move(queries)), lateness_(lateness) {
    SLICK_CHECK(!queries_.empty(), "need at least one query");
    next_.reserve(queries_.size());
    for (const TimeQuerySpec& q : queries_) {
      SLICK_CHECK(q.range >= 1 && q.slide >= 1, "range/slide must be >= 1");
      next_.push_back(q.slide);
    }
  }

  /// Feeds one element observed at event time `ts` — in any order. Emits
  /// every answer that became due, via sink(query_index, result). Returns
  /// false when the element was dropped as too late to matter (no current
  /// or future window can cover ts).
  template <typename Sink>
  bool Observe(uint64_t ts, const input_type& x, Sink&& sink) {
    tel_.OnTuple();
    if (ts < evict_floor_) {
      ++late_dropped_;
      return false;
    }
    tree_.Insert(ts, RawOp::lift(x));
    if (ts > max_ts_) max_ts_ = ts;
    EmitDue(sink);
    return true;
  }

  /// Advances the watermark clock without an element (punctuation / source
  /// heartbeat), flushing every answer due up to wm = ts − lateness.
  template <typename Sink>
  void AdvanceTo(uint64_t ts, Sink&& sink) {
    if (ts > max_ts_) max_ts_ = ts;
    EmitDue(sink);
  }

  /// Current watermark: max observed event time minus allowed lateness.
  uint64_t watermark() const {
    return max_ts_ > lateness_ ? max_ts_ - lateness_ : 0;
  }

  uint64_t lateness() const { return lateness_; }
  uint64_t late_dropped() const { return late_dropped_; }
  std::size_t size() const { return tree_.size(); }
  const std::vector<TimeQuerySpec>& queries() const { return queries_; }

  std::size_t memory_bytes() const {
    return sizeof(*this) + tree_.memory_bytes() +
           queries_.capacity() * sizeof(TimeQuerySpec) +
           next_.capacity() * sizeof(uint64_t);
  }

  const Tel& telemetry() const { return tel_; }
  Tel& telemetry() { return tel_; }

  // --- checkpoint (util::Checkpointable) ---------------------------------

  void SaveState(std::ostream& os) const {
    util::WriteTag(os, kTag, 1);
    util::WritePod(os, max_ts_);
    util::WritePod(os, evict_floor_);
    util::WritePod(os, late_dropped_);
    util::WritePodVec(os, next_);
    tree_.SaveState(os);
  }

  /// Restores a checkpoint taken by an engine with the SAME query set and
  /// lateness (those are construction parameters, not state).
  bool LoadState(std::istream& is) {
    if (!util::ExpectTag(is, kTag, 1)) return false;
    uint64_t max_ts = 0, floor = 0, dropped = 0;
    std::vector<uint64_t> next;
    if (!util::ReadPod(is, &max_ts) || !util::ReadPod(is, &floor) ||
        !util::ReadPod(is, &dropped) || !util::ReadPodVec(is, &next)) {
      return false;
    }
    if (next.size() != queries_.size()) return false;
    if (!tree_.LoadState(is)) return false;
    max_ts_ = max_ts;
    evict_floor_ = floor;
    late_dropped_ = dropped;
    next_ = std::move(next);
    return true;
  }

 private:
  static constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

  /// Emits every boundary that reached the watermark, ascending, then
  /// advances the eviction floor and bulk-evicts expired entries.
  template <typename Sink>
  void EmitDue(Sink& sink) {
    const uint64_t wm = watermark();
    for (;;) {
      uint64_t best = kNever;
      for (const uint64_t b : next_) {
        if (b <= wm && b < best) best = b;
      }
      if (best == kNever) break;
      bool any = false;
      for (std::size_t q = 0; q < queries_.size(); ++q) {
        if (next_[q] != best) continue;
        const uint64_t lo =
            best > queries_[q].range ? best - queries_[q].range : 0;
        value_type acc = RawOp::identity();
        // Window [best − range, best): inclusive time range [lo, best − 1].
        if (tree_.RangeAggregate(lo, best - 1, &acc)) any = true;
        tel_.OnAnswer();
        sink(static_cast<uint32_t>(q), RawOp::lower(acc));
        next_[q] += queries_[q].slide;
      }
      tel_.OnPaneClose(!any, best);
    }
    uint64_t floor = kNever;
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      floor = std::min(floor, next_[q] > queries_[q].range
                                  ? next_[q] - queries_[q].range
                                  : 0);
    }
    if (floor != kNever && floor > evict_floor_) {
      evict_floor_ = floor;
      tree_.BulkEvict(evict_floor_);
    }
  }

  std::vector<TimeQuerySpec> queries_;
  uint64_t lateness_;
  Tree tree_;
  [[no_unique_address]] Tel tel_;
  std::vector<uint64_t> next_;  ///< per-query next answer boundary
  uint64_t max_ts_ = 0;
  uint64_t evict_floor_ = 0;  ///< entries below this can never matter again
  uint64_t late_dropped_ = 0;
};

/// The facade-selected event-time engine for RawOp: the OoO finger-B-tree
/// (one algorithm for every op class — no inverse needed). Optionally pass
/// a telemetry sink as the second argument.
template <ops::AggregateOp RawOp, typename Tel = telemetry::NullEngineSink>
using EventEngineFor =
    EventTimeAcqEngine<RawOp, core::OooAggregatorFor<RawOp>, Tel>;

}  // namespace slick::engine
