#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "engine/acq_engine.h"
#include "ops/algebraic.h"
#include "ops/minmax.h"
#include "plan/query_spec.h"
#include "util/check.h"

namespace slick::engine {

// Sharing across *different but compatible* aggregate operations
// (paper §2.3): "Sum, Count and Average can share results by treating
// Average as sum/count", and Range decomposes into Max and Min. These
// engines register mixed-operation ACQs on one (or two) shared
// aggregations and project each query's answer from the shared partial.

/// Operations served by the (count, sum) carrier.
enum class SumFamilyKind { kSum, kCount, kAverage };

struct SumFamilyQuery {
  plan::QuerySpec spec;
  SumFamilyKind kind = SumFamilyKind::kSum;
};

/// Sum / Count / Average ACQs over one stream, all answered from a single
/// SlickDeque (Inv) running (count, sum) aggregation — exactly one ⊕ and
/// one ⊖ per registered *range* per slide, however many of the three
/// operation kinds are registered.
class SharedSumFamilyEngine {
 public:
  SharedSumFamilyEngine(std::vector<SumFamilyQuery> queries, plan::Pat pat)
      : queries_(std::move(queries)), engine_(Specs(queries_), pat) {}

  /// Feeds one value; sink(query_index, double_answer) per due answer.
  template <typename Sink>
  void Push(double x, Sink&& sink) {
    engine_.Push(x, [&](uint32_t q, const ops::AvgPartial& partial) {
      sink(q, Project(queries_[q].kind, partial));
    });
  }

  const plan::SharedPlan& plan() const { return engine_.plan(); }
  uint64_t answers_produced() const { return engine_.answers_produced(); }
  std::size_t memory_bytes() const { return engine_.memory_bytes(); }

 private:
  static std::vector<plan::QuerySpec> Specs(
      const std::vector<SumFamilyQuery>& queries) {
    std::vector<plan::QuerySpec> specs;
    specs.reserve(queries.size());
    for (const SumFamilyQuery& q : queries) specs.push_back(q.spec);
    return specs;
  }

  static double Project(SumFamilyKind kind, const ops::AvgPartial& p) {
    switch (kind) {
      case SumFamilyKind::kSum:
        return p.sum;
      case SumFamilyKind::kCount:
        return static_cast<double>(p.count);
      case SumFamilyKind::kAverage:
        return p.count == 0 ? 0.0 : p.sum / static_cast<double>(p.count);
    }
    return 0.0;
  }

  std::vector<SumFamilyQuery> queries_;
  AcqEngine<core::SlickDequeInv<ops::SumCount>> engine_;
};

/// Operations served by the Max/Min deque pair.
enum class MinMaxFamilyKind { kMax, kMin, kRange };

struct MinMaxFamilyQuery {
  plan::QuerySpec spec;
  MinMaxFamilyKind kind = MinMaxFamilyKind::kMax;
};

/// Max / Min / Range ACQs over one stream, answered from two shared
/// SlickDeque (Non-Inv) instances (Range = Max - Min, §3.1). Queries that
/// only need one side still cost nothing extra: both deques are maintained
/// once per slide regardless.
class SharedMinMaxFamilyEngine {
 public:
  SharedMinMaxFamilyEngine(std::vector<MinMaxFamilyQuery> queries,
                           plan::Pat pat)
      : queries_(std::move(queries)),
        max_engine_(Specs(queries_), pat),
        min_engine_(Specs(queries_), pat) {}

  template <typename Sink>
  void Push(double x, Sink&& sink) {
    // Drive both shared deques; pair up the per-query answers. Both
    // engines run the same plan, so answers arrive in the same order.
    max_due_.clear();
    min_due_.clear();
    max_engine_.Push(
        x, [&](uint32_t q, double a) { max_due_.emplace_back(q, a); });
    min_engine_.Push(
        x, [&](uint32_t q, double a) { min_due_.emplace_back(q, a); });
    SLICK_DCHECK(max_due_.size() == min_due_.size(),
                 "shared plans diverged");
    for (std::size_t i = 0; i < max_due_.size(); ++i) {
      const uint32_t q = max_due_[i].first;
      SLICK_DCHECK(q == min_due_[i].first, "shared plans diverged");
      switch (queries_[q].kind) {
        case MinMaxFamilyKind::kMax:
          sink(q, max_due_[i].second);
          break;
        case MinMaxFamilyKind::kMin:
          sink(q, min_due_[i].second);
          break;
        case MinMaxFamilyKind::kRange:
          sink(q, max_due_[i].second - min_due_[i].second);
          break;
      }
    }
  }

  const plan::SharedPlan& plan() const { return max_engine_.plan(); }
  std::size_t memory_bytes() const {
    return max_engine_.memory_bytes() + min_engine_.memory_bytes();
  }

 private:
  static std::vector<plan::QuerySpec> Specs(
      const std::vector<MinMaxFamilyQuery>& queries) {
    std::vector<plan::QuerySpec> specs;
    specs.reserve(queries.size());
    for (const MinMaxFamilyQuery& q : queries) specs.push_back(q.spec);
    return specs;
  }

  std::vector<MinMaxFamilyQuery> queries_;
  AcqEngine<core::SlickDequeNonInv<ops::Max>> max_engine_;
  AcqEngine<core::SlickDequeNonInv<ops::Min>> min_engine_;
  std::vector<std::pair<uint32_t, double>> max_due_;
  std::vector<std::pair<uint32_t, double>> min_due_;
};

}  // namespace slick::engine

