#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "engine/acq_engine.h"
#include "ops/algebraic.h"
#include "ops/minmax.h"
#include "ops/scan_kernels.h"
#include "plan/query_spec.h"
#include "util/check.h"

namespace slick::engine {

// Sharing across *different but compatible* aggregate operations
// (paper §2.3): "Sum, Count and Average can share results by treating
// Average as sum/count", and Range decomposes into Max and Min. These
// engines register mixed-operation ACQs on one (or two) shared
// aggregations and project each query's answer from the shared partial.

/// Operations served by the (count, sum) carrier.
enum class SumFamilyKind { kSum, kCount, kAverage };

struct SumFamilyQuery {
  plan::QuerySpec spec;
  SumFamilyKind kind = SumFamilyKind::kSum;
};

/// Sum / Count / Average ACQs over one stream, all answered from a single
/// SlickDeque (Inv) running (count, sum) aggregation — exactly one ⊕ and
/// one ⊖ per registered *range* per slide, however many of the three
/// operation kinds are registered.
class SharedSumFamilyEngine {
 public:
  SharedSumFamilyEngine(std::vector<SumFamilyQuery> queries, plan::Pat pat)
      : queries_(std::move(queries)), engine_(Specs(queries_), pat) {}

  /// Feeds one value; sink(query_index, double_answer) per due answer.
  template <typename Sink>
  void Push(double x, Sink&& sink) {
    engine_.Push(x, [&](uint32_t q, const ops::AvgPartial& partial) {
      sink(q, Project(queries_[q].kind, partial));
    });
  }

  const plan::SharedPlan& plan() const { return engine_.plan(); }
  uint64_t answers_produced() const { return engine_.answers_produced(); }
  std::size_t memory_bytes() const { return engine_.memory_bytes(); }

 private:
  static std::vector<plan::QuerySpec> Specs(
      const std::vector<SumFamilyQuery>& queries) {
    std::vector<plan::QuerySpec> specs;
    specs.reserve(queries.size());
    for (const SumFamilyQuery& q : queries) specs.push_back(q.spec);
    return specs;
  }

  static double Project(SumFamilyKind kind, const ops::AvgPartial& p) {
    switch (kind) {
      case SumFamilyKind::kSum:
        return p.sum;
      case SumFamilyKind::kCount:
        return static_cast<double>(p.count);
      case SumFamilyKind::kAverage:
        return p.count == 0 ? 0.0 : p.sum / static_cast<double>(p.count);
    }
    return 0.0;
  }

  std::vector<SumFamilyQuery> queries_;
  AcqEngine<core::SlickDequeInv<ops::SumCount>> engine_;
};

/// Operations served by the Max/Min deque pair.
enum class MinMaxFamilyKind { kMax, kMin, kRange };

struct MinMaxFamilyQuery {
  plan::QuerySpec spec;
  MinMaxFamilyKind kind = MinMaxFamilyKind::kMax;
};

/// Max / Min / Range ACQs over one stream, answered from two shared
/// SlickDeque (Non-Inv) instances (Range = Max - Min, §3.1). Queries that
/// only need one side still cost nothing extra: both deques are maintained
/// once per slide regardless.
class SharedMinMaxFamilyEngine {
 public:
  SharedMinMaxFamilyEngine(std::vector<MinMaxFamilyQuery> queries,
                           plan::Pat pat)
      : queries_(std::move(queries)),
        max_engine_(Specs(queries_), pat),
        min_engine_(Specs(queries_), pat) {
    for (const MinMaxFamilyQuery& q : queries_) {
      if (q.kind == MinMaxFamilyKind::kRange) has_range_ = true;
    }
  }

  template <typename Sink>
  void Push(double x, Sink&& sink) {
    // Drive both shared deques; pair up the per-query answers. Both
    // engines run the same plan, so answers arrive in the same order —
    // collected into parallel arrays (query ids once, one value column
    // per deque) so the Range projection runs as one vectorized
    // max - min pass over the due block instead of per-answer scalar
    // subtractions.
    due_q_.clear();
    max_vals_.clear();
    min_vals_.clear();
    max_engine_.Push(x, [&](uint32_t q, double a) {
      due_q_.push_back(q);
      max_vals_.push_back(a);
    });
    min_engine_.Push(x, [&]([[maybe_unused]] uint32_t q, double a) {
      SLICK_DCHECK(min_vals_.size() < due_q_.size() &&
                       q == due_q_[min_vals_.size()],
                   "shared plans diverged");
      min_vals_.push_back(a);
    });
    SLICK_DCHECK(max_vals_.size() == min_vals_.size(),
                 "shared plans diverged");
    const std::size_t n = due_q_.size();
    if (n == 0) return;
    if (has_range_) {
      range_vals_.resize(n);
      ops::kernels::SubtractArrays(max_vals_.data(), min_vals_.data(),
                                   range_vals_.data(), n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const uint32_t q = due_q_[i];
      switch (queries_[q].kind) {
        case MinMaxFamilyKind::kMax:
          sink(q, max_vals_[i]);
          break;
        case MinMaxFamilyKind::kMin:
          sink(q, min_vals_[i]);
          break;
        case MinMaxFamilyKind::kRange:
          sink(q, range_vals_[i]);
          break;
      }
    }
  }

  const plan::SharedPlan& plan() const { return max_engine_.plan(); }
  std::size_t memory_bytes() const {
    return max_engine_.memory_bytes() + min_engine_.memory_bytes();
  }

 private:
  static std::vector<plan::QuerySpec> Specs(
      const std::vector<MinMaxFamilyQuery>& queries) {
    std::vector<plan::QuerySpec> specs;
    specs.reserve(queries.size());
    for (const MinMaxFamilyQuery& q : queries) specs.push_back(q.spec);
    return specs;
  }

  std::vector<MinMaxFamilyQuery> queries_;
  AcqEngine<core::SlickDequeNonInv<ops::Max>> max_engine_;
  AcqEngine<core::SlickDequeNonInv<ops::Min>> min_engine_;
  bool has_range_ = false;
  // Per-Push due-answer block, SoA: query ids + one value column per deque
  // (+ the projected ranges when any Range query is registered).
  std::vector<uint32_t> due_q_;
  std::vector<double> max_vals_;
  std::vector<double> min_vals_;
  std::vector<double> range_vals_;
};

}  // namespace slick::engine

