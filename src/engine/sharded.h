#pragma once

#include <cstddef>
#include <vector>

#include "ops/traits.h"
#include "telemetry/sink.h"
#include "util/check.h"
#include "window/aggregator.h"

namespace slick::engine {

/// Multi-node deployment, simulated (the paper's §6 future work: "evaluate
/// SlickDeque in ... multi-node environments"): the stream is partitioned
/// round-robin across N shard aggregators, and the coordinator answers a
/// global window query by combining the shards' local answers.
///
/// Exactness: with N shards and a global window of W = k·N tuples, the
/// last W global tuples are exactly the last k tuples of every shard —
/// regardless of stream phase — so for a *commutative* ⊕ the fold of the N
/// local window answers equals the single-node answer exactly (asserted by
/// the tests against a single-window oracle). Non-commutative operations
/// would need order-restoring merges and are rejected at compile time.
///
/// Each shard runs an independent aggregator (its own SlickDeque), so
/// per-shard state, per-slide work and (on a real cluster) communication
/// all scale as 1/N — the measurement `bench/ablation_sharded` reports.
///
/// `Tel` is the compile-time telemetry sink (telemetry/sink.h); the default
/// null sink keeps slide()/query() identical to the uninstrumented code.
template <window::FixedWindowAggregator Agg,
          typename Tel = telemetry::NullEngineSink>
  requires(Agg::op_type::kCommutative)
class RoundRobinSharded {
 public:
  using op_type = typename Agg::op_type;
  using value_type = typename Agg::value_type;
  using result_type = typename Agg::result_type;

  /// `global_window` must be a multiple of `shards`.
  RoundRobinSharded(std::size_t global_window, std::size_t shards)
      : global_window_(global_window) {
    SLICK_CHECK(shards >= 1, "need at least one shard");
    SLICK_CHECK(global_window % shards == 0,
                "global window must be a multiple of the shard count");
    SLICK_CHECK(global_window / shards >= 1, "shard windows must be nonempty");
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.emplace_back(global_window / shards);
    }
  }

  /// Routes the newest element to its shard.
  void slide(value_type v) {
    tel_.OnTuple();
    shards_[next_].slide(std::move(v));
    tel_.OnPartial();
    next_ = next_ + 1 == shards_.size() ? 0 : next_ + 1;
    if (tuples_seen_ < global_window_) ++tuples_seen_;
  }

  /// True once the global window is warm: every shard has received its full
  /// complement of `window / shards` tuples, so each local answer covers a
  /// real window rather than ⊕-identity padding.
  bool ready() const { return tuples_seen_ >= global_window_; }

  /// Global window answer: the coordinator's N-way combine. Requires
  /// ready() — before warm-up a selective op's identity (±inf, NaN, ...) is
  /// a *sentinel*, and folding it into the answer (or querying a shard
  /// whose SlickDeque is still empty) would be wrong, so the combine seeds
  /// from the first shard's local answer and never touches identity().
  result_type query() const {
    SLICK_CHECK(ready(),
                "query before the global window is warm "
                "(needs `window` tuples; poll ready())");
    tel_.OnQuery();
    // Local answers re-lift trivially for the ops in this library
    // (result_type == value_type for every distributive op).
    value_type acc = shards_[0].query();
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      acc = op_type::combine(acc, shards_[i].query());
    }
    return op_type::lower(acc);
  }

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t window_size() const { return global_window_; }

  Agg& shard(std::size_t i) { return shards_[i]; }
  const Agg& shard(std::size_t i) const { return shards_[i]; }

  /// The compile-time-selected telemetry sink (mutable so the logically
  /// const query() can tally itself).
  const Tel& telemetry() const { return tel_; }
  Tel& telemetry() { return tel_; }

  std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    for (const Agg& s : shards_) bytes += s.memory_bytes();
    return bytes;
  }

 private:
  std::size_t global_window_;
  std::vector<Agg> shards_;
  [[no_unique_address]] mutable Tel tel_;
  std::size_t next_ = 0;         // round-robin cursor
  std::size_t tuples_seen_ = 0;  // saturates at global_window_ (warm-up gate)
};

}  // namespace slick::engine

