#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "engine/acq_engine.h"
#include "plan/query_spec.h"
#include "util/check.h"

namespace slick::engine {

/// ACQ processing under a *dynamic* registry — the paper's §6 future work
/// ("evaluate SlickDeque in dynamic ... environments"): clients register
/// and deregister Aggregate Continuous Queries while the stream flows.
///
/// On every registry change the shared execution plan is rebuilt and the
/// final aggregator re-warmed by replaying retained raw tuples, so that
/// * every query's slide phase stays aligned with the global stream (a
///   query with slide s answers at global tuple counts divisible by s,
///   before and after any change), and
/// * answers are exact for all history inside the retention buffer; older
///   contributions degrade to ⊕'s identity, i.e. the same warm-up
///   semantics a freshly registered query has anyway.
///
/// Retention should cover max(range) + composite-slide padding; the
/// default (1<<16 tuples) suits the evaluation's scale. Rebuild cost is
/// O(retained); per-tuple cost between changes is identical to AcqEngine.
template <typename Agg>
class DynamicAcqEngine {
 public:
  using op_type = typename Agg::op_type;
  using input_type = typename op_type::input_type;
  using result_type = typename op_type::result_type;

  explicit DynamicAcqEngine(plan::Pat pat, std::size_t retention = 1 << 16)
      : pat_(pat), retention_(retention) {
    SLICK_CHECK(retention_ >= 1, "retention must be positive");
  }

  /// Registers a query; answers start at the next global multiple of its
  /// slide. Returns a stable id used in sink callbacks and RemoveQuery.
  uint32_t AddQuery(plan::QuerySpec spec) {
    const uint32_t id = next_id_++;
    queries_.emplace_back(id, spec);
    Rebuild();
    return id;
  }

  /// Deregisters a query. Returns false if the id is unknown.
  bool RemoveQuery(uint32_t id) {
    for (std::size_t i = 0; i < queries_.size(); ++i) {
      if (queries_[i].first == id) {
        queries_.erase(queries_.begin() + static_cast<std::ptrdiff_t>(i));
        Rebuild();
        return true;
      }
    }
    return false;
  }

  /// Feeds one element; sink(query_id, result) per due answer.
  template <typename Sink>
  void Push(const input_type& x, Sink&& sink) {
    history_.push_back(x);
    if (history_.size() > retention_) history_.pop_front();
    ++tuples_;
    if (!engine_.has_value()) return;  // no registered queries
    engine_->Push(x, [&](uint32_t idx, const result_type& res) {
      sink(queries_[idx].first, res);
    });
  }

  std::size_t query_count() const { return queries_.size(); }
  uint64_t tuples_processed() const { return tuples_; }
  bool has_plan() const { return engine_.has_value(); }
  const plan::SharedPlan& plan() const {
    SLICK_CHECK(engine_.has_value(), "no queries registered");
    return engine_->plan();
  }

 private:
  void Rebuild() {
    engine_.reset();
    if (queries_.empty()) return;
    std::vector<plan::QuerySpec> specs;
    specs.reserve(queries_.size());
    for (const auto& [id, spec] : queries_) specs.push_back(spec);

    // Replay r retained tuples with (tuples_ - r) on a partial boundary of
    // the new plan's cycle, so the rebuilt engine accumulates partials
    // exactly as an engine running from stream start would have.
    const plan::SharedPlan probe = plan::SharedPlan::Build(specs, pat_);
    const uint64_t composite = probe.composite_slide();
    uint64_t replay = std::min<uint64_t>(history_.size(), tuples_);
    // Largest r <= replay such that (tuples_ - r) lands on an edge: walk
    // r downward until the offset within the composite matches an edge
    // (offset 0 and every step boundary qualify). At most one composite
    // slide of history is sacrificed.
    const auto on_edge = [&](uint64_t start) {
      uint64_t off = start % composite;
      for (const plan::PlanStep& step : probe.steps()) {
        if (off == 0) return true;
        if (off < step.partial_len) return false;
        off -= step.partial_len;
      }
      return off == 0;
    };
    while (replay > 0 && !on_edge(tuples_ - replay)) --replay;

    engine_.emplace(std::move(specs), pat_, tuples_ - replay);
    auto discard = [](uint32_t, const result_type&) {
      // Answers for replayed tuples were delivered by the previous plan.
    };
    for (std::size_t i = history_.size() - replay; i < history_.size(); ++i) {
      engine_->Push(history_[i], discard);
    }
  }

  plan::Pat pat_;
  std::size_t retention_;
  std::vector<std::pair<uint32_t, plan::QuerySpec>> queries_;
  std::optional<AcqEngine<Agg>> engine_;
  std::deque<input_type> history_;
  uint64_t tuples_ = 0;
  uint32_t next_id_ = 0;
};

}  // namespace slick::engine

