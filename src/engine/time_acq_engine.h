#pragma once

#include <cstdint>
#include <numeric>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/sliding_aggregator.h"
#include "engine/acq_engine.h"
#include "ops/traits.h"
#include "plan/query_spec.h"
#include "telemetry/sink.h"
#include "util/check.h"

namespace slick::engine {

/// A time-based ACQ: range and slide in timestamp units (the paper's §1:
/// windows "can be either count or time-based").
struct TimeQuerySpec {
  uint64_t range = 1;
  uint64_t slide = 1;
};

/// Pass-through wrapper: the same algebra as Op but consuming ALREADY
/// LIFTED partials (lift is the identity). The time engine pre-aggregates
/// each pane with the raw op and feeds pane partials to a count-based
/// engine instantiated over Prelifted<Op>, so values are lifted exactly
/// once however non-trivial Op::lift is (Count, SumOfSquares, Average...).
template <ops::AggregateOp Op>
struct Prelifted {
  using input_type = typename Op::value_type;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  static constexpr const char* kName = Op::kName;
  static constexpr bool kInvertible = Op::kInvertible;
  static constexpr bool kCommutative = Op::kCommutative;
  static constexpr bool kSelective = Op::kSelective;

  static value_type identity() { return Op::identity(); }
  static value_type lift(input_type x) { return x; }
  static value_type combine(const value_type& a, const value_type& b) {
    return Op::combine(a, b);
  }
  static value_type inverse(const value_type& a, const value_type& b)
    requires ops::InvertibleOp<Op>
  {
    return Op::inverse(a, b);
  }
  static bool absorbs(const value_type& newer, const value_type& older)
    requires ops::SelectiveOp<Op>
  {
    return ops::Absorbs<Op>(newer, older);
  }
  static result_type lower(const value_type& a) { return Op::lower(a); }
};

/// Multi-ACQ processing for TIME-based windows, by reduction to the
/// count-based machinery: the timeline is cut into panes of
/// g = gcd(all ranges, all slides) time units (the Panes PAT applied to
/// time, §2.1), each pane's tuples are pre-aggregated into one partial —
/// including *empty* panes, which contribute ⊕'s identity — and the pane
/// stream drives an ordinary AcqEngine with count-based specs of
/// (range/g, slide/g) panes. Every shared-plan/SlickDeque property carries
/// over unchanged; bursts and gaps in the timeline are absorbed by the
/// pane pre-aggregation.
///
/// `RawOp` is the user-facing operation; `Agg` must be a fixed-window
/// aggregator over Prelifted<RawOp> (use the TimeEngineFor alias to get
/// the facade-selected one). Timestamps must be non-decreasing (put a
/// stream::ReorderBuffer upstream otherwise). Pane k covers
/// [k·g, (k+1)·g); a query with slide s answers at every boundary t = m·s
/// over the window [t - range, t) — half-open at the top: an element
/// stamped exactly t belongs to the next window, the standard pane/
/// tumbling-boundary convention.
///
/// `Tel` is the compile-time telemetry sink (telemetry/sink.h; the default
/// null sink costs nothing). The time engine reports pane-level flow —
/// panes closed, empty (gap) panes, and the watermark (the end timestamp
/// of the newest closed pane) — plus tuple/answer counts.
template <ops::AggregateOp RawOp, typename Agg,
          typename Tel = telemetry::NullEngineSink>
class TimeAcqEngine {
  static_assert(std::is_same_v<typename Agg::op_type, Prelifted<RawOp>>,
                "instantiate the aggregator over Prelifted<RawOp>");

 public:
  using input_type = typename RawOp::input_type;
  using value_type = typename RawOp::value_type;
  using result_type = typename RawOp::result_type;

  TimeAcqEngine(std::vector<TimeQuerySpec> queries, plan::Pat pat)
      : pane_(PaneLength(queries)),
        engine_(CountSpecs(queries, pane_), pat) {}

  /// Feeds one element observed at `ts` (non-decreasing). Answers that
  /// became due at pane boundaries <= ts are emitted first, via
  /// sink(query_index, result).
  template <typename Sink>
  void Observe(uint64_t ts, const input_type& x, Sink&& sink) {
    SLICK_CHECK(ts >= now_, "timestamps must be non-decreasing");
    tel_.OnTuple();
    ClosePanesThrough(ts, sink);
    now_ = ts;
    pane_acc_ = have_acc_ ? RawOp::combine(pane_acc_, RawOp::lift(x))
                          : RawOp::lift(x);
    have_acc_ = true;
  }

  /// Advances time without an element (timer tick / punctuation), flushing
  /// every answer due up to `ts`'s pane boundary.
  template <typename Sink>
  void AdvanceTo(uint64_t ts, Sink&& sink) {
    SLICK_CHECK(ts >= now_, "timestamps must be non-decreasing");
    ClosePanesThrough(ts, sink);
    now_ = ts;
  }

  uint64_t pane_length() const { return pane_; }
  const plan::SharedPlan& plan() const { return engine_.plan(); }
  std::size_t memory_bytes() const { return engine_.memory_bytes(); }

  /// The compile-time-selected telemetry sink. Watermark lag at any moment
  /// is `now - telemetry().counters.watermark` (time units): how far the
  /// open pane trails the newest observed timestamp.
  const Tel& telemetry() const { return tel_; }
  Tel& telemetry() { return tel_; }

 private:
  static uint64_t PaneLength(const std::vector<TimeQuerySpec>& queries) {
    SLICK_CHECK(!queries.empty(), "need at least one query");
    uint64_t g = 0;
    for (const TimeQuerySpec& q : queries) {
      SLICK_CHECK(q.range >= 1 && q.slide >= 1, "range/slide must be >= 1");
      g = std::gcd(g, std::gcd(q.range, q.slide));
    }
    return g;
  }

  static std::vector<plan::QuerySpec> CountSpecs(
      const std::vector<TimeQuerySpec>& queries, uint64_t pane) {
    std::vector<plan::QuerySpec> specs;
    specs.reserve(queries.size());
    for (const TimeQuerySpec& q : queries) {
      specs.push_back({q.range / pane, q.slide / pane});
    }
    return specs;
  }

  /// Closes every pane whose end lies at or before `ts`: the pane's
  /// aggregate (identity when empty) becomes one "tuple" of the
  /// count-based engine.
  template <typename Sink>
  void ClosePanesThrough(uint64_t ts, Sink& sink) {
    const uint64_t target_pane = ts / pane_;
    while (open_pane_ < target_pane) {
      auto counted = [&](uint32_t q, const result_type& r) {
        tel_.OnAnswer();
        sink(q, r);
      };
      engine_.Push(have_acc_ ? pane_acc_ : RawOp::identity(), counted);
      tel_.OnPaneClose(!have_acc_, (open_pane_ + 1) * pane_);
      have_acc_ = false;
      ++open_pane_;
    }
  }

  uint64_t pane_;
  AcqEngine<Agg> engine_;
  [[no_unique_address]] Tel tel_;
  uint64_t now_ = 0;
  uint64_t open_pane_ = 0;  // index of the currently accumulating pane
  value_type pane_acc_ = RawOp::identity();
  bool have_acc_ = false;
};

/// The facade-selected time engine for RawOp (SlickDeque (Inv) for
/// invertible ops, SlickDeque (Non-Inv) for selective ones, DABA
/// otherwise). Optionally pass a telemetry sink as the second argument.
template <ops::AggregateOp RawOp, typename Tel = telemetry::NullEngineSink>
using TimeEngineFor =
    TimeAcqEngine<RawOp, core::WindowAggregatorFor<Prelifted<RawOp>>, Tel>;

}  // namespace slick::engine

