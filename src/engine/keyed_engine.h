#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "window/aggregator.h"

namespace slick::engine {

/// Group-by-key sliding aggregation: one fixed-window aggregator per key,
/// created on first sight — "max price over the last N trades *of each
/// symbol*", the multi-tenant DSMS pattern the paper's introduction
/// motivates. Each key's window is count-based in that key's own
/// sub-stream. The aggregator type is any fixed-window implementation
/// (typically a facade-selected SlickDeque).
template <window::FixedWindowAggregator Agg>
class KeyedWindows {
 public:
  using op_type = typename Agg::op_type;
  using value_type = typename Agg::value_type;
  using result_type = typename Agg::result_type;

  explicit KeyedWindows(std::size_t window) : window_(window) {
    SLICK_CHECK(window >= 1, "window must hold at least one partial");
  }

  /// Feeds one element of `key`'s sub-stream; returns the key's refreshed
  /// full-window answer.
  result_type Push(uint64_t key, value_type v) {
    auto [it, inserted] = windows_.try_emplace(key, window_);
    it->second.slide(std::move(v));
    return it->second.query();
  }

  /// Current answer for `key`; dies if the key was never seen.
  /// (Non-const: FlatFIT-style aggregators compress paths on query.)
  result_type Query(uint64_t key) {
    const auto it = windows_.find(key);
    SLICK_CHECK(it != windows_.end(), "unknown key");
    return it->second.query();
  }

  bool HasKey(uint64_t key) const { return windows_.contains(key); }

  /// Drops a key's window (e.g. a delisted symbol). Returns false if
  /// unknown.
  bool Evict(uint64_t key) { return windows_.erase(key) > 0; }

  /// Visits every (key, answer) pair — the global roll-up hook: for a
  /// distributive ⊕, folding these answers yields the cross-key aggregate
  /// of all per-key windows.
  template <typename F>
  void ForEach(F&& f) {
    for (auto& [key, agg] : windows_) f(key, agg.query());
  }

  std::size_t key_count() const { return windows_.size(); }
  std::size_t window_size() const { return window_; }

  std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    for (const auto& [key, agg] : windows_) {
      bytes += sizeof(key) + agg.memory_bytes();
    }
    return bytes;
  }

 private:
  std::size_t window_;
  std::unordered_map<uint64_t, Agg> windows_;
};

}  // namespace slick::engine

