#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <unordered_map>
#include <utility>

#include "ops/traits.h"
#include "util/check.h"
#include "window/aggregator.h"
#include "window/ooo_tree.h"

namespace slick::engine {

/// Group-by-key sliding aggregation: one fixed-window aggregator per key,
/// created on first sight — "max price over the last N trades *of each
/// symbol*", the multi-tenant DSMS pattern the paper's introduction
/// motivates. Each key's window is count-based in that key's own
/// sub-stream. The aggregator type is any fixed-window implementation
/// (typically a facade-selected SlickDeque).
template <window::FixedWindowAggregator Agg>
class KeyedWindows {
 public:
  using op_type = typename Agg::op_type;
  using value_type = typename Agg::value_type;
  using result_type = typename Agg::result_type;

  explicit KeyedWindows(std::size_t window) : window_(window) {
    SLICK_CHECK(window >= 1, "window must hold at least one partial");
  }

  /// Feeds one element of `key`'s sub-stream; returns the key's refreshed
  /// full-window answer.
  result_type Push(uint64_t key, value_type v) {
    auto [it, inserted] = windows_.try_emplace(key, window_);
    it->second.slide(std::move(v));
    return it->second.query();
  }

  /// Current answer for `key`; dies if the key was never seen.
  /// (Non-const: FlatFIT-style aggregators compress paths on query.)
  result_type Query(uint64_t key) {
    const auto it = windows_.find(key);
    SLICK_CHECK(it != windows_.end(), "unknown key");
    return it->second.query();
  }

  bool HasKey(uint64_t key) const { return windows_.contains(key); }

  /// Drops a key's window (e.g. a delisted symbol). Returns false if
  /// unknown.
  bool Evict(uint64_t key) { return windows_.erase(key) > 0; }

  /// Visits every (key, answer) pair — the global roll-up hook: for a
  /// distributive ⊕, folding these answers yields the cross-key aggregate
  /// of all per-key windows.
  template <typename F>
  void ForEach(F&& f) {
    for (auto& [key, agg] : windows_) f(key, agg.query());
  }

  std::size_t key_count() const { return windows_.size(); }
  std::size_t window_size() const { return window_; }

  std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    for (const auto& [key, agg] : windows_) {
      bytes += sizeof(key) + agg.memory_bytes();
    }
    return bytes;
  }

 private:
  std::size_t window_;
  std::unordered_map<uint64_t, Agg> windows_;
};

/// Group-by-key EVENT-TIME sliding aggregation (DESIGN.md §13): one
/// out-of-order tree per key, one shared watermark derived from the
/// maximum event time seen across ALL keys minus the allowed lateness —
/// the standard DSMS convention, so a quiet key's window still slides
/// forward as the rest of the stream advances. Each key's current window
/// is the time range (wm − range, wm] of that key's sub-stream (closed at
/// the top: the tuple that carries the watermark is included, matching
/// core::TimeWindow), and tuples may arrive in any order within the
/// lateness bound.
///
/// Unlike the count-based KeyedWindows, queries here do not see tuples
/// AHEAD of the watermark: a fresh tuple enters the answer once the
/// watermark catches up to its timestamp. Call EvictExpired() periodically
/// (e.g. per ingest batch) to bulk-drop entries behind the window; keys
/// whose trees empty out are reclaimed.
template <ops::AggregateOp Op, typename Agg = window::OooTree<Op>>
class KeyedEventWindows {
  static_assert(window::OutOfOrderAggregator<Agg>,
                "Agg must be a timestamped out-of-order aggregator");

 public:
  using op_type = Op;
  using value_type = typename Agg::value_type;
  using result_type = typename Agg::result_type;

  explicit KeyedEventWindows(uint64_t range, uint64_t lateness = 0)
      : range_(range), lateness_(lateness) {
    SLICK_CHECK(range >= 1, "range must cover at least one time unit");
  }

  /// Feeds one LIFTED element of `key`'s sub-stream at event time ts (any
  /// order). Returns false — and drops the element — when ts already lies
  /// behind the window at the current watermark: it could never appear in
  /// this or any future answer.
  bool Push(uint64_t key, uint64_t ts, value_type v) {
    if (ts < WindowLow()) {
      ++late_dropped_;
      return false;
    }
    auto [it, inserted] = windows_.try_emplace(key);
    it->second.Insert(ts, std::move(v));
    if (ts > max_ts_) max_ts_ = ts;
    return true;
  }

  /// `key`'s aggregate over (watermark − range, watermark]; dies if the
  /// key was never seen (or has been reclaimed after emptying out).
  result_type Query(uint64_t key) {
    const auto it = windows_.find(key);
    SLICK_CHECK(it != windows_.end(), "unknown key");
    return it->second.RangeQuery(WindowLow(), watermark());
  }

  bool HasKey(uint64_t key) const { return windows_.contains(key); }

  /// Drops a key's window outright (e.g. a delisted symbol).
  bool Evict(uint64_t key) { return windows_.erase(key) > 0; }

  /// Bulk-drops every entry that slid behind the current window and
  /// reclaims emptied keys. Returns the number of entries removed.
  std::size_t EvictExpired() {
    const uint64_t lo = WindowLow();
    std::size_t evicted = 0;
    for (auto it = windows_.begin(); it != windows_.end();) {
      evicted += it->second.BulkEvict(lo);
      it = it->second.empty() ? windows_.erase(it) : std::next(it);
    }
    return evicted;
  }

  /// Visits every (key, answer) pair at the current watermark.
  template <typename F>
  void ForEach(F&& f) {
    const uint64_t lo = WindowLow();
    const uint64_t wm = watermark();
    for (auto& [key, agg] : windows_) f(key, agg.RangeQuery(lo, wm));
  }

  uint64_t watermark() const {
    return max_ts_ > lateness_ ? max_ts_ - lateness_ : 0;
  }
  uint64_t range() const { return range_; }
  uint64_t lateness() const { return lateness_; }
  uint64_t late_dropped() const { return late_dropped_; }
  std::size_t key_count() const { return windows_.size(); }

  std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    for (const auto& [key, agg] : windows_) {
      bytes += sizeof(key) + agg.memory_bytes();
    }
    return bytes;
  }

 private:
  /// Oldest event time the current window covers: wm − range + 1
  /// (saturating), since the window is (wm − range, wm].
  uint64_t WindowLow() const {
    const uint64_t wm = watermark();
    return wm >= range_ ? wm - range_ + 1 : 0;
  }

  uint64_t range_;
  uint64_t lateness_;
  std::unordered_map<uint64_t, Agg> windows_;
  uint64_t max_ts_ = 0;
  uint64_t late_dropped_ = 0;
};

}  // namespace slick::engine

