#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/counters.h"
#include "telemetry/histogram.h"

namespace slick::telemetry {

/// Point-in-time view of one shard of the parallel runtime. All fields are
/// plain integers (the atomics were read once, with relaxed loads); the
/// conservation identity the fuzz tests check is
///
///   tuples_in == tuples_out + in_flight
///
/// exactly at a quiescent cut (epoch snapshot / after stop()), and within
/// the one in-transit batch otherwise.
struct ShardSnapshot {
  uint64_t tuples_in = 0;       ///< admitted into the shard ring
  uint64_t tuples_out = 0;      ///< slid into the shard aggregator
  uint64_t dropped = 0;         ///< shed by backpressure (never admitted)
  uint64_t batches = 0;         ///< worker drain batches
  uint64_t idle_polls = 0;      ///< zero-length drain polls (ring empty)
  uint64_t in_flight = 0;       ///< published, not yet claimed by the worker
  uint64_t unreleased = 0;      ///< claimed replay log, pre-checkpoint
  uint64_t staged = 0;          ///< router-side staging, not yet admitted
  uint64_t ring_highwater = 0;  ///< max ring occupancy ever observed
  uint64_t watermark_lag = 0;   ///< tuples_in - tuples_out when sampled
  uint64_t combines = 0;        ///< ⊕ applications (when op-counting is on)
  uint64_t inverses = 0;        ///< ⊖ applications (when op-counting is on)
  // Fault-tolerance view (DESIGN.md §12, RUNBOOK.md). Zero when fault-free.
  uint64_t worker_restarts = 0;      ///< fail-stops recovered on this shard
  uint64_t checkpoints = 0;          ///< validated checkpoints committed
  uint64_t checkpoint_failures = 0;  ///< checkpoints discarded at write
  uint64_t replayed = 0;             ///< tuples re-slid after restores
  uint64_t deadline_expiries = 0;    ///< kBlockWithDeadline timeouts
  uint64_t stall_detections = 0;     ///< heartbeat-stall transitions
  uint64_t heartbeat_age_ns = 0;     ///< now - last worker loop iteration
  // Shm lease reaper view (DESIGN.md §17). Zero for in-process rings.
  uint64_t leases_reclaimed = 0;  ///< dead/expired producer leases freed
  uint64_t slots_tombstoned = 0;  ///< abandoned claim slots repaired
  uint64_t zombie_fences = 0;     ///< fences applied to still-live pids
  /// Event-time mode (DESIGN.md §13): max event ts drained by this shard.
  /// Zero in count-based mode. In event mode `watermark_lag` above is
  /// re-expressed in EVENT TIME (max ts routed to the shard − watermark),
  /// the real lag a stuck-watermark triage reads (RUNBOOK.md).
  uint64_t watermark = 0;
};

/// Point-in-time view of one ingest-server connection (net::IngestServer).
/// Counters are cumulative since accept; closed connections are retained
/// so a post-mortem snapshot still accounts for every frame.
struct ConnectionSnapshot {
  uint64_t id = 0;                 ///< accept-order connection id
  bool open = false;               ///< still connected when sampled
  uint64_t frames = 0;             ///< well-formed frames decoded
  uint64_t frame_errors = 0;       ///< typed FrameErrors (connection fatal)
  uint64_t tuples_accepted = 0;    ///< handed to the sink
  uint64_t tuples_dropped = 0;     ///< shed by the backpressure policy
  uint64_t deadline_expiries = 0;  ///< kBlockWithDeadline timeouts
};

/// Point-in-time view of the TCP front door: totals plus per-connection
/// counters and the merged ingest-latency histogram (frame decode start to
/// sink handoff, nanoseconds).
struct IngestSnapshot {
  uint64_t connections_opened = 0;
  uint64_t connections_open = 0;
  uint64_t connections_closed_on_error = 0;  ///< protocol-error closes
  uint64_t frames = 0;
  uint64_t frame_errors = 0;
  uint64_t tuples_accepted = 0;
  uint64_t tuples_dropped = 0;
  uint64_t deadline_expiries = 0;
  uint64_t idle_closes = 0;  ///< half-open connections closed by idle_ns
  LatencyHistogram::Snapshot ingest_latency_ns;
  std::vector<ConnectionSnapshot> connections;
};

/// Point-in-time view of the whole parallel runtime: per-shard flow
/// counters plus the merged per-batch drain-latency histogram.
struct RuntimeSnapshot {
  std::vector<ShardSnapshot> shards;
  LatencyHistogram::Snapshot batch_latency_ns;  ///< merged across shards
  LatencyHistogram::Snapshot batch_sizes;       ///< drained elements/batch
  const char* backpressure = "block";  ///< engine ring-full policy name
  uint64_t checkpoint_interval = 0;    ///< tuples per checkpoint; 0 = off
  /// Front-door view, attached by the caller when an IngestServer fronts
  /// this runtime (rs.ingest = server.snapshot(); rs.has_ingest = true).
  IngestSnapshot ingest;
  bool has_ingest = false;

  uint64_t total_in() const { return Sum(&ShardSnapshot::tuples_in); }
  uint64_t total_out() const { return Sum(&ShardSnapshot::tuples_out); }
  uint64_t total_dropped() const { return Sum(&ShardSnapshot::dropped); }
  uint64_t total_in_flight() const { return Sum(&ShardSnapshot::in_flight); }
  uint64_t total_staged() const { return Sum(&ShardSnapshot::staged); }
  uint64_t total_restarts() const {
    return Sum(&ShardSnapshot::worker_restarts);
  }
  uint64_t total_replayed() const { return Sum(&ShardSnapshot::replayed); }

 private:
  uint64_t Sum(uint64_t ShardSnapshot::* field) const {
    uint64_t n = 0;
    for (const ShardSnapshot& s : shards) n += s.*field;
    return n;
  }
};

}  // namespace slick::telemetry

