#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/counters.h"
#include "util/stats.h"

namespace slick::telemetry {

/// Fixed-size log-bucketed latency histogram (HDR-style): the value range
/// [0, 2^64) is covered by octaves, each split into kSubBuckets = 2^6
/// power-of-two sub-buckets, so any recorded value lands in a bucket whose
/// width is at most value / 64 — a guaranteed relative error of
/// 2^-kSubBucketBits ≈ 1.6% per estimate, independent of the distribution.
/// Values below 128 are bucketed exactly (width-1 buckets).
///
/// Record() is wait-free: one relaxed fetch_add into the bucket array plus
/// one into the running sum — no CAS loops, no locks, no allocation — so
/// worker threads can record on the hot path while a coordinator snapshots
/// concurrently. Min/max are derived from the lowest/highest non-empty
/// bucket (same bucket-relative error), which is what keeps recording free
/// of retry loops.
///
/// Unlike the bench-side LatencyRecorder (which stores every sample and
/// sorts at the end), memory is constant: kBucketCount buckets ≈ 30 KiB,
/// regardless of how many samples are recorded. MergeFrom() folds another
/// histogram in (associative + commutative on the underlying counts), which
/// is how per-shard histograms become one engine-wide distribution.
class LatencyHistogram {
 public:
  static constexpr uint32_t kSubBucketBits = 6;
  static constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;
  /// Octave 0 (values < 2^(kSubBucketBits+1)) uses 2*kSubBuckets exact
  /// buckets; each of the remaining 64 - (kSubBucketBits+1) octaves adds
  /// kSubBuckets more: (64 - kSubBucketBits + 1) * kSubBuckets total.
  static constexpr std::size_t kBucketCount =
      (64 - kSubBucketBits + 1) * kSubBuckets;  // 3776 buckets ≈ 29.5 KiB
  /// Documented per-estimate relative error bound (one bucket's width
  /// relative to its lower bound).
  static constexpr double kRelativeError =
      1.0 / static_cast<double>(kSubBuckets);

  LatencyHistogram()
      : buckets_(std::make_unique<std::atomic<uint64_t>[]>(kBucketCount)) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      // relaxed: pre-publication zeroing — no other thread can hold a
      // reference to a histogram still under construction.
      buckets_[i].store(0, std::memory_order_relaxed);
    }
  }

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Maps a value to its bucket index. Exact for v < 2*kSubBuckets; above
  /// that the top kSubBucketBits+1 significant bits select the bucket.
  static std::size_t BucketIndex(uint64_t v) {
    if (v < 2 * kSubBuckets) return static_cast<std::size_t>(v);
    const uint32_t exp = 63u - static_cast<uint32_t>(__builtin_clzll(v));
    const uint32_t shift = exp - kSubBucketBits;
    return static_cast<std::size_t>(shift * kSubBuckets + (v >> shift));
  }

  /// Inclusive [lower, upper] value range covered by bucket `i`.
  static uint64_t BucketLower(std::size_t i) {
    if (i < 2 * kSubBuckets) return static_cast<uint64_t>(i);
    const uint64_t shift = i / kSubBuckets - 1;
    return (static_cast<uint64_t>(i) - shift * kSubBuckets) << shift;
  }
  static uint64_t BucketUpper(std::size_t i) {
    if (i < 2 * kSubBuckets) return static_cast<uint64_t>(i);
    const uint64_t shift = i / kSubBuckets - 1;
    return BucketLower(i) + ((uint64_t{1} << shift) - 1);
  }

  /// Wait-free, thread-safe: two relaxed fetch_adds.
  void Record(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Folds `other`'s counts into this histogram. Safe against concurrent
  /// Record() on either side (counts are transferred with relaxed atomics;
  /// a sample is never lost, though a racing snapshot may see it in
  /// transit).
  void MergeFrom(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      const uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }

  /// Drops every recorded sample (not linearizable against concurrent
  /// Record; quiesce first if exact conservation matters). relaxed stores:
  /// counts are pure data, nothing is published through them.
  void Reset() {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      buckets_[i].store(0, std::memory_order_relaxed);
    }
    sum_.store(0, std::memory_order_relaxed);
  }

  uint64_t TotalCount() const {
    // relaxed: statistical read — a racing Record() may or may not be
    // counted, which any live-telemetry reader already tolerates.
    uint64_t n = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      n += buckets_[i].load(std::memory_order_relaxed);
    }
    return n;
  }

  struct Snapshot;
  Snapshot TakeSnapshot() const;

  std::size_t memory_bytes() const {
    return sizeof(*this) + kBucketCount * sizeof(std::atomic<uint64_t>);
  }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  // Every Record() hits sum_; its own cache line keeps that fetch_add from
  // false-sharing with whatever neighbors the enclosing object packs next
  // to the histogram.
  alignas(kCacheLine) std::atomic<uint64_t> sum_{0};
};

/// A plain (non-atomic) copy of a histogram's state: what exporters,
/// quantile queries and the property tests operate on. Merge() over
/// snapshots is exactly element-wise addition, hence associative and
/// commutative — the property the tests pin down.
struct LatencyHistogram::Snapshot {
  std::vector<uint64_t> counts;  // kBucketCount entries
  uint64_t sum = 0;

  uint64_t total() const {
    uint64_t n = 0;
    for (uint64_t c : counts) n += c;
    return n;
  }

  void Merge(const Snapshot& other) {
    if (counts.empty()) counts.assign(kBucketCount, 0);
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
    sum += other.sum;
  }

  /// Representative value of bucket `i`: the midpoint of its range, which
  /// halves the worst-case estimate error vs. either bound.
  static double BucketValue(std::size_t i) {
    return 0.5 * (static_cast<double>(BucketLower(i)) +
                  static_cast<double>(BucketUpper(i)));
  }

  /// Nearest-rank quantile estimate, q in [0, 1]: the representative value
  /// of the bucket containing order statistic round(q * (n - 1)). Matches
  /// util::PercentileSorted's rank convention up to interpolation; the
  /// estimate is within kRelativeError of the true order statistic.
  /// Returns 0 for an empty histogram.
  double Quantile(double q) const {
    const uint64_t n = total();
    if (n == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const auto rank = static_cast<uint64_t>(
        q * static_cast<double>(n - 1) + 0.5);  // nearest rank, 0-based
    uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      seen += counts[i];
      if (seen > rank) return BucketValue(i);
    }
    return MaxEstimate();
  }

  double MinEstimate() const {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != 0) return BucketValue(i);
    }
    return 0.0;
  }

  double MaxEstimate() const {
    for (std::size_t i = counts.size(); i-- > 0;) {
      if (counts[i] != 0) return BucketValue(i);
    }
    return 0.0;
  }

  /// The exact mean (the sum is tracked exactly, not bucketed).
  double Mean() const {
    const uint64_t n = total();
    return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
  }

  /// The paper's Exp-3 report (min/p25/median/p75/p99/p99.9/max/avg) from
  /// bucket counts alone — same shape as util::Summarize but O(buckets)
  /// memory and no sample storage.
  util::LatencySummary Summarize() const {
    util::LatencySummary s;
    s.count = total();
    if (s.count == 0) return s;
    s.min_ns = MinEstimate();
    s.p25_ns = Quantile(0.25);
    s.median_ns = Quantile(0.50);
    s.p75_ns = Quantile(0.75);
    s.p99_ns = Quantile(0.99);
    s.p999_ns = Quantile(0.999);
    s.max_ns = MaxEstimate();
    s.avg_ns = Mean();
    return s;
  }
};

inline LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  // relaxed: same statistical-read contract as TotalCount() — snapshots
  // race benignly with Record(); a sample lands in this snapshot or the
  // next, never torn and never lost from the histogram itself.
  Snapshot s;
  s.counts.resize(kBucketCount);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace slick::telemetry

