#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace slick::telemetry {

inline constexpr std::size_t kCacheLine = 64;

/// Monotonic event counter on its own cache line, so counters owned by
/// different threads (one ShardCounters per shard) never false-share.
/// Add() is a single relaxed fetch_add — wait-free, safe from any thread.
struct alignas(kCacheLine) Counter {
  std::atomic<uint64_t> v{0};

  void Add(uint64_t n = 1) { v.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Get() const { return v.load(std::memory_order_relaxed); }
  void Reset() { v.store(0, std::memory_order_relaxed); }
  /// Rewind/overwrite — used by crash recovery to reset a counter to the
  /// restored checkpoint's value before the replay re-accumulates it. Only
  /// call while the counting thread is quiescent (joined).
  void Set(uint64_t x) { v.store(x, std::memory_order_relaxed); }
};

/// Last-value gauge (e.g. current watermark, ring occupancy at sample
/// time). Single relaxed store/load.
struct alignas(kCacheLine) Gauge {
  std::atomic<uint64_t> v{0};

  void Set(uint64_t x) { v.store(x, std::memory_order_relaxed); }
  uint64_t Get() const { return v.load(std::memory_order_relaxed); }
};

/// High-water gauge with a SINGLE-WRITER update protocol: Observe() does a
/// plain load-compare-store (no CAS loop), which is race-free because only
/// the owning thread ever writes it — exactly the shape of the per-ring
/// occupancy high-water, which only the producer samples. Readers on other
/// threads use relaxed loads.
struct alignas(kCacheLine) MaxGauge {
  std::atomic<uint64_t> v{0};

  void Observe(uint64_t x) {
    if (x > v.load(std::memory_order_relaxed)) {
      v.store(x, std::memory_order_relaxed);
    }
  }
  uint64_t Get() const { return v.load(std::memory_order_relaxed); }
  void Reset() { v.store(0, std::memory_order_relaxed); }
};

/// Per-shard registry of the parallel runtime's flow metrics. One instance
/// per shard, each field cache-line-padded; the router writes the ingress
/// side, the worker writes the egress side, and a snapshot thread reads
/// everything with relaxed loads. The conservation law the fuzz tests
/// assert at every epoch:
///
///   tuples_in == tuples_out + (in-flight in the ring)
///
/// with dropped counted separately (shed before ever becoming tuples_in).
struct ShardCounters {
  Counter tuples_in;   ///< admitted into the shard ring (router)
  Counter tuples_out;  ///< slid into the shard aggregator (worker)
  Counter dropped;     ///< shed by a backpressure policy (router)
  Counter batches;     ///< worker drain batches (worker)
  Counter idle_polls;  ///< zero-length drain polls — ring empty when the
                       ///< worker looked; kept out of the batch-size
                       ///< histogram so it reflects real batches (worker)
  Counter combines;    ///< ⊕ applications attributed to this shard
  Counter inverses;    ///< ⊖ applications attributed to this shard
  // Fault-tolerance metrics (DESIGN.md §12; see RUNBOOK.md for how to
  // read them). All zero on a fault-free run.
  Counter restarts;             ///< worker fail-stops recovered (supervisor)
  Counter checkpoints;          ///< validated checkpoints committed (worker)
  Counter checkpoint_failures;  ///< checkpoints discarded at write (worker)
  Counter replayed;             ///< tuples re-slid after a restore (recovery)
  Counter deadline_expiries;    ///< kBlockWithDeadline timeouts (router)
  Counter stall_detections;     ///< heartbeat-stall transitions (supervisor)
  /// Event-time mode (DESIGN.md §13): the shard's low watermark — the
  /// maximum event timestamp the worker has drained into its OoO tree
  /// (worker-written; reset by recovery to the restored tree's newest
  /// entry). The runtime's global watermark is the minimum across shards,
  /// and `max routed ts − watermark` is the true event-time lag. Stays 0
  /// in count-based mode.
  Gauge watermark;
};

/// Engine-level tallies for the single-thread ACQ engines. Kept as plain
/// (non-atomic) integers: the engines are single-threaded by contract, and
/// the compile-time sink (see sink.h) decides whether these are maintained
/// at all.
struct EngineCounters {
  uint64_t tuples_in = 0;   ///< raw stream elements pushed
  uint64_t partials = 0;    ///< completed partials slid into the window
  uint64_t answers = 0;     ///< query answers emitted
  uint64_t queries = 0;     ///< explicit query() calls (sharded engines)
  uint64_t panes_closed = 0;    ///< time engine: panes fed downstream
  uint64_t panes_empty = 0;     ///< time engine: identity (gap) panes
  uint64_t watermark = 0;       ///< time engine: latest closed-pane end ts
};

}  // namespace slick::telemetry

