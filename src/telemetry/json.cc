#include "telemetry/json.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace slick::telemetry {
namespace {

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

void AppendU64(std::string& out, const char* key, uint64_t v, bool comma) {
  AppendF(out, "\"%s\":%" PRIu64 "%s", key, v, comma ? "," : "");
}

void AppendDouble(std::string& out, const char* key, double v, bool comma) {
  AppendF(out, "\"%s\":%.1f%s", key, v, comma ? "," : "");
}

}  // namespace

std::string ToJson(const LatencyHistogram::Snapshot& h) {
  std::string out = "{";
  AppendU64(out, "count", h.total(), true);
  AppendU64(out, "sum", h.sum, true);
  AppendDouble(out, "min", h.MinEstimate(), true);
  AppendDouble(out, "p25", h.Quantile(0.25), true);
  AppendDouble(out, "p50", h.Quantile(0.50), true);
  AppendDouble(out, "p75", h.Quantile(0.75), true);
  AppendDouble(out, "p99", h.Quantile(0.99), true);
  AppendDouble(out, "p999", h.Quantile(0.999), true);
  AppendDouble(out, "max", h.MaxEstimate(), true);
  AppendDouble(out, "avg", h.Mean(), true);
  out += "\"buckets\":{";
  bool first = true;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    AppendF(out, "\"%" PRIu64 "\":%" PRIu64, LatencyHistogram::BucketLower(i),
            h.counts[i]);
  }
  out += "}}";
  return out;
}

std::string ToJson(const ShardSnapshot& s) {
  std::string out = "{";
  AppendU64(out, "tuples_in", s.tuples_in, true);
  AppendU64(out, "tuples_out", s.tuples_out, true);
  AppendU64(out, "dropped", s.dropped, true);
  AppendU64(out, "batches", s.batches, true);
  AppendU64(out, "idle_polls", s.idle_polls, true);
  AppendU64(out, "in_flight", s.in_flight, true);
  AppendU64(out, "unreleased", s.unreleased, true);
  AppendU64(out, "staged", s.staged, true);
  AppendU64(out, "ring_highwater", s.ring_highwater, true);
  AppendU64(out, "watermark_lag", s.watermark_lag, true);
  AppendU64(out, "combines", s.combines, true);
  AppendU64(out, "inverses", s.inverses, true);
  AppendU64(out, "worker_restarts", s.worker_restarts, true);
  AppendU64(out, "checkpoints", s.checkpoints, true);
  AppendU64(out, "checkpoint_failures", s.checkpoint_failures, true);
  AppendU64(out, "replayed", s.replayed, true);
  AppendU64(out, "deadline_expiries", s.deadline_expiries, true);
  AppendU64(out, "stall_detections", s.stall_detections, true);
  AppendU64(out, "heartbeat_age_ns", s.heartbeat_age_ns, true);
  AppendU64(out, "leases_reclaimed", s.leases_reclaimed, true);
  AppendU64(out, "slots_tombstoned", s.slots_tombstoned, true);
  AppendU64(out, "zombie_fences", s.zombie_fences, true);
  AppendU64(out, "watermark", s.watermark, false);
  out += "}";
  return out;
}

std::string ToJson(const ConnectionSnapshot& c) {
  std::string out = "{";
  AppendU64(out, "id", c.id, true);
  AppendF(out, "\"open\":%s,", c.open ? "true" : "false");
  AppendU64(out, "frames", c.frames, true);
  AppendU64(out, "frame_errors", c.frame_errors, true);
  AppendU64(out, "tuples_accepted", c.tuples_accepted, true);
  AppendU64(out, "tuples_dropped", c.tuples_dropped, true);
  AppendU64(out, "deadline_expiries", c.deadline_expiries, false);
  out += "}";
  return out;
}

std::string ToJson(const IngestSnapshot& s) {
  std::string out = "{";
  AppendU64(out, "connections_opened", s.connections_opened, true);
  AppendU64(out, "connections_open", s.connections_open, true);
  AppendU64(out, "connections_closed_on_error", s.connections_closed_on_error,
            true);
  AppendU64(out, "frames", s.frames, true);
  AppendU64(out, "frame_errors", s.frame_errors, true);
  AppendU64(out, "tuples_accepted", s.tuples_accepted, true);
  AppendU64(out, "tuples_dropped", s.tuples_dropped, true);
  AppendU64(out, "deadline_expiries", s.deadline_expiries, true);
  AppendU64(out, "idle_closes", s.idle_closes, true);
  out += "\"connections\":[";
  for (std::size_t i = 0; i < s.connections.size(); ++i) {
    if (i != 0) out += ",";
    out += ToJson(s.connections[i]);
  }
  out += "],\"ingest_latency_ns\":";
  out += ToJson(s.ingest_latency_ns);
  out += "}";
  return out;
}

std::string ToJson(const RuntimeSnapshot& r) {
  std::string out = "{";
  AppendU64(out, "total_in", r.total_in(), true);
  AppendU64(out, "total_out", r.total_out(), true);
  AppendU64(out, "total_dropped", r.total_dropped(), true);
  AppendU64(out, "total_in_flight", r.total_in_flight(), true);
  AppendU64(out, "total_staged", r.total_staged(), true);
  AppendU64(out, "total_restarts", r.total_restarts(), true);
  AppendU64(out, "total_replayed", r.total_replayed(), true);
  AppendF(out, "\"backpressure\":\"%s\",", r.backpressure);
  AppendU64(out, "checkpoint_interval", r.checkpoint_interval, true);
  out += "\"shards\":[";
  for (std::size_t i = 0; i < r.shards.size(); ++i) {
    if (i != 0) out += ",";
    out += ToJson(r.shards[i]);
  }
  out += "],\"batch_latency_ns\":";
  out += ToJson(r.batch_latency_ns);
  out += ",\"batch_sizes\":";
  out += ToJson(r.batch_sizes);
  if (r.has_ingest) {
    out += ",\"ingest\":";
    out += ToJson(r.ingest);
  }
  out += "}";
  return out;
}

std::string ToJson(const EngineCounters& c) {
  std::string out = "{";
  AppendU64(out, "tuples_in", c.tuples_in, true);
  AppendU64(out, "partials", c.partials, true);
  AppendU64(out, "answers", c.answers, true);
  AppendU64(out, "queries", c.queries, true);
  AppendU64(out, "panes_closed", c.panes_closed, true);
  AppendU64(out, "panes_empty", c.panes_empty, true);
  AppendU64(out, "watermark", c.watermark, false);
  out += "}";
  return out;
}

}  // namespace slick::telemetry
