#pragma once

#include <cstdint>

#include "telemetry/counters.h"
#include "telemetry/histogram.h"

namespace slick::telemetry {

// The single-thread engines (AcqEngine, TimeAcqEngine, RoundRobinSharded)
// are instrumented through a SINK TYPE chosen at compile time, so the
// disabled configuration costs literally nothing: NullEngineSink's methods
// are empty inline functions on an empty [[no_unique_address]] member, and
// the optimizer deletes every call site — tier-1 throughput (e.g.
// bench/micro_aggregators) is bit-identical to the uninstrumented build.
// Opting in is a template argument (AcqEngine<Agg, CountingEngineSink>),
// not a runtime flag, so the hot loop never branches on "is telemetry on".
//
// The multi-threaded runtime (src/runtime/) is instrumented always-on
// instead: its counters are bumped once per BATCH, not per element, so the
// cost is already amortized below measurement noise, and a dark parallel
// runtime would defeat the point of serving-time observability.

/// Zero-cost default: every hook is an empty inline no-op.
struct NullEngineSink {
  static constexpr bool kEnabled = false;
  /// Latency recording implies clock reads around the hot path; sinks that
  /// want it set kLatency so the engine can skip the clock entirely
  /// otherwise.
  static constexpr bool kLatency = false;

  void OnTuple() {}
  void OnPartial() {}
  void OnAnswer(uint64_t /*n*/ = 1) {}
  void OnQuery() {}
  void OnPaneClose(bool /*empty*/, uint64_t /*watermark*/) {}
  void OnLatency(uint64_t /*ns*/) {}
};

/// Counter-only sink: plain uint64 increments (the engines are
/// single-threaded by contract). No clocks, no histogram.
struct CountingEngineSink {
  static constexpr bool kEnabled = true;
  static constexpr bool kLatency = false;

  EngineCounters counters;

  void OnTuple() { ++counters.tuples_in; }
  void OnPartial() { ++counters.partials; }
  void OnAnswer(uint64_t n = 1) { counters.answers += n; }
  void OnQuery() { ++counters.queries; }
  void OnPaneClose(bool empty, uint64_t watermark) {
    ++counters.panes_closed;
    if (empty) ++counters.panes_empty;
    counters.watermark = watermark;
  }
  void OnLatency(uint64_t /*ns*/) {}
};

/// Full sink: counters plus a log-bucketed per-push latency histogram.
/// The engine brackets each Push with clock reads only when kLatency is
/// set (if constexpr), so CountingEngineSink users still pay no clock.
struct HistogramEngineSink {
  static constexpr bool kEnabled = true;
  static constexpr bool kLatency = true;

  EngineCounters counters;
  LatencyHistogram latency;

  void OnTuple() { ++counters.tuples_in; }
  void OnPartial() { ++counters.partials; }
  void OnAnswer(uint64_t n = 1) { counters.answers += n; }
  void OnQuery() { ++counters.queries; }
  void OnPaneClose(bool empty, uint64_t watermark) {
    ++counters.panes_closed;
    if (empty) ++counters.panes_empty;
    counters.watermark = watermark;
  }
  void OnLatency(uint64_t ns) { latency.Record(ns); }
};

}  // namespace slick::telemetry

