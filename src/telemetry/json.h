#pragma once

#include <string>

#include "telemetry/counters.h"
#include "telemetry/histogram.h"
#include "telemetry/snapshot.h"

namespace slick::telemetry {

/// JSON renderings of the telemetry snapshots, for `tools/telemetry_dump`
/// and any external scraper. No external JSON dependency: the shapes are
/// fixed, so the writers are straight-line code.
///
/// Histogram JSON carries the summary percentiles plus a sparse
/// `{bucket_lower: count}` dump of the non-empty buckets, which is enough
/// to re-derive any quantile offline.
std::string ToJson(const LatencyHistogram::Snapshot& h);
std::string ToJson(const ShardSnapshot& s);
std::string ToJson(const ConnectionSnapshot& c);
std::string ToJson(const IngestSnapshot& s);
std::string ToJson(const RuntimeSnapshot& r);
std::string ToJson(const EngineCounters& c);

}  // namespace slick::telemetry

