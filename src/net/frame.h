#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/annotations.h"
#include "util/serde.h"

namespace slick::net {

/// One ingest tuple on the wire: an event timestamp plus the value, raw
/// little-endian host layout (the front door is a loopback/LAN protocol
/// between like machines, matching the checkpoint serde's convention).
/// 16 bytes, no padding — the static_asserts pin the layout so a batch of
/// tuples can be memcpy'd straight out of a verified frame payload.
struct WireTuple {
  uint64_t ts = 0;
  double v = 0.0;
};
static_assert(std::is_trivially_copyable_v<WireTuple>);
static_assert(sizeof(WireTuple) == 16, "wire layout must be 16 bytes");

/// Ingest batch payload tag/version ('SIGB'), nested inside the standard
/// CRC32 frame from util/serde.h ('SLKF'). Full wire format of one frame:
///
///   u32 'SLKF' | u32 frame_version | u64 payload_size | u32 crc32(payload)
///   | payload:  u32 'SIGB' | u32 batch_version | u64 count
///             | count * WireTuple (raw 16-byte records)
///
/// DESIGN.md §14.2 documents the format and its failure taxonomy.
inline constexpr uint32_t kIngestBatchTag = util::MakeTag('S', 'I', 'G', 'B');
inline constexpr uint32_t kIngestBatchVersion = 1;

/// Frame header size: magic + version + payload size + CRC32.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8 + 4;

/// Batch payload header size: tag + version + count.
inline constexpr std::size_t kBatchHeaderBytes = 4 + 4 + 8;

namespace detail {
template <typename T>
  requires std::is_trivially_copyable_v<T>
void AppendPod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
T LoadPod(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
}  // namespace detail

/// Appends one complete frame carrying `n` tuples to `out`. The client's
/// send path and the tests' golden-frame builders share this single
/// encoder, so a decoder bug cannot hide behind a matching encoder bug in
/// only one of them.
inline void EncodeBatch(const WireTuple* tuples, std::size_t n,
                        std::string* out) {
  std::string payload;
  payload.reserve(kBatchHeaderBytes + n * sizeof(WireTuple));
  detail::AppendPod(payload, kIngestBatchTag);
  detail::AppendPod(payload, kIngestBatchVersion);
  detail::AppendPod(payload, static_cast<uint64_t>(n));
  if (n > 0) {
    payload.append(reinterpret_cast<const char*>(tuples),
                   n * sizeof(WireTuple));
  }
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  detail::AppendPod(*out, util::kFrameMagic);
  detail::AppendPod(*out, util::kFrameVersion);
  detail::AppendPod(*out, static_cast<uint64_t>(payload.size()));
  detail::AppendPod(*out, util::Crc32(payload));
  out->append(payload);
}

/// Incremental frame decoder for a TCP byte stream. Feed() buffers raw
/// bytes exactly as recv() produced them — frames may arrive split across
/// any number of reads, or many frames inside one read — and Next() peels
/// off one complete, CRC-verified batch at a time.
///
/// Failure taxonomy (the adversarial serde tests pin this down):
///  - kNeedMore is NOT an error: the buffered prefix is consistent with a
///    valid frame that has not fully arrived yet.
///  - Any hard error (bad magic, unknown version, oversized declared
///    payload, CRC mismatch, malformed batch payload) poisons the decoder:
///    error() holds the typed util::FrameError and every further Next()
///    returns kError. A poisoned stream cannot be resynchronized — the
///    framing carries no resync markers — so the connection must be
///    dropped, which is exactly what IngestServer does.
///  - No failure mode ever yields a partial tuple or reads past the
///    buffer: tuples are only surfaced from a payload whose CRC verified
///    and whose declared count matches its byte length exactly.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     ///< one verified batch was written to *out
    kNeedMore,  ///< no complete frame buffered yet — feed more bytes
    kError,     ///< hard protocol error; see error(). Decoder is poisoned.
  };

  /// `max_frame_bytes` bounds the DECLARED payload size a peer can make
  /// the decoder buffer — the memory-safety guard against a hostile or
  /// corrupt length field (a 2^60 declared size must not become a resize).
  explicit FrameDecoder(std::size_t max_frame_bytes = std::size_t{1} << 20)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw received bytes. Cheap; all parsing happens in Next().
  SLICK_REALTIME_ALLOW(
      "bounded buffering: append is capped by the frame-size admission "
      "check (max_frame_bytes), and steady-state appends reuse the "
      "buffer capacity Next() compacts")
  void Feed(const char* data, std::size_t len) { buf_.append(data, len); }

  /// Tries to decode one frame into *out (overwriting it). Compacts the
  /// internal buffer as frames are consumed.
  SLICK_NODISCARD SLICK_REALTIME_ALLOW(
      "steady-state decode reuses the caller's vector capacity; growth "
      "is bounded by max_frame_bytes / sizeof(WireTuple)")
  Status Next(std::vector<WireTuple>* out) {
    if (error_ != util::FrameError::kOk) return Status::kError;
    if (buf_.size() < kFrameHeaderBytes) return Status::kNeedMore;
    const char* p = buf_.data();
    if (detail::LoadPod<uint32_t>(p) != util::kFrameMagic) {
      return Poison(util::FrameError::kBadMagic);
    }
    if (detail::LoadPod<uint32_t>(p + 4) != util::kFrameVersion) {
      return Poison(util::FrameError::kBadVersion);
    }
    const uint64_t size = detail::LoadPod<uint64_t>(p + 8);
    if (size > max_frame_bytes_) {
      // Same classification the checkpoint reader gives an absurd size
      // field: the declared length cannot belong to a well-formed stream.
      return Poison(util::FrameError::kTruncated);
    }
    if (buf_.size() - kFrameHeaderBytes < size) return Status::kNeedMore;
    const uint32_t crc = detail::LoadPod<uint32_t>(p + 16);
    const std::string_view payload(p + kFrameHeaderBytes,
                                   static_cast<std::size_t>(size));
    if (util::Crc32(payload) != crc) {
      return Poison(util::FrameError::kCrcMismatch);
    }
    if (!DecodePayload(payload, out)) {
      return Poison(util::FrameError::kBadPayload);
    }
    buf_.erase(0, kFrameHeaderBytes + static_cast<std::size_t>(size));
    return Status::kFrame;
  }

  /// The typed error that poisoned the decoder; kOk while healthy.
  SLICK_NODISCARD util::FrameError error() const { return error_; }

  /// Bytes buffered but not yet consumed by a completed frame.
  std::size_t buffered() const { return buf_.size(); }

 private:
  SLICK_NODISCARD Status Poison(util::FrameError e) {
    error_ = e;
    return Status::kError;
  }

  static bool DecodePayload(std::string_view payload,
                            std::vector<WireTuple>* out) {
    if (payload.size() < kBatchHeaderBytes) return false;
    const char* p = payload.data();
    if (detail::LoadPod<uint32_t>(p) != kIngestBatchTag) return false;
    if (detail::LoadPod<uint32_t>(p + 4) != kIngestBatchVersion) return false;
    const uint64_t count = detail::LoadPod<uint64_t>(p + 8);
    // The declared count must match the payload byte length EXACTLY —
    // trailing garbage and short tuple data are both malformed, so a
    // decoded batch can never contain a partial tuple. Compare by
    // division, never `count * sizeof(WireTuple)`: that multiply wraps
    // mod 2^64, so a crafted count (e.g. 2^60 with a 0-tuple body) would
    // pass the equality and turn the resize below into a length_error
    // thrown on the event-loop thread.
    const std::size_t body = payload.size() - kBatchHeaderBytes;
    if (body % sizeof(WireTuple) != 0 || body / sizeof(WireTuple) != count) {
      return false;
    }
    out->resize(static_cast<std::size_t>(count));
    if (count > 0) {
      std::memcpy(out->data(), p + kBatchHeaderBytes,
                  static_cast<std::size_t>(count) * sizeof(WireTuple));
    }
    return true;
  }

  std::size_t max_frame_bytes_;
  std::string buf_;
  util::FrameError error_ = util::FrameError::kOk;
};

}  // namespace slick::net
