#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "util/annotations.h"
#include "runtime/parallel_engine.h"
#include "telemetry/histogram.h"
#include "telemetry/snapshot.h"

namespace slick::net {

/// TCP front door for the parallel runtime (DESIGN.md §14): an epoll-based
/// ingest server speaking the framed binary batch protocol of net/frame.h.
/// Each event-loop thread owns the connections it accepted (the listener is
/// shared via EPOLLEXCLUSIVE, so the kernel load-balances accepts) and
/// drives one TrySink obtained from the factory at loop startup — with an
/// MpmcRing-backed engine, each loop wraps its own engine Producer handle,
/// so N loops feed shard rings concurrently with no router hop.
///
/// Backpressure (the same five policies as the engine router, applied at
/// the connection edge when the sink accepts only part of a batch):
///  - kBlock: the remainder parks in a per-connection pending buffer and
///    the connection's fd stops being read (TCP flow control pushes back on
///    the client) until the sink drains it. Lossless.
///  - kBlockWithDeadline: as kBlock, but a pending buffer older than
///    Options::deadline_ns is shed and counted as a deadline expiry.
///  - kDropNewest: the unaccepted remainder is shed immediately.
///  - kShedOldest: never stalls — sheds the oldest unadmitted tuple and
///    keeps admitting, so the admitted stream is the freshest suffix.
///  - kError: a partial accept aborts (for pipelines sized never to block).
///
/// Protocol errors (bad magic/version, oversize, CRC mismatch, malformed
/// batch) are unrecoverable per connection — the stream has no resync
/// markers — so the connection is counted and closed; the server and every
/// other connection keep serving. Closed connections are retained for
/// post-mortem snapshots (their counters stay in snapshot()).
class IngestServer {
 public:
  /// Non-blocking admission attempt: hand up to `n` decoded tuples
  /// downstream, returning how many were accepted (0..n, in order). Must
  /// not park — blocking semantics are the server's job (pending buffers +
  /// fd flow control), so a sink that blocks stalls its whole event loop.
  using TrySink = std::function<std::size_t(const WireTuple*, std::size_t)>;

  /// Called once per event loop, from that loop's own thread, before it
  /// serves — so the sink it returns (e.g. an engine Producer handle
  /// captured by the closure) is thread-local to that loop by construction.
  using SinkFactory = std::function<TrySink(std::size_t loop_index)>;

  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;        ///< 0 = ephemeral; port() returns the binding.
    std::size_t threads = 1;  ///< Event-loop threads (clamped to >= 1).
    runtime::Backpressure backpressure = runtime::Backpressure::kBlock;
    /// kBlockWithDeadline: max age of a connection's pending buffer.
    uint64_t deadline_ns = 5'000'000;
    /// Idle-connection timeout: a connection that has delivered no bytes
    /// for this long is closed and counted in snapshot().idle_closes
    /// (0 = disabled, the default). Granularity is the event-loop wake
    /// cadence (~20ms), so treat it as a floor, not a deadline. A
    /// sink-blocked connection is exempt — its silence is the server's
    /// own backpressure (the fd is paused), not a dead client.
    uint64_t idle_ns = 0;
    /// Largest DECLARED frame payload accepted before the connection is
    /// closed as malformed (memory-safety bound per connection).
    std::size_t max_frame_bytes = std::size_t{1} << 20;
  };

  IngestServer(Options options, SinkFactory factory);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds, listens and spawns the event loops. False on socket failure
  /// (address in use, no permission); the server is then inert.
  bool Start();

  /// Stops accepting, makes one best-effort drain pass over pending
  /// buffers, closes every connection and joins the loops. Lossless
  /// shutdown is the CALLER's protocol: quiesce clients first and wait
  /// until snapshot().tuples_accepted reaches the expected count —
  /// anything still pending at Stop() is counted as dropped. Idempotent.
  void Stop();

  /// The bound TCP port (valid after Start() returns true).
  uint16_t port() const { return port_; }

  /// Live telemetry cut: per-connection and total frame/tuple counters
  /// plus the merged ingest-latency histogram (frame decode start to sink
  /// handoff, ns). Safe from any thread while the server runs; attach to a
  /// runtime snapshot via `rs.ingest = server.snapshot(); rs.has_ingest =
  /// true;` for the JSON export.
  telemetry::IngestSnapshot snapshot() const;

 private:
  /// Per-connection state, owned by exactly one event loop. The loop
  /// thread is the only writer of every field; snapshot() reads only the
  /// atomic counters, with relaxed loads.
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    FrameDecoder decoder;
    std::vector<WireTuple> scratch;   ///< last decoded batch
    std::vector<WireTuple> pending;   ///< sink-blocked remainder
    std::size_t pending_off = 0;      ///< delivered prefix of `pending`
    uint64_t pending_since_ns = 0;    ///< when the buffer started waiting
    bool paused = false;              ///< EPOLLIN removed while blocked
    bool eof = false;                 ///< peer closed / read error seen
    uint64_t last_bytes_ns = 0;       ///< when the peer last delivered bytes
    // Telemetry counters: single-writer (the owning loop thread), read
    // concurrently by snapshot() with relaxed loads. Deliberately dense —
    // per-connection cache-line padding would cost 7 lines per socket for
    // counters only the owning thread ever writes (no write-write
    // sharing to avoid). slick-lint: allow(atomic-alignas)
    std::atomic<bool> open{true};
    // slick-lint: allow(atomic-alignas)
    std::atomic<uint64_t> frames{0};
    // slick-lint: allow(atomic-alignas)
    std::atomic<uint64_t> frame_errors{0};
    // slick-lint: allow(atomic-alignas)
    std::atomic<uint64_t> tuples_accepted{0};
    // slick-lint: allow(atomic-alignas)
    std::atomic<uint64_t> tuples_dropped{0};
    // slick-lint: allow(atomic-alignas)
    std::atomic<uint64_t> deadline_expiries{0};
  };

  struct Loop {
    int epoll_fd = -1;
    std::thread thread;
    TrySink sink;
    /// Guards the STRUCTURE of `conns` (push_back in accept vs. iteration
    /// in snapshot); the counters inside are atomics and need no lock.
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Connection>> conns;
    std::size_t blocked = 0;        ///< connections with a pending buffer
    uint64_t last_idle_scan_ns = 0;  ///< throttles CloseIdleConnections
  };

  void RunLoop(std::size_t index);
  void AcceptReady(Loop& loop);
  void ReadAndPump(Loop& loop, Connection& c);
  void Pump(Loop& loop, Connection& c);
  void HandleBatch(Loop& loop, Connection& c);
  SLICK_NODISCARD bool TryDrainPending(Loop& loop, Connection& c);
  void RetryBlocked(Loop& loop);
  void CloseIdleConnections(Loop& loop);
  void PauseReading(Loop& loop, Connection& c);
  void ResumeReading(Loop& loop, Connection& c);
  void CloseConnection(Loop& loop, Connection& c, bool on_error);

  const Options options_;
  SinkFactory factory_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  std::vector<std::unique_ptr<Loop>> loops_;
  /// Set by Stop(), polled by every loop between epoll waits.
  alignas(64) std::atomic<bool> stop_{false};
  /// Accept-order connection ids; doubles as connections_opened.
  alignas(64) std::atomic<uint64_t> next_conn_id_{0};
  alignas(64) std::atomic<uint64_t> closed_on_error_{0};
  alignas(64) std::atomic<uint64_t> idle_closes_{0};
  telemetry::LatencyHistogram ingest_latency_;
};

}  // namespace slick::net
