#include "net/ingest_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"
#include "util/clock.h"

namespace slick::net {
namespace {

/// epoll user data: the listener is tagged with nullptr, a connection with
/// its Connection pointer.
constexpr int kMaxEvents = 64;

/// Idle epoll timeout: bounds Stop() latency and the retry cadence for
/// pending buffers on an otherwise-quiet loop.
constexpr int kIdleTimeoutMs = 20;

/// Busy timeout while any connection has a sink-blocked pending buffer:
/// retries admission at ~1kHz instead of parking the loop.
constexpr int kBlockedTimeoutMs = 1;

}  // namespace

IngestServer::IngestServer(Options options, SinkFactory factory)
    : options_(std::move(options)), factory_(std::move(factory)) {
  SLICK_CHECK(factory_ != nullptr, "IngestServer needs a sink factory");
}

IngestServer::~IngestServer() { Stop(); }

bool IngestServer::Start() {
  SLICK_CHECK(!started_, "IngestServer::Start called twice");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, SOMAXCONN) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(bound.sin_port);

  const std::size_t threads = options_.threads < 1 ? 1 : options_.threads;
  loops_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(0);
    SLICK_CHECK(loop->epoll_fd >= 0, "epoll_create1 failed");
    epoll_event ev{};
    // EPOLLEXCLUSIVE: all loops watch the one listener; the kernel wakes
    // one per incoming connection, which is the accept load balancer.
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.ptr = nullptr;
    SLICK_CHECK(::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) ==
                    0,
                "epoll_ctl(listener) failed");
    loops_.push_back(std::move(loop));
  }
  started_ = true;
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { RunLoop(i); });
  }
  return true;
}

void IngestServer::Stop() {
  if (!started_) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // release/acquire pairs with the loops' poll of stop_: everything this
  // thread did before Stop() is visible to the loops' final drain pass.
  stop_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void IngestServer::RunLoop(std::size_t index) {
  Loop& loop = *loops_[index];
  loop.sink = factory_(index);
  SLICK_CHECK(loop.sink != nullptr, "sink factory returned a null sink");
  epoll_event events[kMaxEvents];
  // acquire: pairs with Stop()'s release store (see Stop()).
  while (!stop_.load(std::memory_order_acquire)) {
    const int timeout_ms =
        loop.blocked > 0 ? kBlockedTimeoutMs : kIdleTimeoutMs;
    const int n = ::epoll_wait(loop.epoll_fd, events, kMaxEvents, timeout_ms);
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        AcceptReady(loop);
      } else {
        ReadAndPump(loop, *static_cast<Connection*>(events[i].data.ptr));
      }
    }
    if (loop.blocked > 0) RetryBlocked(loop);
    if (options_.idle_ns > 0) CloseIdleConnections(loop);
  }
  // Best-effort final drain: one admission pass per blocked connection,
  // then close everything. Anything still pending is counted as dropped —
  // lossless shutdown is the caller's quiesce protocol (see header).
  for (auto& c : loop.conns) {
    if (c->fd < 0) continue;
    // Deliberate discard: a partial drain leaves the remainder in
    // `pending`, and CloseConnection below tallies it as dropped.
    if (!c->pending.empty()) (void)TryDrainPending(loop, *c);
    // CloseConnection tallies whatever is still pending as dropped.
    CloseConnection(loop, *c, /*on_error=*/false);
  }
  ::close(loop.epoll_fd);
  loop.epoll_fd = -1;
}

void IngestServer::AcceptReady(Loop& loop) {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN (another loop won the wake) or transient
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_bytes_ns = util::MonotonicNanos();
    // relaxed: pure id allocation — uniqueness comes from the atomic RMW,
    // no other memory is published through it.
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->decoder = FrameDecoder(options_.max_frame_bytes);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(loop.mu);
      loop.conns.push_back(std::move(conn));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = raw;
    if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseConnection(loop, *raw, /*on_error=*/false);
    }
  }
}

void IngestServer::ReadAndPump(Loop& loop, Connection& c) {
  if (c.fd < 0 || c.paused) return;
  char buf[65536];
  for (;;) {
    const ssize_t r = ::read(c.fd, buf, sizeof(buf));
    if (r > 0) {
      c.decoder.Feed(buf, static_cast<std::size_t>(r));
      c.last_bytes_ns = util::MonotonicNanos();
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    c.eof = true;  // peer closed (r == 0) or hard socket error
    break;
  }
  Pump(loop, c);
}

void IngestServer::Pump(Loop& loop, Connection& c) {
  if (c.fd < 0) return;
  if (!c.pending.empty() && !TryDrainPending(loop, c)) {
    PauseReading(loop, c);
    return;
  }
  for (;;) {
    const uint64_t t0 = util::MonotonicNanos();
    const FrameDecoder::Status st = c.decoder.Next(&c.scratch);
    if (st == FrameDecoder::Status::kNeedMore) break;
    if (st == FrameDecoder::Status::kError) {
      // relaxed: single-writer telemetry tally (see Connection).
      c.frame_errors.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(loop, c, /*on_error=*/true);
      return;
    }
    // relaxed: single-writer telemetry tally (see Connection).
    c.frames.fetch_add(1, std::memory_order_relaxed);
    HandleBatch(loop, c);
    ingest_latency_.Record(util::MonotonicNanos() - t0);
    if (!c.pending.empty()) {
      PauseReading(loop, c);
      return;
    }
  }
  ResumeReading(loop, c);
  if (c.eof && c.decoder.buffered() == 0) {
    CloseConnection(loop, c, /*on_error=*/false);
  } else if (c.eof) {
    // Bytes left that can never complete a frame (the peer is gone):
    // classify as a truncated stream, mirroring the serde reader.
    // relaxed: single-writer telemetry tally (see Connection).
    c.frame_errors.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(loop, c, /*on_error=*/true);
  }
}

void IngestServer::HandleBatch(Loop& loop, Connection& c) {
  const WireTuple* data = c.scratch.data();
  const std::size_t n = c.scratch.size();
  if (n == 0) return;  // an empty batch is a valid keep-alive
  std::size_t accepted = 0;
  switch (options_.backpressure) {
    case runtime::Backpressure::kBlock:
    case runtime::Backpressure::kBlockWithDeadline: {
      accepted = loop.sink(data, n);
      if (accepted < n) {
        c.pending.assign(c.scratch.begin() +
                             static_cast<std::ptrdiff_t>(accepted),
                         c.scratch.end());
        c.pending_off = 0;
        c.pending_since_ns = util::MonotonicNanos();
      }
      break;
    }
    case runtime::Backpressure::kDropNewest: {
      accepted = loop.sink(data, n);
      // relaxed: single-writer telemetry tally (see Connection).
      c.tuples_dropped.fetch_add(n - accepted, std::memory_order_relaxed);
      break;
    }
    case runtime::Backpressure::kShedOldest: {
      std::size_t i = 0;
      while (i < n) {
        const std::size_t got = loop.sink(data + i, n - i);
        accepted += got;
        i += got;
        if (i < n && got == 0) {
          ++i;  // shed the oldest unadmitted tuple, keep the freshest
          // relaxed: single-writer telemetry tally (see Connection).
          c.tuples_dropped.fetch_add(1, std::memory_order_relaxed);
        }
      }
      break;
    }
    case runtime::Backpressure::kError: {
      accepted = loop.sink(data, n);
      SLICK_CHECK(accepted == n,
                  "ingest sink rejected tuples under Backpressure::kError "
                  "(size the pipeline for the peak burst, or pick a "
                  "shedding/blocking policy)");
      break;
    }
  }
  // relaxed: single-writer telemetry tally (see Connection).
  c.tuples_accepted.fetch_add(accepted, std::memory_order_relaxed);
}

bool IngestServer::TryDrainPending(Loop& loop, Connection& c) {
  const std::size_t left = c.pending.size() - c.pending_off;
  const std::size_t got = loop.sink(c.pending.data() + c.pending_off, left);
  // relaxed: single-writer telemetry tally (see Connection).
  c.tuples_accepted.fetch_add(got, std::memory_order_relaxed);
  c.pending_off += got;
  if (c.pending_off == c.pending.size()) {
    c.pending.clear();
    c.pending_off = 0;
    return true;
  }
  if (options_.backpressure == runtime::Backpressure::kBlockWithDeadline &&
      util::MonotonicNanos() - c.pending_since_ns >= options_.deadline_ns) {
    // relaxed: single-writer telemetry tallies (see Connection).
    c.deadline_expiries.fetch_add(1, std::memory_order_relaxed);
    c.tuples_dropped.fetch_add(c.pending.size() - c.pending_off,
                               std::memory_order_relaxed);
    c.pending.clear();
    c.pending_off = 0;
    return true;
  }
  return false;
}

void IngestServer::RetryBlocked(Loop& loop) {
  for (auto& c : loop.conns) {
    if (c->fd < 0 || c->pending.empty()) continue;
    if (TryDrainPending(loop, *c)) {
      // Drained (or deadline-shed): resume the fd and pump whatever frames
      // were already buffered behind the blockage.
      Pump(loop, *c);
    }
  }
}

void IngestServer::CloseIdleConnections(Loop& loop) {
  const uint64_t now = util::MonotonicNanos();
  // Throttle the O(connections) sweep to a quarter of the timeout — the
  // close latency bound stays idle_ns + idle_ns/4 while busy loops (woken
  // per event, far faster than the epoll timeout) skip the scan.
  if (now - loop.last_idle_scan_ns < options_.idle_ns / 4) return;
  loop.last_idle_scan_ns = now;
  for (auto& c : loop.conns) {
    if (c->fd < 0 || c->eof) continue;
    // A sink-blocked connection is paused by OUR backpressure — its
    // silence proves nothing about the client.
    if (c->paused || !c->pending.empty()) continue;
    if (now - c->last_bytes_ns < options_.idle_ns) continue;
    CloseConnection(loop, *c, /*on_error=*/false);
    // relaxed: telemetry tally; see Connection.
    idle_closes_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IngestServer::PauseReading(Loop& loop, Connection& c) {
  if (c.paused || c.fd < 0) return;
  epoll_event ev{};
  ev.events = 0;  // level-triggered: unread bytes would spin the loop
  ev.data.ptr = &c;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
  c.paused = true;
  ++loop.blocked;
}

void IngestServer::ResumeReading(Loop& loop, Connection& c) {
  if (!c.paused || c.fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = &c;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
  c.paused = false;
  --loop.blocked;
  // The pause was our backpressure, not client silence: restart the idle
  // clock so the client gets a full window to speak again.
  c.last_bytes_ns = util::MonotonicNanos();
}

void IngestServer::CloseConnection(Loop& loop, Connection& c, bool on_error) {
  if (c.fd < 0) return;
  if (c.paused) --loop.blocked;
  c.paused = false;
  ::close(c.fd);  // the kernel drops the epoll registration with the fd
  c.fd = -1;
  // Tally undelivered pending tuples before freeing the buffer — nothing
  // can admit them once the fd is gone.
  if (c.pending.size() > c.pending_off) {
    // relaxed: telemetry tally; see Connection.
    c.tuples_dropped.fetch_add(c.pending.size() - c.pending_off,
                               std::memory_order_relaxed);
  }
  // The retained post-mortem entry only needs the atomic counters; drop
  // the heavy buffers, or connection churn pins up to ~max_frame_bytes of
  // capacity per closed socket (decoder buffer + scratch + pending) for
  // the life of the server.
  c.decoder = FrameDecoder(options_.max_frame_bytes);
  c.scratch = {};
  c.pending = {};
  c.pending_off = 0;
  // relaxed: lifecycle flag for snapshots; no data is published through it.
  c.open.store(false, std::memory_order_relaxed);
  if (on_error) {
    // relaxed: telemetry tally; see Connection.
    closed_on_error_.fetch_add(1, std::memory_order_relaxed);
  }
}

telemetry::IngestSnapshot IngestServer::snapshot() const {
  telemetry::IngestSnapshot s;
  // relaxed: telemetry reads — a racing accept/close lands in this
  // snapshot or the next, which any live scraper tolerates.
  s.connections_opened = next_conn_id_.load(std::memory_order_relaxed);
  s.connections_closed_on_error =
      closed_on_error_.load(std::memory_order_relaxed);
  s.idle_closes = idle_closes_.load(std::memory_order_relaxed);
  for (const auto& loop : loops_) {
    std::lock_guard<std::mutex> lock(loop->mu);
    for (const auto& c : loop->conns) {
      telemetry::ConnectionSnapshot cs;
      cs.id = c->id;
      // relaxed: telemetry reads, as above.
      cs.open = c->open.load(std::memory_order_relaxed);
      cs.frames = c->frames.load(std::memory_order_relaxed);
      cs.frame_errors = c->frame_errors.load(std::memory_order_relaxed);
      cs.tuples_accepted = c->tuples_accepted.load(std::memory_order_relaxed);
      cs.tuples_dropped = c->tuples_dropped.load(std::memory_order_relaxed);
      cs.deadline_expiries =
          c->deadline_expiries.load(std::memory_order_relaxed);
      s.frames += cs.frames;
      s.frame_errors += cs.frame_errors;
      s.tuples_accepted += cs.tuples_accepted;
      s.tuples_dropped += cs.tuples_dropped;
      s.deadline_expiries += cs.deadline_expiries;
      if (cs.open) ++s.connections_open;
      s.connections.push_back(cs);
    }
  }
  s.ingest_latency_ns = ingest_latency_.TakeSnapshot();
  return s;
}

}  // namespace slick::net
