#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/frame.h"

namespace slick::net {

/// Minimal blocking TCP client for the ingest protocol — the loopback
/// producer side of the differential tests and bench/exp7_ingest. One
/// socket, blocking writes (the kernel's send buffer plus the server's
/// fd-level backpressure do the flow control), no reads: the protocol is
/// one-way.
class IngestClient {
 public:
  IngestClient() = default;
  ~IngestClient() { Close(); }

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  /// Opens a blocking TCP connection. False on refusal/failure.
  bool Connect(const std::string& host, uint16_t port);

  /// Frames and sends `n` tuples as one batch. Blocks until the kernel has
  /// taken every byte; false on a broken connection.
  bool SendBatch(const WireTuple* tuples, std::size_t n);

  /// Sends raw bytes verbatim — the adversarial tests' tool for split,
  /// corrupted and truncated frames.
  bool SendRaw(const char* data, std::size_t len);

  /// Half-close (SHUT_WR): signals end-of-stream while keeping the socket
  /// alive, the clean way to let the server drain and close.
  void CloseSend();

  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string frame_;  ///< reused encode buffer
};

}  // namespace slick::net
