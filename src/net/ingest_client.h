#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/frame.h"
#include "util/annotations.h"

namespace slick::net {

/// Minimal blocking TCP client for the ingest protocol — the loopback
/// producer side of the differential tests and bench/exp7_ingest. One
/// socket, blocking writes (the kernel's send buffer plus the server's
/// fd-level backpressure do the flow control), no reads: the protocol is
/// one-way.
class IngestClient {
 public:
  /// Typed outcome of the retrying entry points.
  enum class RetryResult {
    kOk,
    /// Every attempt failed; the budget in RetryOptions::max_attempts is
    /// spent. The client is disconnected — callers decide whether to
    /// escalate or re-enter with a fresh budget.
    kRetriesExhausted,
  };

  /// Capped exponential backoff with decorrelating jitter: attempt k
  /// sleeps min(initial_backoff_ns << k, max_backoff_ns) plus a uniform
  /// jitter of up to half that, so a fleet of producers restarted by the
  /// same event does not reconnect in lockstep.
  struct RetryOptions {
    int max_attempts = 5;
    uint64_t initial_backoff_ns = 1'000'000;  ///< 1ms before attempt #2
    uint64_t max_backoff_ns = 200'000'000;    ///< cap per sleep (200ms)
    uint64_t jitter_seed = 0x5EED5EED;        ///< deterministic in tests
    /// When nonzero, SendBatchWithRetry treats a connection whose last
    /// successful send is older than this as already dead and reconnects
    /// BEFORE sending. The one-way protocol cannot detect a server-side
    /// close (e.g. the server's idle_ns reaper) until a send races the
    /// RST — and a send that wins that race is silently lost, because
    /// send() success only means the kernel buffered the bytes. Set this
    /// comfortably below the server's idle_ns so bursty producers never
    /// write a batch onto a socket the server has already abandoned.
    /// 0 = off (matches servers with no idle timeout).
    uint64_t idle_reconnect_ns = 0;
  };

  IngestClient() = default;
  ~IngestClient() { Close(); }

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  /// Opens a blocking TCP connection. False on refusal/failure.
  bool Connect(const std::string& host, uint16_t port);

  /// Connect with retries: for producers racing a server that is still
  /// binding (process restart, orchestrated bring-up). Sleeps the backoff
  /// schedule between attempts; `attempts_out` (optional) reports how
  /// many connect() calls were made.
  SLICK_NODISCARD RetryResult ConnectWithRetry(
      const std::string& host, uint16_t port, const RetryOptions& opts,
      int* attempts_out = nullptr);

  /// Frames and sends `n` tuples as one batch. Blocks until the kernel has
  /// taken every byte; false on a broken connection.
  bool SendBatch(const WireTuple* tuples, std::size_t n);

  /// SendBatch with reconnect-and-resend retries. Each failed attempt
  /// (send error, or not connected) reconnects and resends the WHOLE
  /// batch — a send that failed after the kernel took part of the frame
  /// leaves the server a truncated stream it rejects, and the resend is
  /// a fresh frame on a fresh connection. Duplicates are possible;
  /// losses are possible too in one narrow shape: the protocol is
  /// one-way (no application ack), so kOk means the kernel accepted the
  /// whole frame on a connection believed live — NOT that the server
  /// decoded it. A server-side close racing the send (its idle_ns
  /// reaper, a restart) can swallow a kOk batch; the RST only surfaces
  /// on the NEXT send. RetryOptions::idle_reconnect_ns closes the
  /// routine instance of that race (bursty client outliving the
  /// server's idle timeout) by reconnecting first; true at-least-once
  /// would need an ack channel the wire protocol does not have.
  SLICK_NODISCARD RetryResult SendBatchWithRetry(
      const WireTuple* tuples, std::size_t n, const std::string& host,
      uint16_t port, const RetryOptions& opts,
      int* attempts_out = nullptr);

  /// Sends raw bytes verbatim — the adversarial tests' tool for split,
  /// corrupted and truncated frames.
  bool SendRaw(const char* data, std::size_t len);

  /// Half-close (SHUT_WR): signals end-of-stream while keeping the socket
  /// alive, the clean way to let the server drain and close.
  void CloseSend();

  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string frame_;  ///< reused encode buffer
  /// Monotonic time of the last successful send (or connect) on fd_ —
  /// what idle_reconnect_ns ages against.
  uint64_t last_send_ns_ = 0;
};

}  // namespace slick::net
