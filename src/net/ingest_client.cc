#include "net/ingest_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

#include "util/clock.h"
#include "util/rng.h"

namespace slick::net {
namespace {

/// min(initial << attempt, cap), saturating: attempt counts from 0.
uint64_t BackoffNs(uint64_t initial, uint64_t cap, int attempt) {
  if (initial == 0) return 0;
  uint64_t b = initial;
  for (int i = 0; i < attempt && b < cap; ++i) b <<= 1;
  return b < cap ? b : cap;
}

}  // namespace

bool IngestClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  last_send_ns_ = util::MonotonicNanos();  // a fresh socket is not idle
  return true;
}

IngestClient::RetryResult IngestClient::ConnectWithRetry(
    const std::string& host, uint16_t port, const RetryOptions& opts,
    int* attempts_out) {
  util::SplitMix64 rng(opts.jitter_seed);
  int attempts = 0;
  for (int k = 0; k < opts.max_attempts; ++k) {
    if (k > 0) {
      const uint64_t base =
          BackoffNs(opts.initial_backoff_ns, opts.max_backoff_ns, k - 1);
      const uint64_t jitter = base > 0 ? rng.NextBounded(base / 2 + 1) : 0;
      std::this_thread::sleep_for(std::chrono::nanoseconds(base + jitter));
    }
    ++attempts;
    if (Connect(host, port)) {
      if (attempts_out != nullptr) *attempts_out = attempts;
      return RetryResult::kOk;
    }
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return RetryResult::kRetriesExhausted;
}

bool IngestClient::SendBatch(const WireTuple* tuples, std::size_t n) {
  frame_.clear();
  EncodeBatch(tuples, n, &frame_);
  return SendRaw(frame_.data(), frame_.size());
}

IngestClient::RetryResult IngestClient::SendBatchWithRetry(
    const WireTuple* tuples, std::size_t n, const std::string& host,
    uint16_t port, const RetryOptions& opts, int* attempts_out) {
  util::SplitMix64 rng(opts.jitter_seed ^ 0x9E3779B97F4A7C15ull);
  int attempts = 0;
  for (int k = 0; k < opts.max_attempts; ++k) {
    if (k > 0) {
      const uint64_t base =
          BackoffNs(opts.initial_backoff_ns, opts.max_backoff_ns, k - 1);
      const uint64_t jitter = base > 0 ? rng.NextBounded(base / 2 + 1) : 0;
      std::this_thread::sleep_for(std::chrono::nanoseconds(base + jitter));
    }
    ++attempts;
    // An idle-aged connection is presumed dead BEFORE the send: the
    // server's idle_ns reaper closes half-open peers, and a send into
    // that close can succeed into the kernel buffer and vanish (see the
    // header contract). Reconnecting first turns the silent loss into a
    // plain fresh-connection send.
    if (connected() && opts.idle_reconnect_ns != 0 &&
        util::MonotonicNanos() - last_send_ns_ > opts.idle_reconnect_ns) {
      Close();
    }
    // Reconnect-and-resend: a half-written frame from a previous attempt
    // is dead with its connection; the fresh socket gets a fresh frame.
    if (!connected() && !Connect(host, port)) continue;
    if (SendBatch(tuples, n)) {
      if (attempts_out != nullptr) *attempts_out = attempts;
      return RetryResult::kOk;
    }
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return RetryResult::kRetriesExhausted;
}

bool IngestClient::SendRaw(const char* data, std::size_t len) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that closed on a protocol error must surface as
    // EPIPE here, not kill the producer process with SIGPIPE.
    const ssize_t r =
        ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      Close();
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  last_send_ns_ = util::MonotonicNanos();
  return true;
}

void IngestClient::CloseSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void IngestClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace slick::net
