#include "net/ingest_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace slick::net {

bool IngestClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool IngestClient::SendBatch(const WireTuple* tuples, std::size_t n) {
  frame_.clear();
  EncodeBatch(tuples, n, &frame_);
  return SendRaw(frame_.data(), frame_.size());
}

bool IngestClient::SendRaw(const char* data, std::size_t len) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that closed on a protocol error must surface as
    // EPIPE here, not kill the producer process with SIGPIPE.
    const ssize_t r =
        ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      Close();
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

void IngestClient::CloseSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void IngestClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace slick::net
