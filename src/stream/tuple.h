#pragma once

#include <array>
#include <cstdint>

namespace slick::stream {

/// A manufacturing-equipment sensor event modeled on the DEBS12 Grand
/// Challenge records the paper evaluates on: a sequence number (the records
/// are sampled at a fixed 100 Hz rate, so the sequence doubles as a
/// timestamp) plus three energy readings. The 51 boolean/state fields of
/// the original records are irrelevant to aggregation benchmarks and are
/// summarized by a single packed state word.
struct SensorTuple {
  uint64_t seq = 0;
  std::array<double, 3> energy = {0.0, 0.0, 0.0};
  uint64_t state_bits = 0;
};

}  // namespace slick::stream

