#include "stream/synthetic.h"

#include <cmath>

#include "util/check.h"

namespace slick::stream {
namespace {

constexpr double kBaseLevel[3] = {42.0, 87.0, 23.0};
constexpr double kMeanReversion = 0.02;
constexpr double kWalkStep = 0.8;
constexpr double kPeriod[3] = {973.0, 1741.0, 577.0};
constexpr double kPeriodAmp[3] = {6.0, 11.0, 3.5};
constexpr double kNoiseAmp = 0.35;
constexpr double kTwoPi = 6.283185307179586;

}  // namespace

SyntheticSensorSource::SyntheticSensorSource(uint64_t seed) : rng_(seed) {
  for (int c = 0; c < 3; ++c) level_[c] = kBaseLevel[c];
}

SensorTuple SyntheticSensorSource::Next() {
  SensorTuple t;
  t.seq = seq_++;
  for (int c = 0; c < 3; ++c) {
    // Mean-reverting random walk ...
    level_[c] += kWalkStep * (2.0 * rng_.NextDouble() - 1.0) +
                 kMeanReversion * (kBaseLevel[c] - level_[c]);
    // ... plus a periodic duty cycle and white noise.
    const double periodic =
        kPeriodAmp[c] *
        std::sin(kTwoPi * static_cast<double>(t.seq) / kPeriod[c]);
    const double noise = kNoiseAmp * (2.0 * rng_.NextDouble() - 1.0);
    double v = level_[c] + periodic + noise;
    if (v < 0.1) v = 0.1;  // energy readings are strictly positive
    t.energy[static_cast<std::size_t>(c)] = v;
  }
  t.state_bits = rng_.NextU64();
  return t;
}

std::vector<double> SyntheticSensorSource::MakeEnergySeries(std::size_t count,
                                                            int channel) {
  SLICK_CHECK(channel >= 0 && channel < 3, "channel must be 0..2");
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Next().energy[static_cast<std::size_t>(channel)]);
  }
  return out;
}

}  // namespace slick::stream
