#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/annotations.h"
#include "util/check.h"

namespace slick::stream {

/// What ReorderBuffer::Offer did with an element — the caller's lateness
/// policy hook (drop, side-output, alert). Only kAdmitted elements are
/// buffered; the other two classes are rejected without side effects.
enum class Admission {
  kAdmitted,   ///< buffered (and possibly released) in sequence order
  kLate,       ///< slot already passed and was never emitted: a straggler
               ///< beyond the horizon (or a re-send of one)
  kDuplicate,  ///< same sequence number seen before: pending in the buffer,
               ///< or already emitted within the dedup horizon
};

inline const char* AdmissionName(Admission a) {
  switch (a) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kLate: return "late";
    case Admission::kDuplicate: return "duplicate";
  }
  return "unknown";
}

/// Bounded-lateness reorder buffer (the paper's §3.1 arrival-order
/// assumption: "the arriving tuples have to be in-order or slightly
/// out-of-order"). Elements carry a sequence number; an element may arrive
/// at most `horizon` positions late. The buffer holds a min-heap of
/// pending elements and releases them in exact sequence order once they
/// can no longer be preceded by a straggler.
///
/// Feeding a DSMS engine through this buffer turns a slightly-out-of-order
/// stream into the in-order stream the final aggregators require. Offer()
/// classifies every rejected element (Admission) so the caller can apply
/// its lateness policy; duplicates — whether still pending in the heap or
/// already released — are detected and never emitted twice. Dedup memory
/// is bounded: a re-send of an element released more than `horizon`
/// positions ago classifies as kLate rather than kDuplicate (both are
/// rejected, so downstream exactly-once emission is unaffected).
///
/// For genuinely out-of-order event-time streams (arbitrary displacement,
/// watermark semantics), see the native OoO path: window::OooTree and
/// engine::EventTimeAcqEngine (DESIGN.md §13) — this buffer is the cheap
/// answer only when displacement is small and bounded.
template <typename T>
class ReorderBuffer {
 public:
  explicit ReorderBuffer(uint64_t horizon) : horizon_(horizon) {}

  /// Admits element `seq`, releasing every element that became final.
  /// Returns the element's classification; only kAdmitted elements are
  /// buffered (kLate / kDuplicate elements are dropped, matching the
  /// documented "NOT buffered" contract).
  template <typename Emit>
  SLICK_NODISCARD Admission Offer(uint64_t seq, T value, Emit&& emit) {
    if (seq < next_) {
      // The slot was already passed. If it was actually emitted (and is
      // still inside the dedup window) this is a re-send; otherwise the
      // slot was skipped for liveness and this is a genuine straggler.
      return WasReleased(seq) ? Admission::kDuplicate : Admission::kLate;
    }
    if (pending_.contains(seq)) return Admission::kDuplicate;
    pending_.insert(seq);
    heap_.emplace_back(seq, std::move(value));
    std::push_heap(heap_.begin(), heap_.end(), Greater());
    max_seen_ = std::max(max_seen_, seq);
    // Everything at least `horizon` behind the newest arrival is final.
    while (!heap_.empty() && heap_.front().first + horizon_ <= max_seen_) {
      Release(emit);
    }
    return Admission::kAdmitted;
  }

  /// Releases everything still pending, in order (end of stream).
  template <typename Emit>
  void Flush(Emit&& emit) {
    while (!heap_.empty()) Release(emit);
  }

  std::size_t pending() const { return heap_.size(); }
  uint64_t next_expected() const { return next_; }

 private:
  struct Greater {
    bool operator()(const std::pair<uint64_t, T>& a,
                    const std::pair<uint64_t, T>& b) const {
      return a.first > b.first;
    }
  };

  template <typename Emit>
  void Release(Emit& emit) {
    std::pop_heap(heap_.begin(), heap_.end(), Greater());
    auto [seq, value] = std::move(heap_.back());
    heap_.pop_back();
    pending_.erase(seq);
    // Invariant, not input validation: Offer rejects seq < next_ and
    // deduplicates the heap, so a release can never regress.
    SLICK_DCHECK(seq >= next_, "duplicate or regressed sequence");
    next_ = seq + 1;
    released_.push_back(seq);
    // Bounded dedup memory: remember the last horizon+1 emitted sequences.
    while (released_.size() > horizon_ + 1) released_.pop_front();
    emit(seq, std::move(value));
  }

  /// True iff `seq` was emitted and is still inside the dedup window.
  /// released_ is sorted ascending (releases happen in sequence order).
  bool WasReleased(uint64_t seq) const {
    return std::binary_search(released_.begin(), released_.end(), seq);
  }

  std::vector<std::pair<uint64_t, T>> heap_;  // min-heap by sequence
  std::unordered_set<uint64_t> pending_;      // sequences currently in heap_
  std::deque<uint64_t> released_;  // recently emitted sequences, ascending
  uint64_t horizon_;
  uint64_t next_ = 0;      // next sequence to release
  uint64_t max_seen_ = 0;  // newest sequence observed
};

}  // namespace slick::stream
