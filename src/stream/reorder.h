#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace slick::stream {

/// Bounded-lateness reorder buffer (the paper's §3.1 arrival-order
/// assumption: "the arriving tuples have to be in-order or slightly
/// out-of-order"). Elements carry a sequence number; an element may arrive
/// at most `horizon` positions late. The buffer holds a min-heap of
/// pending elements and releases them in exact sequence order once they
/// can no longer be preceded by a straggler.
///
/// Feeding a DSMS engine through this buffer turns a slightly-out-of-order
/// stream into the in-order stream the final aggregators require; if a
/// tuple arrives later than the horizon allows, Offer() reports it so the
/// caller can apply its lateness policy (drop, side-output, alert).
template <typename T>
class ReorderBuffer {
 public:
  explicit ReorderBuffer(uint64_t horizon) : horizon_(horizon) {}

  /// Admits element `seq`. Returns false iff the element is too late (its
  /// slot was already released); such elements are NOT buffered.
  template <typename Emit>
  bool Offer(uint64_t seq, T value, Emit&& emit) {
    if (seq < next_) return false;  // straggler beyond the horizon
    heap_.emplace_back(seq, std::move(value));
    std::push_heap(heap_.begin(), heap_.end(), Greater());
    max_seen_ = std::max(max_seen_, seq);
    // Everything at least `horizon` behind the newest arrival is final.
    while (!heap_.empty() && heap_.front().first + horizon_ <= max_seen_) {
      Release(emit);
    }
    return true;
  }

  /// Releases everything still pending, in order (end of stream).
  template <typename Emit>
  void Flush(Emit&& emit) {
    while (!heap_.empty()) Release(emit);
  }

  std::size_t pending() const { return heap_.size(); }
  uint64_t next_expected() const { return next_; }

 private:
  struct Greater {
    bool operator()(const std::pair<uint64_t, T>& a,
                    const std::pair<uint64_t, T>& b) const {
      return a.first > b.first;
    }
  };

  template <typename Emit>
  void Release(Emit& emit) {
    std::pop_heap(heap_.begin(), heap_.end(), Greater());
    auto [seq, value] = std::move(heap_.back());
    heap_.pop_back();
    SLICK_DCHECK(seq >= next_, "duplicate or regressed sequence");
    next_ = seq + 1;
    emit(seq, std::move(value));
  }

  std::vector<std::pair<uint64_t, T>> heap_;  // min-heap by sequence
  uint64_t horizon_;
  uint64_t next_ = 0;      // next sequence to release
  uint64_t max_seen_ = 0;  // newest sequence observed
};

}  // namespace slick::stream

