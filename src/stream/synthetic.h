#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stream/tuple.h"
#include "util/rng.h"

namespace slick::stream {

/// Deterministic stand-in for the DEBS12 Grand Challenge dataset (see
/// DESIGN.md, "Substitutions"): three strictly positive energy channels,
/// each a mean-reverting random walk with a periodic component and noise —
/// the autocorrelated, mostly tie-free shape of real power readings. All
/// compared algorithms are input-agnostic except SlickDeque (Non-Inv),
/// whose behaviour depends only on the input's ordering statistics, which
/// this source reproduces.
class SyntheticSensorSource {
 public:
  explicit SyntheticSensorSource(uint64_t seed);

  /// Produces the next event. Energy values stay within (0, ~200).
  SensorTuple Next();

  /// Convenience: materializes `count` readings of `channel` (0..2).
  std::vector<double> MakeEnergySeries(std::size_t count, int channel);

 private:
  util::SplitMix64 rng_;
  uint64_t seq_ = 0;
  double level_[3];
};

}  // namespace slick::stream

