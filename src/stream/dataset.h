#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace slick::stream {

/// Loads a numeric column (0-based) from a CSV/whitespace-separated text
/// file — e.g. an energy-reading column of the real DEBS12 Grand Challenge
/// dump, for users who have it. Unparseable lines (headers, comments) are
/// skipped. Returns false if the file cannot be opened or yields no values.
bool LoadCsvColumn(const std::string& path, int column,
                   std::vector<double>* out);

/// Saves/loads a raw binary cache of a double series (magic + count +
/// little-endian payload). Orders of magnitude faster to reload than CSV
/// for the 134M-tuple runs.
bool SaveBinary(const std::string& path, const std::vector<double>& values);
bool LoadBinary(const std::string& path, std::vector<double>* out);

/// The benches' data source: a file if `path` is non-empty (".bin" loads
/// the binary cache, anything else is parsed as CSV column `column`),
/// otherwise `count` synthetic sensor readings (see SyntheticSensorSource).
/// File data longer than `count` is truncated; shorter data is kept as is
/// (benches cycle through it).
std::vector<double> LoadOrSynthesize(const std::string& path,
                                     std::size_t count, uint64_t seed,
                                     int column = 0);

}  // namespace slick::stream

