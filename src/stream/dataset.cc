#include "stream/dataset.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "stream/synthetic.h"

namespace slick::stream {
namespace {

constexpr char kMagic[8] = {'S', 'L', 'K', 'D', '0', '0', '0', '1'};

/// Extracts field `column` from a comma/semicolon/whitespace-separated
/// line; returns false if the line has too few fields or a non-numeric
/// value there.
bool ParseField(const char* line, int column, double* value) {
  const char* p = line;
  for (int c = 0; c < column; ++c) {
    while (*p != '\0' && *p != ',' && *p != ';' && *p != ' ' && *p != '\t') {
      ++p;
    }
    if (*p == '\0') return false;
    ++p;
    while (*p == ' ' || *p == '\t') ++p;
  }
  char* end = nullptr;
  *value = std::strtod(p, &end);
  return end != p;
}

}  // namespace

bool LoadCsvColumn(const std::string& path, int column,
                   std::vector<double>* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  out->clear();
  char line[4096];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    double v = 0.0;
    if (ParseField(line, column, &v)) out->push_back(v);
  }
  std::fclose(f);
  return !out->empty();
}

bool SaveBinary(const std::string& path, const std::vector<double>& values) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const uint64_t count = values.size();
  bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1 &&
            std::fwrite(&count, sizeof(count), 1, f) == 1 &&
            (count == 0 ||
             std::fwrite(values.data(), sizeof(double), count, f) == count);
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

bool LoadBinary(const std::string& path, std::vector<double>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[8];
  uint64_t count = 0;
  bool ok = std::fread(magic, sizeof(magic), 1, f) == 1 &&
            std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
            std::fread(&count, sizeof(count), 1, f) == 1;
  if (ok) {
    out->resize(count);
    ok = count == 0 ||
         std::fread(out->data(), sizeof(double), count, f) == count;
  }
  std::fclose(f);
  if (!ok) out->clear();
  return ok;
}

std::vector<double> LoadOrSynthesize(const std::string& path,
                                     std::size_t count, uint64_t seed,
                                     int column) {
  if (!path.empty()) {
    std::vector<double> data;
    const bool is_binary =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
    const bool ok = is_binary ? LoadBinary(path, &data)
                              : LoadCsvColumn(path, column, &data);
    if (ok) {
      if (data.size() > count) data.resize(count);
      return data;
    }
    std::fprintf(stderr,
                 "warning: could not load '%s'; falling back to synthetic "
                 "data\n",
                 path.c_str());
  }
  SyntheticSensorSource source(seed);
  return source.MakeEnergySeries(count, column);
}

}  // namespace slick::stream
