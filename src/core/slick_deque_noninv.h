#pragma once

#include <algorithm>
#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ops/scan_kernels.h"
#include "ops/traits.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/serde.h"
#include "window/chunked_array_queue.h"

namespace slick::core {

/// SlickDeque (Non-Inv) — the paper's Algorithm 2: final aggregation for
/// *non-invertible* (selective) operations. The window is represented by a
/// deque of (pos, val) nodes, allocated in chunks, that stays monotone under
/// ⊕ from head to tail: the head holds the answer for the whole window, and
/// the answer for any shorter range is the first node (from the head) whose
/// position falls inside the range.
///
/// Per slide: the head node is dropped if it expires (its position is
/// exactly one window old), then incoming partial `v` evicts every tail
/// node it dominates (combine(tail, v) == v — such nodes can never be an
/// answer again), and a new node is appended. Amortized cost is below 2
/// operations per slide for any input; the worst case (a fully descending
/// window followed by a large value, probability 1/n! under uniform input)
/// costs n — see §4.1.
///
/// Multi-query answers are produced by a single head-to-tail walk over the
/// deque with ranges in descending order (query_multi), which is how the
/// shared-plan engine drives it. Position bookkeeping (startPos and the
/// window-boundary test) follows Algorithm 2; the in-range predicates fix
/// the off-by-one in the paper's Answer Loop 1 listing, which as printed
/// would include the already-expired position `currPos - range` (its own
/// worked Example 3, Step 4 returns the value our predicate produces).
///
/// Note: combine(x, y) ∈ {x, y} (kSelective) is required, and value_type
/// must be equality-comparable for the domination test on line 16 of
/// Algorithm 2.
template <ops::SelectiveOp Op>
  requires std::equality_comparable<typename Op::value_type>
class SlickDequeNonInv {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  explicit SlickDequeNonInv(std::size_t window, std::size_t chunk_capacity = 64)
      : window_(window), deque_(chunk_capacity) {
    SLICK_CHECK(window >= 1, "window must hold at least one partial");
  }

  /// Admits the newest partial: expire the head, evict dominated tail
  /// nodes, append.
  SLICK_REALTIME void slide(value_type v) {
    if (!deque_.empty() && deque_.front().pos == pos_) deque_.pop_front();
    while (!deque_.empty() && ops::Absorbs<Op>(v, deque_.back().val)) {
      deque_.pop_back();
    }
    deque_.push_back(Node{pos_, std::move(v)});
    cur_ = pos_;
    pos_ = pos_ + 1 == window_ ? 0 : pos_ + 1;
  }

  /// Batch slide (DESIGN.md §11): expires every head node the n slides age
  /// out in one prefix pop, then admits the whole batch —
  ///  * total-order ops (ops::TotalOrderSelectiveOp): the batch's surviving
  ///    "staircase" is found right-to-left with one absorbs test per
  ///    element against the running suffix aggregate, and the pre-existing
  ///    tail is pruned once against the whole-batch aggregate (for an
  ///    order-induced absorbs, some batch element dominates a node iff the
  ///    batch aggregate does);
  ///  * other selective ops: the exact per-element stack loop, with only
  ///    the expiry test hoisted out of the loop.
  /// Both leave the deque identical to n sequential slide() calls.
  SLICK_REALTIME void BulkSlide(const value_type* src, std::size_t n) {
    if (n == 0) return;
    if (n >= window_) {
      // Only the trailing window_ elements can survive: restart empty.
      while (!deque_.empty()) deque_.pop_back();
      AppendBatch(src + (n - window_), window_,
                  (pos_ + (n - window_)) % window_);
    } else {
      // Slide k expires the node of age window_-1-k, so the batch expires
      // exactly the head prefix with age >= window_-n (ages decrease
      // strictly head -> tail, so the loop stops at the first survivor).
      while (!deque_.empty() && AgeOf(deque_.front().pos) >= window_ - n) {
        deque_.pop_front();
      }
      AppendBatch(src, n, pos_);
    }
    cur_ = (pos_ + n - 1) % window_;
    pos_ = (pos_ + n) % window_;
  }

  /// Aggregate of the whole window: the head node's value. O(1), zero
  /// aggregate operations.
  SLICK_REALTIME result_type query() const {
    SLICK_CHECK(!deque_.empty(), "query before the first slide");
    return Op::lower(deque_.front().val);
  }

  /// Aggregate of the newest `range` partials: first in-range node from the
  /// head.
  SLICK_REALTIME result_type query(std::size_t range) const {
    uint64_t walk = deque_.front_seq();
    return QueryFrom(&walk, range);
  }

  /// Answers several ranges with one head-to-tail walk. `ranges_desc` must
  /// be sorted descending (larger ranges resolve nearer the head, as in the
  /// paper's shared plan). Results are appended to `out`.
  ///
  /// A node of age a (0 = newest partial) answers exactly the ranges r with
  /// r > a down to the age of the next-older node, so the walk loads each
  /// deque node once and every answer costs one comparison plus a copy.
  /// SlideSide-style shared walk: at each node, the block of still-open
  /// ranges the node answers is the leading run of `ranges_desc[i..)` with
  /// r > age — found by the vectorized PrefixCountGreater kernel — and the
  /// whole run is answered with one lower() and a fill. Each node is
  /// loaded once and its age computed once, however many ranges it serves.
  SLICK_REALTIME_ALLOW(
      "out.resize appends into the caller's buffer — callers reuse one "
      "answer vector across slides, so growth amortizes to a steady-state "
      "no-op; the walk itself allocates nothing")
  void query_multi(const std::vector<std::size_t>& ranges_desc,
                   std::vector<result_type>& out) const {
    SLICK_CHECK(!deque_.empty(), "query before the first slide");
    const std::size_t n = ranges_desc.size();
    if (n == 0) return;
#if !defined(NDEBUG)
    for (std::size_t i = 0; i < n; ++i) {
      SLICK_DCHECK(ranges_desc[i] >= 1 && ranges_desc[i] <= window_,
                   "query range out of bounds");
      SLICK_DCHECK(i == 0 || ranges_desc[i] <= ranges_desc[i - 1],
                   "ranges must be sorted descending");
    }
#endif
    const std::size_t base = out.size();
    out.resize(base + n);
    uint64_t walk = deque_.front_seq();
    std::size_t i = 0;
    for (;;) {
      const Node& node = deque_[walk];
      const std::size_t age = AgeOf(node.pos);
      const std::size_t run =
          ops::kernels::PrefixCountGreater(ranges_desc.data() + i, n - i, age);
      if (run > 0) {
        std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(base + i), run,
                    Op::lower(node.val));
        i += run;
        // The newest node (age 0) answers every remaining range (r >= 1),
        // so the walk always terminates here at the latest.
        if (i == n) return;
      }
      ++walk;
    }
  }

  std::size_t window_size() const { return window_; }

  /// Number of live deque nodes (the paper's input-dependent space term).
  std::size_t node_count() const { return deque_.size(); }

  std::size_t memory_bytes() const {
    return sizeof(*this) + deque_.memory_bytes() +
           stair_.capacity() * sizeof(std::size_t) +
           mask_.capacity() * sizeof(uint64_t);
  }

  /// Checkpoints the deque (DSMS fault tolerance). Trivially copyable
  /// values keep the raw PR 1 byte layout; other value types (AlphaMax's
  /// std::string) serialize node-wise through util::WriteVal.
  void SaveState(std::ostream& os) const
    requires util::Serializable<value_type>
  {
    util::WriteTag(os, util::MakeTag('S', 'D', 'N', '1'), 1);
    util::WritePod<uint64_t>(os, window_);
    util::WritePod<uint64_t>(os, pos_);
    util::WritePod<uint64_t>(os, cur_);
    deque_.SaveState(os);
  }

  /// Restores a checkpoint, replacing the current state.
  bool LoadState(std::istream& is)
    requires util::Serializable<value_type>
  {
    if (!util::ExpectTag(is, util::MakeTag('S', 'D', 'N', '1'), 1)) {
      return false;
    }
    uint64_t window = 0, pos = 0, cur = 0;
    if (!util::ReadPod(is, &window) || !util::ReadPod(is, &pos) ||
        !util::ReadPod(is, &cur) || window < 1 || pos >= window ||
        cur >= window) {
      return false;
    }
    // Restore into a temporary so a rejected payload leaves this instance
    // untouched (a caller that ignores the false return keeps a coherent
    // aggregator instead of a half-committed one).
    window::ChunkedArrayQueue<Node> restored;
    if (!restored.LoadState(is)) return false;
    if (!ValidateRestoredDeque(restored, static_cast<std::size_t>(window),
                               static_cast<std::size_t>(pos),
                               static_cast<std::size_t>(cur))) {
      return false;
    }
    deque_ = std::move(restored);
    window_ = static_cast<std::size_t>(window);
    pos_ = static_cast<std::size_t>(pos);
    cur_ = static_cast<std::size_t>(cur);
    return true;
  }

 private:
  struct Node {
    std::size_t pos;  // circular position in [0, window)
    value_type val;

    // util::MemberSerde hooks, used by ChunkedArrayQueue::SaveState when
    // value_type is not trivially copyable (trivial nodes are written raw,
    // preserving the PR 1 layout). Only instantiated on use.
    void SaveValue(std::ostream& os) const {
      util::WritePod(os, pos);
      util::WriteVal(os, val);
    }
    bool LoadValue(std::istream& is) {
      return util::ReadPod(is, &pos) && util::ReadVal(is, &val);
    }
  };

  /// Cross-validates a deque restored by LoadState against Algorithm 2's
  /// invariants before the header fields are committed. A corrupt payload
  /// that only passed the header checks would otherwise poison AgeOf() and
  /// the expiry test on later slides. Accepted states:
  ///  * empty deque only for a pristine instance (pos == cur == 0);
  ///  * every node's pos inside [0, window);
  ///  * ages strictly decreasing head → tail (each circular position at
  ///    most once, at most `window` nodes, head oldest);
  ///  * the tail node at position `cur` (slide() always appends the newest
  ///    partial there);
  ///  * ⊕-monotonicity: no node absorbed by its newer neighbour — slide()
  ///    would have popped it, so its presence proves a corrupt value.
  static bool ValidateRestoredDeque(
      const window::ChunkedArrayQueue<Node>& deque, std::size_t window,
      std::size_t pos, std::size_t cur) {
    if (deque.empty()) return pos == 0 && cur == 0;
    const auto age_of = [&](std::size_t p) {
      return cur >= p ? cur - p : cur + window - p;
    };
    std::size_t prev_age = window;  // sentinel: above every legal age
    for (uint64_t s = deque.front_seq(); s != deque.end_seq(); ++s) {
      const Node& node = deque[s];
      if (node.pos >= window) return false;
      const std::size_t age = age_of(node.pos);
      if (age >= prev_age) return false;
      if (s != deque.front_seq() &&
          ops::Absorbs<Op>(node.val, deque[s - 1].val)) {
        return false;
      }
      prev_age = age;
    }
    return deque.back().pos == cur;
  }

  /// Slides-ago of the partial at circular position `pos` (0 = newest).
  /// Equivalent to Algorithm 2's startPos/boundaryCrossed test: the node is
  /// within range r iff AgeOf(pos) < r.
  std::size_t AgeOf(std::size_t pos) const {
    return cur_ >= pos ? cur_ - pos : cur_ + window_ - pos;
  }

  /// Admits `m` batch elements whose circular positions start at
  /// `start_pos`, pruning dominated nodes. Precondition: every head node
  /// the batch expires is already gone.
  SLICK_REALTIME_ALLOW(
      "mask_.assign reuses the survivor-bitmap capacity after the first "
      "batch at each high-water size — amortized O(1) per element, no "
      "steady-state allocation")
  void AppendBatch(const value_type* src, std::size_t m,
                   std::size_t start_pos) {
    if constexpr (ops::TotalOrderSelectiveOp<Op> &&
                  ops::HasSurvivorKernel<Op>) {
      // Vectorized staircase: one right-to-left pass of the survivor-mask
      // kernel finds every batch element no later element absorbs (strict
      // dominance over the running suffix aggregate) and the whole-batch
      // aggregate in the same sweep.
      mask_.assign((m + 63) / 64, 0);
      const value_type total = ops::SurvivorKernel<Op>::Mask(src, m,
                                                             mask_.data());
      // The newest element always survives; the kernel's strict test can
      // miss it only when src[m-1] equals ⊕'s identity, so force its bit.
      mask_[(m - 1) >> 6] |= uint64_t{1} << ((m - 1) & 63);
      while (!deque_.empty() &&
             ops::Absorbs<Op>(total, deque_.back().val)) {
        deque_.pop_back();
      }
      for (std::size_t w = 0; w < mask_.size(); ++w) {
        uint64_t bits = mask_[w];
        while (bits != 0) {
          const std::size_t k =
              (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          deque_.push_back(Node{(start_pos + k) % window_, src[k]});
        }
      }
    } else if constexpr (ops::TotalOrderSelectiveOp<Op>) {
      // Right-to-left suffix scan: element k survives the batch iff no
      // later batch element absorbs it, which for an order-induced absorbs
      // is one test against the aggregate of src[k+1..m).
      stair_.clear();
      stair_.push_back(m - 1);  // the newest element always survives
      value_type suffix = src[m - 1];
      for (std::size_t k = m - 1; k-- > 0;) {
        if (!ops::Absorbs<Op>(suffix, src[k])) stair_.push_back(k);
        suffix = Op::combine(src[k], suffix);
      }
      // suffix now aggregates the whole batch; prune the existing tail
      // against it once — sequential processing pops exactly the tail
      // nodes some batch element absorbs, and ages keep the survivors'
      // relative order unchanged.
      while (!deque_.empty() &&
             ops::Absorbs<Op>(suffix, deque_.back().val)) {
        deque_.pop_back();
      }
      for (std::size_t t = stair_.size(); t-- > 0;) {
        const std::size_t k = stair_[t];
        deque_.push_back(Node{(start_pos + k) % window_, src[k]});
      }
    } else {
      // Ad-hoc absorbs predicates get the exact per-element stack loop.
      for (std::size_t k = 0; k < m; ++k) {
        while (!deque_.empty() &&
               ops::Absorbs<Op>(src[k], deque_.back().val)) {
          deque_.pop_back();
        }
        deque_.push_back(Node{(start_pos + k) % window_, src[k]});
      }
    }
  }

  /// Advances *walk (a deque sequence number) to the first node whose
  /// position lies within the newest `range` positions, and returns its
  /// value. The newest node (age 0) always qualifies, so the walk
  /// terminates.
  result_type QueryFrom(uint64_t* walk, std::size_t range) const {
    SLICK_CHECK(!deque_.empty(), "query before the first slide");
    SLICK_CHECK(range >= 1 && range <= window_, "query range out of bounds");
    while (AgeOf(deque_[*walk].pos) >= range) ++*walk;
    return Op::lower(deque_[*walk].val);
  }

  std::size_t window_;
  window::ChunkedArrayQueue<Node> deque_;
  std::vector<std::size_t> stair_;  // BulkSlide scratch: surviving indices
  std::vector<uint64_t> mask_;      // BulkSlide scratch: survivor bitmask
  std::size_t pos_ = 0;  // write position of the next partial
  std::size_t cur_ = 0;  // position of the newest partial
};

}  // namespace slick::core

