#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "ops/kernels.h"
#include "ops/traits.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/serde.h"

namespace slick::core {

/// SlickDeque (Inv) — the paper's Algorithm 1: final aggregation for
/// *invertible* operations, extended from Panes (Inv) / Subtract-on-Evict to
/// multi-ACQ processing. A circular array holds the window's partials; one
/// running answer is maintained per registered distinct range. Each slide
/// updates every answer with exactly one ⊕ (the arriving partial) and one ⊖
/// (the partial expiring from that range).
///
/// Complexity (Table 1): exactly 2 operations per slide single-query, 2n in
/// the max-multi-query environment. Space: n + (one value per distinct
/// registered range), i.e. n+1 single-query and 2n max-multi-query — the
/// lowest of all compared algorithms.
///
/// The inverse is applied as `inverse(ans ⊕ new, expiring)`, which assumes a
/// commutative ⊕ (true of every invertible op in this library; a
/// non-commutative invertible op would need a dedicated left-inverse).
template <ops::InvertibleOp Op>
class SlickDequeInv {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  /// Creates a window of `window` partials. `ranges` lists the distinct
  /// query ranges to answer (the Preparation phase's `answers` map keys);
  /// by default only the full window is registered. Duplicate ranges are
  /// collapsed — queries over the same range share one running answer, as
  /// the paper prescribes.
  explicit SlickDequeInv(std::size_t window,
                         std::vector<std::size_t> ranges = {})
      : window_(window), partials_(window, Op::identity()) {
    SLICK_CHECK(window >= 1, "window must hold at least one partial");
    if (ranges.empty()) ranges.push_back(window);
    std::sort(ranges.begin(), ranges.end());
    ranges.erase(std::unique(ranges.begin(), ranges.end()), ranges.end());
    answers_.reserve(ranges.size());
    for (std::size_t r : ranges) {
      SLICK_CHECK(r >= 1 && r <= window, "registered range out of bounds");
      answers_.push_back(Answer{r, Op::identity()});
    }
  }

  /// Stores the newest partial and refreshes every registered answer:
  /// ans = (ans ⊕ new) ⊖ expiring.
  SLICK_REALTIME void slide(value_type v) {
    for (Answer& a : answers_) {
      const std::size_t start =
          pos_ >= a.range ? pos_ - a.range : pos_ + window_ - a.range;
      a.value = Op::inverse(Op::combine(a.value, v), partials_[start]);
    }
    partials_[pos_] = std::move(v);
    pos_ = pos_ + 1 == window_ ? 0 : pos_ + 1;
  }

  /// Batch slide (DESIGN.md §11): refreshes every registered answer with
  /// O(1) aggregate applications instead of one ⊕/⊖ pair per element —
  /// ans' = (ans ⊕ fold(batch)) ⊖ fold(expiring span), where both folds go
  /// through ops::FoldValues so invertible ops with registered kernels
  /// (Sum, SumInt, ...) vectorize. Exact for integer group ops; floating
  /// point may differ from the sequential path by reassociation only.
  SLICK_REALTIME void BulkSlide(const value_type* src, std::size_t n) {
    if (n == 0) return;
    if (n >= window_) {
      // Every pre-batch partial expires: recompute each answer directly
      // from the trailing window_ batch elements.
      const value_type* tail = src + (n - window_);
      for (Answer& a : answers_) {
        a.value = ops::FoldValues<Op>(tail + (window_ - a.range), a.range);
      }
      // The oldest surviving element lands at the post-batch cursor.
      WriteCircular(tail, window_, (pos_ + n) % window_);
      pos_ = (pos_ + n) % window_;
      return;
    }
    const value_type batch = ops::FoldValues<Op>(src, n);
    // Answers must be refreshed before the circular write: when a range
    // spans the whole window its expiring span IS the write region.
    for (Answer& a : answers_) {
      if (a.range <= n) {
        // The whole range now lies inside the batch.
        a.value = ops::FoldValues<Op>(src + (n - a.range), a.range);
      } else {
        // The n oldest partials of the range expire: a circular span of
        // length n starting at the range's current start position.
        const std::size_t start =
            pos_ >= a.range ? pos_ - a.range : pos_ + window_ - a.range;
        a.value = Op::inverse(Op::combine(a.value, batch),
                              FoldCircular(start, n));
      }
    }
    WriteCircular(src, n, pos_);
    pos_ = (pos_ + n) % window_;
  }

  /// Replaces the partial `age` slides old (0 = newest) — the §3.1
  /// in-window update capability. Every registered answer whose range
  /// still covers that partial is patched with one ⊖ (remove the stale
  /// value) and one ⊕ (apply the correction). O(registered ranges).
  SLICK_REALTIME void UpdateAt(std::size_t age, value_type v) {
    SLICK_CHECK(age < window_, "update age out of window");
    const std::size_t idx =
        pos_ >= age + 1 ? pos_ - age - 1 : pos_ + window_ - age - 1;
    for (Answer& a : answers_) {
      if (a.range > age) {
        a.value = Op::combine(Op::inverse(a.value, partials_[idx]), v);
      }
    }
    partials_[idx] = std::move(v);
  }

  /// Answer for the full window (must be a registered range).
  SLICK_REALTIME result_type query() const { return query(window_); }

  /// Answer for a registered range — a lookup, no aggregate operations.
  SLICK_REALTIME result_type query(std::size_t range) const {
    const Answer* a = Find(range);
    SLICK_CHECK(a != nullptr, "queried range was not registered");
    return Op::lower(a->value);
  }

  bool has_range(std::size_t range) const { return Find(range) != nullptr; }

  /// Visits every registered (range, answer) pair in ascending range order
  /// — the idiomatic way to drain the answers map each slide in a
  /// multi-query environment (no per-range lookup cost).
  template <typename F>
  void for_each_answer(F&& f) const {
    for (const Answer& a : answers_) f(a.range, Op::lower(a.value));
  }

  std::size_t window_size() const { return window_; }

  /// Checkpoints the window and the answers map (DSMS fault tolerance).
  void SaveState(std::ostream& os) const
    requires std::is_trivially_copyable_v<value_type>
  {
    util::WriteTag(os, util::MakeTag('S', 'D', 'I', '1'), 1);
    util::WritePodVec(os, partials_);
    util::WritePodVec(os, answers_);
    util::WritePod<uint64_t>(os, pos_);
  }

  /// Restores a checkpoint, replacing the current state (including the
  /// registered ranges).
  bool LoadState(std::istream& is)
    requires std::is_trivially_copyable_v<value_type>
  {
    if (!util::ExpectTag(is, util::MakeTag('S', 'D', 'I', '1'), 1)) {
      return false;
    }
    uint64_t pos = 0;
    if (!util::ReadPodVec(is, &partials_) || !util::ReadPodVec(is, &answers_) ||
        !util::ReadPod(is, &pos)) {
      return false;
    }
    if (partials_.empty() || answers_.empty() || pos >= partials_.size()) {
      return false;
    }
    window_ = partials_.size();
    pos_ = static_cast<std::size_t>(pos);
    for (const Answer& a : answers_) {
      if (a.range < 1 || a.range > window_) return false;
    }
    return true;
  }

  std::size_t memory_bytes() const {
    return sizeof(*this) + partials_.capacity() * sizeof(value_type) +
           answers_.capacity() * sizeof(Answer);
  }

 private:
  struct Answer {
    std::size_t range;
    value_type value;
  };

  /// Fold of the circular partials span [start, start+len) in stream
  /// order — at most two contiguous kernel folds.
  value_type FoldCircular(std::size_t start, std::size_t len) const {
    const std::size_t first = std::min(len, window_ - start);
    value_type acc = ops::FoldValues<Op>(partials_.data() + start, first);
    if (first < len) {
      acc = Op::combine(acc,
                        ops::FoldValues<Op>(partials_.data(), len - first));
    }
    return acc;
  }

  /// Copies `len` (<= window_) values into the circular buffer at `start`.
  void WriteCircular(const value_type* src, std::size_t len,
                     std::size_t start) {
    const std::size_t first = std::min(len, window_ - start);
    std::copy(src, src + first, partials_.data() + start);
    std::copy(src + first, src + len, partials_.data());
  }

  const Answer* Find(std::size_t range) const {
    auto it = std::lower_bound(
        answers_.begin(), answers_.end(), range,
        [](const Answer& a, std::size_t r) { return a.range < r; });
    if (it == answers_.end() || it->range != range) return nullptr;
    return &*it;
  }

  std::size_t window_;
  std::vector<value_type> partials_;
  std::vector<Answer> answers_;  // sorted by range ascending
  std::size_t pos_ = 0;  // next write position
};

}  // namespace slick::core

