#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ops/traits.h"
#include "util/check.h"
#include "util/serde.h"
#include "window/chunked_array_queue.h"

namespace slick::core {

/// Dynamically sized FIFO counterpart of SlickDeque (Non-Inv) for a single
/// query: the same ⊕-monotone deque as core::SlickDequeNonInv, but keyed by
/// absolute arrival sequence instead of a circular window position, so it
/// supports arbitrary insert()/evict() interleavings (growing and shrinking
/// windows). Used by the dispatching facade for FIFO-shaped workloads.
template <ops::SelectiveOp Op>
  requires std::equality_comparable<typename Op::value_type>
class MonotonicDeque {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  explicit MonotonicDeque(std::size_t chunk_capacity = 64)
      : deque_(chunk_capacity) {}

  void insert(value_type v) {
    while (!deque_.empty() && ops::Absorbs<Op>(v, deque_.back().val)) {
      deque_.pop_back();
    }
    deque_.push_back(Node{next_seq_, std::move(v)});
    ++next_seq_;
    ++live_;
  }

  void evict() {
    SLICK_CHECK(live_ > 0, "evict from empty window");
    ++oldest_seq_;
    --live_;
    if (!deque_.empty() && deque_.front().seq < oldest_seq_) {
      deque_.pop_front();
    }
  }

  /// Batch insert (DESIGN.md §11): same staircase reduction as SlickDeque
  /// (Non-Inv)'s BulkSlide — for total-order absorbs the batch survivors
  /// are found right-to-left with one test per element and the existing
  /// tail is pruned once against the whole-batch aggregate; other
  /// selective ops run the exact per-element loop. Final deque state is
  /// identical to n sequential insert() calls.
  void BulkInsert(const value_type* src, std::size_t n) {
    if (n == 0) return;
    if constexpr (ops::TotalOrderSelectiveOp<Op>) {
      stair_.clear();
      stair_.push_back(n - 1);
      value_type suffix = src[n - 1];
      for (std::size_t k = n - 1; k-- > 0;) {
        if (!ops::Absorbs<Op>(suffix, src[k])) stair_.push_back(k);
        suffix = Op::combine(src[k], suffix);
      }
      while (!deque_.empty() &&
             ops::Absorbs<Op>(suffix, deque_.back().val)) {
        deque_.pop_back();
      }
      for (std::size_t t = stair_.size(); t-- > 0;) {
        const std::size_t k = stair_[t];
        deque_.push_back(Node{next_seq_ + k, src[k]});
      }
    } else {
      for (std::size_t k = 0; k < n; ++k) {
        while (!deque_.empty() &&
               ops::Absorbs<Op>(src[k], deque_.back().val)) {
          deque_.pop_back();
        }
        deque_.push_back(Node{next_seq_ + k, src[k]});
      }
    }
    next_seq_ += n;
    live_ += n;
  }

  /// Batch evict (DESIGN.md §11): one sequence-counter jump, then a single
  /// head-prefix pop (sequence numbers are strictly increasing, so expired
  /// nodes always form a prefix).
  void BulkEvict(std::size_t n) {
    SLICK_CHECK(n <= live_, "bulk evict larger than window");
    oldest_seq_ += n;
    live_ -= n;
    while (!deque_.empty() && deque_.front().seq < oldest_seq_) {
      deque_.pop_front();
    }
  }

  /// Aggregate of the live window: the head node's value (identity when
  /// empty).
  result_type query() const {
    if (deque_.empty()) return Op::lower(Op::identity());
    return Op::lower(deque_.front().val);
  }

  std::size_t size() const { return live_; }

  std::size_t node_count() const { return deque_.size(); }

  std::size_t memory_bytes() const {
    return sizeof(*this) + deque_.memory_bytes();
  }

  /// Checkpoints the deque and sequence counters (DSMS fault tolerance).
  void SaveState(std::ostream& os) const
    requires std::is_trivially_copyable_v<value_type>
  {
    util::WriteTag(os, util::MakeTag('M', 'O', 'N', '1'), 1);
    deque_.SaveState(os);
    util::WritePod(os, next_seq_);
    util::WritePod(os, oldest_seq_);
    util::WritePod<uint64_t>(os, live_);
  }

  /// Restores a checkpoint, replacing the current state.
  bool LoadState(std::istream& is)
    requires std::is_trivially_copyable_v<value_type>
  {
    if (!util::ExpectTag(is, util::MakeTag('M', 'O', 'N', '1'), 1)) {
      return false;
    }
    uint64_t live = 0;
    if (!deque_.LoadState(is) || !util::ReadPod(is, &next_seq_) ||
        !util::ReadPod(is, &oldest_seq_) || !util::ReadPod(is, &live)) {
      return false;
    }
    live_ = static_cast<std::size_t>(live);
    return oldest_seq_ <= next_seq_ && live_ <= next_seq_ - oldest_seq_;
  }

 private:
  struct Node {
    uint64_t seq;  // arrival sequence number
    value_type val;
  };

  window::ChunkedArrayQueue<Node> deque_;
  std::vector<std::size_t> stair_;  // BulkInsert scratch: surviving indices
  uint64_t next_seq_ = 0;    // sequence of the next insert
  uint64_t oldest_seq_ = 0;  // sequence of the oldest live element
  std::size_t live_ = 0;     // live window size
};

}  // namespace slick::core

