#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/windowed.h"
#include "ops/traits.h"
#include "util/check.h"
#include "window/aggregator.h"

namespace slick::core {

/// Multi-range processing for single-query-only algorithms (TwoStacks,
/// DABA): one Windowed instance per registered range, all fed every slide.
/// The paper notes (§2.2) that "neither TwoStacks nor DABA are known to
/// support multi-query execution" — this adapter is the straightforward
/// workaround a practitioner would deploy, and it makes the cost of not
/// sharing explicit: Θ(q) aggregate operations and Θ(Σ ranges) memory for
/// q registered ranges, versus one shared structure for the natively
/// multi-query algorithms. bench/exp2_multi_query uses it to extend
/// Figs 12-13 with the missing contenders.
template <window::FifoAggregator A>
class PerQueryAdapter {
 public:
  using op_type = typename A::op_type;
  using value_type = typename A::value_type;
  using result_type = typename A::result_type;

  PerQueryAdapter(std::size_t window, std::vector<std::size_t> ranges)
      : window_(window) {
    SLICK_CHECK(!ranges.empty(), "at least one range required");
    std::sort(ranges.begin(), ranges.end());
    ranges.erase(std::unique(ranges.begin(), ranges.end()), ranges.end());
    instances_.reserve(ranges.size());
    for (std::size_t r : ranges) {
      SLICK_CHECK(r >= 1 && r <= window, "range out of bounds");
      instances_.emplace_back(r, Windowed<A>(r));
    }
  }

  void slide(value_type v) {
    for (auto& [range, agg] : instances_) agg.slide(v);
  }

  result_type query() const { return query(window_); }

  result_type query(std::size_t range) const {
    const auto it = std::lower_bound(
        instances_.begin(), instances_.end(), range,
        [](const auto& entry, std::size_t r) { return entry.first < r; });
    SLICK_CHECK(it != instances_.end() && it->first == range,
                "queried range was not registered");
    return it->second.query();
  }

  std::size_t window_size() const { return window_; }

  std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    for (const auto& [range, agg] : instances_) bytes += agg.memory_bytes();
    return bytes;
  }

 private:
  std::size_t window_;
  std::vector<std::pair<std::size_t, Windowed<A>>> instances_;
};

}  // namespace slick::core

