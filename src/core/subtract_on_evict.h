#pragma once

#include <cstddef>
#include <utility>

#include "ops/kernels.h"
#include "ops/traits.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/serde.h"
#include "window/chunked_array_queue.h"

namespace slick::core {

/// Dynamically sized FIFO counterpart of SlickDeque (Inv) for a single
/// query: a running aggregate plus a queue of the window's values. insert()
/// applies ⊕, evict() applies ⊖ to the expiring value (the paper's §2.2
/// lineage: Panes (Inv) / R-Int / Subtract-on-Evict). Exactly one aggregate
/// operation per event; space n + 1.
template <ops::InvertibleOp Op>
class SubtractOnEvict {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  explicit SubtractOnEvict(std::size_t chunk_capacity = 64)
      : values_(chunk_capacity) {}

  SLICK_REALTIME void insert(value_type v) {
    running_ = Op::combine(running_, v);
    values_.push_back(std::move(v));
  }

  SLICK_REALTIME void evict() {
    SLICK_CHECK(!values_.empty(), "evict from empty window");
    running_ = Op::inverse(running_, values_.front());
    values_.pop_front();
  }

  /// Batch insert (DESIGN.md §11): one kernel fold of the batch plus a
  /// single ⊕ into the running aggregate. Exact for integer group ops;
  /// floating point may differ from per-element insertion by
  /// reassociation only.
  SLICK_REALTIME void BulkInsert(const value_type* src, std::size_t n) {
    if (n == 0) return;
    running_ = Op::combine(running_, ops::FoldValues<Op>(src, n));
    for (std::size_t i = 0; i < n; ++i) values_.push_back(src[i]);
  }

  /// Batch evict (DESIGN.md §11): folds the n expiring values and applies
  /// one ⊖ instead of n.
  SLICK_REALTIME void BulkEvict(std::size_t n) {
    SLICK_CHECK(n <= values_.size(), "bulk evict larger than window");
    if (n == 0) return;
    value_type expiring = Op::identity();
    for (std::size_t i = 0; i < n; ++i) {
      expiring = Op::combine(expiring, values_.front());
      values_.pop_front();
    }
    running_ = Op::inverse(running_, expiring);
  }

  SLICK_REALTIME result_type query() const { return Op::lower(running_); }

  std::size_t size() const { return values_.size(); }

  std::size_t memory_bytes() const {
    return sizeof(*this) + values_.memory_bytes();
  }

  /// Checkpoints the window and running aggregate (DSMS fault tolerance).
  void SaveState(std::ostream& os) const
    requires std::is_trivially_copyable_v<value_type>
  {
    util::WriteTag(os, util::MakeTag('S', 'O', 'E', '1'), 1);
    values_.SaveState(os);
    util::WritePod(os, running_);
  }

  /// Restores a checkpoint, replacing the current state.
  bool LoadState(std::istream& is)
    requires std::is_trivially_copyable_v<value_type>
  {
    if (!util::ExpectTag(is, util::MakeTag('S', 'O', 'E', '1'), 1)) {
      return false;
    }
    return values_.LoadState(is) && util::ReadPod(is, &running_);
  }

 private:
  window::ChunkedArrayQueue<value_type> values_;
  value_type running_ = Op::identity();
};

}  // namespace slick::core

