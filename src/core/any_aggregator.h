#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <utility>

#include "core/range_aggregator.h"
#include "core/sliding_aggregator.h"
#include "ops/ops.h"
#include "util/check.h"

namespace slick::core {

/// Aggregations selectable at runtime by AnyWindowAggregator. Every kind
/// consumes doubles and produces a double answer.
enum class OpKind {
  kSum,
  kCount,
  kProduct,
  kSumOfSquares,
  kAverage,
  kStdDev,
  kGeoMean,
  kMax,
  kMin,
  kRange,
};

/// Parses an op name ("sum", "max", ...); returns true on success.
bool ParseOpKind(std::string_view name, OpKind* kind);
const char* ToString(OpKind kind);

/// Type-erased fixed-window aggregator over double streams, for callers
/// that pick the operation at runtime (CLIs, query frontends, bindings).
/// Construction dispatches once to the trait-selected implementation
/// (SlickDeque (Inv)/(Non-Inv), or the Max+Min pair for Range); after that
/// each call costs one virtual hop over the same compiled fast paths the
/// template API uses.
class AnyWindowAggregator {
 public:
  /// Builds the best aggregator for `kind` with a `window`-partial window.
  static AnyWindowAggregator Make(OpKind kind, std::size_t window);

  void slide(double x) { impl_->Slide(x); }
  double query() const { return impl_->Query(); }
  std::size_t window_size() const { return impl_->WindowSize(); }
  std::size_t memory_bytes() const { return impl_->MemoryBytes(); }
  OpKind kind() const { return kind_; }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual void Slide(double x) = 0;
    virtual double Query() const = 0;
    virtual std::size_t WindowSize() const = 0;
    virtual std::size_t MemoryBytes() const = 0;
  };

  template <typename Agg, typename Project>
  struct Impl final : Iface {
    Impl(Agg agg, Project project)
        : agg_(std::move(agg)), project_(project) {}

    void Slide(double x) override {
      if constexpr (requires { typename Agg::op_type; }) {
        agg_.slide(Agg::op_type::lift(x));
      } else {
        agg_.slide(x);  // RangeAggregator consumes doubles directly
      }
    }
    double Query() const override { return project_(agg_.query()); }
    std::size_t WindowSize() const override { return agg_.window_size(); }
    std::size_t MemoryBytes() const override { return agg_.memory_bytes(); }

    Agg agg_;
    Project project_;
  };

  template <typename Agg, typename Project>
  static AnyWindowAggregator Wrap(Agg agg, Project project, OpKind kind) {
    AnyWindowAggregator any;
    any.impl_ = std::make_unique<Impl<Agg, Project>>(std::move(agg), project);
    any.kind_ = kind;
    return any;
  }

  AnyWindowAggregator() = default;

  std::unique_ptr<Iface> impl_;
  OpKind kind_ = OpKind::kSum;
};

inline const char* ToString(OpKind kind) {
  switch (kind) {
    case OpKind::kSum: return "sum";
    case OpKind::kCount: return "count";
    case OpKind::kProduct: return "product";
    case OpKind::kSumOfSquares: return "sum_of_squares";
    case OpKind::kAverage: return "average";
    case OpKind::kStdDev: return "std_dev";
    case OpKind::kGeoMean: return "geo_mean";
    case OpKind::kMax: return "max";
    case OpKind::kMin: return "min";
    case OpKind::kRange: return "range";
  }
  return "?";
}

inline bool ParseOpKind(std::string_view name, OpKind* kind) {
  for (OpKind k :
       {OpKind::kSum, OpKind::kCount, OpKind::kProduct, OpKind::kSumOfSquares,
        OpKind::kAverage, OpKind::kStdDev, OpKind::kGeoMean, OpKind::kMax,
        OpKind::kMin, OpKind::kRange}) {
    if (name == ToString(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

inline AnyWindowAggregator AnyWindowAggregator::Make(OpKind kind,
                                                     std::size_t window) {
  const auto as_double = [](auto result) {
    return static_cast<double>(result);
  };
  switch (kind) {
    case OpKind::kSum:
      return Wrap(WindowAggregatorFor<ops::Sum>(window), as_double, kind);
    case OpKind::kCount:
      return Wrap(WindowAggregatorFor<ops::Count>(window), as_double, kind);
    case OpKind::kProduct:
      return Wrap(WindowAggregatorFor<ops::Product>(window), as_double, kind);
    case OpKind::kSumOfSquares:
      return Wrap(WindowAggregatorFor<ops::SumOfSquares>(window), as_double,
                  kind);
    case OpKind::kAverage:
      return Wrap(WindowAggregatorFor<ops::Average>(window), as_double, kind);
    case OpKind::kStdDev:
      return Wrap(WindowAggregatorFor<ops::StdDev>(window), as_double, kind);
    case OpKind::kGeoMean:
      return Wrap(WindowAggregatorFor<ops::GeoMean>(window), as_double, kind);
    case OpKind::kMax:
      return Wrap(WindowAggregatorFor<ops::Max>(window), as_double, kind);
    case OpKind::kMin:
      return Wrap(WindowAggregatorFor<ops::Min>(window), as_double, kind);
    case OpKind::kRange:
      return Wrap(RangeAggregator(window), as_double, kind);
  }
  SLICK_CHECK(false, "unknown OpKind");
  return Make(OpKind::kSum, window);  // unreachable
}

}  // namespace slick::core

