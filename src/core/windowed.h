#pragma once

#include <cstddef>
#include <utility>

#include "ops/traits.h"
#include "util/check.h"
#include "window/aggregator.h"

namespace slick::core {

/// Adapts a dynamically sized FIFO aggregator (TwoStacks, DABA, ...) to the
/// fixed-window slide() interface the paper's evaluation drives: the window
/// is pre-filled with ⊕'s identity so it is always exactly `window` partials
/// long, and each slide() is an evict() followed by an insert().
///
/// Only the full-window answer is available — TwoStacks and DABA do not
/// support sub-range (multi-query) lookups, as the paper notes in §2.2.
template <window::FifoAggregator A>
class Windowed {
 public:
  using op_type = typename A::op_type;
  using value_type = typename A::value_type;
  using result_type = typename A::result_type;

  template <typename... Args>
    requires std::constructible_from<A, Args...>
  explicit Windowed(std::size_t window, Args&&... args)
      : impl_(std::forward<Args>(args)...), window_(window) {
    SLICK_CHECK(window >= 1, "window must hold at least one partial");
    for (std::size_t i = 0; i < window; ++i) {
      impl_.insert(op_type::identity());
    }
  }

  void slide(value_type v) {
    impl_.evict();
    impl_.insert(std::move(v));
  }

  /// Batch slide (DESIGN.md §11): one bulk evict followed by one bulk
  /// insert via the window:: dispatchers, so FIFO aggregators with native
  /// batch members (TwoStacks, SubtractOnEvict, MonotonicDeque) amortize
  /// across the batch. The window content after the call matches n
  /// sequential slide() calls; internal stack/flip phase may differ from
  /// the interleaved order, which queries cannot observe.
  void BulkSlide(const value_type* src, std::size_t n) {
    if (n == 0) return;
    if (n >= window_) {
      window::BulkEvict(impl_, window_);
      window::BulkInsert(impl_, src + (n - window_), window_);
    } else {
      window::BulkEvict(impl_, n);
      window::BulkInsert(impl_, src, n);
    }
  }

  result_type query() const { return impl_.query(); }

  result_type query(std::size_t range) const {
    SLICK_CHECK(range == window_,
                "this aggregator only answers the full-window range");
    return impl_.query();
  }

  std::size_t window_size() const { return window_; }

  std::size_t memory_bytes() const { return impl_.memory_bytes(); }

  A& impl() { return impl_; }
  const A& impl() const { return impl_; }

 private:
  A impl_;
  std::size_t window_;
};

}  // namespace slick::core

