#pragma once

#include <concepts>

#include "core/monotonic_deque.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/subtract_on_evict.h"
#include "core/windowed.h"
#include "ops/traits.h"
#include "window/daba.h"

namespace slick::core {

// The paper's headline idea as a user-facing API: pick the execution
// strategy from the operation's algebraic properties.
//
//   * invertible            -> SlickDeque (Inv) / Subtract-on-Evict
//   * selective (paper's
//     non-invertible class) -> SlickDeque (Non-Inv) / monotonic deque
//   * anything else
//     (associative only)    -> DABA, the best general-purpose algorithm
//
// `FifoAggregatorFor<Op>` names the dynamically sized FIFO implementation,
// `WindowAggregatorFor<Op>` the fixed-window (slide-based, multi-query
// capable) implementation. Both resolve at compile time — no virtual
// dispatch on the hot path.

namespace internal {

template <ops::AggregateOp Op>
struct FifoPicker {
  using type = window::Daba<Op>;
};

template <ops::InvertibleOp Op>
struct FifoPicker<Op> {
  using type = SubtractOnEvict<Op>;
};

template <ops::SelectiveOp Op>
  requires std::equality_comparable<typename Op::value_type> &&
           (!Op::kInvertible)
struct FifoPicker<Op> {
  using type = MonotonicDeque<Op>;
};

template <ops::AggregateOp Op>
struct WindowPicker {
  using type = Windowed<window::Daba<Op>>;
};

template <ops::InvertibleOp Op>
struct WindowPicker<Op> {
  using type = SlickDequeInv<Op>;
};

template <ops::SelectiveOp Op>
  requires std::equality_comparable<typename Op::value_type> &&
           (!Op::kInvertible)
struct WindowPicker<Op> {
  using type = SlickDequeNonInv<Op>;
};

}  // namespace internal

/// Best dynamically sized FIFO aggregator for Op (insert/evict/query).
template <ops::AggregateOp Op>
using FifoAggregatorFor = typename internal::FifoPicker<Op>::type;

/// Best fixed-window aggregator for Op (slide/query).
template <ops::AggregateOp Op>
using WindowAggregatorFor = typename internal::WindowPicker<Op>::type;

// Batch entry points (DESIGN.md §11). These are the window:: dispatchers:
// aggregators with native Bulk* members take their algorithm-specific fast
// path, everything else (including type-erased AnyAggregator wrappers)
// falls back to the per-tuple loop — callers never need to know which.
using window::BulkEvict;
using window::BulkInsert;
using window::BulkSlide;

}  // namespace slick::core

