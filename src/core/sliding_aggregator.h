#pragma once

#include <concepts>

#include "core/monotonic_deque.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/subtract_on_evict.h"
#include "core/windowed.h"
#include "ops/traits.h"
#include "window/daba.h"
#include "window/ooo_tree.h"

namespace slick::core {

/// Arrival-order capability (DESIGN.md §13). In-order streams (the paper's
/// §3.1 assumption) run on the SlickDeque family picked below; queries
/// declaring event-time semantics — timestamps may arrive out of order —
/// select kOutOfOrder and run on the finger-B-tree final aggregator, which
/// needs only associativity and supports watermark-driven bulk eviction.
enum class Arrival { kInOrder, kOutOfOrder };

// The paper's headline idea as a user-facing API: pick the execution
// strategy from the operation's algebraic properties.
//
//   * invertible            -> SlickDeque (Inv) / Subtract-on-Evict
//   * selective (paper's
//     non-invertible class) -> SlickDeque (Non-Inv) / monotonic deque
//   * anything else
//     (associative only)    -> DABA, the best general-purpose algorithm
//
// `FifoAggregatorFor<Op>` names the dynamically sized FIFO implementation,
// `WindowAggregatorFor<Op>` the fixed-window (slide-based, multi-query
// capable) implementation. Both resolve at compile time — no virtual
// dispatch on the hot path.

namespace internal {

template <ops::AggregateOp Op>
struct FifoPicker {
  using type = window::Daba<Op>;
};

template <ops::InvertibleOp Op>
struct FifoPicker<Op> {
  using type = SubtractOnEvict<Op>;
};

template <ops::SelectiveOp Op>
  requires std::equality_comparable<typename Op::value_type> &&
           (!Op::kInvertible)
struct FifoPicker<Op> {
  using type = MonotonicDeque<Op>;
};

template <ops::AggregateOp Op>
struct WindowPicker {
  using type = Windowed<window::Daba<Op>>;
};

template <ops::InvertibleOp Op>
struct WindowPicker<Op> {
  using type = SlickDequeInv<Op>;
};

template <ops::SelectiveOp Op>
  requires std::equality_comparable<typename Op::value_type> &&
           (!Op::kInvertible)
struct WindowPicker<Op> {
  using type = SlickDequeNonInv<Op>;
};

template <ops::AggregateOp Op, Arrival A>
struct ArrivalPicker {
  using type = typename FifoPicker<Op>::type;
};

template <ops::AggregateOp Op>
struct ArrivalPicker<Op, Arrival::kOutOfOrder> {
  using type = window::OooTree<Op>;
};

}  // namespace internal

/// Best dynamically sized FIFO aggregator for Op (insert/evict/query).
template <ops::AggregateOp Op>
using FifoAggregatorFor = typename internal::FifoPicker<Op>::type;

/// Best fixed-window aggregator for Op (slide/query).
template <ops::AggregateOp Op>
using WindowAggregatorFor = typename internal::WindowPicker<Op>::type;

/// Best timestamped out-of-order final aggregator for Op. There is one
/// algorithm for every op class here: the OoO tree never uses inverse(),
/// so invertible, selective, and plain associative ops all run on it.
template <ops::AggregateOp Op>
using OooAggregatorFor = window::OooTree<Op>;

/// Arrival-dispatching alias: FifoAggregatorFor when the stream is
/// in-order, OooAggregatorFor when the query declares event time.
template <ops::AggregateOp Op, Arrival A = Arrival::kInOrder>
using ArrivalAggregatorFor = typename internal::ArrivalPicker<Op, A>::type;

// Batch entry points (DESIGN.md §11). These are the window:: dispatchers:
// aggregators with native Bulk* members take their algorithm-specific fast
// path, everything else (including type-erased AnyAggregator wrappers)
// falls back to the per-tuple loop — callers never need to know which.
using window::BulkEvict;
using window::BulkInsert;
using window::BulkSlide;

}  // namespace slick::core

