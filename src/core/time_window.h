#pragma once

#include <cstdint>
#include <utility>

#include "util/check.h"
#include "window/aggregator.h"
#include "window/chunked_array_queue.h"

namespace slick::core {

/// Event-time sliding window (the paper's ACQs can be count- or
/// time-based, §1): keeps every element whose timestamp lies within
/// `range` of the newest observed timestamp, i.e. the window
/// (now - range, now]. Built on any dynamically sized FIFO aggregator —
/// time-based windows admit a *variable* number of elements per instant,
/// which is exactly what insert()/evict() pairs of TwoStacks, DABA, the
/// monotonic deque or Subtract-on-Evict support.
///
/// Timestamps must be non-decreasing (the paper's in-order arrival
/// assumption, §3.1; see stream::ReorderBuffer for slightly out-of-order
/// feeds).
template <window::FifoAggregator A>
class TimeWindow {
 public:
  using op_type = typename A::op_type;
  using value_type = typename A::value_type;
  using result_type = typename A::result_type;

  /// `range` in timestamp units (e.g. milliseconds, or tuple counts at a
  /// fixed sample rate).
  explicit TimeWindow(uint64_t range) : range_(range) {
    SLICK_CHECK(range >= 1, "time range must be positive");
  }

  /// Admits an element observed at `ts`, expiring everything older than
  /// ts - range + 1.
  void Observe(uint64_t ts, value_type v) {
    SLICK_CHECK(ts >= now_, "timestamps must be non-decreasing");
    now_ = ts;
    EvictExpired();
    timestamps_.push_back(ts);
    agg_.insert(std::move(v));
  }

  /// Advances time without an element (e.g. on a punctuation or timer
  /// tick), expiring old elements.
  void AdvanceTo(uint64_t ts) {
    SLICK_CHECK(ts >= now_, "timestamps must be non-decreasing");
    now_ = ts;
    EvictExpired();
  }

  /// Aggregate of the current window (now - range, now].
  result_type query() const { return agg_.query(); }

  uint64_t now() const { return now_; }
  std::size_t size() const { return agg_.size(); }
  uint64_t range() const { return range_; }

  std::size_t memory_bytes() const {
    return sizeof(*this) + agg_.memory_bytes() + timestamps_.memory_bytes();
  }

 private:
  void EvictExpired() {
    const uint64_t cutoff = now_ >= range_ ? now_ - range_ + 1 : 0;
    while (!timestamps_.empty() && timestamps_.front() < cutoff) {
      timestamps_.pop_front();
      agg_.evict();
    }
  }

  A agg_;
  window::ChunkedArrayQueue<uint64_t> timestamps_;
  uint64_t range_;
  uint64_t now_ = 0;
};

}  // namespace slick::core

