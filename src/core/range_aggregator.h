#pragma once

#include <cstddef>
#include <vector>

#include "core/slick_deque_noninv.h"
#include "ops/minmax.h"
#include "ops/scan_kernels.h"

namespace slick::core {

/// Range = Max - Min (paper §3.1: "Range (Max and Min)"). The fused
/// {max,min} partial is neither invertible nor selective, so — exactly as
/// the paper prescribes for algebraic aggregations — it is computed from
/// its two distributive components, each running on its own SlickDeque
/// (Non-Inv).
class RangeAggregator {
 public:
  using value_type = double;
  using result_type = double;

  explicit RangeAggregator(std::size_t window) : max_(window), min_(window) {}

  void slide(double v) {
    max_.slide(v);
    min_.slide(v);
  }

  double query() const { return max_.query() - min_.query(); }

  double query(std::size_t range) const {
    return max_.query(range) - min_.query(range);
  }

  /// Answers several ranges (sorted descending, as each component deque's
  /// query_multi requires) with one shared walk per deque, then projects
  /// max - min for the whole block through the vectorized SubtractArrays
  /// kernel. Results are appended to `out`.
  void query_multi(const std::vector<std::size_t>& ranges_desc,
                   std::vector<double>& out) const {
    const std::size_t n = ranges_desc.size();
    if (n == 0) return;
    max_scratch_.clear();
    min_scratch_.clear();
    max_.query_multi(ranges_desc, max_scratch_);
    min_.query_multi(ranges_desc, min_scratch_);
    const std::size_t base = out.size();
    out.resize(base + n);
    ops::kernels::SubtractArrays(max_scratch_.data(), min_scratch_.data(),
                                 out.data() + base, n);
  }

  std::size_t window_size() const { return max_.window_size(); }

  std::size_t memory_bytes() const {
    return sizeof(*this) + max_.memory_bytes() + min_.memory_bytes() +
           (max_scratch_.capacity() + min_scratch_.capacity()) *
               sizeof(double);
  }

 private:
  SlickDequeNonInv<ops::Max> max_;
  SlickDequeNonInv<ops::Min> min_;
  // query_multi scratch; mutable so the const query surface keeps its
  // shape while reusing capacity across calls.
  mutable std::vector<double> max_scratch_;
  mutable std::vector<double> min_scratch_;
};

}  // namespace slick::core
