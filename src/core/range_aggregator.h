#pragma once

#include <cstddef>

#include "core/slick_deque_noninv.h"
#include "ops/minmax.h"

namespace slick::core {

/// Range = Max - Min (paper §3.1: "Range (Max and Min)"). The fused
/// {max,min} partial is neither invertible nor selective, so — exactly as
/// the paper prescribes for algebraic aggregations — it is computed from
/// its two distributive components, each running on its own SlickDeque
/// (Non-Inv).
class RangeAggregator {
 public:
  using value_type = double;
  using result_type = double;

  explicit RangeAggregator(std::size_t window) : max_(window), min_(window) {}

  void slide(double v) {
    max_.slide(v);
    min_.slide(v);
  }

  double query() const { return max_.query() - min_.query(); }

  double query(std::size_t range) const {
    return max_.query(range) - min_.query(range);
  }

  std::size_t window_size() const { return max_.window_size(); }

  std::size_t memory_bytes() const {
    return sizeof(*this) + max_.memory_bytes() + min_.memory_bytes();
  }

 private:
  SlickDequeNonInv<ops::Max> max_;
  SlickDequeNonInv<ops::Min> min_;
};

}  // namespace slick::core

