#pragma once

// Umbrella header: the whole public API in one include.
//
//   #include "slickdeque.h"
//   slick::core::WindowAggregatorFor<slick::ops::Max> peak(1024);
//
// Finer-grained headers (listed below) keep compile times down when you
// only need a slice of the library.

#include "core/any_aggregator.h"       // IWYU pragma: export
#include "core/monotonic_deque.h"      // IWYU pragma: export
#include "core/per_query_adapter.h"    // IWYU pragma: export
#include "core/range_aggregator.h"     // IWYU pragma: export
#include "core/slick_deque_inv.h"      // IWYU pragma: export
#include "core/slick_deque_noninv.h"   // IWYU pragma: export
#include "core/sliding_aggregator.h"   // IWYU pragma: export
#include "core/subtract_on_evict.h"    // IWYU pragma: export
#include "core/time_window.h"          // IWYU pragma: export
#include "core/windowed.h"             // IWYU pragma: export
#include "engine/acq_engine.h"         // IWYU pragma: export
#include "engine/dynamic_engine.h"     // IWYU pragma: export
#include "engine/keyed_engine.h"       // IWYU pragma: export
#include "engine/shared_family.h"      // IWYU pragma: export
#include "engine/sharded.h"            // IWYU pragma: export
#include "engine/time_acq_engine.h"    // IWYU pragma: export
#include "ops/ops.h"                   // IWYU pragma: export
#include "ops/maxcount.h"              // IWYU pragma: export
#include "ops/sketch.h"                // IWYU pragma: export
#include "plan/optimizer.h"            // IWYU pragma: export
#include "runtime/parallel_engine.h"   // IWYU pragma: export
#include "runtime/shard_worker.h"      // IWYU pragma: export
#include "runtime/spsc_ring.h"         // IWYU pragma: export
#include "plan/pat.h"                  // IWYU pragma: export
#include "plan/query_spec.h"           // IWYU pragma: export
#include "plan/shared_plan.h"          // IWYU pragma: export
#include "stream/dataset.h"            // IWYU pragma: export
#include "stream/reorder.h"            // IWYU pragma: export
#include "stream/synthetic.h"          // IWYU pragma: export
#include "telemetry/counters.h"        // IWYU pragma: export
#include "telemetry/histogram.h"       // IWYU pragma: export
#include "telemetry/json.h"            // IWYU pragma: export
#include "telemetry/sink.h"            // IWYU pragma: export
#include "telemetry/snapshot.h"        // IWYU pragma: export
#include "window/b_int.h"              // IWYU pragma: export
#include "window/daba.h"               // IWYU pragma: export
#include "window/flat_fat.h"           // IWYU pragma: export
#include "window/flat_fit.h"           // IWYU pragma: export
#include "window/history_tree.h"       // IWYU pragma: export
#include "window/naive.h"              // IWYU pragma: export
#include "window/reference.h"          // IWYU pragma: export
#include "window/two_stacks.h"         // IWYU pragma: export
#include "window/two_stacks_ring.h"    // IWYU pragma: export

