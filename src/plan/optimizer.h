#pragma once

#include <cstdint>
#include <vector>

#include "plan/pat.h"
#include "plan/query_spec.h"
#include "plan/shared_plan.h"

namespace slick::plan {

/// Cost model for executing one shared plan with SlickDeque (Inv)-style
/// final aggregation, in abstract operation units per stream tuple:
///
///   1                                  partial accumulation (1 ⊕/tuple)
/// + edges/composite · edge_overhead    per-partial bookkeeping
/// + edges/composite · 2·|ranges|       Algorithm 1's ⊕/⊖ per answer entry
///
/// Every group pays the full per-tuple partial cost — the term that makes
/// sharing attractive — while merging queries with incompatible slides
/// multiplies edges and distinct ranges — the term that makes *maximum*
/// sharing harmful, the effect the paper's §2.3 cites from the sharing
/// literature.
struct PlanCostModel {
  double edge_overhead = 4.0;  // plan bookkeeping per produced partial

  double CostPerTuple(const SharedPlan& plan) const {
    const auto composite = static_cast<double>(plan.composite_slide());
    const auto edges = static_cast<double>(plan.partials_per_composite_slide());
    const auto ranges = static_cast<double>(plan.distinct_ranges().size());
    return 1.0 + edges / composite * (edge_overhead + 2.0 * ranges);
  }
};

/// A grouping of queries into shared plans plus its modeled cost.
struct Grouping {
  std::vector<std::vector<QuerySpec>> groups;
  double cost_per_tuple = 0.0;
};

/// Greedy cost-based group former: starts from singleton groups (no
/// sharing) and repeatedly merges the pair of groups with the largest
/// modeled saving until no merge helps. Compatible queries (harmonic
/// slides, shared ranges) coalesce; pathological merges (coprime slides
/// that explode the composite) are kept apart.
Grouping OptimizeGrouping(const std::vector<QuerySpec>& queries, Pat pat,
                          const PlanCostModel& model = {});

/// Cost of the always-share-everything strategy (one plan), for
/// comparison.
double MaxSharingCost(const std::vector<QuerySpec>& queries, Pat pat,
                      const PlanCostModel& model = {});

/// Cost of the never-share strategy (one plan per query).
double NoSharingCost(const std::vector<QuerySpec>& queries, Pat pat,
                     const PlanCostModel& model = {});

}  // namespace slick::plan

