#pragma once

#include <cstdint>
#include <vector>

#include "plan/pat.h"
#include "plan/query_spec.h"

namespace slick::plan {

/// One query answer due at a plan step.
struct ReportEntry {
  uint32_t query = 0;            // index into the registered query list
  uint64_t range_in_partials = 0;  // how many plan partials the range spans
};

/// One edge of the composite slide: the partial that ends here and the
/// queries whose answers are due.
struct PlanStep {
  uint64_t partial_len = 0;  // tuples aggregated into this partial
  std::vector<ReportEntry> reports;
};

/// Shared execution plan for a set of compatible ACQs (paper §2.3, the
/// buildSharedPlan step of Algorithms 1 and 2): the composite slide is the
/// LCM of all query slides; every query's fragment edges are marked inside
/// it; shared edges mean shared partial aggregations.
class SharedPlan {
 public:
  /// Builds the plan. With Pat::kCutty some query ranges do not land on an
  /// edge (Cutty reads the current partial mid-accumulation); such plans
  /// report executable() == false and are usable for cost analysis only.
  static SharedPlan Build(const std::vector<QuerySpec>& queries, Pat pat);

  const std::vector<QuerySpec>& queries() const { return queries_; }
  Pat pat() const { return pat_; }

  /// Length of the composite slide in tuples.
  uint64_t composite_slide() const { return composite_slide_; }

  /// The steps (partials) of one composite slide, in stream order.
  const std::vector<PlanStep>& steps() const { return steps_; }

  /// The paper's wSize: window length, in partials, needed to answer every
  /// registered query (the maximum range_in_partials).
  uint64_t window_partials() const { return window_partials_; }

  /// Distinct range_in_partials values across all reports (the keys of
  /// SlickDeque (Inv)'s answers map), sorted ascending.
  const std::vector<uint64_t>& distinct_ranges() const {
    return distinct_ranges_;
  }

  /// False when some range falls mid-partial (possible under Cutty).
  bool executable() const { return executable_; }

  /// Partials per composite slide — the sharing metric of §2.3 (fewer is
  /// better; equals steps().size()).
  uint64_t partials_per_composite_slide() const { return steps_.size(); }

 private:
  std::vector<QuerySpec> queries_;
  Pat pat_ = Pat::kPairs;
  uint64_t composite_slide_ = 0;
  uint64_t window_partials_ = 0;
  std::vector<PlanStep> steps_;
  std::vector<uint64_t> distinct_ranges_;
  bool executable_ = true;
};

}  // namespace slick::plan

