#include "plan/optimizer.h"

#include <limits>
#include <utility>

#include "util/check.h"

namespace slick::plan {
namespace {

double GroupCost(const std::vector<QuerySpec>& group, Pat pat,
                 const PlanCostModel& model) {
  return model.CostPerTuple(SharedPlan::Build(group, pat));
}

std::vector<QuerySpec> Merge(const std::vector<QuerySpec>& a,
                             const std::vector<QuerySpec>& b) {
  std::vector<QuerySpec> merged = a;
  merged.insert(merged.end(), b.begin(), b.end());
  return merged;
}

}  // namespace

Grouping OptimizeGrouping(const std::vector<QuerySpec>& queries, Pat pat,
                          const PlanCostModel& model) {
  SLICK_CHECK(!queries.empty(), "optimizer needs at least one query");
  Grouping g;
  std::vector<double> costs;
  for (const QuerySpec& q : queries) {
    g.groups.push_back({q});
    costs.push_back(GroupCost(g.groups.back(), pat, model));
  }

  while (g.groups.size() > 1) {
    double best_saving = 0.0;
    std::size_t best_i = 0, best_j = 0;
    double best_cost = 0.0;
    for (std::size_t i = 0; i < g.groups.size(); ++i) {
      for (std::size_t j = i + 1; j < g.groups.size(); ++j) {
        const double merged_cost =
            GroupCost(Merge(g.groups[i], g.groups[j]), pat, model);
        const double saving = costs[i] + costs[j] - merged_cost;
        if (saving > best_saving) {
          best_saving = saving;
          best_i = i;
          best_j = j;
          best_cost = merged_cost;
        }
      }
    }
    if (best_saving <= 0.0) break;
    g.groups[best_i] = Merge(g.groups[best_i], g.groups[best_j]);
    costs[best_i] = best_cost;
    g.groups.erase(g.groups.begin() + static_cast<std::ptrdiff_t>(best_j));
    costs.erase(costs.begin() + static_cast<std::ptrdiff_t>(best_j));
  }

  g.cost_per_tuple = 0.0;
  for (double c : costs) g.cost_per_tuple += c;
  return g;
}

double MaxSharingCost(const std::vector<QuerySpec>& queries, Pat pat,
                      const PlanCostModel& model) {
  return GroupCost(queries, pat, model);
}

double NoSharingCost(const std::vector<QuerySpec>& queries, Pat pat,
                     const PlanCostModel& model) {
  double total = 0.0;
  for (const QuerySpec& q : queries) total += GroupCost({q}, pat, model);
  return total;
}

}  // namespace slick::plan
