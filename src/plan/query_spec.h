#pragma once

#include <cstdint>

namespace slick::plan {

/// An Aggregate Continuous Query's window specification (paper §1): the
/// range is the window the statistics cover, the slide is the period at
/// which the answer is refreshed. Both are in tuple counts (the paper's
/// count-based windows; time-based windows map to counts upstream at a
/// fixed sampling rate, e.g. DEBS12's 100 Hz).
struct QuerySpec {
  uint64_t range = 1;
  uint64_t slide = 1;

  friend bool operator==(const QuerySpec&, const QuerySpec&) = default;
};

}  // namespace slick::plan

