#include "plan/shared_plan.h"

#include <algorithm>
#include <cstdint>

#include "util/check.h"
#include "util/math.h"

namespace slick::plan {
namespace {

/// Number of edges with offset in (lo, hi], both in [0, composite].
uint64_t CountEdgesIn(const std::vector<uint64_t>& edges, uint64_t lo,
                      uint64_t hi) {
  const auto from = std::upper_bound(edges.begin(), edges.end(), lo);
  const auto to = std::upper_bound(edges.begin(), edges.end(), hi);
  return static_cast<uint64_t>(to - from);
}

bool IsEdge(const std::vector<uint64_t>& edges, uint64_t offset) {
  return offset == 0 ||
         std::binary_search(edges.begin(), edges.end(), offset);
}

}  // namespace

SharedPlan SharedPlan::Build(const std::vector<QuerySpec>& queries, Pat pat) {
  SLICK_CHECK(!queries.empty(), "a shared plan needs at least one query");
  SharedPlan plan;
  plan.queries_ = queries;
  plan.pat_ = pat;

  // Composite slide = LCM of all slides (paper §2.3).
  std::vector<uint64_t> slides;
  slides.reserve(queries.size());
  for (const QuerySpec& q : queries) slides.push_back(q.slide);
  const uint64_t composite = util::LcmAll(slides.data(), slides.size());
  plan.composite_slide_ = composite;

  // Mark every query's fragment edges inside the composite slide.
  std::vector<uint64_t> edges;
  for (const QuerySpec& q : queries) {
    const std::vector<uint64_t> frag = FragmentEdges(q, pat);
    for (uint64_t b = 0; b < composite; b += q.slide) {
      for (uint64_t fe : frag) edges.push_back(b + fe);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  SLICK_CHECK(!edges.empty() && edges.back() == composite,
              "composite slide end must be an edge");

  // Steps: one partial per edge, in stream order.
  plan.steps_.resize(edges.size());
  uint64_t prev = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    plan.steps_[i].partial_len = edges[i] - prev;
    prev = edges[i];
  }

  // Reports: query q answers at every multiple of its slide. Its range,
  // counted back from the report edge, spans a number of plan partials that
  // can differ per report position under heterogeneous slides.
  const uint64_t edges_per_composite = edges.size();
  for (uint32_t qi = 0; qi < queries.size(); ++qi) {
    const QuerySpec& q = queries[qi];
    for (uint64_t e = q.slide; e <= composite; e += q.slide) {
      const auto step_idx = static_cast<std::size_t>(
          std::lower_bound(edges.begin(), edges.end(), e) - edges.begin());
      SLICK_DCHECK(step_idx < edges.size() && edges[step_idx] == e,
                   "report position must be an edge");
      // Normalize the range start into [0, composite).
      uint64_t wraps = 0;
      uint64_t start;
      if (q.range > e) {
        wraps = (q.range - e + composite - 1) / composite;
        start = e + wraps * composite - q.range;
      } else {
        start = e - q.range;
      }
      if (!IsEdge(edges, start)) {
        // The range begins mid-partial (possible under Cutty): the plan is
        // still valid for cost analysis but cannot drive execution.
        plan.executable_ = false;
        continue;
      }
      uint64_t count;
      if (wraps == 0) {
        count = CountEdgesIn(edges, start, e);
      } else {
        count = CountEdgesIn(edges, start, composite) +
                (wraps - 1) * edges_per_composite + CountEdgesIn(edges, 0, e);
      }
      plan.steps_[step_idx].reports.push_back(ReportEntry{qi, count});
      plan.window_partials_ = std::max(plan.window_partials_, count);
      plan.distinct_ranges_.push_back(count);
    }
  }

  std::sort(plan.distinct_ranges_.begin(), plan.distinct_ranges_.end());
  plan.distinct_ranges_.erase(
      std::unique(plan.distinct_ranges_.begin(), plan.distinct_ranges_.end()),
      plan.distinct_ranges_.end());

  // Answer larger ranges first within each step: SlickDeque (Non-Inv)'s
  // multi-answer walk relies on descending order (§3.2).
  for (PlanStep& step : plan.steps_) {
    std::sort(step.reports.begin(), step.reports.end(),
              [](const ReportEntry& a, const ReportEntry& b) {
                if (a.range_in_partials != b.range_in_partials) {
                  return a.range_in_partials > b.range_in_partials;
                }
                return a.query < b.query;
              });
  }
  return plan;
}

}  // namespace slick::plan
