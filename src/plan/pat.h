#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "plan/query_spec.h"
#include "util/check.h"

namespace slick::plan {

/// Partial Aggregation Techniques (paper §2.1): how the incoming stream is
/// sliced into partials whose aggregates feed the final aggregator.
enum class Pat {
  kPanes,  // panes of gcd(range, slide) tuples [Li et al.]
  kPairs,  // at most two fragments per slide: f2 = range % slide, f1 = slide - f2
  kCutty,  // one fragment per slide, cut only at window begins
};

inline const char* ToString(Pat pat) {
  switch (pat) {
    case Pat::kPanes:
      return "panes";
    case Pat::kPairs:
      return "pairs";
    case Pat::kCutty:
      return "cutty";
  }
  return "?";
}

/// Returns the edge offsets (fragment end positions) contributed by query
/// `q` within one of its slides, as offsets in (0, slide]. The last edge is
/// always `slide` itself.
inline std::vector<uint64_t> FragmentEdges(const QuerySpec& q, Pat pat) {
  SLICK_CHECK(q.range >= 1 && q.slide >= 1, "range and slide must be >= 1");
  std::vector<uint64_t> edges;
  switch (pat) {
    case Pat::kPanes: {
      const uint64_t pane = std::gcd(q.range, q.slide);
      for (uint64_t e = pane; e <= q.slide; e += pane) edges.push_back(e);
      break;
    }
    case Pat::kPairs: {
      const uint64_t f2 = q.range % q.slide;
      if (f2 != 0) edges.push_back(q.slide - f2);
      edges.push_back(q.slide);
      break;
    }
    case Pat::kCutty: {
      edges.push_back(q.slide);
      break;
    }
  }
  return edges;
}

/// Number of partials one window of `q` spans under `pat` — the per-query
/// memory/lookup cost the paper's Figures 1-3 illustrate.
inline uint64_t PartialsPerWindow(const QuerySpec& q, Pat pat) {
  switch (pat) {
    case Pat::kPanes:
      return q.range / std::gcd(q.range, q.slide);
    case Pat::kPairs: {
      const uint64_t f2 = q.range % q.slide;
      if (q.range <= q.slide) return 1;
      // Each full slide inside the range contributes two fragments (one if
      // f2 == 0); the trailing f2 fragment completes the range.
      return (q.range / q.slide) * (f2 == 0 ? 1 : 2) + (f2 == 0 ? 0 : 1);
    }
    case Pat::kCutty:
      // One fragment per slide; the final fragment is read mid-partial.
      return q.range / q.slide + (q.range % q.slide == 0 ? 0 : 1);
  }
  return 0;
}

}  // namespace slick::plan

