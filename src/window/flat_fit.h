#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ops/traits.h"
#include "util/check.h"
#include "util/serde.h"

namespace slick::window {

/// FlatFIT — Flat and Fast Index Traverser (paper §2.2): two circular
/// arrays, `PartialInts` (intermediate aggregates, vals_ here) and
/// `Pointers` (skip targets, jump_ here), plus a `Positions` stack of the
/// indices visited by the current traversal.
///
/// Invariant: vals_[i] aggregates the stream positions i .. jump_[i]-1 (in
/// circular stream order), so an answer for a range is assembled by hopping
/// along jump_ from the range's start to the current position, combining
/// the stored intermediates. Every traversal then *path-compresses*: each
/// visited index is repointed directly at the current position with the
/// corresponding suffix aggregate stored in vals_, which is what gives
/// FlatFIT its amortized-constant cost (Table 1: amortized 3 ops per slide,
/// worst case n during the cyclical "window reset"; in the max-multi-query
/// environment n-1 ops per slide). Space: 2n plus the traversal stack.
template <ops::AggregateOp Op>
class FlatFit {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  explicit FlatFit(std::size_t window)
      : window_(window),
        vals_(window, Op::identity()),
        jump_(window) {
    SLICK_CHECK(window >= 1, "window must hold at least one partial");
    SLICK_CHECK(window <= UINT32_MAX, "window exceeds index width");
    for (std::size_t i = 0; i < window; ++i) {
      jump_[i] = static_cast<uint32_t>(Next(i));
    }
    stack_.reserve(window);
  }

  /// Stores the newest partial; the index traversal happens lazily inside
  /// query().
  void slide(value_type v) {
    cur_ = pos_;
    vals_[cur_] = std::move(v);
    jump_[cur_] = static_cast<uint32_t>(Next(cur_));
    pos_ = Next(pos_);
  }

  /// Batch slide (DESIGN.md §11): FlatFIT's slide is pure stores (the index
  /// traversal happens lazily inside query()), so the batch form is one
  /// tight loop over the min(n, window) surviving elements. State is
  /// bit-identical to n sequential slide() calls — overwritten stores and
  /// their jump pointers are value-independent.
  void BulkSlide(const value_type* src, std::size_t n) {
    if (n == 0) return;
    const std::size_t m = n < window_ ? n : window_;
    const value_type* last = src + (n - m);
    std::size_t i = (pos_ + (n - m)) % window_;
    for (std::size_t k = 0; k < m; ++k) {
      vals_[i] = last[k];
      jump_[i] = static_cast<uint32_t>(Next(i));
      i = Next(i);
    }
    cur_ = (pos_ + n - 1) % window_;
    pos_ = (pos_ + n) % window_;
  }

  /// Aggregate of the whole window. Non-const: traversals compress paths.
  result_type query() { return query(window_); }

  /// Aggregate of the newest `range` partials, in stream order.
  result_type query(std::size_t range) {
    SLICK_CHECK(range >= 1 && range <= window_, "query range out of bounds");
    // Start of the range: `range` positions back, inclusive of cur_.
    const std::size_t start =
        cur_ + 1 >= range ? cur_ + 1 - range : cur_ + 1 + window_ - range;
    if (start == cur_) return Op::lower(vals_[cur_]);

    // Phase 1: hop along the skip pointers, accumulating intermediates.
    std::size_t i = start;
    stack_.push_back(static_cast<uint32_t>(i));
    value_type acc = vals_[i];
    i = jump_[i];
    while (i != cur_) {
      stack_.push_back(static_cast<uint32_t>(i));
      acc = Op::combine(acc, vals_[i]);
      i = jump_[i];
    }
    const result_type answer = Op::lower(Op::combine(acc, vals_[cur_]));

    // Phase 2: path compression. Walk the visited indices newest-first,
    // storing in each the aggregate of positions [index .. cur_-1] and
    // repointing it directly at cur_. The range-start node (popped last)
    // compresses for free: its suffix is exactly the traversal's
    // accumulator.
    bool have_suffix = false;
    while (stack_.size() > 1) {
      const std::size_t k = stack_.back();
      stack_.pop_back();
      if (have_suffix) vals_[k] = Op::combine(vals_[k], suffix_);
      suffix_ = vals_[k];
      have_suffix = true;
      jump_[k] = static_cast<uint32_t>(cur_);
    }
    vals_[start] = std::move(acc);
    jump_[start] = static_cast<uint32_t>(cur_);
    stack_.clear();
    return answer;
  }

  std::size_t window_size() const { return window_; }

  /// Checkpoints the window, index structure included (DSMS fault
  /// tolerance).
  void SaveState(std::ostream& os) const
    requires std::is_trivially_copyable_v<value_type>
  {
    util::WriteTag(os, util::MakeTag('F', 'I', 'T', '1'), 1);
    util::WritePodVec(os, vals_);
    util::WritePodVec(os, jump_);
    util::WritePod<uint64_t>(os, pos_);
    util::WritePod<uint64_t>(os, cur_);
  }

  /// Restores a checkpoint, replacing the current state.
  bool LoadState(std::istream& is)
    requires std::is_trivially_copyable_v<value_type>
  {
    if (!util::ExpectTag(is, util::MakeTag('F', 'I', 'T', '1'), 1)) {
      return false;
    }
    uint64_t pos = 0, cur = 0;
    if (!util::ReadPodVec(is, &vals_) || !util::ReadPodVec(is, &jump_) ||
        !util::ReadPod(is, &pos) || !util::ReadPod(is, &cur)) {
      return false;
    }
    if (vals_.empty() || jump_.size() != vals_.size() ||
        pos >= vals_.size() || cur >= vals_.size()) {
      return false;
    }
    window_ = vals_.size();
    pos_ = static_cast<std::size_t>(pos);
    cur_ = static_cast<std::size_t>(cur);
    stack_.clear();
    return true;
  }

  std::size_t memory_bytes() const {
    return sizeof(*this) + vals_.capacity() * sizeof(value_type) +
           jump_.capacity() * sizeof(uint32_t) +
           stack_.capacity() * sizeof(uint32_t);
  }

 private:
  std::size_t Next(std::size_t i) const {
    return i + 1 == window_ ? 0 : i + 1;
  }

  std::size_t window_;
  std::vector<value_type> vals_;   // the paper's PartialInts
  std::vector<uint32_t> jump_;     // the paper's Pointers
  std::vector<uint32_t> stack_;    // the paper's Positions
  value_type suffix_ = Op::identity();  // scratch for path compression
  std::size_t pos_ = 0;  // next write position
  std::size_t cur_ = 0;  // position of the newest partial
};

}  // namespace slick::window

