#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "ops/traits.h"
#include "util/check.h"
#include "util/serde.h"

namespace slick::window {

/// Naive final aggregation (the paper's baseline, §2.2): a circular array of
/// the window's partial aggregates; every answer is produced by iterating
/// over the requested range and folding it from scratch.
///
/// Complexity (Table 1): exactly n-1 operations per slide for a single
/// query over a window of n partials; n²/2 - n/2 in the max-multi-query
/// environment. Space: n.
template <ops::AggregateOp Op>
class NaiveWindow {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  /// Creates a window of `window` partials, pre-filled with ⊕'s identity.
  explicit NaiveWindow(std::size_t window)
      : partials_(window, Op::identity()) {
    SLICK_CHECK(window >= 1, "window must hold at least one partial");
  }

  /// Stores the newest partial over the expiring one and advances.
  void slide(value_type v) {
    partials_[pos_] = std::move(v);
    pos_ = pos_ + 1 == partials_.size() ? 0 : pos_ + 1;
  }

  /// Batch slide (DESIGN.md §11): the circular write of the min(n, window)
  /// surviving partials collapses to at most two contiguous copies.
  void BulkSlide(const value_type* src, std::size_t n) {
    if (n == 0) return;
    const std::size_t w = partials_.size();
    const std::size_t m = n < w ? n : w;
    const value_type* last = src + (n - m);
    const std::size_t start = (pos_ + (n - m)) % w;
    const std::size_t first = std::min(m, w - start);
    std::copy(last, last + first, partials_.data() + start);
    std::copy(last + first, last + m, partials_.data());
    pos_ = (pos_ + n) % w;
  }

  /// Replaces the partial `age` slides old (0 = newest) — the §3.1
  /// "updates on partial aggregates already stored within the window"
  /// capability. O(1); subsequent queries see the correction.
  void UpdateAt(std::size_t age, value_type v) {
    partials_[IndexOfAge(age)] = std::move(v);
  }

  /// Reads the partial `age` slides old.
  const value_type& PeekAt(std::size_t age) const {
    return partials_[IndexOfAge(age)];
  }

  /// Aggregate of the whole window.
  result_type query() const { return query(partials_.size()); }

  /// Aggregate of the newest `range` partials (1 <= range <= window_size()).
  result_type query(std::size_t range) const {
    const std::size_t n = partials_.size();
    SLICK_CHECK(range >= 1 && range <= n, "query range out of bounds");
    std::size_t i = pos_ >= range ? pos_ - range : pos_ + n - range;
    value_type acc = partials_[i];
    for (std::size_t k = 1; k < range; ++k) {
      i = i + 1 == n ? 0 : i + 1;
      acc = Op::combine(acc, partials_[i]);
    }
    return Op::lower(acc);
  }

  std::size_t window_size() const { return partials_.size(); }

  /// Checkpoints the window (DSMS fault tolerance).
  void SaveState(std::ostream& os) const
    requires util::Serializable<value_type>
  {
    util::WriteTag(os, util::MakeTag('N', 'A', 'I', '1'), 1);
    util::WriteValVec(os, partials_);
    util::WritePod<uint64_t>(os, pos_);
  }

  /// Restores a checkpoint, replacing the current state.
  bool LoadState(std::istream& is)
    requires util::Serializable<value_type>
  {
    if (!util::ExpectTag(is, util::MakeTag('N', 'A', 'I', '1'), 1)) {
      return false;
    }
    uint64_t pos = 0;
    if (!util::ReadValVec(is, &partials_) || !util::ReadPod(is, &pos)) {
      return false;
    }
    if (partials_.empty() || pos >= partials_.size()) return false;
    pos_ = static_cast<std::size_t>(pos);
    return true;
  }

  std::size_t memory_bytes() const {
    return sizeof(*this) + partials_.capacity() * sizeof(value_type);
  }

 private:
  std::size_t IndexOfAge(std::size_t age) const {
    const std::size_t n = partials_.size();
    SLICK_CHECK(age < n, "update age out of window");
    // Newest partial sits just behind the write cursor.
    return pos_ >= age + 1 ? pos_ - age - 1 : pos_ + n - age - 1;
  }

  std::vector<value_type> partials_;
  std::size_t pos_ = 0;  // next write position (== oldest partial)
};

}  // namespace slick::window

