#pragma once

#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#include "ops/traits.h"
#include "util/check.h"
#include "util/math.h"

namespace slick::window {

/// B-Int — Base Intervals (paper §2.2, Fig 5): a multi-level structure of
/// dyadic intervals over a circular window. Level k holds aligned intervals
/// of 2^k partials; level 0 holds the partials themselves. Updates rebuild
/// the enclosing interval on every level; lookups greedily cover the
/// requested range with the fewest aligned intervals, left to right (so
/// non-commutative operations stay correct).
///
/// Same asymptotic complexity as FlatFAT — log(n) per slide — but slower by
/// a constant factor (more intervals touched per lookup), exactly as the
/// paper reports. Space: 2·2^⌈log₂(n)⌉.
template <ops::AggregateOp Op>
class BInt {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  explicit BInt(std::size_t window)
      : window_(window), capacity_(util::NextPowerOfTwo(window)) {
    SLICK_CHECK(window >= 1, "window must hold at least one partial");
    std::size_t len = capacity_;
    while (len >= 1) {
      levels_.emplace_back(len, Op::identity());
      if (len == 1) break;
      len >>= 1;
    }
  }

  /// Writes the newest partial and rebuilds its enclosing interval on every
  /// level above.
  void slide(value_type v) {
    levels_[0][pos_] = std::move(v);
    for (std::size_t k = 1; k < levels_.size(); ++k) {
      const std::size_t idx = pos_ >> k;
      levels_[k][idx] =
          Op::combine(levels_[k - 1][2 * idx], levels_[k - 1][2 * idx + 1]);
    }
    pos_ = pos_ + 1 == window_ ? 0 : pos_ + 1;
  }

  /// Replaces the partial `age` slides old (0 = newest) and rebuilds the
  /// enclosing interval on every level (§3.1 in-window updates). O(log n).
  void UpdateAt(std::size_t age, value_type v) {
    SLICK_CHECK(age < window_, "update age out of window");
    const std::size_t p =
        pos_ >= age + 1 ? pos_ - age - 1 : pos_ + window_ - age - 1;
    levels_[0][p] = std::move(v);
    for (std::size_t k = 1; k < levels_.size(); ++k) {
      const std::size_t idx = p >> k;
      levels_[k][idx] =
          Op::combine(levels_[k - 1][2 * idx], levels_[k - 1][2 * idx + 1]);
    }
  }

  /// Aggregate of the whole window.
  result_type query() const { return query(window_); }

  /// Aggregate of the newest `range` partials, in stream order.
  result_type query(std::size_t range) const {
    SLICK_CHECK(range >= 1 && range <= window_, "query range out of bounds");
    const std::size_t start = pos_ >= range ? pos_ - range : pos_ + window_ - range;
    value_type acc = Op::identity();
    if (start + range <= window_) {
      acc = CoverSegment(start, range, std::move(acc));
    } else {
      const std::size_t head_len = window_ - start;
      acc = CoverSegment(start, head_len, std::move(acc));
      acc = CoverSegment(0, range - head_len, std::move(acc));
    }
    return Op::lower(acc);
  }

  std::size_t window_size() const { return window_; }

  std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    for (const auto& level : levels_) {
      bytes += level.capacity() * sizeof(value_type);
    }
    return bytes;
  }

 private:
  /// Folds `len` partials starting at `from` (no wrap) into `acc` using the
  /// greedy minimal aligned-interval cover.
  value_type CoverSegment(std::size_t from, std::size_t len,
                          value_type acc) const {
    std::size_t pos = from;
    std::size_t remaining = len;
    while (remaining > 0) {
      const std::size_t align =
          pos == 0 ? levels_.size() - 1
                   : static_cast<std::size_t>(std::countr_zero(pos));
      const std::size_t fit = util::FloorLog2(remaining);
      const std::size_t k = align < fit ? align : fit;
      acc = Op::combine(acc, levels_[k][pos >> k]);
      pos += static_cast<std::size_t>(1) << k;
      remaining -= static_cast<std::size_t>(1) << k;
    }
    return acc;
  }

  std::size_t window_;
  std::size_t capacity_;  // power-of-two circular capacity
  std::vector<std::vector<value_type>> levels_;  // levels_[k]: 2^k intervals
  std::size_t pos_ = 0;  // next write position
};

}  // namespace slick::window

