#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>

#include "ops/traits.h"

namespace slick::window {

// The library exposes two aggregator shapes, mirroring how the paper's
// algorithms are defined:
//
// * FifoAggregator — a dynamically sized FIFO window: insert() appends the
//   newest partial, evict() removes the oldest, query() aggregates the whole
//   current content in stream order. TwoStacks, DABA, the monotonic deque
//   and the subtract-on-evict aggregator have this shape.
//
// * FixedWindowAggregator — a window of fixed length `window_size()` that is
//   conceptually always full (initialized with ⊕'s identity, as in the
//   paper's Algorithms 1 and 2): slide() writes the newest partial over the
//   expiring one; query(r) answers any range 1..window_size() ending at the
//   newest partial, enabling multi-query processing. Naive, FlatFAT, B-Int,
//   FlatFIT and both SlickDeque variants have this shape.

template <typename A>
concept FifoAggregator =
    ops::AggregateOp<typename A::op_type> &&
    requires(A agg, typename A::value_type v) {
      agg.insert(v);
      agg.evict();
      { agg.query() } -> std::same_as<typename A::result_type>;
      { agg.size() } -> std::convertible_to<std::size_t>;
      { agg.memory_bytes() } -> std::convertible_to<std::size_t>;
    };

template <typename A>
concept FixedWindowAggregator =
    ops::AggregateOp<typename A::op_type> &&
    requires(A agg, typename A::value_type v, std::size_t r) {
      agg.slide(v);
      { agg.query() } -> std::same_as<typename A::result_type>;
      { agg.query(r) } -> std::same_as<typename A::result_type>;
      { agg.window_size() } -> std::convertible_to<std::size_t>;
      { agg.memory_bytes() } -> std::convertible_to<std::size_t>;
    };

// ---------------------------------------------------------------------------
// Batch ingestion (DESIGN.md §11). Aggregators with an algorithm-specific
// fast path expose member bulk entry points:
//
//   BulkInsert(const value_type*, size_t) / BulkEvict(size_t)  (FIFO shape)
//   BulkSlide(const value_type*, size_t)                (fixed-window shape)
//
// contracted to leave the aggregator in a state that answers every
// supported query exactly as the equivalent per-tuple sequence would. The
// free functions below dispatch to the member when present and otherwise
// run the per-tuple loop, so every aggregator — including user-supplied
// implementations behind the type-erased facades — accepts batches.

// * OutOfOrderAggregator — the third shape (DESIGN.md §13): a TIMESTAMPED
//   window for event-time streams. Insert(t, v) lands at any position,
//   BulkInsert takes a span of Timed slots, BulkEvict(w) drops everything
//   older than the watermark cutoff, and query() aggregates the content in
//   time order. OooTree has this shape; the parallel runtime switches a
//   shard into event-time mode when its aggregator satisfies this concept.

template <typename A>
concept OutOfOrderAggregator =
    ops::AggregateOp<typename A::op_type> &&
    requires(A agg, const A cagg, uint64_t t, typename A::value_type v,
             const typename A::timed_type* span, std::size_t n) {
      agg.Insert(t, v);
      agg.BulkInsert(span, n);
      { agg.BulkEvict(t) } -> std::convertible_to<std::size_t>;
      { cagg.query() } -> std::same_as<typename A::result_type>;
      { cagg.empty() } -> std::convertible_to<bool>;
      { cagg.newest() } -> std::convertible_to<uint64_t>;
    };

template <typename A>
concept BulkFifoAggregator =
    FifoAggregator<A> &&
    requires(A agg, const typename A::value_type* src, std::size_t n) {
      agg.BulkInsert(src, n);
      agg.BulkEvict(n);
    };

template <typename A>
concept BulkFixedWindowAggregator =
    FixedWindowAggregator<A> &&
    requires(A agg, const typename A::value_type* src, std::size_t n) {
      agg.BulkSlide(src, n);
    };

/// Appends `n` contiguous partials to a FIFO window in stream order.
template <FifoAggregator A>
void BulkInsert(A& agg, const typename A::value_type* src, std::size_t n) {
  if constexpr (BulkFifoAggregator<A>) {
    agg.BulkInsert(src, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) agg.insert(src[i]);
  }
}

/// Removes the `n` oldest elements from a FIFO window.
template <FifoAggregator A>
void BulkEvict(A& agg, std::size_t n) {
  if constexpr (BulkFifoAggregator<A>) {
    agg.BulkEvict(n);
  } else {
    for (std::size_t i = 0; i < n; ++i) agg.evict();
  }
}

/// Slides `n` contiguous partials through a fixed window in stream order.
template <FixedWindowAggregator A>
void BulkSlide(A& agg, const typename A::value_type* src, std::size_t n) {
  if constexpr (BulkFixedWindowAggregator<A>) {
    agg.BulkSlide(src, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) agg.slide(src[i]);
  }
}

}  // namespace slick::window

