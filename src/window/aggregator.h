#pragma once

#include <concepts>
#include <cstddef>

#include "ops/traits.h"

namespace slick::window {

// The library exposes two aggregator shapes, mirroring how the paper's
// algorithms are defined:
//
// * FifoAggregator — a dynamically sized FIFO window: insert() appends the
//   newest partial, evict() removes the oldest, query() aggregates the whole
//   current content in stream order. TwoStacks, DABA, the monotonic deque
//   and the subtract-on-evict aggregator have this shape.
//
// * FixedWindowAggregator — a window of fixed length `window_size()` that is
//   conceptually always full (initialized with ⊕'s identity, as in the
//   paper's Algorithms 1 and 2): slide() writes the newest partial over the
//   expiring one; query(r) answers any range 1..window_size() ending at the
//   newest partial, enabling multi-query processing. Naive, FlatFAT, B-Int,
//   FlatFIT and both SlickDeque variants have this shape.

template <typename A>
concept FifoAggregator =
    ops::AggregateOp<typename A::op_type> &&
    requires(A agg, typename A::value_type v) {
      agg.insert(v);
      agg.evict();
      { agg.query() } -> std::same_as<typename A::result_type>;
      { agg.size() } -> std::convertible_to<std::size_t>;
      { agg.memory_bytes() } -> std::convertible_to<std::size_t>;
    };

template <typename A>
concept FixedWindowAggregator =
    ops::AggregateOp<typename A::op_type> &&
    requires(A agg, typename A::value_type v, std::size_t r) {
      agg.slide(v);
      { agg.query() } -> std::same_as<typename A::result_type>;
      { agg.query(r) } -> std::same_as<typename A::result_type>;
      { agg.window_size() } -> std::convertible_to<std::size_t>;
      { agg.memory_bytes() } -> std::convertible_to<std::size_t>;
    };

}  // namespace slick::window

