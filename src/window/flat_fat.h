#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "ops/traits.h"
#include "util/check.h"
#include "util/math.h"
#include "util/serde.h"

namespace slick::window {

/// FlatFAT — Flat Fixed-sized Aggregator (paper §2.2, Fig 4): a pre-allocated
/// pointer-less complete binary tree whose leaves form a circular array of
/// the window's partials. Each slide writes one leaf and updates the
/// ancestors bottom-up (log₂(m) combines); answers are produced from the
/// root (full window) or from a minimal set of internal nodes covering the
/// requested leaf range, combined strictly in stream order so that
/// non-commutative operations stay correct.
///
/// Complexity (Table 1): log(n) per slide single-query, ~n·log(n) in the
/// max-multi-query environment. Space: 2·2^⌈log₂(n)⌉ (window sizes are
/// rounded up to a power of two; slot 0 of the flat array is unused to
/// simplify addressing, as the paper describes).
template <ops::AggregateOp Op>
class FlatFat {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  explicit FlatFat(std::size_t window)
      : window_(window),
        leaves_(util::NextPowerOfTwo(window)),
        tree_(2 * util::NextPowerOfTwo(window), Op::identity()) {
    SLICK_CHECK(window >= 1, "window must hold at least one partial");
  }

  /// Writes the newest partial into the expiring leaf and updates the path
  /// to the root.
  void slide(value_type v) {
    std::size_t node = leaves_ + pos_;
    tree_[node] = std::move(v);
    for (node >>= 1; node >= 1; node >>= 1) {
      tree_[node] = Op::combine(tree_[2 * node], tree_[2 * node + 1]);
    }
    pos_ = pos_ + 1 == window_ ? 0 : pos_ + 1;
  }

  /// Batch slide (DESIGN.md §11): writes the min(n, window) surviving
  /// leaves, then rebuilds ancestors level by level over the dirty
  /// interval(s) — the circular write is at most two contiguous leaf runs,
  /// which merge into one interval as they narrow toward the root. Costs
  /// ~2·min(n, window) + 2·log₂(window) combines instead of n·log₂(window);
  /// internal nodes are a deterministic function of the leaves, so state
  /// matches n sequential slide() calls exactly.
  void BulkSlide(const value_type* src, std::size_t n) {
    if (n == 0) return;
    const std::size_t m = n < window_ ? n : window_;
    const value_type* last = src + (n - m);
    const std::size_t start = (pos_ + (n - m)) % window_;
    const std::size_t first = std::min(m, window_ - start);
    for (std::size_t i = 0; i < first; ++i) {
      tree_[leaves_ + start + i] = last[i];
    }
    for (std::size_t i = first; i < m; ++i) {
      tree_[leaves_ + (i - first)] = last[i];
    }
    // Dirty leaf-node intervals, inclusive: [lo1, hi1] always; [lo2, hi2]
    // only when the circular write wrapped. lo2 < lo1 by construction.
    std::size_t lo1 = leaves_ + start;
    std::size_t hi1 = leaves_ + start + first - 1;
    std::size_t lo2 = leaves_;
    std::size_t hi2 = first < m ? leaves_ + (m - first) - 1 : 0;
    bool two = first < m;
    while (lo1 > 1) {
      lo1 >>= 1;
      hi1 >>= 1;
      if (two) {
        lo2 >>= 1;
        hi2 >>= 1;
        if (hi2 + 1 >= lo1) {  // intervals touched or overlapped: merge
          lo1 = lo2;
          two = false;
        }
      }
      for (std::size_t node = lo1; node <= hi1; ++node) {
        tree_[node] = Op::combine(tree_[2 * node], tree_[2 * node + 1]);
      }
      if (two) {
        for (std::size_t node = lo2; node <= hi2; ++node) {
          tree_[node] = Op::combine(tree_[2 * node], tree_[2 * node + 1]);
        }
      }
    }
    pos_ = (pos_ + n) % window_;
  }

  /// Replaces the partial `age` slides old (0 = newest) and refreshes the
  /// ancestor path — the update capability the paper notes FlatFAT was
  /// extended with (§2.2/§3.1). O(log n).
  void UpdateAt(std::size_t age, value_type v) {
    SLICK_CHECK(age < window_, "update age out of window");
    const std::size_t leaf =
        pos_ >= age + 1 ? pos_ - age - 1 : pos_ + window_ - age - 1;
    std::size_t node = leaves_ + leaf;
    tree_[node] = std::move(v);
    for (node >>= 1; node >= 1; node >>= 1) {
      tree_[node] = Op::combine(tree_[2 * node], tree_[2 * node + 1]);
    }
  }

  /// Aggregate of the whole window. When the window fills the whole leaf
  /// level this is just the root (the paper's fast path). For
  /// non-commutative operations the root only matches stream order while
  /// the circular window is aligned to leaf 0.
  result_type query() const { return query(window_); }

  /// Aggregate of the newest `range` partials, in stream order.
  result_type query(std::size_t range) const {
    SLICK_CHECK(range >= 1 && range <= window_, "query range out of bounds");
    if (range == window_ && window_ == leaves_ &&
        (Op::kCommutative || pos_ == 0)) {
      return Op::lower(tree_[1]);
    }
    const std::size_t start = pos_ >= range ? pos_ - range : pos_ + window_ - range;
    if (start + range <= window_) {
      return Op::lower(QuerySegment(start, start + range - 1));
    }
    const std::size_t head_len = window_ - start;
    const value_type head = QuerySegment(start, window_ - 1);
    const value_type tail = QuerySegment(0, range - head_len - 1);
    return Op::lower(Op::combine(head, tail));
  }

  std::size_t window_size() const { return window_; }

  /// Checkpoints the window (DSMS fault tolerance).
  void SaveState(std::ostream& os) const
    requires std::is_trivially_copyable_v<value_type>
  {
    util::WriteTag(os, util::MakeTag('F', 'A', 'T', '1'), 1);
    util::WritePod<uint64_t>(os, window_);
    util::WritePodVec(os, tree_);
    util::WritePod<uint64_t>(os, pos_);
  }

  /// Restores a checkpoint, replacing the current state.
  bool LoadState(std::istream& is)
    requires std::is_trivially_copyable_v<value_type>
  {
    if (!util::ExpectTag(is, util::MakeTag('F', 'A', 'T', '1'), 1)) {
      return false;
    }
    uint64_t window = 0, pos = 0;
    std::vector<value_type> tree;
    if (!util::ReadPod(is, &window) || !util::ReadPodVec(is, &tree) ||
        !util::ReadPod(is, &pos)) {
      return false;
    }
    const std::size_t leaves = util::NextPowerOfTwo(window);
    if (window < 1 || pos >= window || tree.size() != 2 * leaves) return false;
    window_ = static_cast<std::size_t>(window);
    leaves_ = leaves;
    tree_ = std::move(tree);
    pos_ = static_cast<std::size_t>(pos);
    return true;
  }

  std::size_t memory_bytes() const {
    return sizeof(*this) + tree_.capacity() * sizeof(value_type);
  }

 private:
  /// Order-preserving segment query over leaves [lo, hi], both inclusive.
  value_type QuerySegment(std::size_t lo, std::size_t hi) const {
    value_type left = Op::identity();
    value_type right = Op::identity();
    std::size_t l = lo + leaves_;
    std::size_t r = hi + leaves_ + 1;
    while (l < r) {
      if (l & 1) left = Op::combine(left, tree_[l++]);
      if (r & 1) right = Op::combine(tree_[--r], right);
      l >>= 1;
      r >>= 1;
    }
    return Op::combine(left, right);
  }

  std::size_t window_;
  std::size_t leaves_;  // power-of-two leaf count (>= window_)
  std::vector<value_type> tree_;  // 1-based; tree_[0] unused
  std::size_t pos_ = 0;  // next leaf position to overwrite
};

}  // namespace slick::window

