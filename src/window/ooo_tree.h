#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "ops/kernels.h"
#include "ops/traits.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/serde.h"

namespace slick::window {

/// A timestamped partial aggregate — the slot type event-time streams carry
/// through rings and bulk spans. Default-constructible and (for POD value
/// types) trivially copyable, so it satisfies the SpscRing element
/// requirements.
template <typename V>
struct Timed {
  uint64_t t = 0;  ///< event time
  V v{};           ///< lifted partial aggregate
};

/// OooTree — finger-B-tree final aggregator for *out-of-order* event-time
/// streams, in the style of FiBA ("Sub-O(log n) Out-of-Order Sliding-Window
/// Aggregation") with the bulk-eviction API of its successor paper
/// (PAPERS.md). This is the DESIGN.md §13 structure: where SlickDeque
/// (§3.1) assumes tuples arrive in window order, OooTree accepts
/// `Insert(t, v)` at any position and still answers window aggregates
/// without inverse — only associativity is required, so every op class
/// (invertible, selective, non-commutative) is supported.
///
/// Structure. A classic B-tree keyed by timestamp (all nodes carry
/// entries), augmented with:
///   - *fingers*: persistent pointers to the leftmost and rightmost leaf.
///     Searches start at the nearer finger and climb just far enough for
///     the target to be covered, so an insert at out-of-order distance d
///     costs O(log d) instead of O(log n); in-order appends hit the right
///     finger directly in amortized O(1).
///   - *position-dependent aggregates*: interior nodes store the full
///     aggregate of their subtree ("up-agg"); nodes on the left (right)
///     spine exclude their leftmost (rightmost) child, and the root
///     excludes both. An in-order append therefore changes only the right
///     finger's own aggregate — no ancestor propagates — which is what
///     makes the O(1) amortized append work. An out-of-order insert
///     repairs aggregates only from the touched leaf up to its first spine
///     ancestor: O(log d) combines.
///
/// Operations:
///   - Insert(t, v): position-dependent cost as above. Equal timestamps
///     merge via ⊕ in arrival order (one entry per distinct t).
///   - BulkInsert(span, n): detects nondecreasing in-order runs and blits
///     them into the right finger leaf-at-a-time, recomputing each leaf
///     with one ops::FoldValues pass (the ops/kernels.h SIMD fold);
///     out-of-order stragglers inside the span fall back to Insert.
///   - Evict(t): exact removal anywhere, via the classic proactive
///     (CLRS-style) descent — O(log n); intended for corrections, the hot
///     eviction path is the watermark-driven bulk one.
///   - BulkEvict(w): removes every entry with t < w by chopping prefixes
///     off the left-finger leaf and repairing underflow locally —
///     O(k/B · log B + log n) for k evictions, amortized O(1) per evicted
///     entry while the watermark advances steadily.
///   - query(): full-window aggregate by walking the two spines, O(height).
///   - RangeAggregate(lo, hi): aggregate of entries with lo <= t <= hi in
///     time order (correct for non-commutative ops), O(log² n); this is
///     what lets one tree back multiple time-range queries at different
///     watermark cutoffs.
///
/// Checkpointing: SaveState dumps the entries in time order; LoadState
/// rebuilds through the in-order fast path, so the serialized form is a
/// pure function of the *content* (not the arrival history) and supervised
/// recovery replay converges to byte-identical checkpoints. Use through
/// util::SaveStateFramed / LoadStateFramed for CRC framing.
///
/// Single-threaded, like every final aggregator in this repo; the parallel
/// runtime gives each shard its own tree.
///
/// MinArity default: 16 measures strictly faster than 8 on this repo's
/// ingest lanes — in-order bulk appends fold bigger leaf runs per split
/// (32 -> 20 ns/tuple in bench/exp6_ooo) and even the out-of-order lanes
/// win (shallower tree beats the wider leaf memmove until ~50% OoO at
/// window-scale displacement, where the two roughly tie).
template <ops::AggregateOp Op, std::size_t MinArity = 16>
class OooTree {
  static_assert(MinArity >= 2, "B-tree min arity must be at least 2");

 public:
  using op_type = Op;
  using input_type = typename Op::input_type;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;
  using time_type = uint64_t;
  using timed_type = Timed<value_type>;

  /// The size argument is a capacity hint accepted for constructor
  /// compatibility with the count-based aggregators (ShardWorker
  /// constructs `Agg(window)`); the tree is dynamically sized and bounded
  /// by watermark eviction, not by a fixed window length.
  explicit OooTree(std::size_t /*window_hint*/ = 0) { Clear(); }

  // --- ingest ------------------------------------------------------------

  /// Inserts a lifted value at event time t; equal timestamps merge via ⊕
  /// in arrival order. Amortized O(1) when t is newest-so-far, O(log d)
  /// when t lands d positions from the nearer end.
  void Insert(time_type t, value_type v) {
    Node* rf = rf_;
    if (rf->times.empty()) {  // empty tree: rf_ == lf_ == root
      rf->times.push_back(t);
      rf->vals.push_back(std::move(v));
      rf->agg = rf->vals.back();
      size_ = 1;
      return;
    }
    if (t >= rf->times.back()) {  // in-order fast path: right finger append
      if (t == rf->times.back()) {
        rf->vals.back() = Op::combine(std::move(rf->vals.back()), std::move(v));
        Recompute(rf);  // tail changed, re-fold the leaf run
      } else {
        rf->times.push_back(t);
        rf->vals.push_back(std::move(v));
        rf->agg = Op::combine(std::move(rf->agg), rf->vals.back());
        ++size_;
        if (rf->times.size() > kMaxEntries) SplitUp(rf);
      }
      return;  // rf_ is on the right spine: no ancestor includes it
    }
    // Out-of-order: climb from the nearer finger, then descend.
    Node* y = FingerSeek(t);
    for (;;) {
      const std::size_t i = LowerBound(y->times, t);
      if (i < y->times.size() && y->times[i] == t) {
        y->vals[i] = Op::combine(std::move(y->vals[i]), std::move(v));
        FixupFrom(y);
        return;
      }
      if (y->leaf()) {
        y->times.insert(y->times.begin() + static_cast<std::ptrdiff_t>(i), t);
        y->vals.insert(y->vals.begin() + static_cast<std::ptrdiff_t>(i),
                       std::move(v));
        ++size_;
        if (y->times.size() > kMaxEntries) {
          SplitUp(y);
        } else {
          FixupFrom(y);
        }
        return;
      }
      y = y->kids[i].get();
    }
  }

  /// Bulk-inserts a span of timestamped values. Maximal nondecreasing
  /// in-order runs append leaf-at-a-time through the right finger with one
  /// ops::FoldValues pass per touched leaf; anything out of order falls
  /// back to the single-element path.
  SLICK_REALTIME_ALLOW(
      "out-of-order B-tree trades strict O(1) for ordering tolerance by "
      "design: node splits allocate (make_unique), amortized O(1/B) per "
      "insert — see DESIGN.md §12; strict hot paths use the deque "
      "aggregators instead")
  void BulkInsert(const timed_type* src, std::size_t n) {
    std::size_t i = 0;
    while (i < n) {
      if (empty() || src[i].t >= rf_->times.back()) {
        std::size_t j = i + 1;
        while (j < n && src[j].t >= src[j - 1].t) ++j;
        AppendRun(src + i, j - i);
        i = j;
      } else {
        Insert(src[i].t, src[i].v);
        ++i;
      }
    }
  }

  // --- evict -------------------------------------------------------------

  /// Removes the entry at exactly time t (all values merged into it).
  /// Returns false if no such entry exists. O(log n) proactive descent.
  bool Evict(time_type t) {
    if (empty()) return false;
    const bool found = Remove(root_.get(), t);
    CollapseRoot();
    return found;
  }

  /// Removes every entry with t < watermark (the window's low cutoff);
  /// returns how many entries went. Leaf prefixes are chopped in one
  /// erase and the underflow repaired locally along the left spine.
  std::size_t BulkEvict(time_type watermark) {
    std::size_t evicted = 0;
    for (;;) {
      Node* leaf = lf_;
      const std::size_t n = LowerBound(leaf->times, watermark);
      if (n == 0) break;  // all remaining entries are >= watermark
      leaf->times.erase(leaf->times.begin(),
                        leaf->times.begin() + static_cast<std::ptrdiff_t>(n));
      leaf->vals.erase(leaf->vals.begin(),
                       leaf->vals.begin() + static_cast<std::ptrdiff_t>(n));
      size_ -= n;
      evicted += n;
      if (leaf->parent == nullptr) {  // root leaf: nothing to rebalance
        Recompute(leaf);
        continue;
      }
      RepairAfterPrefixErase(leaf);
    }
    return evicted;
  }

  // --- query -------------------------------------------------------------

  /// Full-window aggregate (identity when empty), via the two spines.
  result_type query() const { return Op::lower(SubtreeAgg(root_.get())); }

  /// Aggregate of all entries with lo <= t <= hi, combined in time order.
  /// Returns false (and leaves *out alone) when the range holds no entry.
  bool RangeAggregate(time_type lo, time_type hi, value_type* out) const {
    if (empty() || lo > hi) return false;
    bool have = false;
    value_type acc = Op::identity();
    RangeRec(root_.get(), lo, hi, &acc, &have);
    if (have) *out = std::move(acc);
    return have;
  }

  /// Lowered range aggregate; identity-based answer for an empty range,
  /// matching the time engines' empty-window convention.
  result_type RangeQuery(time_type lo, time_type hi) const {
    value_type acc = Op::identity();
    RangeAggregate(lo, hi, &acc);
    return Op::lower(acc);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }  // distinct timestamps held

  time_type oldest() const {
    SLICK_DCHECK(!empty(), "oldest() on empty OooTree");
    return lf_->times.front();
  }
  time_type newest() const {
    SLICK_DCHECK(!empty(), "newest() on empty OooTree");
    return rf_->times.back();
  }

  /// In-order visit of every (t, value) entry.
  template <typename F>
  void ForEachEntry(F&& f) const {
    WalkEntries(root_.get(), f);
  }

  // --- checkpointing (util::Checkpointable) ------------------------------

  static constexpr uint32_t kTag = util::MakeTag('O', 'O', 'T', '1');

  void SaveState(std::ostream& os) const {
    util::WriteTag(os, kTag, 1);
    util::WritePod<uint64_t>(os, size_);
    ForEachEntry([&](time_type t, const value_type& v) {
      util::WritePod<uint64_t>(os, t);
      util::WriteVal(os, v);
    });
  }

  bool LoadState(std::istream& is) {
    if (!util::ExpectTag(is, kTag, 1)) return false;
    uint64_t n = 0;
    if (!util::ReadPod(is, &n)) return false;
    Clear();
    time_type prev = 0;
    for (uint64_t i = 0; i < n; ++i) {
      time_type t = 0;
      value_type v{};
      if (!util::ReadPod(is, &t) || !util::ReadVal(is, &v)) return false;
      if (i > 0 && t <= prev) return false;  // corrupt: must be sorted
      prev = t;
      Insert(t, std::move(v));  // strictly ascending: O(1) appends
    }
    return size_ == n;
  }

  std::size_t memory_bytes() const { return NodeBytes(root_.get()); }

  /// Structural self-check for tests: key order, node occupancy, uniform
  /// leaf depth, parent pointers, spine flags, and finger identity.
  bool CheckInvariants() const {
    if (root_->parent || root_->left_spine || root_->right_spine) return false;
    int depth = -1;
    time_type prev = 0;
    bool first = true;
    if (!CheckNode(root_.get(), 0, &depth, &prev, &first)) return false;
    const Node* l = root_.get();
    while (!l->leaf()) l = l->kids.front().get();
    const Node* r = root_.get();
    while (!r->leaf()) r = r->kids.back().get();
    return l == lf_ && r == rf_;
  }

 private:
  static constexpr std::size_t kMin = MinArity;
  static constexpr std::size_t kMaxEntries = 2 * MinArity - 1;
  static constexpr time_type kMaxTime = std::numeric_limits<time_type>::max();

  struct Node {
    Node* parent = nullptr;
    std::vector<time_type> times;              // sorted, strictly ascending
    std::vector<value_type> vals;              // parallel to times
    std::vector<std::unique_ptr<Node>> kids;   // empty iff leaf
    value_type agg = Op::identity();           // position-dependent (§13)
    bool left_spine = false;                   // leftmost child chain
    bool right_spine = false;                  // rightmost child chain
    bool leaf() const { return kids.empty(); }

    // Entry vectors are reserved to the overfull high-water mark up
    // front: a node's occupancy is bounded, and letting the vectors
    // discover that through the doubling sequence costs several
    // reallocations per freshly split node on the append path.
    Node() {
      times.reserve(kMaxEntries + 1);
      vals.reserve(kMaxEntries + 1);
    }
  };

  /// Node recycling. A steady watermark advance destroys one left-edge
  /// leaf for every right-edge leaf a split creates, so the allocator sits
  /// on the hot path twice per ~B tuples. Retired nodes park here (vector
  /// capacity intact — the constructor's reserve is paid once per node
  /// lifetime, not per reuse) and splits draw from the pool first. Bounded
  /// so a transient deep tree cannot pin memory forever.
  static constexpr std::size_t kPoolCap = 64;

  std::unique_ptr<Node> NewNode() {
    if (pool_.empty()) return std::make_unique<Node>();
    std::unique_ptr<Node> n = std::move(pool_.back());
    pool_.pop_back();
    return n;
  }

  /// Parks a detached node (children must already be moved out or be
  /// intentionally dropped — they are NOT pooled recursively).
  void Recycle(std::unique_ptr<Node> n) {
    if (pool_.size() >= kPoolCap) return;  // drop: destructor frees it
    n->parent = nullptr;
    n->times.clear();
    n->vals.clear();
    n->kids.clear();
    n->agg = Op::identity();
    n->left_spine = n->right_spine = false;
    pool_.push_back(std::move(n));
  }

  // A node's aggregate excludes its leftmost (rightmost) child subtree
  // when it sits on the left (right) spine; the root excludes both.
  static bool ExcludesLeft(const Node* y) {
    return y->parent == nullptr || y->left_spine;
  }
  static bool ExcludesRight(const Node* y) {
    return y->parent == nullptr || y->right_spine;
  }

  static std::size_t LowerBound(const std::vector<time_type>& ts,
                                time_type t) {
    return static_cast<std::size_t>(
        std::lower_bound(ts.begin(), ts.end(), t) - ts.begin());
  }

  static std::size_t KidIndex(const Node* p, const Node* x) {
    for (std::size_t i = 0; i < p->kids.size(); ++i) {
      if (p->kids[i].get() == x) return i;
    }
    SLICK_CHECK(false, "OooTree: child not linked to parent");
    return 0;
  }

  /// Rebuilds y->agg from its children and entries. Leaves re-fold their
  /// run through the ops/kernels.h dispatcher; interior reads are valid
  /// because every non-excluded child is interior (stores its up-agg).
  void Recompute(Node* y) {
    if (y->leaf()) {
      y->agg = ops::FoldValues<Op>(y->vals.data(), y->vals.size());
      return;
    }
    const bool skip_first = ExcludesLeft(y);
    const bool skip_last = ExcludesRight(y);
    const std::size_t k = y->times.size();
    bool have = false;
    value_type acc = Op::identity();
    auto add = [&](const value_type& x) {
      acc = have ? Op::combine(std::move(acc), x) : x;
      have = true;
    };
    if (!skip_first) add(y->kids.front()->agg);
    for (std::size_t i = 0; i < k; ++i) {
      add(y->vals[i]);
      if (i + 1 < k || !skip_last) add(y->kids[i + 1]->agg);
    }
    y->agg = std::move(acc);
  }

  /// Full aggregate of subtree(y), reconstructing the parts a spine node's
  /// stored agg excludes. Recurses only along spines: O(height).
  value_type SubtreeAgg(const Node* y) const {
    if (y->leaf()) return y->agg;
    const bool el = ExcludesLeft(y);
    const bool er = ExcludesRight(y);
    value_type acc = el ? SubtreeAgg(y->kids.front().get()) : Op::identity();
    acc = Op::combine(std::move(acc), y->agg);
    if (er && !(el && y->kids.size() == 1)) {
      acc = Op::combine(std::move(acc), SubtreeAgg(y->kids.back().get()));
    }
    return acc;
  }

  /// Recomputes x, then every *interior* ancestor up to and including the
  /// first spine/root node — the ancestors beyond it exclude this subtree.
  void FixupFrom(Node* x) {
    Recompute(x);
    while (x->parent && !x->left_spine && !x->right_spine) {
      x = x->parent;
      Recompute(x);
    }
  }

  /// Start node for a search: climb from the nearer finger until the
  /// node's subtree covers t. O(log d) for out-of-order distance d.
  Node* FingerSeek(time_type t) {
    const bool from_right =
        t >= rf_->times.front() ||
        (t > lf_->times.back() && newest() - t <= t - oldest());
    if (from_right) {
      Node* y = rf_;  // right-spine y covers keys > parent->times.back()
      while (y->parent && t <= y->parent->times.back()) y = y->parent;
      return y;
    }
    Node* y = lf_;  // left-spine y covers keys < parent->times.front()
    while (y->parent && t >= y->parent->times.front()) y = y->parent;
    return y;
  }

  // --- split path --------------------------------------------------------

  void SplitUp(Node* y) {
    while (y->times.size() > kMaxEntries) {
      Split(y);
      y = y->parent;  // gained the promoted median
    }
    FixupFrom(y);
  }

  /// Splits an overfull node (2·kMin entries): left keeps kMin, the median
  /// promotes, a new right sibling takes kMin-1. Spine flags move locally:
  /// the right-spine (or root) role passes to the new right sibling, which
  /// inherits the old rightmost child — no flag changes cascade.
  void Split(Node* y) {
    const bool was_root = (y->parent == nullptr);
    if (was_root) {
      auto nr = NewNode();
      y = root_.release();
      nr->kids.emplace_back(y);
      y->parent = nr.get();
      root_ = std::move(nr);
      y->left_spine = true;
    }
    Node* p = y->parent;

    auto right_owned = NewNode();
    Node* right = right_owned.get();
    right->parent = p;
    right->right_spine = was_root || y->right_spine;
    y->right_spine = false;

    const std::size_t mid = kMin;
    const time_type median_t = y->times[mid];
    value_type median_v = std::move(y->vals[mid]);
    right->times.assign(y->times.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                        y->times.end());
    right->vals.insert(right->vals.end(),
                       std::make_move_iterator(
                           y->vals.begin() + static_cast<std::ptrdiff_t>(mid) +
                           1),
                       std::make_move_iterator(y->vals.end()));
    y->times.resize(mid);
    y->vals.resize(mid);
    if (!y->leaf()) {
      for (std::size_t i = mid + 1; i < y->kids.size(); ++i) {
        y->kids[i]->parent = right;
        right->kids.push_back(std::move(y->kids[i]));
      }
      y->kids.resize(mid + 1);
    }
    if (y->leaf() && y == rf_) rf_ = right;

    const std::size_t idx = KidIndex(p, y);
    p->times.insert(p->times.begin() + static_cast<std::ptrdiff_t>(idx),
                    median_t);
    p->vals.insert(p->vals.begin() + static_cast<std::ptrdiff_t>(idx),
                   std::move(median_v));
    p->kids.insert(p->kids.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                   std::move(right_owned));
    Recompute(y);
    Recompute(right);
  }

  // --- rebalance primitives ----------------------------------------------

  /// Rotates the last entry of kids[idx-1] through the separator into the
  /// front of kids[idx]. Never changes spine flags: the moved child was
  /// its donor's rightmost and becomes a non-edge (or left edge of a
  /// non-left-spine node) — interior either way.
  void BorrowFromLeft(Node* p, std::size_t idx) {
    Node* x = p->kids[idx].get();
    Node* s = p->kids[idx - 1].get();
    x->times.insert(x->times.begin(), p->times[idx - 1]);
    x->vals.insert(x->vals.begin(), std::move(p->vals[idx - 1]));
    p->times[idx - 1] = s->times.back();
    p->vals[idx - 1] = std::move(s->vals.back());
    s->times.pop_back();
    s->vals.pop_back();
    if (!s->leaf()) {
      auto kid = std::move(s->kids.back());
      s->kids.pop_back();
      kid->parent = x;
      x->kids.insert(x->kids.begin(), std::move(kid));
    }
    Recompute(s);
    Recompute(x);
  }

  void BorrowFromRight(Node* p, std::size_t idx) {
    Node* x = p->kids[idx].get();
    Node* s = p->kids[idx + 1].get();
    x->times.push_back(p->times[idx]);
    x->vals.push_back(std::move(p->vals[idx]));
    p->times[idx] = s->times.front();
    p->vals[idx] = std::move(s->vals.front());
    s->times.erase(s->times.begin());
    s->vals.erase(s->vals.begin());
    if (!s->leaf()) {
      auto kid = std::move(s->kids.front());
      s->kids.erase(s->kids.begin());
      kid->parent = x;
      x->kids.push_back(std::move(kid));
    }
    Recompute(s);
    Recompute(x);
  }

  /// Merges kids[idx], separator idx, and kids[idx+1] into kids[idx];
  /// returns the merged node. The right node's spine role (and the right
  /// finger, if it was one) transfers to the survivor.
  Node* MergeChildren(Node* p, std::size_t idx) {
    Node* l = p->kids[idx].get();
    Node* r = p->kids[idx + 1].get();
    l->times.push_back(p->times[idx]);
    l->vals.push_back(std::move(p->vals[idx]));
    l->times.insert(l->times.end(), r->times.begin(), r->times.end());
    l->vals.insert(l->vals.end(), std::make_move_iterator(r->vals.begin()),
                   std::make_move_iterator(r->vals.end()));
    for (auto& kid : r->kids) {
      kid->parent = l;
      l->kids.push_back(std::move(kid));
    }
    l->right_spine = l->right_spine || r->right_spine;
    if (r == rf_) rf_ = l;
    p->times.erase(p->times.begin() + static_cast<std::ptrdiff_t>(idx));
    p->vals.erase(p->vals.begin() + static_cast<std::ptrdiff_t>(idx));
    auto dead = std::move(p->kids[idx + 1]);
    p->kids.erase(p->kids.begin() + static_cast<std::ptrdiff_t>(idx) + 1);
    Recycle(std::move(dead));
    Recompute(l);
    return l;
  }

  /// Gives kids[*idx] at least kMin entries by borrowing or merging;
  /// returns the node now holding its keys (*idx may shift left on merge).
  Node* FixChild(Node* p, std::size_t* idx) {
    Node* c = p->kids[*idx].get();
    if (*idx > 0 && p->kids[*idx - 1]->times.size() >= kMin) {
      BorrowFromLeft(p, *idx);
      return c;
    }
    if (*idx + 1 < p->kids.size() &&
        p->kids[*idx + 1]->times.size() >= kMin) {
      BorrowFromRight(p, *idx);
      return c;
    }
    if (*idx > 0) {
      --*idx;
      return MergeChildren(p, *idx);
    }
    return MergeChildren(p, *idx);
  }

  // --- exact removal (proactive descent) ----------------------------------

  std::pair<time_type, value_type> RemoveMax(Node* y) {
    if (y->leaf()) {
      std::pair<time_type, value_type> e{y->times.back(),
                                         std::move(y->vals.back())};
      y->times.pop_back();
      y->vals.pop_back();
      --size_;
      Recompute(y);
      return e;
    }
    std::size_t idx = y->kids.size() - 1;
    Node* c = y->kids[idx].get();
    if (c->times.size() < kMin) c = FixChild(y, &idx);
    auto e = RemoveMax(c);
    Recompute(y);
    return e;
  }

  std::pair<time_type, value_type> RemoveMin(Node* y) {
    if (y->leaf()) {
      std::pair<time_type, value_type> e{y->times.front(),
                                         std::move(y->vals.front())};
      y->times.erase(y->times.begin());
      y->vals.erase(y->vals.begin());
      --size_;
      Recompute(y);
      return e;
    }
    std::size_t idx = 0;
    Node* c = y->kids[idx].get();
    if (c->times.size() < kMin) c = FixChild(y, &idx);
    auto e = RemoveMin(c);
    Recompute(y);
    return e;
  }

  /// CLRS-style removal: every child we descend into is topped up to
  /// >= kMin entries first, so no underflow propagates back up; aggregates
  /// are recomputed bottom-up as the recursion unwinds.
  bool Remove(Node* y, time_type t) {
    std::size_t i = LowerBound(y->times, t);
    if (i < y->times.size() && y->times[i] == t) {
      if (y->leaf()) {
        y->times.erase(y->times.begin() + static_cast<std::ptrdiff_t>(i));
        y->vals.erase(y->vals.begin() + static_cast<std::ptrdiff_t>(i));
        --size_;
        Recompute(y);
        return true;
      }
      Node* l = y->kids[i].get();
      Node* r = y->kids[i + 1].get();
      if (l->times.size() >= kMin) {
        auto e = RemoveMax(l);  // predecessor replaces the removed entry
        y->times[i] = e.first;
        y->vals[i] = std::move(e.second);
      } else if (r->times.size() >= kMin) {
        auto e = RemoveMin(r);
        y->times[i] = e.first;
        y->vals[i] = std::move(e.second);
      } else {
        Node* m = MergeChildren(y, i);  // t now lives inside the merge
        Remove(m, t);
      }
      Recompute(y);
      return true;
    }
    if (y->leaf()) return false;
    Node* c = y->kids[i].get();
    if (c->times.size() < kMin) c = FixChild(y, &i);
    const bool found = Remove(c, t);
    // Unconditional: even a miss may have restructured y via FixChild.
    Recompute(y);
    return found;
  }

  /// Drops an empty non-leaf root after merges collapsed its children.
  void CollapseRoot() {
    while (!root_->leaf() && root_->times.empty()) {
      auto old = std::move(root_);
      auto kid = std::move(old->kids.front());
      kid->parent = nullptr;
      kid->left_spine = false;
      kid->right_spine = false;
      root_ = std::move(kid);
      Recycle(std::move(old));
      Recompute(root_.get());  // root class excludes both edge children
    }
  }

  /// Rebalances after BulkEvict chopped a (possibly whole-leaf) prefix:
  /// borrow one-at-a-time while a sibling can lend, merge otherwise, and
  /// walk the deficit up the left spine.
  void RepairAfterPrefixErase(Node* leaf) {
    Recompute(leaf);
    Node* x = leaf;
    Node* top = leaf;
    while (x->parent && x->times.size() < kMin - 1) {
      Node* p = x->parent;
      std::size_t idx = KidIndex(p, x);
      Node* lsib = idx > 0 ? p->kids[idx - 1].get() : nullptr;
      Node* rsib = idx + 1 < p->kids.size() ? p->kids[idx + 1].get() : nullptr;
      if (x->leaf() && rsib && rsib->leaf()) {
        // Bulk leaf borrow: a chopped left-finger leaf is typically
        // kMin-2 entries short, and rotating them through the separator
        // one at a time costs two full leaf re-folds PER ENTRY. Move the
        // whole deficit in one splice (separator + need-1 sibling heads,
        // new separator promoted from the sibling) and re-fold each leaf
        // once.
        const std::size_t need = (kMin - 1) - x->times.size();
        if (rsib->times.size() >= need + kMin - 1) {
          x->times.push_back(p->times[idx]);
          x->vals.push_back(std::move(p->vals[idx]));
          const auto take = static_cast<std::ptrdiff_t>(need - 1);
          x->times.insert(x->times.end(), rsib->times.begin(),
                          rsib->times.begin() + take);
          x->vals.insert(x->vals.end(),
                         std::make_move_iterator(rsib->vals.begin()),
                         std::make_move_iterator(rsib->vals.begin() + take));
          p->times[idx] = rsib->times[need - 1];
          p->vals[idx] = std::move(rsib->vals[need - 1]);
          rsib->times.erase(rsib->times.begin(),
                            rsib->times.begin() + take + 1);
          rsib->vals.erase(rsib->vals.begin(),
                           rsib->vals.begin() + take + 1);
          Recompute(x);
          Recompute(rsib);
          top = p;
          continue;  // x now holds exactly kMin-1 entries: loop exits
        }
      }
      if (lsib && lsib->times.size() >= kMin) {
        BorrowFromLeft(p, idx);
        top = p;
        continue;  // deficit may exceed one borrow: re-check x
      }
      if (rsib && rsib->times.size() >= kMin) {
        BorrowFromRight(p, idx);
        top = p;
        continue;
      }
      if (lsib) --idx;
      MergeChildren(p, idx);  // merged node holds >= kMin entries
      x = p;  // p lost an entry: the deficit moves up
      top = p;
    }
    FixupFrom(top);
    CollapseRoot();
  }

  // --- bulk append --------------------------------------------------------

  /// Appends a nondecreasing run that starts at or after the current
  /// newest timestamp: fill the right-finger leaf, re-fold it once, split,
  /// repeat. Equal timestamps collapse into the leaf tail via ⊕.
  void AppendRun(const timed_type* run, std::size_t m) {
    std::size_t i = 0;
    while (i < m) {
      Node* leaf = rf_;
      bool changed = false;
      while (i < m) {
        if (!leaf->times.empty() && run[i].t == leaf->times.back()) {
          leaf->vals.back() =
              Op::combine(std::move(leaf->vals.back()), run[i].v);
        } else if (leaf->times.size() < kMaxEntries) {
          leaf->times.push_back(run[i].t);
          leaf->vals.push_back(run[i].v);
          ++size_;
        } else {
          break;  // leaf full and the next element opens a new entry
        }
        ++i;
        changed = true;
      }
      if (changed) Recompute(leaf);  // one FoldValues pass per touched leaf
      if (i < m) {
        leaf->times.push_back(run[i].t);  // overfull on purpose:
        leaf->vals.push_back(run[i].v);   // SplitUp re-folds both halves
        ++size_;
        ++i;
        SplitUp(leaf);
      }
    }
  }

  // --- range query ---------------------------------------------------------

  void RangeRec(const Node* y, time_type lo, time_type hi, value_type* acc,
                bool* have) const {
    auto add = [&](value_type x) {
      *acc = *have ? Op::combine(std::move(*acc), std::move(x)) : std::move(x);
      *have = true;
    };
    const std::size_t k = y->times.size();
    for (std::size_t i = 0; i <= k; ++i) {
      if (!y->leaf()) {
        const Node* kid = y->kids[i].get();
        // kid's keys lie strictly between separators i-1 and i.
        const bool disjoint = (i > 0 && y->times[i - 1] >= hi) ||
                              (i < k && y->times[i] <= lo);
        if (!disjoint) {
          const bool cov_lo =
              lo == 0 || (i > 0 && y->times[i - 1] >= lo - 1);
          const bool cov_hi =
              hi == kMaxTime || (i < k && y->times[i] <= hi + 1);
          if (cov_lo && cov_hi) {
            add(SubtreeAgg(kid));
          } else {
            RangeRec(kid, lo, hi, acc, have);
          }
        }
      }
      if (i < k && y->times[i] >= lo && y->times[i] <= hi) add(y->vals[i]);
    }
  }

  // --- misc ---------------------------------------------------------------

  template <typename F>
  static void WalkEntries(const Node* y, F& f) {
    const std::size_t k = y->times.size();
    for (std::size_t i = 0; i <= k; ++i) {
      if (!y->leaf()) WalkEntries(y->kids[i].get(), f);
      if (i < k) f(y->times[i], y->vals[i]);
    }
  }

  static std::size_t NodeBytes(const Node* y) {
    std::size_t b = sizeof(Node) + y->times.capacity() * sizeof(time_type) +
                    y->vals.capacity() * sizeof(value_type) +
                    y->kids.capacity() * sizeof(std::unique_ptr<Node>);
    for (const auto& kid : y->kids) b += NodeBytes(kid.get());
    return b;
  }

  bool CheckNode(const Node* y, int level, int* leaf_depth, time_type* prev,
                 bool* first) const {
    const std::size_t k = y->times.size();
    if (y->parent) {
      if (k < kMin - 1 || k > kMaxEntries) return false;
      const std::size_t idx = KidIndex(y->parent, y);
      const bool pl = y->parent->parent == nullptr || y->parent->left_spine;
      const bool pr = y->parent->parent == nullptr || y->parent->right_spine;
      if (y->left_spine != (pl && idx == 0)) return false;
      if (y->right_spine != (pr && idx == y->parent->kids.size() - 1)) {
        return false;
      }
    } else if (!y->leaf() && k == 0) {
      return false;
    }
    if (!y->leaf() && y->kids.size() != k + 1) return false;
    if (y->leaf()) {
      if (*leaf_depth < 0) *leaf_depth = level;
      if (*leaf_depth != level) return false;
    }
    for (std::size_t i = 0; i <= k; ++i) {
      if (!y->leaf()) {
        if (y->kids[i]->parent != y) return false;
        if (!CheckNode(y->kids[i].get(), level + 1, leaf_depth, prev, first)) {
          return false;
        }
      }
      if (i < k) {
        if (!*first && y->times[i] <= *prev) return false;
        *prev = y->times[i];
        *first = false;
      }
    }
    return true;
  }

  void Clear() {
    root_ = std::make_unique<Node>();
    lf_ = rf_ = root_.get();
    size_ = 0;
  }

  std::unique_ptr<Node> root_;
  Node* lf_ = nullptr;  // left finger: the leftmost (oldest) leaf
  Node* rf_ = nullptr;  // right finger: the rightmost (newest) leaf
  std::size_t size_ = 0;
  std::vector<std::unique_ptr<Node>> pool_;  // retired nodes, see Recycle()
};

}  // namespace slick::window
