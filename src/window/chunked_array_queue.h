#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/annotations.h"
#include "util/check.h"
#include "util/math.h"
#include "util/serde.h"

namespace slick::window {

/// Double-ended FIFO queue backed by a list of fixed-size chunks — the
/// storage substrate the DABA paper (and §4.2 of the SlickDeque paper)
/// assumes: pointer overhead is paid per chunk instead of per node, at the
/// cost of up to two partially used chunks.
///
/// Elements are addressed by a monotonically increasing uint64 *sequence
/// number* instead of iterators: `front_seq()` is the sequence of the oldest
/// live element and `end_seq()` is one past the newest. Sequence numbers
/// remain stable across push_back/pop_front/pop_back, which is exactly what
/// DABA's region pointers and SlickDeque's multi-query walk need.
///
/// Performance: chunk capacity is rounded up to a power of two (shift/mask
/// addressing), and raw pointers to the head and tail chunks are cached so
/// the hot operations (front/back/push_back/pop_front/pop_back) bypass the
/// chunk directory entirely; the directory is only consulted on chunk
/// transitions and random access. Retired chunks are recycled through a
/// one-chunk spare to damp allocator churn.
template <typename T>
class ChunkedArrayQueue {
 public:
  /// `chunk_capacity` trades pointer overhead against over-allocation; the
  /// paper shows k = sqrt(n) chunks is space-optimal. 64 suits the window
  /// sizes in the evaluation and keeps hot paths cache-friendly.
  explicit ChunkedArrayQueue(std::size_t chunk_capacity = 64)
      : shift_(util::CeilLog2(chunk_capacity < 1 ? 1 : chunk_capacity)),
        mask_((static_cast<uint64_t>(1) << shift_) - 1) {}

  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }
  std::size_t chunk_capacity() const {
    return static_cast<std::size_t>(1) << shift_;
  }

  /// Sequence number of the oldest live element.
  uint64_t front_seq() const { return head_; }
  /// One past the sequence number of the newest live element.
  uint64_t end_seq() const { return tail_; }

  /// Random access by sequence number (used by multi-query walks and DABA's
  /// region pointers); goes through the chunk directory.
  T& operator[](uint64_t seq) {
    SLICK_DCHECK(seq >= head_ && seq < tail_, "sequence out of range");
    const uint64_t offset = seq - base_;
    return chunks_[first_chunk_ + (offset >> shift_)][offset & mask_];
  }
  const T& operator[](uint64_t seq) const {
    return const_cast<ChunkedArrayQueue*>(this)->operator[](seq);
  }

  T& front() {
    SLICK_DCHECK(!empty(), "front of empty queue");
    return head_chunk_[(head_ - base_) & mask_];
  }
  T& back() {
    SLICK_DCHECK(!empty(), "back of empty queue");
    return tail_chunk_[(tail_ - 1 - base_) & mask_];
  }
  const T& front() const { return const_cast<ChunkedArrayQueue*>(this)->front(); }
  const T& back() const { return const_cast<ChunkedArrayQueue*>(this)->back(); }

  SLICK_REALTIME_ALLOW(
      "amortized: one chunk allocation per chunk_capacity pushes, and "
      "the spare-chunk recycler makes steady-state pushes allocation-"
      "free (DESIGN.md §6)")
  void push_back(T v) {
    const uint64_t offset = tail_ - base_;
    if ((offset & mask_) == 0 &&
        first_chunk_ + (offset >> shift_) == chunks_.size()) {
      AppendChunk();
    }
    tail_chunk_[offset & mask_] = std::move(v);
    if (head_ == tail_) head_chunk_ = tail_chunk_;
    ++tail_;
  }

  SLICK_REALTIME void pop_front() {
    SLICK_CHECK(!empty(), "pop_front on empty queue");
    ++head_;
    if (head_ - base_ >= chunk_capacity()) RetireFrontChunk();
  }

  SLICK_REALTIME void pop_back() {
    SLICK_CHECK(!empty(), "pop_back on empty queue");
    --tail_;
    const uint64_t offset = tail_ - base_;
    // If the popped slot was the first of the last chunk, that chunk is now
    // fully unused: recycle it.
    if ((offset & mask_) == 0 &&
        first_chunk_ + (offset >> shift_) == chunks_.size() - 1) {
      spare_ = std::move(chunks_.back());
      chunks_.pop_back();
      tail_chunk_ = chunks_.size() > first_chunk_ ? chunks_.back().get()
                                                  : nullptr;
    }
  }

  /// Checkpoints the queue (content plus absolute sequence numbering, so
  /// holders of sequence pointers — DABA — survive a round trip). Trivially
  /// copyable elements are written raw (the PR 1 byte layout); other
  /// element types go through the util::WriteVal customization layer.
  void SaveState(std::ostream& os) const
    requires util::Serializable<T>
  {
    util::WriteTag(os, kSerdeTag, 1);
    util::WritePod<uint32_t>(os, shift_);
    util::WritePod<uint64_t>(os, head_);
    util::WritePod<uint64_t>(os, tail_);
    for (uint64_t s = head_; s < tail_; ++s) util::WriteVal(os, (*this)[s]);
  }

  /// Restores a checkpoint, replacing the current content. Returns false
  /// (leaving the queue unusable) on a malformed stream.
  bool LoadState(std::istream& is)
    requires util::Serializable<T>
  {
    if (!util::ExpectTag(is, kSerdeTag, 1)) return false;
    uint32_t shift = 0;
    uint64_t head = 0, tail = 0;
    if (!util::ReadPod(is, &shift) || !util::ReadPod(is, &head) ||
        !util::ReadPod(is, &tail) || shift > 30 || tail < head) {
      return false;
    }
    shift_ = shift;
    mask_ = (static_cast<uint64_t>(1) << shift_) - 1;
    chunks_.clear();
    spare_.reset();
    head_chunk_ = tail_chunk_ = nullptr;
    first_chunk_ = 0;
    base_ = head_ = tail_ = head;
    for (uint64_t s = head; s < tail; ++s) {
      T v{};
      if (!util::ReadVal(is, &v)) return false;
      push_back(std::move(v));
    }
    return true;
  }

  std::size_t chunk_count() const {
    return chunks_.size() - first_chunk_ + (spare_ != nullptr ? 1 : 0);
  }

  std::size_t memory_bytes() const {
    return sizeof(*this) +
           chunk_count() * (chunk_capacity() * sizeof(T) + sizeof(void*));
  }

 private:
  static constexpr uint32_t kSerdeTag = util::MakeTag('C', 'A', 'Q', '1');

  void AppendChunk() {
    if (spare_ != nullptr) {
      chunks_.push_back(std::move(spare_));
    } else {
      chunks_.push_back(std::make_unique<T[]>(chunk_capacity()));
    }
    tail_chunk_ = chunks_.back().get();
    if (chunks_.size() - first_chunk_ == 1) head_chunk_ = tail_chunk_;
  }

  void RetireFrontChunk() {
    // The front chunk is fully consumed: recycle it as the spare and lazily
    // compact the chunk directory.
    spare_ = std::move(chunks_[first_chunk_]);
    ++first_chunk_;
    base_ += chunk_capacity();
    if (first_chunk_ == chunks_.size() || first_chunk_ >= 64) {
      chunks_.erase(chunks_.begin(),
                    chunks_.begin() + static_cast<std::ptrdiff_t>(first_chunk_));
      first_chunk_ = 0;
    }
    head_chunk_ = chunks_.size() > first_chunk_ ? chunks_[first_chunk_].get()
                                                : nullptr;
  }

  uint32_t shift_;
  uint64_t mask_;
  std::vector<std::unique_ptr<T[]>> chunks_;  // live: [first_chunk_, end)
  std::unique_ptr<T[]> spare_;  // recycled chunk to damp alloc churn
  T* head_chunk_ = nullptr;  // chunk holding the head element
  T* tail_chunk_ = nullptr;  // chunk holding the next push_back slot
  std::size_t first_chunk_ = 0;
  uint64_t base_ = 0;  // sequence number of chunks_[first_chunk_][0]
  uint64_t head_ = 0;  // oldest live element
  uint64_t tail_ = 0;  // one past newest
};

}  // namespace slick::window

