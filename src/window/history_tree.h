#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ops/traits.h"
#include "util/check.h"
#include "util/math.h"

namespace slick::window {

/// Historical-window aggregation (paper §2.4): Temporal Database Systems
/// "store the entire stream of tuples and allow aggregations over any
/// continuous segments of the stream", using tree structures (SB-trees,
/// B-trees, red-black trees) whose update complexity is O(log s) for a
/// history of s tuples. This class is that related-work substrate as an
/// implicit segment tree: append-only, O(log s) per append (amortized —
/// capacity doubles with a rebuild), O(log s) per segment query over ANY
/// [lo, hi] index range, in stream order (non-commutative safe).
///
/// The contrast the paper draws — and bench/ablation_history measures — is
/// that a DSMS suffix window only needs the newest-W segment, for which
/// the sliding algorithms beat O(log s) with O(1) amortized work and O(W)
/// (not O(s)) memory.
template <ops::AggregateOp Op>
class HistoryTree {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  explicit HistoryTree(std::size_t initial_capacity = 64)
      : leaves_(util::NextPowerOfTwo(
            initial_capacity < 1 ? 1 : initial_capacity)),
        tree_(2 * leaves_, Op::identity()) {}

  /// Appends the next stream tuple (index = current size()).
  void Append(value_type v) {
    if (size_ == leaves_) Grow();
    std::size_t node = leaves_ + size_;
    tree_[node] = std::move(v);
    for (node >>= 1; node >= 1; node >>= 1) {
      tree_[node] = Op::combine(tree_[2 * node], tree_[2 * node + 1]);
    }
    ++size_;
  }

  /// Aggregate of history indices [lo, hi], both inclusive, stream order.
  result_type QuerySegment(uint64_t lo, uint64_t hi) const {
    SLICK_CHECK(lo <= hi && hi < size_, "segment out of history");
    value_type left = Op::identity();
    value_type right = Op::identity();
    std::size_t l = static_cast<std::size_t>(lo) + leaves_;
    std::size_t r = static_cast<std::size_t>(hi) + leaves_ + 1;
    while (l < r) {
      if (l & 1) left = Op::combine(left, tree_[l++]);
      if (r & 1) right = Op::combine(tree_[--r], right);
      l >>= 1;
      r >>= 1;
    }
    return Op::lower(Op::combine(left, right));
  }

  /// Suffix window (the DSMS case): aggregate of the newest `range` tuples.
  result_type QuerySuffix(uint64_t range) const {
    SLICK_CHECK(range >= 1 && range <= size_, "suffix range out of history");
    return QuerySegment(size_ - range, size_ - 1);
  }

  uint64_t size() const { return size_; }

  std::size_t memory_bytes() const {
    return sizeof(*this) + tree_.capacity() * sizeof(value_type);
  }

 private:
  /// Doubles the leaf level; O(s) rebuild, amortized O(1) per append.
  void Grow() {
    const std::size_t new_leaves = 2 * leaves_;
    std::vector<value_type> grown(2 * new_leaves, Op::identity());
    for (std::size_t i = 0; i < size_; ++i) {
      grown[new_leaves + i] = std::move(tree_[leaves_ + i]);
    }
    for (std::size_t node = new_leaves - 1; node >= 1; --node) {
      grown[node] = Op::combine(grown[2 * node], grown[2 * node + 1]);
    }
    tree_ = std::move(grown);
    leaves_ = new_leaves;
  }

  std::size_t leaves_;
  std::vector<value_type> tree_;  // 1-based; tree_[0] unused
  uint64_t size_ = 0;
};

}  // namespace slick::window

