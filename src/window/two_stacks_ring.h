#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "ops/traits.h"
#include "util/annotations.h"
#include "util/check.h"

namespace slick::window {

/// TwoStacks on a single pre-allocated ring buffer — the storage layout
/// behind the paper's Table 1 claim that "both stacks combined can never
/// have more than n nodes total": instead of two growable arrays (see
/// window::TwoStacks), the front and back stacks share one circular buffer
/// of fixed capacity, and the flip converts the back region's prefix
/// aggregates into suffix aggregates *in place* (no copying, no second
/// allocation). Space is exactly capacity·(val+agg) = 2n values.
///
/// Same complexity profile as TwoStacks (amortized 3 ops/slide, worst-case
/// n at the flip); capacity must be chosen up front, which is natural for
/// fixed windows (core::Windowed passes the window size through).
template <ops::AggregateOp Op>
class TwoStacksRing {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  /// `capacity` is the maximum number of live window elements.
  explicit TwoStacksRing(std::size_t capacity)
      : buf_(capacity), cap_(capacity) {
    SLICK_CHECK(capacity >= 1, "capacity must be positive");
  }

  SLICK_REALTIME void insert(value_type v) {
    SLICK_CHECK(f_size_ + b_size_ < cap_, "ring capacity exceeded");
    const std::size_t idx = Wrap(f_lo_ + f_size_ + b_size_);
    value_type agg =
        b_size_ == 0 ? v : Op::combine(buf_[Wrap(f_lo_ + f_size_ + b_size_ - 1)].agg, v);
    buf_[idx] = Entry{std::move(v), std::move(agg)};
    ++b_size_;
  }

  SLICK_REALTIME void evict() {
    if (f_size_ == 0) Flip();
    SLICK_CHECK(f_size_ > 0, "evict from empty window");
    f_lo_ = Wrap(f_lo_ + 1);
    --f_size_;
  }

  /// Aggregate of the entire window, in stream order (front before back,
  /// so non-commutative operations stay correct).
  SLICK_REALTIME result_type query() const {
    if (f_size_ == 0 && b_size_ == 0) return Op::lower(Op::identity());
    if (f_size_ == 0) {
      return Op::lower(buf_[Wrap(f_lo_ + b_size_ - 1)].agg);
    }
    if (b_size_ == 0) return Op::lower(buf_[f_lo_].agg);
    return Op::lower(Op::combine(
        buf_[f_lo_].agg, buf_[Wrap(f_lo_ + f_size_ + b_size_ - 1)].agg));
  }

  std::size_t size() const { return f_size_ + b_size_; }
  std::size_t capacity() const { return cap_; }

  std::size_t memory_bytes() const {
    return sizeof(*this) + buf_.capacity() * sizeof(Entry);
  }

 private:
  struct Entry {
    value_type val;
    value_type agg;
  };

  std::size_t Wrap(std::size_t i) const { return i >= cap_ ? i - cap_ : i; }

  /// Converts the back region's prefix aggregates to suffix aggregates in
  /// place and adopts it as the new front region. Costs b_size_-1 combines.
  void Flip() {
    for (std::size_t k = b_size_; k-- > 0;) {
      const std::size_t i = Wrap(f_lo_ + k);
      if (k + 1 == b_size_) {
        buf_[i].agg = buf_[i].val;
      } else {
        buf_[i].agg = Op::combine(buf_[i].val, buf_[Wrap(i + 1)].agg);
      }
    }
    f_size_ = b_size_;
    b_size_ = 0;
  }

  std::vector<Entry> buf_;
  std::size_t cap_;
  std::size_t f_lo_ = 0;    // oldest front element
  std::size_t f_size_ = 0;  // front region length (starts at f_lo_)
  std::size_t b_size_ = 0;  // back region length (follows the front region)
};

}  // namespace slick::window

