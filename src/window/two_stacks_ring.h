#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "ops/scan_kernels.h"
#include "ops/traits.h"
#include "util/annotations.h"
#include "util/check.h"

namespace slick::window {

/// TwoStacks on a single pre-allocated ring buffer — the storage layout
/// behind the paper's Table 1 claim that "both stacks combined can never
/// have more than n nodes total": instead of two growable arrays (see
/// window::TwoStacks), the front and back stacks share one circular buffer
/// of fixed capacity, and the flip converts the back region's prefix
/// aggregates into suffix aggregates *in place* (no copying, no second
/// allocation). Space is exactly capacity·(val+agg) = 2n values.
///
/// Storage is split into parallel value/aggregate arrays (SoA) rather than
/// an array of {val, agg} pairs, so the flip and the bulk-insert prefix
/// chain are contiguous scans over one array each — the shape
/// ops/scan_kernels.h vectorizes (HammerSlide's observation that the flip
/// is a suffix scan the CPU's vector unit can run as a carry-propagating
/// blocked pass). The ring region may wrap; the flip then runs as two
/// contiguous scans with the aggregate of the newer segment carried into
/// the older one.
///
/// Same complexity profile as TwoStacks (amortized 3 ops/slide, worst-case
/// n at the flip); capacity must be chosen up front, which is natural for
/// fixed windows (core::Windowed passes the window size through).
template <ops::AggregateOp Op>
class TwoStacksRing {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  /// `capacity` is the maximum number of live window elements.
  explicit TwoStacksRing(std::size_t capacity)
      : vals_(capacity), aggs_(capacity), cap_(capacity) {
    SLICK_CHECK(capacity >= 1, "capacity must be positive");
  }

  SLICK_REALTIME void insert(value_type v) {
    SLICK_CHECK(f_size_ + b_size_ < cap_, "ring capacity exceeded");
    const std::size_t idx = Wrap(f_lo_ + f_size_ + b_size_);
    if (b_size_ == 0) {
      aggs_[idx] = v;
    } else {
      aggs_[idx] =
          Op::combine(aggs_[Wrap(f_lo_ + f_size_ + b_size_ - 1)], v);
    }
    vals_[idx] = std::move(v);
    ++b_size_;
  }

  SLICK_REALTIME void evict() {
    if (f_size_ == 0) Flip();
    SLICK_CHECK(f_size_ > 0, "evict from empty window");
    f_lo_ = Wrap(f_lo_ + 1);
    --f_size_;
  }

  /// Aggregate of the entire window, in stream order (front before back,
  /// so non-commutative operations stay correct). The newest element's
  /// index is shared by the back-only and mixed paths, so the wrap math is
  /// hoisted and computed once.
  SLICK_REALTIME result_type query() const {
    const std::size_t total = f_size_ + b_size_;
    if (total == 0) return Op::lower(Op::identity());
    if (b_size_ == 0) return Op::lower(aggs_[f_lo_]);
    const std::size_t top = Wrap(f_lo_ + total - 1);  // newest element
    if (f_size_ == 0) return Op::lower(aggs_[top]);
    return Op::lower(Op::combine(aggs_[f_lo_], aggs_[top]));
  }

  /// Appends `m` contiguous partials in stream order: the values land in
  /// at most two contiguous ring segments and their running prefix
  /// aggregates are produced by the vectorized prefix scan, seeded with
  /// the current back top so the chain continues exactly as m insert()
  /// calls would.
  void BulkInsert(const value_type* src, std::size_t m) {
    SLICK_CHECK(f_size_ + b_size_ + m <= cap_, "ring capacity exceeded");
    if (m == 0) return;
    value_type carry = b_size_ == 0
                           ? Op::identity()
                           : aggs_[Wrap(f_lo_ + f_size_ + b_size_ - 1)];
    const std::size_t start = Wrap(f_lo_ + f_size_ + b_size_);
    const std::size_t first = std::min(m, cap_ - start);
    std::copy(src, src + first, vals_.data() + start);
    ops::PrefixScanValues<Op>(src, aggs_.data() + start, first,
                              std::move(carry));
    if (first < m) {
      carry = aggs_[start + first - 1];
      std::copy(src + first, src + m, vals_.data());
      ops::PrefixScanValues<Op>(src + first, aggs_.data(), m - first,
                                std::move(carry));
    }
    b_size_ += m;
  }

  /// Removes the `n` oldest elements. The front region pops in O(1) per
  /// element (just index math); if the eviction crosses into the back
  /// region, the surviving back elements' prefix aggregates no longer
  /// describe the shrunken region, so the survivors are flipped — the same
  /// suffix rebuild a sequence of evict() calls would have performed at
  /// the boundary, batched into one vectorized pass.
  void BulkEvict(std::size_t n) {
    SLICK_CHECK(n <= f_size_ + b_size_, "evicting more than the window");
    const std::size_t from_front = std::min(n, f_size_);
    f_lo_ = Wrap(f_lo_ + from_front);
    f_size_ -= from_front;
    n -= from_front;
    if (n > 0) {
      f_lo_ = Wrap(f_lo_ + n);
      b_size_ -= n;
      if (b_size_ > 0) Flip();
    }
  }

  std::size_t size() const { return f_size_ + b_size_; }
  std::size_t capacity() const { return cap_; }

  std::size_t memory_bytes() const {
    return sizeof(*this) +
           (vals_.capacity() + aggs_.capacity()) * sizeof(value_type);
  }

 private:
  std::size_t Wrap(std::size_t i) const { return i >= cap_ ? i - cap_ : i; }

  // Exact ops re-derive the sequential recurrence bit-for-bit from the
  // vectorized scan; floating-point sums only match up to reassociation,
  // so the combine-equality postconditions are restricted to these.
  static constexpr bool kExactScan =
      std::is_integral_v<value_type> || Op::kSelective;

  /// Converts the back region's prefix aggregates to suffix aggregates in
  /// place and adopts it as the new front region. The back region starts
  /// at f_lo_ (the front must be empty) and may wrap; the wrapped tail
  /// [0, L2) holds the *newer* elements, so it is scanned first and its
  /// aggregate is carried into the older segment [f_lo_, f_lo_ + L1).
  void Flip() {
    SLICK_DCHECK(f_size_ == 0, "flip with non-empty front");
    const std::size_t m = b_size_;
    const std::size_t first = std::min(m, cap_ - f_lo_);
    value_type carry = Op::identity();
    if (first < m) {
      ops::SuffixScanValues<Op>(vals_.data(), aggs_.data(), m - first,
                                std::move(carry));
      carry = aggs_[0];
    }
    ops::SuffixScanValues<Op>(vals_.data() + f_lo_, aggs_.data() + f_lo_,
                              first, std::move(carry));
    f_size_ = m;
    b_size_ = 0;

    // Post-conditions (always-on, O(1)): the newest element's suffix
    // aggregate is its own value, and the oldest element's aggregate
    // continues the chain from its successor. Restricted to exact ops and
    // guarded against NaN payloads (x == x filters them), since a NaN
    // value is incomparable without being wrong.
    if constexpr (kExactScan) {
      if (m > 0) {
        const std::size_t newest = Wrap(f_lo_ + m - 1);
        const value_type expect_new =
            Op::combine(vals_[newest], Op::identity());
        SLICK_CHECK(!(expect_new == expect_new) ||
                        aggs_[newest] == expect_new,
                    "flip postcondition: newest suffix aggregate");
        if (m > 1) {
          const value_type expect_head =
              Op::combine(vals_[f_lo_], aggs_[Wrap(f_lo_ + 1)]);
          SLICK_CHECK(!(expect_head == expect_head) ||
                          aggs_[f_lo_] == expect_head,
                      "flip postcondition: head suffix chain");
        }
      }
#if !defined(NDEBUG)
      // Debug builds verify the whole suffix chain.
      for (std::size_t k = 0; k + 1 < m; ++k) {
        const std::size_t i = Wrap(f_lo_ + k);
        const value_type expect =
            Op::combine(vals_[i], aggs_[Wrap(i + 1)]);
        SLICK_CHECK(!(expect == expect) || aggs_[i] == expect,
                    "flip postcondition: suffix chain");
      }
#endif
    }
  }

  std::vector<value_type> vals_;
  std::vector<value_type> aggs_;
  std::size_t cap_;
  std::size_t f_lo_ = 0;    // oldest front element
  std::size_t f_size_ = 0;  // front region length (starts at f_lo_)
  std::size_t b_size_ = 0;  // back region length (follows the front region)
};

}  // namespace slick::window
