#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "ops/traits.h"
#include "util/check.h"

namespace slick::window {

/// Brute-force oracle: stores every partial and folds the requested span in
/// stream order on each query. O(n) per query, obviously correct — it exists
/// solely so tests can validate every real algorithm (including on
/// non-commutative and non-invertible operations).
template <ops::AggregateOp Op>
class ReferenceAggregator {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  void insert(value_type v) { values_.push_back(std::move(v)); }

  void evict() {
    SLICK_CHECK(!values_.empty(), "evict from empty reference window");
    values_.pop_front();
  }

  /// Aggregate of the entire window, in stream order.
  result_type query() const { return query_last(values_.size()); }

  /// Aggregate of the newest `range` elements, in stream order.
  result_type query_last(std::size_t range) const {
    SLICK_CHECK(range <= values_.size(), "range exceeds window content");
    value_type acc = Op::identity();
    for (std::size_t i = values_.size() - range; i < values_.size(); ++i) {
      acc = Op::combine(acc, values_[i]);
    }
    return Op::lower(acc);
  }

  std::size_t size() const { return values_.size(); }

  std::size_t memory_bytes() const {
    return sizeof(*this) + values_.size() * sizeof(value_type);
  }

 private:
  std::deque<value_type> values_;
};

}  // namespace slick::window

