#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "ops/scan_kernels.h"
#include "ops/traits.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/serde.h"

namespace slick::window {

/// TwoStacks (paper §2.2): the functional-programming queue-from-two-stacks
/// trick applied to sliding windows. Insertions push (val, running prefix
/// aggregate) onto the back stack B; evictions pop from the front stack F,
/// whose entries carry (val, running suffix aggregate). When F runs empty,
/// B is flipped onto F — the O(n) step responsible for the latency spikes
/// the paper measures in Exp 3. The window answer combines the aggregate of
/// all of F (its top entry) with the aggregate of all of B (its top entry),
/// front before back, so non-commutative operations stay correct.
///
/// Each stack is a pair of parallel value/aggregate vectors (SoA) so the
/// flip is one contiguous suffix scan over the back values — the shape
/// ops/scan_kernels.h vectorizes — followed by a reversal into the front
/// stack's pop order. The combine chain is identical to the per-entry
/// flip, so non-commutative ops (Concat) and floating-point sums produce
/// the same sequence of ⊕ applications as before; only vectorizable ops
/// take the wide path.
///
/// Complexity (Table 1): amortized 3 operations per slide, worst case n.
/// Space: 2n live values (two fields per stored partial). Single-query
/// only, as in the paper.
template <ops::AggregateOp Op>
class TwoStacks {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  SLICK_REALTIME void insert(value_type v) {
    if (b_vals_.empty()) {
      b_aggs_.push_back(v);
    } else {
      b_aggs_.push_back(Op::combine(b_aggs_.back(), v));
    }
    b_vals_.push_back(std::move(v));
  }

  SLICK_REALTIME void evict() {
    if (f_vals_.empty()) Flip();
    SLICK_CHECK(!f_vals_.empty(), "evict from empty TwoStacks window");
    f_vals_.pop_back();
    f_aggs_.pop_back();
  }

  /// Batch insert (DESIGN.md §11): the same prefix-aggregate chain as n
  /// insert() calls, built by one (vectorized where the op allows)
  /// prefix scan seeded with the current back top.
  SLICK_REALTIME_ALLOW(
      "resize grows the back stack once per bulk batch — amortized "
      "O(1) per element, and a no-op at steady-state capacity")
  void BulkInsert(const value_type* src, std::size_t n) {
    if (n == 0) return;
    const std::size_t m0 = b_vals_.size();
    value_type carry = m0 == 0 ? Op::identity() : b_aggs_[m0 - 1];
    b_vals_.resize(m0 + n);
    b_aggs_.resize(m0 + n);
    std::copy(src, src + n, b_vals_.begin() + static_cast<std::ptrdiff_t>(m0));
    ops::PrefixScanValues<Op>(src, b_aggs_.data() + m0, n, std::move(carry));
  }

  /// Batch evict (DESIGN.md §11): pops min(n, |F|) front entries for free;
  /// if the front stack runs out, the n' leftover evictions drop the n'
  /// oldest back entries *before* flipping, so the flip builds suffix
  /// chains for the survivors only — saving n' combines and pushes versus
  /// per-element eviction. The surviving entries' aggregates are the exact
  /// combine chains Flip() would have built (agg[i] = Σ val[i..end)), so
  /// the state matches sequential eviction.
  SLICK_REALTIME_ALLOW(
      "resize only shrinks and the flip target never exceeds the window's "
      "high-water capacity — no new allocation at steady state; the flip "
      "rebuild is the same amortized-O(1) cost as per-element eviction")
  void BulkEvict(std::size_t n) {
    SLICK_CHECK(n <= size(), "bulk evict larger than window");
    const std::size_t from_front = n < f_vals_.size() ? n : f_vals_.size();
    f_vals_.resize(f_vals_.size() - from_front);
    f_aggs_.resize(f_aggs_.size() - from_front);
    n -= from_front;
    if (n == 0) return;
    // f is now empty; flip back_[n..) directly onto it.
    FlipFrom(n);
  }

  /// Aggregate of the entire window, in stream order.
  SLICK_REALTIME result_type query() const {
    if (f_aggs_.empty() && b_aggs_.empty()) return Op::lower(Op::identity());
    if (f_aggs_.empty()) return Op::lower(b_aggs_.back());
    if (b_aggs_.empty()) return Op::lower(f_aggs_.back());
    return Op::lower(Op::combine(f_aggs_.back(), b_aggs_.back()));
  }

  std::size_t size() const { return f_vals_.size() + b_vals_.size(); }

  /// Checkpoints the window (DSMS fault tolerance). Tag v2: the SoA
  /// layout serializes four pod vectors (front values/aggregates, back
  /// values/aggregates) instead of two interleaved entry vectors.
  void SaveState(std::ostream& os) const
    requires std::is_trivially_copyable_v<value_type>
  {
    util::WriteTag(os, util::MakeTag('T', 'W', 'S', '2'), 1);
    util::WritePodVec(os, f_vals_);
    util::WritePodVec(os, f_aggs_);
    util::WritePodVec(os, b_vals_);
    util::WritePodVec(os, b_aggs_);
  }

  /// Restores a checkpoint, replacing the current state.
  bool LoadState(std::istream& is)
    requires std::is_trivially_copyable_v<value_type>
  {
    if (!util::ExpectTag(is, util::MakeTag('T', 'W', 'S', '2'), 1)) {
      return false;
    }
    if (!(util::ReadPodVec(is, &f_vals_) && util::ReadPodVec(is, &f_aggs_) &&
          util::ReadPodVec(is, &b_vals_) && util::ReadPodVec(is, &b_aggs_))) {
      return false;
    }
    // A value vector and its aggregate vector describe the same entries.
    return f_vals_.size() == f_aggs_.size() &&
           b_vals_.size() == b_aggs_.size();
  }

  std::size_t memory_bytes() const {
    return sizeof(*this) +
           (f_vals_.capacity() + f_aggs_.capacity() + b_vals_.capacity() +
            b_aggs_.capacity()) *
               sizeof(value_type);
  }

 private:
  /// Moves every entry of B onto F, rebuilding running aggregates so that
  /// F's top covers all of F in stream order. Costs |B| combines.
  void Flip() { FlipFrom(0); }

  /// Flips back_[skip..) onto the (empty) front stack: one suffix scan
  /// over the surviving back values in stream order, then a reversal into
  /// pop order (front top = .back() = oldest element, carrying the
  /// aggregate of the whole flipped region).
  SLICK_REALTIME_ALLOW(
      "front-stack resize never exceeds the window's high-water capacity — "
      "a no-op at steady state; the flip itself is the structure's "
      "amortized-O(1) cost, identical to the per-element variant")
  void FlipFrom(std::size_t skip) {
    SLICK_DCHECK(f_vals_.empty(), "flip with non-empty front");
    const std::size_t m = b_vals_.size() - skip;
    f_vals_.resize(m);
    f_aggs_.resize(m);
    if (m > 0) {
      ops::SuffixScanValues<Op>(b_vals_.data() + skip, f_aggs_.data(), m,
                                Op::identity());
      std::reverse(f_aggs_.begin(), f_aggs_.end());
      if constexpr (std::is_trivially_copyable_v<value_type>) {
        std::reverse_copy(b_vals_.begin() +
                              static_cast<std::ptrdiff_t>(skip),
                          b_vals_.end(), f_vals_.begin());
      } else {
        for (std::size_t i = 0; i < m; ++i) {
          f_vals_[i] = std::move(b_vals_[skip + m - 1 - i]);
        }
      }
    }
    b_vals_.clear();
    b_aggs_.clear();

    // Post-conditions (always-on, O(1)): the front top carries the
    // aggregate of the whole flipped region's chain head, and the bottom
    // entry is the newest element's own value. Exact for integer and
    // selective ops; floating-point sums reassociate under the wide scan,
    // and NaN payloads (x == x filters them) are incomparable.
    if constexpr (std::is_integral_v<value_type> || Op::kSelective) {
      if (m > 0) {
        const value_type expect_new =
            Op::combine(f_vals_[0], Op::identity());
        SLICK_CHECK(!(expect_new == expect_new) || f_aggs_[0] == expect_new,
                    "flip postcondition: newest suffix aggregate");
        if (m > 1) {
          const value_type expect_top =
              Op::combine(f_vals_[m - 1], f_aggs_[m - 2]);
          SLICK_CHECK(
              !(expect_top == expect_top) || f_aggs_[m - 1] == expect_top,
              "flip postcondition: top suffix chain");
        }
      }
    }
  }

  // Stack tops are at .back(). front's top is the oldest window element;
  // back's top is the newest. vals/aggs are parallel (same length).
  std::vector<value_type> f_vals_;
  std::vector<value_type> f_aggs_;
  std::vector<value_type> b_vals_;
  std::vector<value_type> b_aggs_;
};

}  // namespace slick::window
