#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "ops/traits.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/serde.h"

namespace slick::window {

/// TwoStacks (paper §2.2): the functional-programming queue-from-two-stacks
/// trick applied to sliding windows. Insertions push (val, running prefix
/// aggregate) onto the back stack B; evictions pop from the front stack F,
/// whose entries carry (val, running suffix aggregate). When F runs empty,
/// B is flipped onto F — the O(n) step responsible for the latency spikes
/// the paper measures in Exp 3. The window answer combines the aggregate of
/// all of F (its top entry) with the aggregate of all of B (its top entry),
/// front before back, so non-commutative operations stay correct.
///
/// Complexity (Table 1): amortized 3 operations per slide, worst case n.
/// Space: 2n (two fields per stored partial). Single-query only, as in the
/// paper.
template <ops::AggregateOp Op>
class TwoStacks {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  SLICK_REALTIME void insert(value_type v) {
    const value_type agg =
        back_.empty() ? v : Op::combine(back_.back().agg, v);
    back_.push_back(Entry{std::move(v), agg});
  }

  SLICK_REALTIME void evict() {
    if (front_.empty()) Flip();
    SLICK_CHECK(!front_.empty(), "evict from empty TwoStacks window");
    front_.pop_back();
  }

  /// Batch insert (DESIGN.md §11): the same prefix-aggregate chain as n
  /// insert() calls, built in one reserved tight loop.
  SLICK_REALTIME_ALLOW(
      "reserve grows the back stack once per bulk batch — amortized "
      "O(1) per element, and a no-op at steady-state capacity")
  void BulkInsert(const value_type* src, std::size_t n) {
    back_.reserve(back_.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      const value_type agg =
          back_.empty() ? src[i] : Op::combine(back_.back().agg, src[i]);
      back_.push_back(Entry{src[i], agg});
    }
  }

  /// Batch evict (DESIGN.md §11): pops min(n, |F|) front entries for free;
  /// if the front stack runs out, the n' leftover evictions drop the n'
  /// oldest back entries *before* flipping, so the flip builds suffix
  /// chains for the survivors only — saving n' combines and pushes versus
  /// per-element eviction. The surviving entries' aggregates are the exact
  /// combine chains Flip() would have built (agg[i] = Σ val[i..end)), so
  /// the state matches sequential eviction.
  SLICK_REALTIME_ALLOW(
      "resize only shrinks and reserve never exceeds the window's "
      "high-water capacity — no new allocation at steady state; the flip "
      "rebuild is the same amortized-O(1) cost as per-element eviction")
  void BulkEvict(std::size_t n) {
    SLICK_CHECK(n <= size(), "bulk evict larger than window");
    const std::size_t from_front = n < front_.size() ? n : front_.size();
    front_.resize(front_.size() - from_front);
    n -= from_front;
    if (n == 0) return;
    // front_ is now empty; flip back_[n..) directly onto it.
    front_.reserve(back_.size() - n);
    for (std::size_t i = back_.size(); i-- > n;) {
      const value_type agg =
          front_.empty() ? back_[i].val
                         : Op::combine(back_[i].val, front_.back().agg);
      front_.push_back(Entry{std::move(back_[i].val), agg});
    }
    back_.clear();
  }

  /// Aggregate of the entire window, in stream order.
  SLICK_REALTIME result_type query() const {
    if (front_.empty() && back_.empty()) return Op::lower(Op::identity());
    if (front_.empty()) return Op::lower(back_.back().agg);
    if (back_.empty()) return Op::lower(front_.back().agg);
    return Op::lower(Op::combine(front_.back().agg, back_.back().agg));
  }

  std::size_t size() const { return front_.size() + back_.size(); }

  /// Checkpoints the window (DSMS fault tolerance).
  void SaveState(std::ostream& os) const
    requires std::is_trivially_copyable_v<value_type>
  {
    util::WriteTag(os, util::MakeTag('T', 'W', 'S', '1'), 1);
    util::WritePodVec(os, front_);
    util::WritePodVec(os, back_);
  }

  /// Restores a checkpoint, replacing the current state.
  bool LoadState(std::istream& is)
    requires std::is_trivially_copyable_v<value_type>
  {
    if (!util::ExpectTag(is, util::MakeTag('T', 'W', 'S', '1'), 1)) {
      return false;
    }
    return util::ReadPodVec(is, &front_) && util::ReadPodVec(is, &back_);
  }

  std::size_t memory_bytes() const {
    return sizeof(*this) +
           (front_.capacity() + back_.capacity()) * sizeof(Entry);
  }

 private:
  struct Entry {
    value_type val;
    value_type agg;
  };

  /// Moves every entry of B onto F, rebuilding running aggregates so that
  /// F's top covers all of F in stream order. Costs |B| combines.
  void Flip() {
    while (!back_.empty()) {
      Entry e = std::move(back_.back());
      back_.pop_back();
      const value_type agg =
          front_.empty() ? e.val : Op::combine(e.val, front_.back().agg);
      front_.push_back(Entry{std::move(e.val), agg});
    }
  }

  // Stack tops are at .back(). front_'s top is the oldest window element;
  // back_'s top is the newest.
  std::vector<Entry> front_;
  std::vector<Entry> back_;
};

}  // namespace slick::window

