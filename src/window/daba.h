#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "ops/traits.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/serde.h"
#include "window/chunked_array_queue.h"

namespace slick::window {

/// DABA — De-Amortized Bankers Algorithm (paper §2.2, Fig 6): TwoStacks with
/// the O(n) flip spread across the preceding insert/evict events, giving a
/// worst-case-constant number of aggregate operations per slide at the cost
/// of a higher amortized count (Table 1: amortized 5, worst case 8).
///
/// Layout: one chunked-array queue of (val, agg) entries, logically split by
/// sequence pointers  front ≤ l ≤ r ≤ a ≤ b ≤ end  into
///
///   F = [front, b)  — the "front stack":   target  agg[i] = Σ val[i..b)
///   B = [b, end)    — the "back stack":            agg[i] = Σ val[b..i]
///
/// F is further split into the repair regions
///
///   [front, l) — repaired:        agg[i] = Σ val[i..b)
///   L = [l, r) — awaiting delta:  agg[i] = Σ val[i..r)
///   R = [r, a) — unconverted:     agg holds stale data; val is authoritative
///   A = [a, b) — converted:       agg[i] = Σ val[i..b)
///
/// and the scalar delta_ = Σ val[r..b), captured at flip time from the old
/// back stack's topmost prefix. Each Step() performs at most two combines:
/// one extends A leftwards over R (building suffixes right-to-left), one
/// completes an L entry by appending delta_. When l reaches b every entry of
/// F satisfies the target invariant, so the queue is re-partitioned (flip):
/// the old B becomes the new R, the freshly captured delta_ serves the next
/// round, and B restarts empty. The window answer is always
/// combine(agg[front], agg[end-1]) — one or two combines, never a spike.
///
/// The de-amortization schedule follows the DEBS'17 construction; the
/// region bookkeeping here uses an explicitly captured delta scalar, which
/// keeps the fix-up O(1) worst-case for arbitrary insert/evict interleaving
/// (verified by the invariant checker and the randomized oracle tests).
/// Single-query only, as in the paper.
template <ops::AggregateOp Op>
class Daba {
 public:
  using op_type = Op;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;

  explicit Daba(std::size_t chunk_capacity = 64) : q_(chunk_capacity) {}

  SLICK_REALTIME void insert(value_type v) {
    value_type agg = BackEmpty() ? v : Op::combine(q_.back().agg, v);
    q_.push_back(Entry{std::move(v), std::move(agg)});
    Step();
  }

  SLICK_REALTIME void evict() {
    SLICK_CHECK(!q_.empty(), "evict from empty DABA window");
    q_.pop_front();
    Step();
  }

  /// Batch forms (DESIGN.md §11). DABA's de-amortization *requires* the
  /// O(1) fix-up to run once per event — skipping Steps would let repair
  /// fall behind the front pointer — so the batch entry points are tight
  /// loops over insert()/evict(); the saving is call/dispatch overhead
  /// only, which is exactly what Table 1's worst-case-O(1) design trades
  /// throughput for.
  SLICK_REALTIME void BulkInsert(const value_type* src, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) insert(src[i]);
  }

  SLICK_REALTIME void BulkEvict(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) evict();
  }

  /// Aggregate of the entire window, in stream order. O(1) worst case.
  SLICK_REALTIME result_type query() const {
    if (q_.empty()) return Op::lower(Op::identity());
    if (FrontEmpty()) return Op::lower(q_.back().agg);
    if (BackEmpty()) return Op::lower(q_.front().agg);
    return Op::lower(Op::combine(q_.front().agg, q_.back().agg));
  }

  std::size_t size() const { return q_.size(); }

  std::size_t memory_bytes() const { return sizeof(*this) + q_.memory_bytes(); }

  /// Checkpoints the window, including the fix-up region pointers (DSMS
  /// fault tolerance).
  void SaveState(std::ostream& os) const
    requires std::is_trivially_copyable_v<value_type>
  {
    util::WriteTag(os, util::MakeTag('D', 'A', 'B', '1'), 1);
    q_.SaveState(os);
    util::WritePod(os, l_);
    util::WritePod(os, r_);
    util::WritePod(os, a_);
    util::WritePod(os, b_);
    util::WritePod(os, delta_);
  }

  /// Restores a checkpoint, replacing the current state.
  bool LoadState(std::istream& is)
    requires std::is_trivially_copyable_v<value_type>
  {
    if (!util::ExpectTag(is, util::MakeTag('D', 'A', 'B', '1'), 1)) {
      return false;
    }
    if (!q_.LoadState(is)) return false;
    if (!util::ReadPod(is, &l_) || !util::ReadPod(is, &r_) ||
        !util::ReadPod(is, &a_) || !util::ReadPod(is, &b_) ||
        !util::ReadPod(is, &delta_)) {
      return false;
    }
    return q_.front_seq() <= l_ && l_ <= r_ && r_ <= a_ && a_ <= b_ &&
           b_ <= q_.end_seq();
  }

  /// Validates every region invariant by brute force. O(n·combine); meant
  /// for tests only.
  bool CheckInvariants() const;

 private:
  struct Entry {
    value_type val;
    value_type agg;
  };

  bool FrontEmpty() const { return b_ == q_.front_seq(); }
  bool BackEmpty() const { return b_ == q_.end_seq(); }

  /// One O(1) unit of deferred flip work.
  void Step() {
    if (l_ == b_) Flip();
    if (FrontEmpty()) return;
    if (a_ != r_) {
      // Extend A leftwards: convert one R entry to suffix form.
      ConvertOne();
      // If L is exhausted but conversion is not, use this step's second
      // combine budget on another conversion so that repair can never fall
      // behind the front pointer under insert-heavy interleavings.
      if (l_ == r_ && a_ != r_) ConvertOne();
    }
    if (l_ != r_) {
      // Complete one L entry: Σ val[l..r) ⊕ Σ val[r..b) = Σ val[l..b).
      q_[l_].agg = Op::combine(q_[l_].agg, delta_);
      ++l_;
    } else if (a_ == r_) {
      // Everything between l and a is repaired; walk the block forward.
      ++l_;
      ++r_;
      ++a_;
    }
  }

  void ConvertOne() {
    const value_type& suffix_right = a_ == b_ ? zero_ : q_[a_].agg;
    --a_;
    q_[a_].agg = Op::combine(q_[a_].val, suffix_right);
  }

  /// Re-partitions the queue once every F entry holds Σ val[i..b): the old
  /// back stack becomes the repair region R of the new front stack.
  void Flip() {
    delta_ = BackEmpty() ? Op::identity() : q_.back().agg;  // Σ val[b..end)
    l_ = q_.front_seq();
    r_ = b_;
    a_ = q_.end_seq();
    b_ = q_.end_seq();
  }

  ChunkedArrayQueue<Entry> q_;
  uint64_t l_ = 0, r_ = 0, a_ = 0, b_ = 0;
  value_type delta_ = Op::identity();  // Σ val[r..b), captured at flip
  value_type zero_ = Op::identity();
};

template <ops::AggregateOp Op>
bool Daba<Op>::CheckInvariants() const {
  if (!(q_.front_seq() <= l_ && l_ <= r_ && r_ <= a_ && a_ <= b_ &&
        b_ <= q_.end_seq())) {
    return false;
  }
  auto fold = [](uint64_t lo, uint64_t hi, const auto& q) {
    value_type acc = Op::identity();
    for (uint64_t i = lo; i < hi; ++i) acc = Op::combine(acc, q[i].val);
    return acc;
  };
  auto equal = [](const value_type& x, const value_type& y) {
    // Structural comparison via lower(); adequate for the test ops.
    return Op::lower(x) == Op::lower(y);
  };
  for (uint64_t i = q_.front_seq(); i < l_; ++i) {
    if (!equal(q_[i].agg, fold(i, b_, q_))) return false;
  }
  for (uint64_t i = l_; i < r_; ++i) {
    if (!equal(q_[i].agg, fold(i, r_, q_))) return false;
  }
  for (uint64_t i = a_; i < b_; ++i) {
    if (!equal(q_[i].agg, fold(i, b_, q_))) return false;
  }
  for (uint64_t i = b_; i < q_.end_seq(); ++i) {
    if (!equal(q_[i].agg, fold(b_, i + 1, q_))) return false;
  }
  // delta_ is only consumed by L fix-ups; once L is empty the shift phase
  // advances r_ and the captured value goes stale by design.
  if (l_ != r_ && !equal(delta_, fold(r_, b_, q_))) return false;
  return true;
}

}  // namespace slick::window

