#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

#include "runtime/fault.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/math.h"

namespace slick::runtime {

/// Bounded lock-free multi-producer ring — the ingress channel that lets N
/// producer threads (or the TCP front door's event loops) feed a shard
/// directly, with no router hop. Same slick_queue lineage as SpscRing
/// (power-of-two slot array, free-running 64-bit cursors) extended with the
/// reserve/publish protocol of Vyukov's bounded MPMC queue: producers CAS a
/// shared `tail_` cursor to *reserve* a contiguous claim range, write the
/// slots, then *publish* each slot by storing its per-slot sequence number
/// — so slot visibility is per-slot, not implied by the cursor, and
/// concurrent claims publish independently in any order.
///
/// Per-slot sequence protocol: `seq_[pos & mask] == pos + 1` means "the
/// element at free-running position `pos` is published". A slot never
/// needs resetting on release: positions for one index differ by a full
/// lap (capacity), so a stale previous-lap value can never equal the
/// current lap's expected number, and replay after ResetClaims re-reads
/// still-published slots untouched. Producers never read `seq_` at all —
/// slot-reuse safety rides on the claim window being bounded by `head_`
/// (tail_ - head_ <= capacity), exactly like the SPSC ring.
///
/// API parity with SpscRing — by design, so `ShardWorker` zero-copy drains
/// and the supervised-recovery ResetClaims replay run unchanged over
/// either ring (the conformance suite in tests/ring_conformance_test.cc
/// pins this):
///  * Producer: TryClaimPush(max, *count) hands out a contiguous reserved
///    span; PublishPush(span, count) publishes it (the span pointer names
///    the claim — with concurrent producers a bare count cannot). Every
///    reserved slot MUST eventually be published (piecewise is fine:
///    publish [span, span+k) then [span+k, ...)); an abandoned reservation
///    wedges the consumer at that position by design, the same contract as
///    a producer dying inside SpscRing::push_n.
///  * Consumer: TryClaimPop / ReleasePop / ClaimPop / ResetClaims keep the
///    SPSC shape: the claim cursor advances immediately (disjoint spans),
///    releases may lag and batch (the [head_, claim_) span is the crash
///    replay log), ResetClaims rewinds claim_ to head_ at quiescence.
///    Claim handout is CAS-based, so concurrent consumers receive disjoint
///    spans; releases remain single-releaser-in-claim-order (the shard
///    worker), as with deferred releases under supervision.
///  * close() bumps both eventcounts; ClaimPop returns nullptr only once
///    the ring is closed AND settled (every reserved slot published and
///    claimed) — an in-flight publish racing close() still lands.
///
/// Blocking mirrors SpscRing's snapshot/recheck/wait eventcount protocol;
/// head_event_ uses notify_all because several producers may park on one
/// full ring.
template <typename T>
class MpmcRing {
 public:
  /// Trait the engine keys producer-handle support on (SpscRing is false).
  static constexpr bool kMultiProducer = true;

  /// Capacity is rounded up to a power of two (shift/mask addressing).
  explicit MpmcRing(std::size_t min_capacity)
      : mask_((std::size_t{1} << util::CeilLog2(
                   min_capacity < 2 ? 2 : min_capacity)) -
              1),
        slots_(std::make_unique<T[]>(mask_ + 1)),
        seq_(std::make_unique<std::atomic<uint64_t>[]>(mask_ + 1)) {
    // Value-initialized seq words (all zero) are correct as-is: the
    // published test is the exact equality seq == pos + 1, and zero never
    // matches any pos + 1 a consumer can be waiting on.
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy: reserved (published or in flight) minus
  /// released. Exact only at quiescence — with concurrent producers any
  /// instantaneous read is advisory.
  std::size_t size() const {
    // Consumer cursor FIRST (the acquire orders the pair): head_ can only
    // lag its true value by the time tail_ is read, so the difference can
    // only over-count. Reading tail_ first lets a concurrent ReleasePop
    // advance head_ past the stale tail_ and wrap the unsigned
    // subtraction to ~2^64.
    const uint64_t h = head_.load(std::memory_order_acquire);
    const uint64_t t = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }
  bool empty() const { return size() == 0; }

  /// Highest occupancy observed at any publish point (upper bound).
  /// Readable from any thread; feeds the ring_highwater telemetry gauge.
  std::size_t occupancy_highwater() const {
    // relaxed: monotonic telemetry gauge, no data published through it.
    return highwater_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------------------
  // Producer side (any number of threads).
  // ------------------------------------------------------------------

  /// Reserves a contiguous span of up to `max` free slots for in-place
  /// writing, without blocking: returns the span start and sets *count to
  /// its length (capped at the array wrap, so a full claim may take two
  /// calls). Returns nullptr with *count == 0 when the ring is full or
  /// closed. The reservation is exclusive the moment the CAS lands; nothing
  /// is visible to consumers until PublishPush(span, count). May spuriously
  /// report full under a stale cursor race with concurrent producers —
  /// callers already retry (try-semantics) or wait (push_n).
  SLICK_NODISCARD SLICK_REALTIME T* TryClaimPush(std::size_t max,
                                                 std::size_t* count) {
    *count = 0;
    // relaxed: closed_ is a monotonic go/no-go flag here — a stale `false`
    // only admits one more element a consumer still drains after close()
    // (ClaimPop settles reservations). Promptness, not correctness.
    if (closed_.load(std::memory_order_relaxed)) return nullptr;
    // Chaos hook (no-op unless SLICK_FAULT_INJECTION): a spurious "full"
    // exercises every caller's full-ring handling on an arbitrary claim.
    if (fault::Fire(fault::Point::kRingSpuriousFull, fault_lane_)) {
      return nullptr;
    }
    // relaxed: the CAS below re-validates tail_; this is only the first
    // guess, and a stale value costs one retry, never a torn reservation.
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (;;) {
      // acquire: pairs with ReleasePop's head_ release store, so slots the
      // consumer has released are safe to overwrite. Every reservation is
      // bounded by head_ + capacity, which is what makes per-slot free
      // checks unnecessary on the producer side.
      const uint64_t head = head_.load(std::memory_order_acquire);
      const uint64_t used = tail - head;
      if (used >= capacity()) {
        // Full — unless our tail_ view is stale (another producer moved it
        // past the head_ we just read, making `used` overshoot). Re-read
        // once: a genuinely full ring shows a stable tail_.
        // relaxed: same as the initial guess — the CAS re-validates.
        const uint64_t fresh = tail_.load(std::memory_order_relaxed);
        if (fresh == tail) return nullptr;
        tail = fresh;
        continue;
      }
      const std::size_t free = capacity() - static_cast<std::size_t>(used);
      const std::size_t idx = static_cast<std::size_t>(tail) & mask_;
      std::size_t n = max < free ? max : free;
      const std::size_t to_wrap = capacity() - idx;
      if (n > to_wrap) n = to_wrap;
      // relaxed: the reservation itself carries no payload — overwrite
      // safety came from the head_ acquire above (sequenced before every
      // later slot store), and publication is the per-slot seq_ release in
      // PublishPush. Failure reloads tail for the retry.
      if (tail_.compare_exchange_weak(tail, tail + n,
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
        *count = n;
        return slots_.get() + idx;
      }
    }
  }

  /// Publishes slots previously reserved with TryClaimPush. `span` must be
  /// (a suffix-aligned piece of) the pointer that claim returned — with
  /// concurrent producers the pointer is what names the claim. Partial
  /// publication is allowed only as a split (every reserved slot must be
  /// published exactly once, in any per-piece order).
  SLICK_REALTIME void PublishPush(T* span, std::size_t count) {
    if (count == 0) return;
    // Chaos hook (no-op unless SLICK_FAULT_INJECTION): stall the publish
    // to widen the claim-reserved-but-unpublished window.
    if (fault::Fire(fault::Point::kPublishDelay, fault_lane_)) {
      fault::InjectDelay();
    }
    const auto idx = static_cast<std::size_t>(span - slots_.get());
    SLICK_DCHECK(idx <= mask_, "publish span outside the slot array");
    // Recover the free-running position from the slot index: every live
    // reservation lies within one lap of head_ (the claim bound), and
    // head_ cannot pass an unpublished reservation, so the position is
    // the unique value in [head_, head_ + capacity) congruent to idx.
    // relaxed: any head_ value between claim time and now yields the same
    // answer (see the lap-uniqueness argument above); no data rides on it.
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t pos = head + ((static_cast<uint64_t>(idx) - head) & mask_);
    // Telemetry: occupancy right after this publish (upper bound, CAS-max
    // because publishes race). relaxed: monotonic gauge, reporting only.
    const auto occupancy = static_cast<std::size_t>(pos + count - head);
    uint64_t hw = highwater_.load(std::memory_order_relaxed);
    while (occupancy > hw &&
           !highwater_.compare_exchange_weak(hw, occupancy,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
    }
    for (std::size_t i = 0; i < count; ++i) {
      // release: publishes the slot's contents; pairs with the consumer's
      // acquire load of the same seq word in TryClaimPop.
      seq_[(pos + i) & mask_].store(pos + i + 1, std::memory_order_release);
    }
    // One event bump per publish batch; wakes parked consumers. release:
    // orders the seq stores before the bump the waiter snapshots.
    tail_event_.fetch_add(1, std::memory_order_release);
    tail_event_.notify_all();
  }

  /// Copies up to `n` elements from `src` into the ring without blocking.
  /// Returns the number accepted (0 when full or closed). Built on the
  /// claim/publish primitives — at most two segments when the span wraps.
  SLICK_NODISCARD SLICK_REALTIME std::size_t try_push_n(const T* src,
                                                        std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      std::size_t k = 0;
      T* span = TryClaimPush(n - done, &k);
      if (span == nullptr) break;
      for (std::size_t i = 0; i < k; ++i) span[i] = src[done + i];
      PublishPush(span, k);
      done += k;
      // A claim is capped at the array wrap; continue only when this one
      // ended exactly there (a second segment may be free at the front).
      if (span + k != slots_.get() + capacity()) break;
    }
    return done;
  }

  SLICK_NODISCARD SLICK_REALTIME bool try_push(const T& v) {
    return try_push_n(&v, 1) == 1;
  }

  /// Blocking push: copies all `n` elements, parking when the ring is full
  /// (the runtime's backpressure). Returns the number accepted, which is
  /// `n` unless the ring is closed mid-wait. Safe from any number of
  /// producer threads concurrently.
  std::size_t push_n(const T* src, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      const std::size_t k = try_push_n(src + done, n - done);
      done += k;
      if (done == n) break;
      if (k == 0) {
        // relaxed: only decides when to give up; WaitForSpace() re-checks
        // closed_ with acquire before parking, and close() bumps
        // head_event_, so a stale `false` here can cost one extra loop
        // iteration but never a lost wakeup or a missed shutdown.
        if (closed_.load(std::memory_order_relaxed)) break;
        WaitForSpace();
      }
    }
    return done;
  }

  /// Producers are done: wakes everyone; consumers settle outstanding
  /// reservations, drain, then see ClaimPop return nullptr. Idempotent;
  /// callable from any side during shutdown.
  void close() {
    closed_.store(true, std::memory_order_release);
    tail_event_.fetch_add(1, std::memory_order_release);
    head_event_.fetch_add(1, std::memory_order_release);
    tail_event_.notify_all();
    head_event_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Names this ring's lane for the fault-injection schedule (the owning
  /// shard index). Set before threads start; unused unless the build
  /// defines SLICK_FAULT_INJECTION.
  void set_fault_lane(std::size_t lane) { fault_lane_ = lane; }

  /// Read-only views of the eventcount words the wait paths snapshot —
  /// introspection for the deterministic model checker (tests/model/),
  /// which replays WaitForData/WaitForSpace step-by-step against these.
  uint32_t tail_event_word() const {
    return tail_event_.load(std::memory_order_acquire);
  }
  uint32_t head_event_word() const {
    return head_event_.load(std::memory_order_acquire);
  }

  /// The exact wake predicates the wait paths recheck before parking —
  /// exposed so the model checker's step machines can replay the
  /// snapshot/recheck/park protocol without approximating the conditions
  /// (an approximated predicate would let the model spin where the real
  /// consumer parks, or park where it spins).
  bool pop_ready_or_settled() const { return PopReadyOrSettled(); }
  bool push_space_or_closed() const { return PushSpaceOrClosed(); }

  // ------------------------------------------------------------------
  // Consumer side (one logical consumer, as with SpscRing: the shard
  // worker — claim handout is CAS-guarded, so concurrent claimers get
  // disjoint spans, but ReleasePop must stay single-releaser-in-order).
  // ------------------------------------------------------------------

  /// Claims a contiguous span of up to `max` *published* elements for
  /// in-place reading, without blocking: returns the span start and sets
  /// *count to its length (capped at the array wrap and at the published
  /// prefix — a reserved-but-unpublished slot ends the span). Returns
  /// nullptr with *count == 0 when no unclaimed published element is ready.
  /// Sequential claims return disjoint spans; producers cannot overwrite a
  /// span until ReleasePop hands its slots back.
  SLICK_NODISCARD SLICK_REALTIME T* TryClaimPop(std::size_t max,
                                                std::size_t* count) {
    *count = 0;
    // relaxed: the CAS below re-validates claim_; a stale first guess
    // costs one rescan. Data visibility rides on the seq_ acquires.
    uint64_t claim = claim_.load(std::memory_order_relaxed);
    for (;;) {
      const std::size_t idx = static_cast<std::size_t>(claim) & mask_;
      std::size_t limit = max;
      const std::size_t to_wrap = capacity() - idx;
      if (limit > to_wrap) limit = to_wrap;
      std::size_t n = 0;
      // Walk the published prefix: seq == pos + 1 is the per-slot
      // publication mark. acquire: pairs with PublishPush's seq release
      // store, making the slot's contents visible before we hand it out.
      while (n < limit && seq_[idx + n].load(std::memory_order_acquire) ==
                              claim + n + 1) {
        ++n;
      }
      if (n == 0) return nullptr;
      // relaxed: the cursor advance transfers no payload (the seq acquires
      // above did); failure means another claimer won — rescan from its
      // cursor.
      if (claim_.compare_exchange_weak(claim, claim + n,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
        *count = n;
        return slots_.get() + idx;
      }
    }
  }

  /// Returns `count` claimed slots to the producers, oldest first. Releases
  /// may lag claims (head_ <= claim_) and may batch several claimed spans
  /// into one call. Single releaser, in claim order — the shard worker's
  /// contract, identical to the SPSC ring.
  SLICK_REALTIME void ReleasePop(std::size_t count) {
    // relaxed: head_ is the releaser's own cursor (single releaser).
    const uint64_t head = head_.load(std::memory_order_relaxed);
    // relaxed: DCHECK only — never release past the claim.
    SLICK_DCHECK(head + count <= claim_.load(std::memory_order_relaxed),
                 "ReleasePop past the claim cursor");
    // release: hands the drained slots back; pairs with TryClaimPush's
    // acquire load of head_ so producers never overwrite a slot a consumer
    // is still reading.
    head_.store(head + count, std::memory_order_release);
    // release: orders the cursor store before the bump a parked producer
    // snapshots in WaitForSpace. notify_all: several producers may park.
    head_event_.fetch_add(1, std::memory_order_release);
    head_event_.notify_all();
  }

  /// Rewinds the claim cursor to the release cursor, so every unreleased
  /// element is claimable again — the recovery primitive (see SpscRing).
  /// Works unchanged under the seq protocol because releases never reset
  /// seq words: the replayed span is still marked published and its values
  /// are protected from producers by the head_ claim bound. MUST only be
  /// called when no consumer thread is live (after join, before respawn).
  void ResetClaims() {
    // relaxed: thread-lifecycle contract — the caller owns the consumer
    // role here, and thread join/spawn provide the ordering.
    claim_.store(head_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  }

  /// Elements reserved but not yet claimed (published or still in flight)
  /// — an upper bound on the backlog still to aggregate; exact once every
  /// producer has published.
  std::size_t unconsumed() const {
    // Consumer cursor FIRST, same as size(): the acquire keeps tail_'s
    // load from being hoisted above it, so a stale claim_ only makes the
    // backlog read high — tail_-first can wrap the subtraction to ~2^64
    // when ClaimPop advances claim_ between the loads.
    const uint64_t c = claim_.load(std::memory_order_acquire);
    const uint64_t t = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - c);
  }

  /// Elements claimed (aggregated or in flight) but not yet released — the
  /// replay span a recovery would re-drain.
  std::size_t unreleased() const {
    // Trailing cursor (head_) FIRST, like size()/unconsumed(): a release
    // landing between the loads then only inflates the span instead of
    // wrapping claim_ - head_ to ~2^64. Telemetry view only; never used
    // to index slots.
    const uint64_t h = head_.load(std::memory_order_acquire);
    const uint64_t c = claim_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(c - h);
  }

  /// Blocking claim: returns a non-empty span (and its length in *count)
  /// unless the ring is closed AND settled (every reserved slot published
  /// and claimed), in which case it returns nullptr — the consumer's
  /// shutdown signal. A reservation in flight at close() is waited for,
  /// never stranded: its publisher is inside try_push_n and will publish
  /// and bump the event momentarily.
  SLICK_NODISCARD T* ClaimPop(std::size_t max, std::size_t* count) {
    while (true) {
      T* span = TryClaimPop(max, count);
      if (span != nullptr) return span;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: elements published before close() must still drain.
        span = TryClaimPop(max, count);
        if (span != nullptr) return span;
        const uint64_t t = tail_.load(std::memory_order_acquire);
        // relaxed: own cursor (single logical consumer).
        if (t == claim_.load(std::memory_order_relaxed)) return nullptr;
        // Reserved-but-unpublished slots remain: fall through and park on
        // tail_event_ until the in-flight publish bumps it.
      }
      WaitForData();
    }
  }

  /// Moves up to `max` elements into `dst` without blocking. Returns the
  /// number popped (0 when nothing is ready). Built on the claim/release
  /// primitives — at most two segments when the span wraps.
  SLICK_NODISCARD SLICK_REALTIME std::size_t try_pop_n(T* dst,
                                                       std::size_t max) {
    std::size_t done = 0;
    while (done < max) {
      std::size_t k = 0;
      T* span = TryClaimPop(max - done, &k);
      if (span == nullptr) break;
      for (std::size_t i = 0; i < k; ++i) dst[done + i] = std::move(span[i]);
      ReleasePop(k);
      done += k;
      // A claim is capped at the array wrap; continue only when this one
      // ended exactly there (a second segment may be ready at the front).
      if (span + k != slots_.get() + capacity()) break;
    }
    return done;
  }

  /// Blocking pop: returns at least one element unless the ring is closed
  /// and settled, in which case it returns 0 — the consumer's shutdown
  /// signal.
  std::size_t pop_n(T* dst, std::size_t max) {
    std::size_t k = 0;
    T* span = ClaimPop(max, &k);
    if (span == nullptr) return 0;
    for (std::size_t i = 0; i < k; ++i) dst[i] = std::move(span[i]);
    ReleasePop(k);
    return k;
  }

 private:
  /// The consumer wake condition: an unclaimed published slot is ready, or
  /// shutdown has settled (closed and every reservation claimed). "Closed
  /// with reservations in flight" deliberately does NOT wake: the waiter
  /// stays parked until the in-flight publish bumps tail_event_ — the
  /// condition ClaimPop's settle check mirrors.
  bool PopReadyOrSettled() const {
    // relaxed: claim_ is effectively the consumer's own cursor here; a
    // stale value only makes the wake conservative by one slot.
    const uint64_t claim = claim_.load(std::memory_order_relaxed);
    // acquire: pairs with PublishPush's seq release (the data-ready edge).
    if (seq_[static_cast<std::size_t>(claim) & mask_].load(
            std::memory_order_acquire) == claim + 1) {
      return true;
    }
    if (!closed_.load(std::memory_order_acquire)) return false;
    return tail_.load(std::memory_order_acquire) == claim;
  }

  bool PushSpaceOrClosed() const {
    // relaxed: tail_ here only gates a retry; the claim path re-validates
    // with its own CAS, so a stale read costs one loop, nothing more.
    return static_cast<std::size_t>(tail_.load(std::memory_order_relaxed) -
                                    head_.load(std::memory_order_acquire)) <
               capacity() ||
           closed_.load(std::memory_order_acquire);
  }

  // Briefly spin/yield, then park on the eventcount. The snapshot/recheck
  // ordering makes the park race-free: if a producer publishes after our
  // recheck, its event bump differs from `e` and wait() returns at once.
  SLICK_REALTIME_ALLOW(
      "idle-only parking: spin-then-eventcount wait, entered only when the "
      "ring has nothing claimable — never on the per-tuple path")
  void WaitForData() {
    for (int i = 0; i < kSpinYields; ++i) {
      if (PopReadyOrSettled()) return;
      std::this_thread::yield();
    }
    const uint32_t e = tail_event_.load(std::memory_order_acquire);
    if (PopReadyOrSettled()) return;
    tail_event_.wait(e, std::memory_order_acquire);
  }

  SLICK_REALTIME_ALLOW(
      "idle-only parking: spin-then-eventcount wait, entered only when the "
      "ring is full — backpressure by design, never on the per-tuple path")
  void WaitForSpace() {
    for (int i = 0; i < kSpinYields; ++i) {
      if (PushSpaceOrClosed()) return;
      std::this_thread::yield();
    }
    const uint32_t e = head_event_.load(std::memory_order_acquire);
    if (PushSpaceOrClosed()) return;
    head_event_.wait(e, std::memory_order_acquire);
  }

  // On an oversubscribed host a yield hands the core to the peer almost for
  // free, so only a few attempts before parking (parking costs a futex
  // round trip but never burns the peer's quantum).
  static constexpr int kSpinYields = 4;
  static constexpr std::size_t kCacheLine = 64;

  const std::size_t mask_;
  const std::unique_ptr<T[]> slots_;
  // Per-slot publication sequence words (see class comment). Deliberately
  // a dense array, not one-per-cache-line: values stay contiguous for the
  // zero-copy drains, and adjacent-seq sharing only costs on publishes of
  // neighbouring claims. slick-lint: allow(atomic-alignas)
  const std::unique_ptr<std::atomic<uint64_t>[]> seq_;
  // Fault-injection lane id (shard index); written once before threads
  // start, read only inside fault::Fire hooks.
  std::size_t fault_lane_ = 0;

  // Release cursor (slots at [0, head_) are reusable by producers).
  alignas(kCacheLine) std::atomic<uint64_t> head_{0};
  // Shared reservation cursor — the producers' CAS target.
  alignas(kCacheLine) std::atomic<uint64_t> tail_{0};
  // Consumer claim cursor, with head_ <= claim_ <= tail_.
  alignas(kCacheLine) std::atomic<uint64_t> claim_{0};
  // Eventcounts for parking (bumped per batch, and by close()).
  alignas(kCacheLine) std::atomic<uint32_t> tail_event_{0};
  alignas(kCacheLine) std::atomic<uint32_t> head_event_{0};
  // Written once at shutdown but polled by all sides; its own line keeps
  // the poll from false-sharing with the head_event_ bump traffic.
  alignas(kCacheLine) std::atomic<bool> closed_{false};
  // Occupancy high-water (telemetry; CAS-max, publishes race).
  alignas(kCacheLine) std::atomic<uint64_t> highwater_{0};
};

}  // namespace slick::runtime
