#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

#include "runtime/fault.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/math.h"

namespace slick::runtime {

/// Bounded lock-free single-producer/single-consumer ring — the inter-thread
/// channel of the parallel sharded runtime (modeled on SlickQuant's
/// slick_queue: power-of-two slot array indexed by free-running 64-bit
/// counters, acquire/release publication).
///
/// Layout: `head_` (consumer cursor) and `tail_` (producer cursor) live on
/// separate cache lines so the two threads never false-share; each side also
/// keeps a cached copy of the *other* side's cursor so the hot path
/// (TryClaimPush / TryClaimPop, which the copying try_push_n / try_pop_n
/// wrap) usually runs on thread-local state and touches the shared counter
/// only when the cached view says the ring looks full (producer) or empty
/// (consumer). The claim primitives hand out contiguous in-place spans —
/// one acquire/release pair per batch, zero per element — which is what
/// lets the shard workers bulk-slide straight out of the ring.
///
/// Claims vs releases: the consumer side keeps a third cursor, `claim_`,
/// with head_ <= claim_ <= tail_. TryClaimPop hands out [claim_, claim_+n)
/// and advances claim_ immediately, so sequential claims return *disjoint*
/// spans even when nothing has been released yet — a consumer holding an
/// unreleased span when the producer closes still drains the remainder
/// exactly once. ReleasePop advances head_, returning slots to the
/// producer; releases may be deferred and batched across several claims,
/// which turns the span [head_, claim_) into a replay log: the supervised
/// runtime releases only up to its last durable checkpoint, and recovery
/// rewinds claim_ to head_ (ResetClaims) to replay the unreleased suffix.
///
/// Blocking: both sides batch their work, so parking is rare. Waits go
/// through a per-direction eventcount (`tail_event_` for "data arrived",
/// `head_event_` for "space freed"): the waiter snapshots the event word,
/// re-checks the cursors, and `std::atomic::wait`s on the snapshot; the
/// other side bumps + notifies once per *batch*, not per element.
/// libstdc++'s waiter pool makes the notify a no-op syscall-wise when
/// nobody is parked. `close()` bumps both events, so a parked peer always
/// observes shutdown (waiting on the cursors themselves could miss it).
template <typename T>
class SpscRing {
 public:
  /// Trait the engine keys producer-handle support on (MpmcRing is true):
  /// this ring admits exactly one producer thread at a time.
  static constexpr bool kMultiProducer = false;

  /// Capacity is rounded up to a power of two (shift/mask addressing).
  explicit SpscRing(std::size_t min_capacity)
      : mask_((std::size_t{1} << util::CeilLog2(
                   min_capacity < 2 ? 2 : min_capacity)) -
              1),
        slots_(std::make_unique<T[]>(mask_ + 1)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Approximate element count (exact when called by either endpoint while
  /// the other is idle).
  std::size_t size() const {
    const uint64_t t = tail_.load(std::memory_order_acquire);
    const uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }
  bool empty() const { return size() == 0; }

  /// Highest occupancy ever observed by the producer at a publish point
  /// (an upper bound — see the comment in try_push_n). Readable from any
  /// thread; feeds the runtime's ring_highwater telemetry gauge.
  std::size_t occupancy_highwater() const {
    // relaxed: monotonic telemetry gauge, no data published through it.
    return highwater_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------------------
  // Producer side.
  // ------------------------------------------------------------------

  /// Claims a contiguous span of up to `max` free slots for in-place
  /// writing, without blocking: returns the span start and sets *count to
  /// its length (capped at the array wrap, so a full claim may take two
  /// calls). Returns nullptr with *count == 0 when the ring is full or
  /// closed. Nothing is visible to the consumer until PublishPush(count) —
  /// one acquire refresh at most per claim, zero per element.
  SLICK_NODISCARD SLICK_REALTIME T* TryClaimPush(std::size_t max,
                                                 std::size_t* count) {
    *count = 0;
    // relaxed: closed_ is a monotonic go/no-go flag here — no data is read
    // on the strength of this load, and a stale `false` only means one more
    // successful push into a ring the consumer still drains after close()
    // (pop_n re-polls after observing closed). Promptness, not correctness.
    if (closed_.load(std::memory_order_relaxed)) return nullptr;
    // Chaos hook (no-op unless SLICK_FAULT_INJECTION): a spurious "full"
    // exercises every caller's full-ring handling on an arbitrary claim.
    if (fault::Fire(fault::Point::kRingSpuriousFull, fault_lane_)) {
      return nullptr;
    }
    // relaxed: tail_ is this thread's own cursor (single producer).
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - static_cast<std::size_t>(tail - head_cache_);
    if (free < max) {
      // acquire: pairs with ReleasePop's head_ release store, so slots the
      // consumer has drained are safe to overwrite.
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity() - static_cast<std::size_t>(tail - head_cache_);
      if (free == 0) return nullptr;
    }
    const std::size_t idx = static_cast<std::size_t>(tail) & mask_;
    std::size_t n = max < free ? max : free;
    const std::size_t to_wrap = capacity() - idx;
    if (n > to_wrap) n = to_wrap;
    *count = n;
    return slots_.get() + idx;
  }

  /// Publishes `count` slots previously claimed with TryClaimPush (count
  /// may be less than the claim; unpublished slots are simply re-claimed
  /// next time). One cursor store and one event bump per batch.
  SLICK_REALTIME void PublishPush(std::size_t count) {
    // Chaos hook (no-op unless SLICK_FAULT_INJECTION): stall the publish to
    // widen the window where the consumer sees a stale tail.
    if (fault::Fire(fault::Point::kPublishDelay, fault_lane_)) {
      fault::InjectDelay();
    }
    // relaxed: tail_ is this thread's own cursor (single producer).
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    // Telemetry: occupancy right after this publish, measured against the
    // producer's (possibly stale) view of head_ — an upper bound, so the
    // high-water mark never under-reports. relaxed: single-writer — only
    // the producer touches highwater_, so the plain (non-CAS)
    // load-compare-store is race-free, and readers only ever consume the
    // value itself.
    const auto occupancy =
        static_cast<std::size_t>(tail + count - head_cache_);
    if (occupancy > highwater_.load(std::memory_order_relaxed)) {
      highwater_.store(occupancy, std::memory_order_relaxed);
    }
    // release: publishes the claimed slots' contents; pairs with the
    // consumer's acquire refresh of tail_ in TryClaimPop.
    tail_.store(tail + count, std::memory_order_release);
    // One event bump per publish batch; wakes a parked consumer. release:
    // orders the cursor store before the bump the waiter snapshots.
    tail_event_.fetch_add(1, std::memory_order_release);
    tail_event_.notify_one();
  }

  /// Span-addressed publish — the shared producer API with MpmcRing (where
  /// concurrent claims make the span pointer the claim's only name). For
  /// the SPSC ring the count alone suffices; the span is only sanity-checked.
  SLICK_REALTIME void PublishPush([[maybe_unused]] T* span,
                                  std::size_t count) {
    // relaxed: tail_ is this thread's own cursor (single producer).
    SLICK_DCHECK(
        span == slots_.get() +
                    (static_cast<std::size_t>(
                         tail_.load(std::memory_order_relaxed)) &
                     mask_),
        "span-addressed publish must start at the claim cursor");
    PublishPush(count);
  }

  /// Copies up to `n` elements from `src` into the ring without blocking.
  /// Returns the number accepted (0 when full or closed). Built on the
  /// claim/publish primitives — at most two segments when the span wraps.
  SLICK_NODISCARD SLICK_REALTIME std::size_t try_push_n(const T* src,
                                                        std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      std::size_t k = 0;
      T* span = TryClaimPush(n - done, &k);
      if (span == nullptr) break;
      for (std::size_t i = 0; i < k; ++i) span[i] = src[done + i];
      PublishPush(k);
      done += k;
      // A claim is capped at the array wrap; continue only when this one
      // ended exactly there (a second segment may be free at the front).
      if (span + k != slots_.get() + capacity()) break;
    }
    return done;
  }

  SLICK_NODISCARD SLICK_REALTIME bool try_push(const T& v) {
    return try_push_n(&v, 1) == 1;
  }

  /// Blocking push: copies all `n` elements, parking when the ring is full
  /// (the runtime's backpressure). Returns the number accepted, which is
  /// `n` unless the ring is closed mid-wait.
  std::size_t push_n(const T* src, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      const std::size_t k = try_push_n(src + done, n - done);
      done += k;
      if (done == n) break;
      if (k == 0) {
        // relaxed: only decides when to give up; WaitForSpace() re-checks
        // closed_ with acquire before parking, and close() bumps
        // head_event_, so a stale `false` here can cost one extra loop
        // iteration but never a lost wakeup or a missed shutdown.
        if (closed_.load(std::memory_order_relaxed)) break;
        WaitForSpace();
      }
    }
    return done;
  }

  /// Producer is done: wakes the consumer, which drains the remaining
  /// elements and then sees pop_n() return 0. Idempotent; callable from
  /// either side during shutdown.
  void close() {
    closed_.store(true, std::memory_order_release);
    tail_event_.fetch_add(1, std::memory_order_release);
    head_event_.fetch_add(1, std::memory_order_release);
    tail_event_.notify_all();
    head_event_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Names this ring's lane for the fault-injection schedule (the owning
  /// shard index). Set before threads start; unused unless the build
  /// defines SLICK_FAULT_INJECTION.
  void set_fault_lane(std::size_t lane) { fault_lane_ = lane; }

  /// Read-only views of the eventcount words the wait paths snapshot —
  /// introspection for the deterministic model checker (tests/model/),
  /// which replays WaitForData/WaitForSpace step-by-step against these.
  uint32_t tail_event_word() const {
    return tail_event_.load(std::memory_order_acquire);
  }
  uint32_t head_event_word() const {
    return head_event_.load(std::memory_order_acquire);
  }

  // ------------------------------------------------------------------
  // Consumer side.
  // ------------------------------------------------------------------

  /// Claims a contiguous span of up to `max` ready elements for in-place
  /// reading, without blocking: returns the span start and sets *count to
  /// its length (capped at the array wrap). Returns nullptr with *count ==
  /// 0 when no *unclaimed* element is ready. Sequential claims return
  /// disjoint spans (the claim cursor advances immediately); the producer
  /// cannot overwrite a span until ReleasePop hands its slots back — one
  /// acquire refresh at most per claim, zero per element.
  SLICK_NODISCARD SLICK_REALTIME T* TryClaimPop(std::size_t max,
                                                std::size_t* count) {
    *count = 0;
    // relaxed: claim_ is this thread's own cursor (single consumer); other
    // threads only read it for telemetry/recovery at quiescent points.
    const uint64_t claim = claim_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - claim);
    if (avail == 0) {
      // acquire: pairs with PublishPush's tail_ release store, so the
      // published slots' contents are visible before we read them.
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(tail_cache_ - claim);
      if (avail == 0) return nullptr;
    }
    const std::size_t idx = static_cast<std::size_t>(claim) & mask_;
    std::size_t n = max < avail ? max : avail;
    const std::size_t to_wrap = capacity() - idx;
    if (n > to_wrap) n = to_wrap;
    *count = n;
    // relaxed: single-consumer cursor advance; the span's contents were
    // already acquired through tail_cache_ above.
    claim_.store(claim + n, std::memory_order_relaxed);
    return slots_.get() + idx;
  }

  /// Returns `count` claimed slots to the producer, oldest first. Releases
  /// may lag claims (head_ <= claim_) and may batch several claimed spans
  /// into one call. One cursor store and one event bump per batch.
  SLICK_REALTIME void ReleasePop(std::size_t count) {
    // relaxed: head_ is this thread's own cursor (single consumer).
    const uint64_t head = head_.load(std::memory_order_relaxed);
    // relaxed: own cursor, DCHECK only — never release past the claim.
    SLICK_DCHECK(head + count <= claim_.load(std::memory_order_relaxed),
                 "ReleasePop past the claim cursor");
    // release: hands the drained slots back; pairs with TryClaimPush's
    // acquire refresh of head_ so the producer never overwrites a slot the
    // consumer is still reading.
    head_.store(head + count, std::memory_order_release);
    // release: orders the cursor store before the bump a parked producer
    // snapshots in WaitForSpace.
    head_event_.fetch_add(1, std::memory_order_release);
    head_event_.notify_one();
  }

  /// Rewinds the claim cursor to the release cursor, so every unreleased
  /// element is claimable again — the recovery primitive: after a worker
  /// dies mid-drain, the supervisor restores the aggregator from its last
  /// checkpoint (which covers exactly [0, head_)) and replays [head_,
  /// tail_) by rewinding the claims. MUST only be called when no consumer
  /// thread is live (after join, before respawn): the joins/spawns order
  /// this store against both the dead consumer's and the successor's
  /// accesses.
  void ResetClaims() {
    // relaxed: see the thread-lifecycle contract above — the caller owns
    // the consumer role here, and thread join/spawn provide the ordering.
    claim_.store(head_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  }

  /// Elements published but not yet claimed (exact from the consumer
  /// thread, approximate elsewhere) — the backlog still to aggregate.
  std::size_t unconsumed() const {
    const uint64_t t = tail_.load(std::memory_order_acquire);
    // relaxed: claim_ carries no payload; pairing with tail_'s acquire
    // above only ever *under*-counts the backlog by a stale claim.
    const uint64_t c = claim_.load(std::memory_order_relaxed);
    return static_cast<std::size_t>(t - c);
  }

  /// Elements claimed (aggregated or in flight) but not yet released — the
  /// replay span a recovery would re-drain.
  std::size_t unreleased() const {
    // relaxed: telemetry view; both cursors are monotonic and the
    // difference is only read for reporting, never to index slots.
    const uint64_t c = claim_.load(std::memory_order_relaxed);
    const uint64_t h = head_.load(std::memory_order_relaxed);
    return static_cast<std::size_t>(c - h);
  }

  /// Blocking claim: returns a non-empty span (and its length in *count)
  /// unless the ring is closed *and* drained, in which case it returns
  /// nullptr — the consumer's shutdown signal. Callers process the span in
  /// place and then ReleasePop(*count).
  SLICK_NODISCARD T* ClaimPop(std::size_t max, std::size_t* count) {
    while (true) {
      T* span = TryClaimPop(max, count);
      if (span != nullptr) return span;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: elements published before close() must still drain.
        return TryClaimPop(max, count);
      }
      WaitForData();
    }
  }

  /// Moves up to `max` elements into `dst` without blocking. Returns the
  /// number popped (0 when the ring is currently empty). Built on the
  /// claim/release primitives — at most two segments when the span wraps.
  SLICK_NODISCARD SLICK_REALTIME std::size_t try_pop_n(T* dst,
                                                       std::size_t max) {
    std::size_t done = 0;
    while (done < max) {
      std::size_t k = 0;
      T* span = TryClaimPop(max - done, &k);
      if (span == nullptr) break;
      for (std::size_t i = 0; i < k; ++i) dst[done + i] = std::move(span[i]);
      ReleasePop(k);
      done += k;
      // A claim is capped at the array wrap; continue only when this one
      // ended exactly there (a second segment may be ready at the front).
      if (span + k != slots_.get() + capacity()) break;
    }
    return done;
  }

  /// Blocking pop: returns at least one element unless the ring is closed
  /// *and* drained, in which case it returns 0 — the consumer's shutdown
  /// signal.
  std::size_t pop_n(T* dst, std::size_t max) {
    std::size_t k = 0;
    T* span = ClaimPop(max, &k);
    if (span == nullptr) return 0;
    for (std::size_t i = 0; i < k; ++i) dst[i] = std::move(span[i]);
    ReleasePop(k);
    return k;
  }

 private:
  // Briefly spin/yield, then park on the eventcount. The snapshot/recheck
  // ordering makes the park race-free: if the producer publishes after our
  // recheck, its event bump differs from `e` and wait() returns at once.
  // relaxed loads below are always of the calling thread's OWN cursor
  // (head_ for the consumer here, tail_ for the producer in WaitForSpace);
  // the peer's cursor and closed_ are acquire so slot writes are visible.
  SLICK_REALTIME_ALLOW(
      "idle-only parking: spin-then-eventcount wait, entered only when the "
      "ring has nothing claimable — never on the per-tuple path")
  void WaitForData() {
    // The wake condition is "unclaimed data exists" (tail_ != claim_), not
    // tail_ != head_: with releases deferred past a claim, head_ can lag
    // while everything published is already claimed — waiting on head_
    // would spin forever without a single claimable element.
    // relaxed: claim_ is the consumer's own cursor (see note above).
    for (int i = 0; i < kSpinYields; ++i) {
      if (tail_.load(std::memory_order_acquire) !=
              claim_.load(std::memory_order_relaxed) ||
          closed_.load(std::memory_order_acquire)) {
        return;
      }
      std::this_thread::yield();
    }
    const uint32_t e = tail_event_.load(std::memory_order_acquire);
    // relaxed: claim_ is the consumer's own cursor (see note above).
    if (tail_.load(std::memory_order_acquire) !=
            claim_.load(std::memory_order_relaxed) ||
        closed_.load(std::memory_order_acquire)) {
      return;
    }
    tail_event_.wait(e, std::memory_order_acquire);
  }

  SLICK_REALTIME_ALLOW(
      "idle-only parking: spin-then-eventcount wait, entered only when the "
      "ring is full — backpressure by design, never on the per-tuple path")
  void WaitForSpace() {
    for (int i = 0; i < kSpinYields; ++i) {
      // relaxed: tail_ is the producer's own cursor (see WaitForData note).
      if (static_cast<std::size_t>(tail_.load(std::memory_order_relaxed) -
                                   head_.load(std::memory_order_acquire)) <
              capacity() ||
          closed_.load(std::memory_order_acquire)) {
        return;
      }
      std::this_thread::yield();
    }
    const uint32_t e = head_event_.load(std::memory_order_acquire);
    // relaxed: tail_ again the producer's own cursor.
    if (static_cast<std::size_t>(tail_.load(std::memory_order_relaxed) -
                                 head_.load(std::memory_order_acquire)) <
            capacity() ||
        closed_.load(std::memory_order_acquire)) {
      return;
    }
    head_event_.wait(e, std::memory_order_acquire);
  }

  // On an oversubscribed host a yield hands the core to the peer almost for
  // free, so only a few attempts before parking (parking costs a futex
  // round trip but never burns the peer's quantum).
  static constexpr int kSpinYields = 4;
  static constexpr std::size_t kCacheLine = 64;

  const std::size_t mask_;
  const std::unique_ptr<T[]> slots_;
  // Fault-injection lane id (shard index); written once before threads
  // start, read only inside fault::Fire hooks.
  std::size_t fault_lane_ = 0;

  // Consumer cursor + the producer's view of it.
  alignas(kCacheLine) std::atomic<uint64_t> head_{0};
  alignas(kCacheLine) std::atomic<uint64_t> tail_{0};
  // Producer-local cache of head_ (no sharing: only the producer touches it).
  alignas(kCacheLine) uint64_t head_cache_ = 0;
  // Consumer-local cache of tail_, and the claim cursor (written only by
  // the consumer; atomic so telemetry/recovery may read it cross-thread).
  alignas(kCacheLine) uint64_t tail_cache_ = 0;
  // Deliberately shares the consumer-owned cache line with tail_cache_:
  // only the consumer writes either. slick-lint: allow(atomic-alignas)
  std::atomic<uint64_t> claim_{0};
  // Eventcounts for parking (bumped per batch, and by close()).
  alignas(kCacheLine) std::atomic<uint32_t> tail_event_{0};
  alignas(kCacheLine) std::atomic<uint32_t> head_event_{0};
  // Written once at shutdown but polled by both sides; its own line keeps
  // the poll from false-sharing with the head_event_ bump traffic.
  alignas(kCacheLine) std::atomic<bool> closed_{false};
  // Producer-written occupancy high-water (telemetry; relaxed, see above).
  alignas(kCacheLine) std::atomic<std::size_t> highwater_{0};
};

}  // namespace slick::runtime

