#pragma once

#include <linux/futex.h>
#include <signal.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <ctime>
#include <deque>
#include <new>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/fault.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/math.h"
#include "util/serde.h"
#include "util/shm.h"

namespace slick::runtime {

/// Cross-process eventcount primitives (DESIGN.md §17). libstdc++'s
/// std::atomic::wait/notify lowers to FUTEX_PRIVATE_FLAG operations, which
/// the kernel scopes to one mm — a producer process would never wake a
/// consumer parked in another process. The shm ring therefore parks on raw
/// *shared* futexes over its eventcount words. Every wait is bounded (50ms)
/// so a wake lost to a crashed peer self-heals into a recheck instead of a
/// hang — parking is an idle-path optimization here, never a correctness
/// dependency.
namespace shm_futex {

inline constexpr long kWaitBoundNs = 50'000'000;  // self-healing recheck

SLICK_REALTIME_ALLOW(
    "idle-only parking: bounded shared-futex wait, entered only when the "
    "ring has no work for this side — never on the per-tuple path")
inline void WaitBounded(std::atomic<uint32_t>* word, uint32_t expected,
                        std::atomic<uint32_t>* waiters) {
  timespec ts{};
  ts.tv_sec = 0;
  ts.tv_nsec = kWaitBoundNs;
  // Advertise BEFORE sleeping, seq_cst: pairs with WakeAll's seq_cst
  // load. Either the waker's event bump precedes the kernel's
  // word==expected check (we don't sleep), or our increment precedes the
  // waker's waiters load (it issues the wake). A waiter that dies here
  // leaves the count stuck high — that only costs the fast-path skip,
  // never a hang, and the ring this counter serves is the one built to
  // survive exactly such deaths.
  waiters->fetch_add(1, std::memory_order_seq_cst);
  // FUTEX_WAIT without FUTEX_PRIVATE_FLAG: shared across processes.
  ::syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAIT,
            expected, &ts, nullptr, 0);
  // relaxed: the decrement publishes nothing — a waker that misses it
  // merely issues one spurious FUTEX_WAKE on an empty queue.
  waiters->fetch_sub(1, std::memory_order_relaxed);
}

SLICK_REALTIME_ALLOW(
    "eventcount wake: the common nobody-parked case is one shared load; "
    "the futex syscall fires only for real sleepers — cheaper than the "
    "in-process ring's notify_all, which is the same shape")
inline void WakeAll(std::atomic<uint32_t>* word,
                    std::atomic<uint32_t>* waiters) {
  // The fence orders the caller's event-word bump (a release RMW)
  // before the waiters load — the StoreLoad edge the C++ model does not
  // grant release-then-seq_cst on its own. With it: either the bump
  // precedes the kernel's word==expected check (the waiter won't sleep),
  // or the waiter's advertise precedes this load (we issue the wake).
  // Even a lost race costs at most one kWaitBoundNs recheck, by design.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // relaxed: the fence above supplies the ordering; the load itself only
  // needs the value, and a stale nonzero just falls through to the wake.
  if (waiters->load(std::memory_order_relaxed) == 0) return;
  ::syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAKE,
            INT_MAX, nullptr, nullptr, 0);
}

}  // namespace shm_futex

/// In-flight claim state a lease record advertises (DESIGN.md §17 lease
/// state machine). The distinction carries *crash attribution*: kOwned
/// means the producer's tail CAS landed, so the recorded span is certainly
/// and exclusively its property and the reaper may repair it immediately;
/// kIntent means the producer recorded the span it was *about* to CAS for
/// — the CAS may have lost (the span could belong to someone else) or
/// never executed, so the reaper grants a grace period and skips positions
/// claimed by other live leases before repairing.
enum class LeaseSpan : uint64_t {
  kIdle = 0,    ///< no claim in flight
  kIntent = 1,  ///< span recorded, tail CAS outcome unknown
  kOwned = 2,   ///< tail CAS landed: span is exclusively this lease's
};

/// One producer's lease record, resident in the shared segment. pid == 0
/// means the row is free. The epoch counter is the fence: a producer
/// caches it at attach and re-validates before every publish CAS; the
/// reaper bumps it before repairing, so a zombie resuming after a reap
/// observes the mismatch and stands down (and its per-slot publish CASes
/// lose to the reaper's tombstone sequencing even inside the re-validation
/// window). Heartbeats are CLOCK_MONOTONIC nanoseconds — comparable
/// system-wide across processes, immune to wall-clock steps.
struct alignas(64) ShmLease {
  std::atomic<uint64_t> pid;           ///< 0 = free row
  std::atomic<uint64_t> epoch;         ///< fence counter; bumped at reap
  std::atomic<uint64_t> heartbeat_ns;  ///< last refresh (monotonic ns)
  std::atomic<uint64_t> span_begin;    ///< in-flight claim [begin, end)
  std::atomic<uint64_t> span_end;
  std::atomic<uint64_t> span_state;    ///< LeaseSpan
  std::atomic<uint64_t> fenced_at_ns;  ///< 0 = not fenced; set by reaper
};
static_assert(sizeof(ShmLease) == 64, "one lease per cache line");

/// The segment's shared cursor/eventcount block. Same roles as MpmcRing's
/// members; hoisted into a POD so both processes address the one copy.
struct ShmControl {
  /// Release cursor (slots at [0, head) are reusable by producers).
  alignas(64) std::atomic<uint64_t> head;
  /// Shared reservation cursor — the producers' CAS target.
  alignas(64) std::atomic<uint64_t> tail;
  /// Consumer claim cursor, with head <= claim <= tail.
  alignas(64) std::atomic<uint64_t> claim;
  /// Eventcounts for parking (bumped per batch, by close(), by the
  /// reaper), each sharing its cache line with the count of sleepers on
  /// it: the waker reads both together, and the nobody-parked fast path
  /// (the steady state) skips the futex syscall entirely.
  alignas(64) std::atomic<uint32_t> tail_event;
  std::atomic<uint32_t> tail_waiters;  // slick-lint: allow(atomic-alignas)
  alignas(64) std::atomic<uint32_t> head_event;
  std::atomic<uint32_t> head_waiters;  // slick-lint: allow(atomic-alignas)
  /// Written once at shutdown but polled by all sides.
  alignas(64) std::atomic<uint32_t> closed;
  /// Occupancy high-water (telemetry; CAS-max, publishes race).
  alignas(64) std::atomic<uint64_t> highwater;
  /// Reaper telemetry trio — reaper-written, snapshot-read; they share one
  /// padded line because only the (rare) reap path writes them.
  alignas(64) std::atomic<uint64_t> leases_reclaimed;
  std::atomic<uint64_t> slots_tombstoned;  // slick-lint: allow(atomic-alignas)
  std::atomic<uint64_t> zombie_fences;     // slick-lint: allow(atomic-alignas)
};

/// Versioned, CRC'd segment header. layout_hash folds in every quantity
/// the compiled-in ring geometry depends on (slot size/alignment, struct
/// sizes, counts), so an attacher built against a different slot type or
/// struct revision is rejected instead of silently reinterpreting memory.
struct ShmHeader {
  uint32_t magic;
  uint32_t version;
  uint64_t layout_hash;
  uint64_t capacity;
  uint64_t max_producers;
  uint64_t slot_size;
  uint64_t slot_align;
  uint64_t total_bytes;
  uint32_t header_crc;  ///< CRC-32 over the fields above, in order
  /// 0 while the creator initializes; 1 (release) once every cursor, seq
  /// word and lease row is constructed. Attachers acquire-spin on it.
  std::atomic<uint32_t> ready;  // slick-lint: allow(atomic-alignas)
};

inline constexpr uint32_t kShmMagic = 0x4D485353u;  // "SSHM"
inline constexpr uint32_t kShmVersion = 2;

/// Dead-slot marker, ORed into a slot's seq word when the slot is
/// sequenced by tombstone repair instead of a producer publish. Folding
/// the mark into the seq word (rather than a second word array) makes the
/// seq CAS the ONE arbitration point for a slot's fate: whoever sequences
/// the slot decides — atomically — whether it is live (pos + 1) or dead
/// ((pos + 1) | kSeqDead), and the loser's CAS observes that verdict.
/// There is no window where a slot is published-then-retroactively-killed,
/// which is what makes LeaseProducer's `landed` count exact. Positions are
/// free-running counters that cannot plausibly reach 2^62, so the top bit
/// is free.
inline constexpr uint64_t kSeqDead = uint64_t{1} << 63;

/// Byte offsets of the segment's regions. Header, control and lease
/// offsets are independent of the slot type, which is what lets the
/// non-template InspectShmSegment() read cursors and leases from any
/// slick segment without knowing T.
struct ShmLayout {
  std::size_t control_off;
  std::size_t lease_off;
  std::size_t seq_off;
  std::size_t slot_off;
  std::size_t total_bytes;
};

inline constexpr std::size_t ShmAlignUp(std::size_t x, std::size_t a) {
  return (x + a - 1) & ~(a - 1);
}

inline constexpr ShmLayout ComputeShmLayout(std::size_t capacity,
                                            std::size_t max_producers,
                                            std::size_t slot_size,
                                            std::size_t slot_align) {
  ShmLayout l{};
  l.control_off = ShmAlignUp(sizeof(ShmHeader), 64);
  l.lease_off = ShmAlignUp(l.control_off + sizeof(ShmControl), 64);
  l.seq_off =
      ShmAlignUp(l.lease_off + max_producers * sizeof(ShmLease), 64);
  l.slot_off = ShmAlignUp(
      l.seq_off + capacity * sizeof(std::atomic<uint64_t>),
      slot_align > 64 ? slot_align : 64);
  l.total_bytes = ShmAlignUp(l.slot_off + capacity * slot_size, 4096);
  return l;
}

/// FNV-style fold of the geometry quantities into the header's layout
/// hash. Not cryptographic — it only needs to make accidental mismatches
/// (different T, different struct revision) collide with ~zero odds.
inline constexpr uint64_t ShmLayoutHash(std::size_t capacity,
                                        std::size_t max_producers,
                                        std::size_t slot_size,
                                        std::size_t slot_align) {
  uint64_t h = 0xCBF29CE484222325ull ^ (uint64_t{kShmVersion} << 32);
  const uint64_t parts[] = {capacity,  max_producers,      slot_size,
                            slot_align, sizeof(ShmControl), sizeof(ShmLease)};
  for (const uint64_t v : parts) {
    h ^= v;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// CRC of the header's plain fields, computed over a packed serialization
/// so it never depends on struct padding (and needs no offsetof on a type
/// holding an atomic).
inline uint32_t ShmHeaderCrc(const ShmHeader& h) {
  char buf[2 * sizeof(uint32_t) + 6 * sizeof(uint64_t)];
  char* p = buf;
  auto put = [&p](const auto& v) {
    std::memcpy(p, &v, sizeof(v));
    p += sizeof(v);
  };
  put(h.magic);
  put(h.version);
  put(h.layout_hash);
  put(h.capacity);
  put(h.max_producers);
  put(h.slot_size);
  put(h.slot_align);
  put(h.total_bytes);
  return util::Crc32(std::string_view(buf, sizeof(buf)));
}

/// Per-reap-pass repair counts (also accumulated into the segment's
/// telemetry words); what Supervise() folds into RuntimeSnapshot.
struct ShmReapStats {
  uint64_t leases_reclaimed = 0;
  uint64_t slots_tombstoned = 0;
  uint64_t zombie_fences = 0;
};

/// Lifetime telemetry counters read from the segment.
struct ShmLeaseStats {
  uint64_t leases_reclaimed = 0;
  uint64_t slots_tombstoned = 0;
  uint64_t zombie_fences = 0;
};

/// Crash-robust shared-memory MPMC ring (DESIGN.md §17): the MpmcRing
/// reserve/publish protocol relocated into a POSIX shm segment, plus the
/// machinery that makes "a producer is a separate process that can be
/// SIGKILL'd mid-claim" survivable instead of a consumer wedge:
///
///  * **Sequencing is a CAS, not a store.** A slot's seq word moves from
///    its previous-lap value (pos + 1 - capacity, possibly dead-marked,
///    or 0 on the first lap) to its this-lap value by compare-exchange,
///    from exactly one of two writers: the owning producer publishing it
///    live (pos + 1), or tombstone repair marking it dead
///    ((pos + 1) | kSeqDead). Whichever CAS lands first decides the
///    slot's fate — atomically and finally; the loser's CAS fails
///    harmlessly and its failure-order acquire shows it the verdict. A
///    lap-late zombie can never regress a seq word.
///  * **Tombstones ARE seq values.** Because live/dead is a property of
///    the one seq word, a published slot can never be retroactively
///    killed: a producer whose publish CAS won KNOWS the slot will be
///    consumed, which is what makes LeaseProducer::PublishClaimed's
///    `landed` count exact. The consumer skips dead slots — claim
///    advances past them, release accounting folds them into head —
///    instead of wedging on a hole. Like live seq values, dead marks are
///    lap-unique and never need clearing.
///  * **Leases + reaper** (ShmLease above, ReapExpiredLeases below) give
///    the consumer side the authority to decide a producer is gone and
///    repair its in-flight span.
///
/// API parity with MpmcRing is deliberate and pinned by the conformance
/// suite: ShardWorker drains, supervised-recovery ResetClaims replay, and
/// lease-less in-process producer threads all run unchanged over this
/// ring. The consumer side stays single-logical-consumer (the shard
/// worker), same as MpmcRing.
template <typename T>
class ShmRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "shm slots cross process boundaries as raw bytes");

 public:
  /// Trait the engine keys producer-handle support on.
  static constexpr bool kMultiProducer = true;
  /// Trait marking cross-process residency (conformance suite naming,
  /// engine reaper detection).
  static constexpr bool kShared = true;

  static constexpr std::size_t kDefaultMaxProducers = 16;

  /// Engine-owned ring: a fresh anonymous segment (unlinked at birth, see
  /// util::ShmMapping::CreateAnonymous) sized for `min_capacity` slots
  /// rounded up to a power of two. fork() children inherit the mapping,
  /// which is how the chaos suite's producer processes reach it.
  explicit ShmRing(std::size_t min_capacity,
                   std::size_t max_producers = kDefaultMaxProducers)
      : ShmRing(util::ShmMapping::CreateAnonymous(BytesFor(
                    min_capacity, max_producers)),
                min_capacity, max_producers) {}

  /// Named ring: linked in /dev/shm until this (owning) ring is destroyed,
  /// so unrelated processes can attach by name.
  ShmRing(const std::string& name, std::size_t min_capacity,
          std::size_t max_producers = kDefaultMaxProducers)
      : ShmRing(util::ShmMapping::CreateNamed(
                    name, BytesFor(min_capacity, max_producers)),
                min_capacity, max_producers) {}

  /// Attaches to an existing named segment created by another process.
  /// Validates magic, version, CRC and the layout hash against THIS
  /// compiled slot type before touching anything else.
  explicit ShmRing(const std::string& name)
      : map_(util::ShmMapping::OpenNamed(name, /*read_only=*/false)) {
    SLICK_CHECK(map_.valid(), "shm attach failed");
    auto* hdr = static_cast<ShmHeader*>(map_.data());
    SLICK_CHECK(map_.size() >= sizeof(ShmHeader), "shm segment truncated");
    // Bounded acquire-spin on the creator's ready flag: pairs with the
    // release store at the end of Init(), after which every field below
    // is immutable (header) or a constructed atomic.
    for (int spin = 0;
         hdr->ready.load(std::memory_order_acquire) == 0; ++spin) {
      SLICK_CHECK(spin < 100000, "shm segment never became ready");
      std::this_thread::yield();
    }
    SLICK_CHECK(hdr->magic == kShmMagic, "shm segment: bad magic");
    SLICK_CHECK(hdr->version == kShmVersion, "shm segment: bad version");
    SLICK_CHECK(hdr->header_crc == ShmHeaderCrc(*hdr),
                "shm segment: header CRC mismatch");
    SLICK_CHECK(hdr->layout_hash ==
                    ShmLayoutHash(static_cast<std::size_t>(hdr->capacity),
                                  static_cast<std::size_t>(hdr->max_producers),
                                  sizeof(T), alignof(T)),
                "shm segment: layout hash mismatch (different slot type "
                "or struct revision)");
    SLICK_CHECK(hdr->total_bytes <= map_.size(), "shm segment truncated");
    mask_ = static_cast<std::size_t>(hdr->capacity) - 1;
    BindPointers();
  }

  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  ShmRing(ShmRing&& other) noexcept
      : map_(std::move(other.map_)),
        mask_(other.mask_),
        hdr_(std::exchange(other.hdr_, nullptr)),
        ctl_(std::exchange(other.ctl_, nullptr)),
        leases_(std::exchange(other.leases_, nullptr)),
        seq_(std::exchange(other.seq_, nullptr)),
        slots_(std::exchange(other.slots_, nullptr)),
        fault_lane_(other.fault_lane_),
        pending_(std::move(other.pending_)) {}

  std::size_t capacity() const { return mask_ + 1; }
  std::size_t max_producers() const {
    return static_cast<std::size_t>(hdr_->max_producers);
  }
  /// The /dev/shm name for named segments; empty for anonymous ones.
  const std::string& name() const { return map_.name(); }

  /// Approximate occupancy — reserved minus released; includes tombstoned
  /// slots until the consumer skips them. Advisory outside quiescence.
  std::size_t size() const {
    // Consumer cursor FIRST (see MpmcRing::size): a stale head can only
    // over-count; tail-first can wrap the unsigned subtraction.
    const uint64_t h = ctl_->head.load(std::memory_order_acquire);
    const uint64_t t = ctl_->tail.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }
  bool empty() const { return size() == 0; }

  /// Highest occupancy observed at any publish point (upper bound).
  std::size_t occupancy_highwater() const {
    // relaxed: monotonic telemetry gauge, no data published through it.
    return static_cast<std::size_t>(
        ctl_->highwater.load(std::memory_order_relaxed));
  }

  /// Lifetime reaper telemetry (leases reclaimed, slots tombstoned,
  /// zombie fences) accumulated in the segment.
  ShmLeaseStats lease_stats() const {
    // relaxed: reporting counters, read at sampling points.
    return ShmLeaseStats{
        ctl_->leases_reclaimed.load(std::memory_order_relaxed),
        ctl_->slots_tombstoned.load(std::memory_order_relaxed),
        ctl_->zombie_fences.load(std::memory_order_relaxed)};
  }

  // ------------------------------------------------------------------
  // Producer side — lease-less (in-process threads: the router, the
  // conformance suite). Cross-process producers layer a lease on top via
  // AttachProducer()/LeaseProducer below, which reuse these primitives.
  // ------------------------------------------------------------------

  /// Reserves a contiguous span of up to `max` free slots for in-place
  /// writing; same contract as MpmcRing::TryClaimPush (nullptr when full
  /// or closed, span capped at the array wrap, bounded by head+capacity).
  SLICK_NODISCARD SLICK_REALTIME T* TryClaimPush(std::size_t max,
                                                 std::size_t* count) {
    *count = 0;
    // relaxed: closed is a monotonic go/no-go flag; promptness only.
    if (ctl_->closed.load(std::memory_order_relaxed) != 0) return nullptr;
    if (fault::Fire(fault::Point::kRingSpuriousFull, fault_lane_)) {
      return nullptr;
    }
    uint64_t tail = ctl_->tail.load(std::memory_order_relaxed);
    for (;;) {
      // acquire: pairs with ReleasePop's head release store — released
      // slots are safe to overwrite (the claim bound, as in MpmcRing).
      const uint64_t head = ctl_->head.load(std::memory_order_acquire);
      const uint64_t used = tail - head;
      if (used >= capacity()) {
        // relaxed: the CAS re-validates; a stale tail costs one retry.
        const uint64_t fresh = ctl_->tail.load(std::memory_order_relaxed);
        if (fresh == tail) return nullptr;
        tail = fresh;
        continue;
      }
      const std::size_t free = capacity() - static_cast<std::size_t>(used);
      const std::size_t idx = static_cast<std::size_t>(tail) & mask_;
      std::size_t n = max < free ? max : free;
      const std::size_t to_wrap = capacity() - idx;
      if (n > to_wrap) n = to_wrap;
      // relaxed: the reservation carries no payload; publication is the
      // per-slot seq CAS in PublishPush.
      if (ctl_->tail.compare_exchange_weak(tail, tail + n,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed)) {
        *count = n;
        return slots_ + idx;
      }
    }
  }

  /// Publishes slots previously reserved with TryClaimPush (same span /
  /// piecewise rules as MpmcRing::PublishPush). Publication is per-slot
  /// CAS from the previous-lap seq value — see the class comment; for a
  /// lease-less producer the CAS can only lose to a reaper repairing a
  /// kIntent lease whose recorded span overlapped this claim (a blind
  /// spot DESIGN.md §17 documents; the grace period makes it require a
  /// claim held unpublished for a full lease period).
  SLICK_REALTIME void PublishPush(T* span, std::size_t count) {
    if (count == 0) return;
    if (fault::Fire(fault::Point::kPublishDelay, fault_lane_)) {
      fault::InjectDelay();
    }
    const auto idx = static_cast<std::size_t>(span - slots_);
    SLICK_DCHECK(idx <= mask_, "publish span outside the slot array");
    // Recover the free-running position from the slot index (unique in
    // [head, head + capacity) — see MpmcRing::PublishPush).
    // relaxed: any head value between claim time and now yields the same
    // answer; no data rides on it.
    const uint64_t head = ctl_->head.load(std::memory_order_relaxed);
    const uint64_t pos = head + ((static_cast<uint64_t>(idx) - head) & mask_);
    UpdateHighwater(pos + count - head);
    for (std::size_t i = 0; i < count; ++i) {
      PublishSlot(pos + i);
    }
    // release: orders the seq CASes before the bump a waiter snapshots.
    ctl_->tail_event.fetch_add(1, std::memory_order_release);
    shm_futex::WakeAll(&ctl_->tail_event, &ctl_->tail_waiters);
  }

  /// Copies up to `n` elements into the ring without blocking; returns the
  /// number accepted (0 when full or closed).
  SLICK_NODISCARD SLICK_REALTIME std::size_t try_push_n(const T* src,
                                                        std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      std::size_t k = 0;
      T* span = TryClaimPush(n - done, &k);
      if (span == nullptr) break;
      for (std::size_t i = 0; i < k; ++i) span[i] = src[done + i];
      PublishPush(span, k);
      done += k;
      // A claim is capped at the array wrap; continue only when this one
      // ended exactly there.
      if (span + k != slots_ + capacity()) break;
    }
    return done;
  }

  SLICK_NODISCARD SLICK_REALTIME bool try_push(const T& v) {
    return try_push_n(&v, 1) == 1;
  }

  /// Blocking push (backpressure): parks on the head eventcount when
  /// full. Returns the number accepted — `n` unless closed mid-wait.
  std::size_t push_n(const T* src, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      const std::size_t k = try_push_n(src + done, n - done);
      done += k;
      if (done == n) break;
      if (k == 0) {
        // relaxed: WaitForSpace rechecks closed with acquire before
        // parking, and close() bumps head_event — a stale false costs
        // one loop, never a missed shutdown.
        if (ctl_->closed.load(std::memory_order_relaxed) != 0) break;
        WaitForSpace();
      }
    }
    return done;
  }

  /// Producers are done: wakes everyone; consumers settle, drain, then
  /// see ClaimPop return nullptr. Idempotent, any side.
  void close() {
    ctl_->closed.store(1, std::memory_order_release);
    ctl_->tail_event.fetch_add(1, std::memory_order_release);
    ctl_->head_event.fetch_add(1, std::memory_order_release);
    shm_futex::WakeAll(&ctl_->tail_event, &ctl_->tail_waiters);
    shm_futex::WakeAll(&ctl_->head_event, &ctl_->head_waiters);
  }

  bool closed() const {
    return ctl_->closed.load(std::memory_order_acquire) != 0;
  }

  /// Names this ring's lane for the fault-injection schedule (the owning
  /// shard index). Set before threads start.
  void set_fault_lane(std::size_t lane) { fault_lane_ = lane; }

  /// Eventcount introspection for the deterministic model checker — same
  /// contract as MpmcRing.
  uint32_t tail_event_word() const {
    return ctl_->tail_event.load(std::memory_order_acquire);
  }
  uint32_t head_event_word() const {
    return ctl_->head_event.load(std::memory_order_acquire);
  }
  bool pop_ready_or_settled() const { return PopReadyOrSettled(); }
  bool push_space_or_closed() const { return PushSpaceOrClosed(); }

  // ------------------------------------------------------------------
  // Consumer side (one logical consumer: the shard worker).
  // ------------------------------------------------------------------

  /// Claims a contiguous span of up to `max` published *live* elements.
  /// Differs from MpmcRing only in tombstone handling: a leading run of
  /// dead slots (seq dead-marked by repair) is skipped — claim advances
  /// past it and the skip is folded into release accounting — and a dead
  /// slot inside the window ends the returned span (the next claim skips
  /// it).
  SLICK_NODISCARD SLICK_REALTIME T* TryClaimPop(std::size_t max,
                                                std::size_t* count) {
    *count = 0;
    for (;;) {
      // relaxed: effectively the consumer's own cursor; data visibility
      // rides on the per-slot seq acquires.
      uint64_t claim = ctl_->claim.load(std::memory_order_relaxed);
      // Skip the leading dead run, if any.
      std::size_t skip = 0;
      while (skip < capacity()) {
        const uint64_t pos = claim + skip;
        const std::size_t idx = static_cast<std::size_t>(pos) & mask_;
        // acquire: pairs with the publish/tombstone CAS release stores.
        if (seq_[idx].load(std::memory_order_acquire) !=
            ((pos + 1) | kSeqDead)) {
          break;
        }
        ++skip;
      }
      if (skip > 0) {
        // relaxed: cursor handout only, same as the live-claim CAS below.
        if (!ctl_->claim.compare_exchange_strong(claim, claim + skip,
                                                 std::memory_order_relaxed,
                                                 std::memory_order_relaxed)) {
          continue;  // another claimer moved the cursor — rescan
        }
        AccountTombstones(skip);
        claim += skip;
      }
      const std::size_t idx = static_cast<std::size_t>(claim) & mask_;
      std::size_t limit = max;
      const std::size_t to_wrap = capacity() - idx;
      if (limit > to_wrap) limit = to_wrap;
      std::size_t n = 0;
      while (n < limit) {
        const uint64_t pos = claim + n;
        // acquire: pairs with PublishSlot's seq CAS release — the slot's
        // contents are visible before we hand it out. A dead-marked slot
        // fails the equality too, ending the live span at the hole.
        if (seq_[idx + n].load(std::memory_order_acquire) != pos + 1) break;
        ++n;
      }
      if (n == 0) {
        if (skip > 0) continue;  // progressed past a dead run — rescan
        return nullptr;
      }
      uint64_t expect = claim;
      // relaxed: the cursor advance transfers no payload (the seq
      // acquires above did).
      if (ctl_->claim.compare_exchange_strong(expect, claim + n,
                                              std::memory_order_relaxed,
                                              std::memory_order_relaxed)) {
        pending_.push_back(Pending{0, n});
        *count = n;
        return slots_ + idx;
      }
    }
  }

  /// Returns `count` claimed *live* slots, oldest first; may batch spans.
  /// Tombstoned positions the claim cursor skipped are folded in here —
  /// the head advance covers them the moment every live slot claimed
  /// before them is released, preserving MpmcRing's releases-lag-claims
  /// replay contract over a ring with holes. Single releaser, in claim
  /// order (the shard worker).
  SLICK_REALTIME void ReleasePop(std::size_t count) {
    uint64_t advance = 0;
    std::size_t remaining = count;
    while (!pending_.empty()) {
      Pending& front = pending_.front();
      if (front.live == 0) {  // dead run: absorb into the head advance
        advance += front.dead;
        pending_.pop_front();
        continue;
      }
      if (remaining == 0) break;
      const std::size_t take =
          remaining < front.live ? remaining : front.live;
      front.live -= take;
      remaining -= take;
      advance += take;
      if (front.live != 0) break;
      pending_.pop_front();  // loop absorbs a trailing dead run, if any
    }
    SLICK_DCHECK(remaining == 0, "ReleasePop past the claimed span");
    advance += remaining;  // defensive: keep cursors consistent anyway
    if (advance == 0) return;
    // relaxed: head is the releaser's own cursor (single releaser).
    const uint64_t head = ctl_->head.load(std::memory_order_relaxed);
    // release: hands slots back; pairs with TryClaimPush's head acquire.
    ctl_->head.store(head + advance, std::memory_order_release);
    ctl_->head_event.fetch_add(1, std::memory_order_release);
    shm_futex::WakeAll(&ctl_->head_event, &ctl_->head_waiters);
  }

  /// Rewinds the claim cursor to the release cursor — the recovery
  /// primitive (see MpmcRing::ResetClaims; unchanged rationale: seq words
  /// survive releases, so the replayed span re-reads published slots and
  /// re-skips dead-marked ones). MUST only run with no consumer
  /// thread live; the pending skip accounting resets with the cursor.
  void ResetClaims() {
    pending_.clear();
    // relaxed: thread-lifecycle contract — join/spawn order the cursors.
    ctl_->claim.store(ctl_->head.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }

  /// Elements reserved but not yet claimed (upper bound; includes
  /// tombstoned positions not yet skipped).
  std::size_t unconsumed() const {
    const uint64_t c = ctl_->claim.load(std::memory_order_acquire);
    const uint64_t t = ctl_->tail.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - c);
  }

  /// Elements claimed but not yet released — the replay span. Upper
  /// bound: includes tombstoned positions queued in the skip accounting.
  std::size_t unreleased() const {
    const uint64_t h = ctl_->head.load(std::memory_order_acquire);
    const uint64_t c = ctl_->claim.load(std::memory_order_acquire);
    return static_cast<std::size_t>(c - h);
  }

  /// Blocking claim; nullptr only once closed AND settled (every reserved
  /// slot published-or-tombstoned and claimed). An abandoned reservation
  /// parks the consumer here until the reaper repairs it and bumps the
  /// tail eventcount — the exact wedge this ring exists to break.
  SLICK_NODISCARD T* ClaimPop(std::size_t max, std::size_t* count) {
    while (true) {
      T* span = TryClaimPop(max, count);
      if (span != nullptr) return span;
      if (closed()) {
        span = TryClaimPop(max, count);
        if (span != nullptr) return span;
        const uint64_t t = ctl_->tail.load(std::memory_order_acquire);
        // relaxed: own cursor (single logical consumer).
        if (t == ctl_->claim.load(std::memory_order_relaxed)) return nullptr;
      }
      WaitForData();
    }
  }

  /// Non-blocking bulk move; returns the number popped.
  SLICK_NODISCARD SLICK_REALTIME std::size_t try_pop_n(T* dst,
                                                       std::size_t max) {
    std::size_t done = 0;
    while (done < max) {
      std::size_t k = 0;
      T* span = TryClaimPop(max - done, &k);
      if (span == nullptr) break;
      for (std::size_t i = 0; i < k; ++i) dst[done + i] = span[i];
      ReleasePop(k);
      done += k;
      if (span + k != slots_ + capacity()) break;
    }
    return done;
  }

  /// Blocking pop; 0 only once closed and settled.
  std::size_t pop_n(T* dst, std::size_t max) {
    std::size_t k = 0;
    T* span = ClaimPop(max, &k);
    if (span == nullptr) return 0;
    for (std::size_t i = 0; i < k; ++i) dst[i] = span[i];
    ReleasePop(k);
    return k;
  }

  // ------------------------------------------------------------------
  // Lease layer — cross-process producers. A LeaseProducer wraps the
  // claim/publish primitives with the lease protocol: record intent,
  // CAS, mark owned, heartbeat, epoch-gate every publish. Its fault
  // hooks are where the chaos suite SIGKILLs the producer process.
  // ------------------------------------------------------------------

  class LeaseProducer {
   public:
    enum class Result : uint8_t { kOk, kFull, kFenced, kClosed };

    LeaseProducer() = default;
    LeaseProducer(const LeaseProducer&) = delete;
    LeaseProducer& operator=(const LeaseProducer&) = delete;
    LeaseProducer(LeaseProducer&& other) noexcept
        : ring_(std::exchange(other.ring_, nullptr)),
          lease_(std::exchange(other.lease_, nullptr)),
          my_pid_(other.my_pid_),
          epoch_at_attach_(other.epoch_at_attach_),
          claim_pos_(other.claim_pos_),
          claim_len_(other.claim_len_),
          stalled_(other.stalled_) {}
    ~LeaseProducer() { Detach(); }

    bool valid() const { return ring_ != nullptr; }

    /// Whether the reaper has fenced this lease (or handed the row to a
    /// new holder). A fenced producer must stop publishing and re-attach.
    bool Fenced() const {
      // acquire: pairs with the reaper's epoch fetch_add — a bumped
      // epoch means repair may already be underway.
      return lease_->epoch.load(std::memory_order_acquire) !=
                 epoch_at_attach_ ||
             lease_->pid.load(std::memory_order_acquire) != my_pid_;
    }

    /// Reserves up to `max` slots, recording the claim in the lease
    /// BEFORE the tail CAS so a crash at any instruction is attributable:
    /// kIntent while the CAS outcome is unknown, kOwned once it landed.
    SLICK_NODISCARD Result TryBeginClaim(std::size_t max,
                                         std::size_t* claimed) {
      *claimed = 0;
      SLICK_DCHECK(claim_len_ == 0, "previous claim not yet published");
      ShmControl* ctl = ring_->ctl_;
      // relaxed: monotonic go/no-go, promptness only (as TryClaimPush).
      if (ctl->closed.load(std::memory_order_relaxed) != 0) {
        return Result::kClosed;
      }
      uint64_t tail = ctl->tail.load(std::memory_order_relaxed);
      bool first_attempt = true;
      for (;;) {
        // Re-checked on EVERY iteration, before the intent stores below:
        // a producer that stalled long enough to be fenced mid-loop must
        // not rewrite span state into a lease row the reaper may already
        // have reclaimed (and a new holder re-taken).
        if (Fenced()) return Result::kFenced;
        // acquire: the claim bound (pairs with head release stores).
        const uint64_t head = ctl->head.load(std::memory_order_acquire);
        const uint64_t used = tail - head;
        if (used >= ring_->capacity()) {
          // relaxed: tail is only a CAS seed — staleness costs one retry.
          const uint64_t fresh = ctl->tail.load(std::memory_order_relaxed);
          if (fresh == tail) return Result::kFull;
          tail = fresh;
          continue;
        }
        const std::size_t free =
            ring_->capacity() - static_cast<std::size_t>(used);
        const std::size_t idx = static_cast<std::size_t>(tail) & ring_->mask_;
        std::size_t n = max < free ? max : free;
        const std::size_t to_wrap = ring_->capacity() - idx;
        if (n > to_wrap) n = to_wrap;
        // Record intent before the CAS. relaxed stores sequenced before
        // the span_state release: the reaper reads state first (acquire)
        // and only then trusts the span bounds.
        lease_->span_begin.store(tail, std::memory_order_relaxed);
        lease_->span_end.store(tail + n, std::memory_order_relaxed);
        lease_->span_state.store(
            static_cast<uint64_t>(LeaseSpan::kIntent),
            std::memory_order_release);
        if (first_attempt) {
          first_attempt = false;
          // Crash with intent recorded but the CAS outcome unknown — the
          // reaper must take the grace-wait branch for this lease. Fired
          // once per claim attempt so chaos kill ordinals stay stable
          // across CAS retries.
          if (fault::Fire(fault::Point::kShmDieBeforeClaim,
                          ring_->fault_lane_)) {
            fault::DieHard();
          }
        }
        // relaxed CAS: the reservation carries no payload (see
        // TryClaimPush); the lease stores above are what must be visible
        // first, and their release covers that.
        if (ctl->tail.compare_exchange_weak(tail, tail + n,
                                            std::memory_order_relaxed,
                                            std::memory_order_relaxed)) {
          // Dekker pairing with the reaper (its seq_cst fence sits
          // between the epoch bump and the span/tail reads): if the
          // reaper's repair read tail BEFORE this CAS landed — and so
          // skipped [tail, tail + n) as never-claimed — this fence
          // guarantees the Fenced() load below observes the bump, so
          // the span is never stranded outside every repair.
          std::atomic_thread_fence(std::memory_order_seq_cst);
          if (Fenced()) {
            // The tail CAS landed, so the span is exclusively ours —
            // but the lease row no longer is: the reaper fenced us
            // between the intent record and here, and may already have
            // reclaimed the row (a stalled kIntent holder) or handed it
            // to a new producer. Publishing is forbidden and the span
            // can be recorded in no lease, so repair it ourselves,
            // exactly as the reaper would, and wake the consumer off
            // the hole. Without this, the reservation would be a
            // permanently unsequenced hole no reap pass can see — the
            // wedge this ring exists to eliminate.
            uint64_t dead = 0;
            for (uint64_t pos = tail; pos < tail + n; ++pos) {
              if (ring_->TombstoneSlot(pos)) ++dead;
            }
            if (dead != 0) {
              // relaxed: monotonic telemetry counter.
              ctl->slots_tombstoned.fetch_add(dead,
                                              std::memory_order_relaxed);
            }
            ctl->tail_event.fetch_add(1, std::memory_order_release);
            shm_futex::WakeAll(&ctl->tail_event, &ctl->tail_waiters);
            return Result::kFenced;
          }
          // The span is now certainly ours: upgrade the attribution. No
          // heartbeat here: attach seeded one and every publish refreshes
          // it, so claim-time staleness is already bounded by the last
          // publish — and clock_gettime is a third of the whole lease
          // overhead at batch 64. A holder that claims and then stalls
          // past lease_ns is fenced either way; only the measuring point
          // moves, by at most one claim-to-publish gap.
          lease_->span_state.store(
              static_cast<uint64_t>(LeaseSpan::kOwned),
              std::memory_order_release);
          claim_pos_ = tail;
          claim_len_ = n;
          *claimed = n;
          return Result::kOk;
        }
      }
    }

    T* claim_data() const {
      return ring_->slots_ +
             (static_cast<std::size_t>(claim_pos_) & ring_->mask_);
    }
    std::size_t claim_len() const { return claim_len_; }

    /// Publishes the slots of the current claim, epoch-gated: a fenced
    /// producer publishes nothing (and a fence landing mid-span stops the
    /// remainder — each slot's CAS independently loses to the reaper's
    /// tombstone sequencing anyway). Returns the number of slots that
    /// actually landed; clears the claim either way.
    ///
    /// `landed` is EXACT, not advisory: live/dead is decided by the one
    /// seq-word CAS per slot, so a slot this walk won is live and will be
    /// consumed, and a slot it lost (or never attempted after a loss) was
    /// — or is about to be — dead-marked by the repair that beat it.
    /// Callers can treat kOk/`landed` as an at-least-once delivery fact.
    std::size_t PublishClaimed() {
      if (claim_len_ == 0) return 0;
      if (fault::Fire(fault::Point::kShmZombieResume, ring_->fault_lane_)) {
        // Stall far past the (test-sized) lease period, then fall through
        // and try to publish — the zombie-resume schedule. The reaper
        // must have fenced us by the time we wake; the gates below and
        // the per-slot CAS protocol are what make the zombie lose.
        fault::InjectLongStall();
      }
      if (fault::Fire(fault::Point::kShmDieBeforePublish,
                      ring_->fault_lane_)) {
        fault::DieHard();
      }
      const uint64_t pos0 = claim_pos_;
      const std::size_t n = claim_len_;
      std::size_t landed = 0;
      // One fence check gates the whole walk: each slot's CAS arbitrates
      // exactly (a reaper that fenced mid-walk wins per slot regardless),
      // so the per-slot check would buy nothing but a load per slot on
      // the hot path. A lost CAS can only mean tombstone repair is
      // walking this same span — its failure-order acquire synchronizes
      // with the repair CAS, making the (program-order earlier) epoch
      // bump visible — so stop: the repair pass covers every remaining
      // unpublished position, and burning CASes that lose changes
      // nothing.
      if (!Fenced()) {
        for (std::size_t i = 0; i < n; ++i) {
          if (fault::Fire(fault::Point::kShmDieMidSpan,
                          ring_->fault_lane_)) {
            fault::DieHard();
          }
          if (!ring_->PublishSlot(pos0 + i)) {
            SLICK_DCHECK(Fenced(), "publish CAS lost to a non-repair writer");
            break;
          }
          ++landed;
        }
      }
      if (landed > 0) {
        // relaxed: highwater is advisory telemetry; a stale head only
        // under-reports occupancy for one sample.
        ring_->UpdateHighwater(
            pos0 + n - ring_->ctl_->head.load(std::memory_order_relaxed));
      }
      if (!Fenced()) {
        // Still ours (the reaper bumps the epoch before ever freeing or
        // reusing the row, so not-fenced implies the row is still this
        // producer's): retire the span and refresh the heartbeat.
        lease_->span_state.store(static_cast<uint64_t>(LeaseSpan::kIdle),
                                 std::memory_order_release);
        Heartbeat();
      }
      claim_len_ = 0;
      // Wake the consumer even when landed < n: the reaper's tombstones
      // cover the rest, and an extra bump is harmless.
      ring_->ctl_->tail_event.fetch_add(1, std::memory_order_release);
      shm_futex::WakeAll(&ring_->ctl_->tail_event,
                         &ring_->ctl_->tail_waiters);
      return landed;
    }

    /// Claim + copy + publish in one call. *pushed counts slots that
    /// landed; kOk only when all `n` did.
    SLICK_NODISCARD Result TryPush(const T* src, std::size_t n,
                                   std::size_t* pushed) {
      *pushed = 0;
      while (*pushed < n) {
        std::size_t k = 0;
        const Result r = TryBeginClaim(n - *pushed, &k);
        if (r != Result::kOk) return *pushed == n ? Result::kOk : r;
        T* span = claim_data();
        for (std::size_t i = 0; i < k; ++i) span[i] = src[*pushed + i];
        const std::size_t landed = PublishClaimed();
        *pushed += landed;
        if (landed < k) return Result::kFenced;
      }
      return Result::kOk;
    }

    /// Timer-path heartbeat refresh (the publish path refreshes
    /// implicitly). Once the stalled-heartbeat fault fires, refreshes
    /// stop permanently — simulating a producer wedged outside the
    /// publish path.
    void RefreshLease() {
      if (stalled_) return;
      if (fault::Fire(fault::Point::kShmStallHeartbeat,
                      ring_->fault_lane_)) {
        stalled_ = true;
        return;
      }
      if (!Fenced()) Heartbeat();
    }

    /// Graceful detach: frees the lease row (never touches a row the
    /// reaper already fenced away from us).
    void Detach() {
      if (ring_ == nullptr) return;
      if (!Fenced()) {
        lease_->span_state.store(static_cast<uint64_t>(LeaseSpan::kIdle),
                                 std::memory_order_release);
        lease_->heartbeat_ns.store(0, std::memory_order_release);
        uint64_t expect = my_pid_;
        // CAS, not store: the reaper may have freed (and a new producer
        // re-taken) the row between the Fenced() check and here. relaxed
        // failure order: on loss we touch nothing and read nothing back.
        lease_->pid.compare_exchange_strong(expect, 0,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed);
      }
      ring_ = nullptr;
      lease_ = nullptr;
    }

   private:
    friend class ShmRing;
    LeaseProducer(ShmRing* ring, ShmLease* lease, uint64_t pid,
                  uint64_t epoch)
        : ring_(ring), lease_(lease), my_pid_(pid), epoch_at_attach_(epoch) {}

    void Heartbeat() {
      // release: a reaper that reads a fresh heartbeat also sees the
      // span/state stores that preceded it.
      lease_->heartbeat_ns.store(util::MonotonicNanos(),
                                 std::memory_order_release);
    }

    ShmRing* ring_ = nullptr;
    ShmLease* lease_ = nullptr;
    uint64_t my_pid_ = 0;
    uint64_t epoch_at_attach_ = 0;
    uint64_t claim_pos_ = 0;
    std::size_t claim_len_ = 0;
    bool stalled_ = false;
  };

  /// Attaches the calling process as a lease-holding producer: claims a
  /// free lease row (pid CAS), stamps the first heartbeat, caches the
  /// fence epoch. CHECK-fails when the table is full — table sizing is a
  /// deployment decision, not a runtime condition to retry.
  SLICK_NODISCARD LeaseProducer AttachProducer() {
    const auto me = static_cast<uint64_t>(::getpid());
    for (std::size_t i = 0; i < max_producers(); ++i) {
      ShmLease& lease = leases_[i];
      uint64_t expect = 0;
      // acq_rel: acquire the row's final state from its previous holder
      // (or the reaper's free), release our ownership claim. relaxed
      // failure order: an occupied row is just skipped, nothing is read.
      if (!lease.pid.compare_exchange_strong(expect, me,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
        continue;
      }
      // Row is exclusively ours; relaxed scrub stores suffice because the
      // heartbeat's release below publishes them to the reaper as a unit.
      lease.span_begin.store(0, std::memory_order_relaxed);
      lease.span_end.store(0, std::memory_order_relaxed);
      lease.span_state.store(static_cast<uint64_t>(LeaseSpan::kIdle),
                             std::memory_order_relaxed);
      lease.fenced_at_ns.store(0, std::memory_order_relaxed);
      lease.heartbeat_ns.store(util::MonotonicNanos(),
                               std::memory_order_release);
      const uint64_t epoch = lease.epoch.load(std::memory_order_acquire);
      return LeaseProducer(this, &lease, me, epoch);
    }
    SLICK_CHECK(false, "shm lease table full");
    return LeaseProducer();
  }

  /// The consumer-side reaper (DESIGN.md §17): fences and repairs leases
  /// whose holder is dead (pid gone) or expired (heartbeat stale past
  /// `lease_ns`). Single caller at a time (the engine's Supervise path,
  /// or a test thread); safe against concurrent producers and consumer.
  ///
  /// Per expired lease, in order:
  ///  1. FENCE (once): bump the epoch, stamp fenced_at. From here the
  ///     holder's Fenced() gate trips, and every slot the repair
  ///     sequences is CAS-protected against the holder's late publishes.
  ///     A fence applied to a still-running process is a zombie fence.
  ///  2. REPAIR: tombstone the unpublished positions of the recorded
  ///     span. kOwned spans repair immediately (ownership is certain);
  ///     kIntent spans wait one further lease period after the fence
  ///     (the recorded CAS may have lost or never run) and skip
  ///     positions beyond tail or covered by another live lease's span.
  ///  3. RECLAIM: free the row (pid CAS to 0) and count it.
  ShmReapStats ReapExpiredLeases(uint64_t now_ns, uint64_t lease_ns) {
    ShmReapStats out;
    for (std::size_t li = 0; li < max_producers(); ++li) {
      ShmLease& lease = leases_[li];
      // acquire: everything we read about this row below was published
      // by heartbeat/attach release stores.
      const uint64_t pid = lease.pid.load(std::memory_order_acquire);
      if (pid == 0) continue;
      const bool dead =
          ::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH;
      const uint64_t beat =
          lease.heartbeat_ns.load(std::memory_order_acquire);
      const bool stale =
          beat != 0 && now_ns > beat && now_ns - beat > lease_ns;
      if (!dead && !stale) continue;

      // 1. Fence (idempotent across reap passes via fenced_at).
      if (lease.fenced_at_ns.load(std::memory_order_acquire) == 0) {
        // acq_rel: the bump both observes the holder's last stores and
        // publishes the fence to its next Fenced() check.
        lease.epoch.fetch_add(1, std::memory_order_acq_rel);
        lease.fenced_at_ns.store(now_ns == 0 ? 1 : now_ns,
                                 std::memory_order_release);
        if (!dead) {
          ++out.zombie_fences;
          // relaxed: monotonic telemetry counter; readers tolerate skew.
          ctl_->zombie_fences.fetch_add(1, std::memory_order_relaxed);
        }
      }

      // Dekker pairing with TryBeginClaim's post-CAS fence: the holder
      // CASes tail then re-checks the epoch; we bumped the epoch (this
      // pass or an earlier one) and now read tail and the span. The
      // paired seq_cst fences guarantee at least one side sees the
      // other: either the tail load below observes the holder's CAS (so
      // its span is inside [.., tail) and repairable), or the holder's
      // re-check observes the bump and it self-repairs. No interleaving
      // leaves a reserved span that neither side tombstones.
      std::atomic_thread_fence(std::memory_order_seq_cst);

      // 2. Repair the recorded span, if attribution allows it yet.
      const auto state = static_cast<LeaseSpan>(
          lease.span_state.load(std::memory_order_acquire));
      if (state != LeaseSpan::kIdle) {
        // relaxed: fenced_at was stored by THIS reaper (single-threaded),
        // and the span words are ordered by the span_state acquire above
        // (they precede the holder's kIntent release store).
        const uint64_t fenced_at =
            lease.fenced_at_ns.load(std::memory_order_relaxed);
        if (state == LeaseSpan::kIntent &&
            now_ns - fenced_at < lease_ns) {
          continue;  // grace period: revisit on a later reap pass
        }
        // relaxed span words: ordered by the span_state acquire above.
        const uint64_t begin =
            lease.span_begin.load(std::memory_order_relaxed);
        const uint64_t end = lease.span_end.load(std::memory_order_relaxed);
        if (begin < end && end - begin <= capacity()) {
          const uint64_t tail = ctl_->tail.load(std::memory_order_acquire);
          for (uint64_t pos = begin; pos < end; ++pos) {
            if (pos >= tail) continue;  // never claimed by anyone
            if (state == LeaseSpan::kIntent &&
                CoveredByOtherLease(li, pos)) {
              continue;  // the CAS lost; the span belongs to someone live
            }
            // One CAS decides the slot's fate: win => dead-marked, the
            // consumer skips it atomically (it can never read the slot
            // as live garbage, because live requires the exact value
            // pos + 1). Lose => the holder's publish squeaked in after
            // our fence — the slot is LIVE with real data, stays
            // consumable, and the holder rightly counted it as landed.
            if (TombstoneSlot(pos)) {
              ++out.slots_tombstoned;
            }
          }
        }
      }

      // 3. Reclaim the row. Scrub, then CAS pid — the CAS (not a store)
      // keeps a racing graceful Detach from double-counting. relaxed span
      // scrubs ride the pid CAS's release; relaxed failure order because
      // a lost CAS (graceful Detach won) reads nothing back; the
      // reclaimed counter is monotonic telemetry tolerant of skew.
      lease.span_state.store(static_cast<uint64_t>(LeaseSpan::kIdle),
                             std::memory_order_release);
      lease.span_begin.store(0, std::memory_order_relaxed);
      lease.span_end.store(0, std::memory_order_relaxed);
      lease.heartbeat_ns.store(0, std::memory_order_release);
      lease.fenced_at_ns.store(0, std::memory_order_release);
      uint64_t expect = pid;
      // relaxed failure order: a lost CAS (graceful Detach won) reads
      // nothing back; the counter is relaxed monotonic telemetry.
      if (lease.pid.compare_exchange_strong(expect, 0,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        ++out.leases_reclaimed;
        ctl_->leases_reclaimed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (out.slots_tombstoned != 0) {
      // relaxed: monotonic telemetry counter; readers tolerate skew.
      ctl_->slots_tombstoned.fetch_add(out.slots_tombstoned,
                                       std::memory_order_relaxed);
    }
    if (out.slots_tombstoned != 0 || out.leases_reclaimed != 0) {
      // The consumer may be parked on a hole we just repaired: bump the
      // eventcount so it rescans (and skips) the tombstoned run.
      ctl_->tail_event.fetch_add(1, std::memory_order_release);
      shm_futex::WakeAll(&ctl_->tail_event, &ctl_->tail_waiters);
    }
    return out;
  }

 private:
  /// White-box access for tests (tests/shm_chaos_test.cc): the kIntent
  /// grace path is reachable only through a crash between the intent
  /// store and the tail CAS, which a single tier-1 process cannot produce
  /// organically — the test forges the lease row instead.
  friend struct ShmRingTestPeer;

  /// Whether `pos` lies inside the in-flight span of any live lease other
  /// than `self` — the kIntent repair guard. Racy by nature (advisory
  /// reads of other rows); a false positive just defers the position to
  /// that lease's own eventual publish or reap.
  bool CoveredByOtherLease(std::size_t self, uint64_t pos) const {
    for (std::size_t i = 0; i < max_producers(); ++i) {
      if (i == self) continue;
      const ShmLease& lease = leases_[i];
      if (lease.pid.load(std::memory_order_acquire) == 0) continue;
      if (lease.span_state.load(std::memory_order_acquire) ==
          static_cast<uint64_t>(LeaseSpan::kIdle)) {
        continue;
      }
      // relaxed: ordered by the span_state acquire above; a torn view at
      // worst defers this row's repair to the next reap pass.
      const uint64_t b = lease.span_begin.load(std::memory_order_relaxed);
      const uint64_t e = lease.span_end.load(std::memory_order_relaxed);
      if (b <= pos && pos < e) return true;
    }
    return false;
  }
  /// Claim-order skip accounting (consumer-thread private): each entry is
  /// either a run of live claimed slots awaiting release ({0, n}) or a
  /// run of tombstoned slots the claim cursor skipped ({n, 0}). Invariant:
  /// a dead run is queued only while a live run precedes it unreleased
  /// (otherwise the head advances immediately in AccountTombstones), so
  /// draining releases always retires every queued entry.
  struct Pending {
    std::size_t dead;
    std::size_t live;
  };

  static std::size_t BytesFor(std::size_t min_capacity,
                              std::size_t max_producers) {
    const std::size_t cap =
        std::size_t{1} << util::CeilLog2(min_capacity < 2 ? 2 : min_capacity);
    return ComputeShmLayout(cap, max_producers, sizeof(T), alignof(T))
        .total_bytes;
  }

  /// Create-path delegate: takes the freshly created mapping, constructs
  /// every shared object in place, then flips the header's ready flag.
  ShmRing(util::ShmMapping map, std::size_t min_capacity,
          std::size_t max_producers)
      : map_(std::move(map)),
        mask_((std::size_t{1} << util::CeilLog2(
                   min_capacity < 2 ? 2 : min_capacity)) -
              1) {
    SLICK_CHECK(map_.valid(), "shm segment creation failed");
    SLICK_CHECK(max_producers >= 1, "shm ring needs at least one lease row");
    const ShmLayout l =
        ComputeShmLayout(capacity(), max_producers, sizeof(T), alignof(T));
    SLICK_CHECK(map_.size() >= l.total_bytes, "shm segment undersized");
    auto* base = static_cast<char*>(map_.data());
    auto* hdr = new (base) ShmHeader{};
    new (base + l.control_off) ShmControl{};
    for (std::size_t i = 0; i < max_producers; ++i) {
      new (base + l.lease_off + i * sizeof(ShmLease)) ShmLease{};
    }
    for (std::size_t i = 0; i < capacity(); ++i) {
      // Zero-valued seq words are correct as-is: the sequenced test is
      // the exact equality against pos + 1 (live) or its dead-marked
      // variant. The per-slot words are deliberately dense — padding
      // each to a cache line would multiply the segment footprint 8x;
      // neighbouring-slot sharing is the same trade MpmcRing makes.
      new (base + l.seq_off + i * sizeof(std::atomic<uint64_t>))
          std::atomic<uint64_t>(0);  // slick-lint: allow(atomic-alignas)
    }
    hdr->magic = kShmMagic;
    hdr->version = kShmVersion;
    hdr->capacity = capacity();
    hdr->max_producers = max_producers;
    hdr->slot_size = sizeof(T);
    hdr->slot_align = alignof(T);
    hdr->total_bytes = l.total_bytes;
    hdr->layout_hash =
        ShmLayoutHash(capacity(), max_producers, sizeof(T), alignof(T));
    hdr->header_crc = ShmHeaderCrc(*hdr);
    BindPointers();
    // release: publishes every in-place construction above to attachers
    // acquire-spinning on ready.
    hdr->ready.store(1, std::memory_order_release);
  }

  void BindPointers() {
    auto* base = static_cast<char*>(map_.data());
    hdr_ = reinterpret_cast<ShmHeader*>(base);
    const ShmLayout l = ComputeShmLayout(
        capacity(), static_cast<std::size_t>(hdr_->max_producers), sizeof(T),
        alignof(T));
    ctl_ = reinterpret_cast<ShmControl*>(base + l.control_off);
    leases_ = reinterpret_cast<ShmLease*>(base + l.lease_off);
    seq_ = reinterpret_cast<std::atomic<uint64_t>*>(base + l.seq_off);
    slots_ = reinterpret_cast<T*>(base + l.slot_off);
  }

  /// The one slot-sequencing primitive (class comment): CAS the seq word
  /// from its previous-lap value to `desired`. Exactly one of {producer
  /// publishing pos + 1, repair writing (pos + 1) | kSeqDead} wins each
  /// slot; returns whether WE did.
  SLICK_REALTIME bool SequenceSlot(uint64_t pos, uint64_t desired) {
    const std::size_t idx = static_cast<std::size_t>(pos) & mask_;
    uint64_t expected = pos >= capacity() ? pos + 1 - capacity() : 0;
    // release on success: publishes the slot's contents (or the dead
    // verdict); pairs with the consumer's seq acquire. acquire on
    // failure: see who beat us (for a producer, the failure proves the
    // fence: the repair CAS release-published the epoch bump before it).
    if (seq_[idx].compare_exchange_strong(expected, desired,
                                          std::memory_order_release,
                                          std::memory_order_acquire)) {
      return true;
    }
    // The previous lap may have ended tombstoned: its seq value then
    // carries the dead mark. Retry against that variant once.
    if (pos < capacity() ||
        expected != ((pos + 1 - capacity()) | kSeqDead)) {
      return false;
    }
    return seq_[idx].compare_exchange_strong(expected, desired,
                                             std::memory_order_release,
                                             std::memory_order_acquire);
  }

  SLICK_REALTIME bool PublishSlot(uint64_t pos) {
    return SequenceSlot(pos, pos + 1);
  }

  SLICK_REALTIME bool TombstoneSlot(uint64_t pos) {
    return SequenceSlot(pos, (pos + 1) | kSeqDead);
  }

  SLICK_REALTIME void UpdateHighwater(uint64_t occupancy) {
    // relaxed CAS-max: monotonic gauge, reporting only.
    uint64_t hw = ctl_->highwater.load(std::memory_order_relaxed);
    while (occupancy > hw &&
           !ctl_->highwater.compare_exchange_weak(hw, occupancy,
                                                  std::memory_order_relaxed,
                                                  std::memory_order_relaxed)) {
    }
  }

  /// Claim cursor moved past `skip` tombstoned slots: either advance head
  /// immediately (nothing live awaits release — the common case when the
  /// consumer is caught up) or queue the skip behind the unreleased live
  /// runs so the eventual release folds it in, in claim order.
  SLICK_REALTIME void AccountTombstones(std::size_t skip) {
    if (pending_.empty()) {
      // relaxed/release: same roles as ReleasePop's head advance.
      const uint64_t head = ctl_->head.load(std::memory_order_relaxed);
      ctl_->head.store(head + skip, std::memory_order_release);
      ctl_->head_event.fetch_add(1, std::memory_order_release);
      shm_futex::WakeAll(&ctl_->head_event, &ctl_->head_waiters);
    } else if (pending_.back().live == 0) {
      pending_.back().dead += skip;
    } else {
      pending_.push_back(Pending{skip, 0});
    }
  }

  /// Consumer wake condition: the next slot is published (live OR
  /// tombstoned — either way TryClaimPop makes progress), or shutdown has
  /// settled. Mirrors MpmcRing::PopReadyOrSettled.
  bool PopReadyOrSettled() const {
    // relaxed: effectively the consumer's own cursor.
    const uint64_t claim = ctl_->claim.load(std::memory_order_relaxed);
    // acquire: pairs with the publish/tombstone seq CAS release. The
    // dead mark is progress too (TryClaimPop skips it), so mask it.
    if ((seq_[static_cast<std::size_t>(claim) & mask_].load(
             std::memory_order_acquire) &
         ~kSeqDead) == claim + 1) {
      return true;
    }
    if (ctl_->closed.load(std::memory_order_acquire) == 0) return false;
    return ctl_->tail.load(std::memory_order_acquire) == claim;
  }

  bool PushSpaceOrClosed() const {
    // relaxed tail: only gates a retry; the claim CAS re-validates.
    return static_cast<std::size_t>(
               ctl_->tail.load(std::memory_order_relaxed) -
               ctl_->head.load(std::memory_order_acquire)) < capacity() ||
           ctl_->closed.load(std::memory_order_acquire) != 0;
  }

  SLICK_REALTIME_ALLOW(
      "idle-only parking: spin-then-bounded-futex wait, entered only when "
      "the ring has nothing claimable — never on the per-tuple path")
  void WaitForData() {
    for (int i = 0; i < kSpinYields; ++i) {
      if (PopReadyOrSettled()) return;
      std::this_thread::yield();
    }
    const uint32_t e = ctl_->tail_event.load(std::memory_order_acquire);
    if (PopReadyOrSettled()) return;
    shm_futex::WaitBounded(&ctl_->tail_event, e, &ctl_->tail_waiters);
  }

  SLICK_REALTIME_ALLOW(
      "idle-only parking: spin-then-bounded-futex wait, entered only when "
      "the ring is full — backpressure by design, never on the per-tuple "
      "path")
  void WaitForSpace() {
    for (int i = 0; i < kSpinYields; ++i) {
      if (PushSpaceOrClosed()) return;
      std::this_thread::yield();
    }
    const uint32_t e = ctl_->head_event.load(std::memory_order_acquire);
    if (PushSpaceOrClosed()) return;
    shm_futex::WaitBounded(&ctl_->head_event, e, &ctl_->head_waiters);
  }

  static constexpr int kSpinYields = 4;

  util::ShmMapping map_;
  std::size_t mask_ = 0;
  ShmHeader* hdr_ = nullptr;
  ShmControl* ctl_ = nullptr;
  ShmLease* leases_ = nullptr;
  // Shared-segment atomics are placement-constructed at their layout
  // offsets; these are plain pointers into the mapping, not owners.
  std::atomic<uint64_t>* seq_ = nullptr;  // slick-lint: allow(atomic-alignas)
  T* slots_ = nullptr;
  // Fault-injection lane id (shard index); written once before threads
  // start, read only inside fault::Fire hooks.
  std::size_t fault_lane_ = 0;
  // Consumer-thread-private skip accounting (see Pending). Lives in THIS
  // process, not the segment: only the consumer process pops.
  std::deque<Pending> pending_;
};

/// One lease row as read by the inspector.
struct ShmLeaseInfo {
  std::size_t row = 0;
  uint64_t pid = 0;
  uint64_t epoch = 0;
  uint64_t heartbeat_ns = 0;
  uint64_t span_begin = 0;
  uint64_t span_end = 0;
  uint64_t span_state = 0;
  uint64_t fenced_at_ns = 0;
};

/// Read-only snapshot of a live segment's cursors, telemetry and lease
/// table, taken without knowing the slot type (the header/control/lease
/// offsets are T-independent by layout construction). Maps PROT_READ, so
/// inspection can never corrupt a live ring. The layout hash is NOT
/// checked (the inspector has no T to check against) — magic, version and
/// header CRC are.
struct ShmSegmentInfo {
  bool ok = false;
  std::string error;
  uint64_t capacity = 0;
  uint64_t max_producers = 0;
  uint64_t slot_size = 0;
  uint64_t head = 0;
  uint64_t tail = 0;
  uint64_t claim = 0;
  bool closed = false;
  uint64_t highwater = 0;
  uint64_t leases_reclaimed = 0;
  uint64_t slots_tombstoned = 0;
  uint64_t zombie_fences = 0;
  std::vector<ShmLeaseInfo> leases;
};

inline ShmSegmentInfo InspectShmSegment(const std::string& name) {
  ShmSegmentInfo info;
  util::ShmMapping map = util::ShmMapping::OpenNamed(name, /*read_only=*/true);
  if (!map.valid()) {
    info.error = std::string("cannot open shm segment: ") +
                 std::strerror(map.error());
    return info;
  }
  if (map.size() < sizeof(ShmHeader)) {
    info.error = "segment smaller than a slick header";
    return info;
  }
  const auto* base = static_cast<const char*>(map.data());
  const auto* hdr = reinterpret_cast<const ShmHeader*>(base);
  if (hdr->ready.load(std::memory_order_acquire) == 0) {
    info.error = "segment exists but is not initialized";
    return info;
  }
  if (hdr->magic != kShmMagic) {
    info.error = "bad magic: not a slick shm ring";
    return info;
  }
  if (hdr->version != kShmVersion) {
    info.error = "unsupported segment version";
    return info;
  }
  if (hdr->header_crc != ShmHeaderCrc(*hdr)) {
    info.error = "header CRC mismatch: segment corrupt";
    return info;
  }
  const std::size_t control_off = ShmAlignUp(sizeof(ShmHeader), 64);
  const std::size_t lease_off =
      ShmAlignUp(control_off + sizeof(ShmControl), 64);
  const std::size_t lease_end =
      lease_off + static_cast<std::size_t>(hdr->max_producers) *
                      sizeof(ShmLease);
  if (lease_end > map.size()) {
    info.error = "segment truncated: lease table out of bounds";
    return info;
  }
  const auto* ctl = reinterpret_cast<const ShmControl*>(base + control_off);
  const auto* leases = reinterpret_cast<const ShmLease*>(base + lease_off);
  info.capacity = hdr->capacity;
  info.max_producers = hdr->max_producers;
  info.slot_size = hdr->slot_size;
  // acquire on the cursors so the point-in-time view is internally
  // consistent enough for triage (it is still a racing sample).
  info.head = ctl->head.load(std::memory_order_acquire);
  info.tail = ctl->tail.load(std::memory_order_acquire);
  info.claim = ctl->claim.load(std::memory_order_acquire);
  info.closed = ctl->closed.load(std::memory_order_acquire) != 0;
  // relaxed: read-only diagnostic snapshot of live counters — every value
  // is a racing sample by design, staleness is expected and harmless.
  info.highwater = ctl->highwater.load(std::memory_order_relaxed);
  info.leases_reclaimed =
      ctl->leases_reclaimed.load(std::memory_order_relaxed);
  info.slots_tombstoned =
      ctl->slots_tombstoned.load(std::memory_order_relaxed);
  info.zombie_fences = ctl->zombie_fences.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < hdr->max_producers; ++i) {
    const ShmLease& lease = leases[i];
    ShmLeaseInfo li;
    li.row = i;
    li.pid = lease.pid.load(std::memory_order_acquire);
    // relaxed: same racing-sample contract as the counters above — the
    // printer labels rows best-effort; only pid gets acquire so a freed
    // row's residue is not misattributed to a live holder.
    li.epoch = lease.epoch.load(std::memory_order_relaxed);
    li.heartbeat_ns = lease.heartbeat_ns.load(std::memory_order_relaxed);
    li.span_begin = lease.span_begin.load(std::memory_order_relaxed);
    li.span_end = lease.span_end.load(std::memory_order_relaxed);
    li.span_state = lease.span_state.load(std::memory_order_relaxed);
    li.fenced_at_ns = lease.fenced_at_ns.load(std::memory_order_relaxed);
    info.leases.push_back(li);
  }
  info.ok = true;
  return info;
}

}  // namespace slick::runtime
