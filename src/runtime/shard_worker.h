#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <utility>

#include "ops/counting.h"
#include "runtime/spsc_ring.h"
#include "telemetry/counters.h"
#include "telemetry/histogram.h"
#include "util/check.h"
#include "util/clock.h"
#include "window/aggregator.h"

namespace slick::runtime {

/// One shard of the parallel runtime: a dedicated thread that drains its
/// SPSC ring in batches and drives any FixedWindowAggregator (SlickDeque
/// Inv/Non-Inv, TwoStacks-via-Windowed, DABA-via-Windowed, Naive, ...).
///
/// Synchronization contract with the coordinator:
///  * Only the worker thread touches `aggregator()` while running. After
///    every drained batch the worker release-stores its cumulative count
///    into `processed()`; a coordinator that acquire-loads `processed()`
///    and sees it equal to the number of elements it routed here therefore
///    observes all slides, and — being the only producer — knows the worker
///    cannot slide again until the coordinator itself pushes more. That
///    quiescent read is the runtime's epoch-snapshot edge.
///  * The coordinator's post-snapshot pushes release-publish the ring tail,
///    and the worker acquire-loads it before sliding, so snapshot reads and
///    later slides never race (the edge the TSan CI job machine-checks).
template <window::FixedWindowAggregator Agg>
class ShardWorker {
 public:
  using value_type = typename Agg::value_type;

  ShardWorker(std::size_t window, std::size_t ring_capacity, std::size_t batch)
      : ring_(ring_capacity), batch_(batch < 1 ? 1 : batch), agg_(window) {}

  ~ShardWorker() { Stop(); }

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Spawns the worker thread. Must be called exactly once before pushes.
  void Start() {
    SLICK_CHECK(!thread_.joinable(), "worker already started");
    thread_ = std::thread([this] { Run(); });
  }

  /// Graceful shutdown: closes the ring, lets the worker drain every
  /// element already routed to it, then joins. Idempotent.
  void Stop() {
    ring_.close();
    if (thread_.joinable()) thread_.join();
  }

  SpscRing<value_type>& ring() { return ring_; }

  /// Cumulative number of elements slid into the aggregator
  /// (release-published per batch; pair with an acquire load via this call).
  uint64_t processed() const {
    return processed_.load(std::memory_order_acquire);
  }

  /// The shard's aggregator. Safe for the coordinator to read only at a
  /// quiescent point (processed() == elements routed); see class comment.
  const Agg& aggregator() const { return agg_; }
  Agg& aggregator() { return agg_; }

  /// Always-on flow telemetry. tuples_out/batches are bumped once per
  /// drained batch (relaxed), so the per-element overhead is a fraction of
  /// an atomic add; any thread may read concurrently with relaxed loads.
  const telemetry::ShardCounters& counters() const { return counters_; }
  telemetry::ShardCounters& counters() { return counters_; }

  /// Per-batch drain latency (time to slide one popped batch into the
  /// aggregator), recorded wait-free by the worker; mergeable across shards
  /// into the runtime-wide distribution.
  const telemetry::LatencyHistogram& batch_latency() const {
    return batch_latency_;
  }

  /// Distribution of drained-batch sizes (elements per ClaimPop span) —
  /// shows how much of the configured batch knob the ring actually delivers
  /// under the current load. Same wait-free recording as batch_latency().
  const telemetry::LatencyHistogram& batch_sizes() const {
    return batch_sizes_;
  }

 private:
  /// True when the shard op is the thread-attributed counting wrapper
  /// (ops::ThreadCountingOp): the worker then folds its thread-local ⊕/⊖
  /// tallies into the shard telemetry after every batch, unifying the
  /// paper's Table-1 metric with the runtime's live counters.
  static constexpr bool kCountedOp = requires {
    requires std::is_same_v<typename Agg::op_type::counter_type,
                            ops::ThreadLocalOpCounter>;
  };

  void Run() {
    uint64_t done = 0;
    uint64_t seen_combines = 0, seen_inverses = 0;
    for (;;) {
      // Zero-copy drain: claim a contiguous ring span and feed it straight
      // into the aggregator's batch entry point — no bounce buffer.
      std::size_t n = 0;
      value_type* span = ring_.ClaimPop(batch_, &n);
      if (span == nullptr) break;  // closed and fully drained
      const uint64_t t0 = util::MonotonicNanos();
      window::BulkSlide(agg_, span, n);
      batch_latency_.Record(util::MonotonicNanos() - t0);
      // Release only after the slide: the moment the head cursor moves the
      // router may overwrite the span.
      ring_.ReleasePop(n);
      batch_sizes_.Record(n);
      done += n;
      processed_.store(done, std::memory_order_release);
      counters_.tuples_out.Add(n);
      counters_.batches.Add(1);
      if constexpr (kCountedOp) {
        using Tally = ops::ThreadLocalOpCounter;
        counters_.combines.Add(Tally::combines - seen_combines);
        counters_.inverses.Add(Tally::inverses - seen_inverses);
        seen_combines = Tally::combines;
        seen_inverses = Tally::inverses;
      }
    }
  }

  SpscRing<value_type> ring_;
  const std::size_t batch_;
  Agg agg_;
  alignas(64) std::atomic<uint64_t> processed_{0};
  telemetry::ShardCounters counters_;
  telemetry::LatencyHistogram batch_latency_;
  telemetry::LatencyHistogram batch_sizes_;
  std::thread thread_;
};

}  // namespace slick::runtime

