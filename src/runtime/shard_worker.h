#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>

#include "ops/counting.h"
#include "runtime/fault.h"
#include "runtime/spsc_ring.h"
#include "telemetry/counters.h"
#include "telemetry/histogram.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/serde.h"
#include "window/aggregator.h"
#include "window/ooo_tree.h"

namespace slick::runtime {

/// Lifecycle of a shard worker thread, release-published by the worker at
/// its exit edges and acquire-read by the supervisor (DESIGN.md §12).
enum class WorkerState : uint32_t {
  kRunning = 0,  ///< thread live (or about to be spawned)
  kStopped,      ///< clean exit: ring closed and fully drained
  kKilled,       ///< fail-stop exit mid-drain (injected crash)
};

/// Where an injected worker crash lands relative to the batch being
/// drained — the two sides of the slide, so recovery is exercised both
/// with and without the aggregator having absorbed the doomed batch.
enum class KillPoint : uint32_t {
  kBeforeSlide = 0,  ///< span claimed, aggregator untouched
  kAfterSlide,       ///< aggregator updated, nothing published/released
};

/// One shard of the parallel runtime: a dedicated thread that drains its
/// SPSC ring in batches and drives any FixedWindowAggregator (SlickDeque
/// Inv/Non-Inv, TwoStacks-via-Windowed, DABA-via-Windowed, Naive, ...).
///
/// Synchronization contract with the coordinator:
///  * Only the worker thread touches `aggregator()` while running. After
///    every drained batch the worker release-stores its cumulative count
///    into `processed()`; a coordinator that acquire-loads `processed()`
///    and sees it equal to the number of elements it routed here therefore
///    observes all slides, and — being the only producer — knows the worker
///    cannot slide again until the coordinator itself pushes more. That
///    quiescent read is the runtime's epoch-snapshot edge.
///  * The coordinator's post-snapshot pushes release-publish the ring tail,
///    and the worker acquire-loads it before sliding, so snapshot reads and
///    later slides never race (the edge the TSan CI job machine-checks).
///
/// Fault tolerance (DESIGN.md §12) — active when `checkpoint_interval > 0`:
///  * The worker defers ReleasePop: ring slots stay owned by the consumer
///    until their contents are covered by a CRC32-framed checkpoint of the
///    aggregator (util::SaveStateFramed + the processed count), validated
///    by re-reading the frame before a single slot is released. The
///    unreleased span [head_, tail_) is therefore always a complete replay
///    log for the state since the last durable checkpoint.
///  * A crash (KillWorker test hook, or the SLICK_FAULT_INJECTION kill
///    points) fail-stops the thread mid-drain with state() == kKilled. The
///    supervisor then calls RecoverAndRestart(): join the dead thread,
///    restore the last good checkpoint (or a fresh aggregator when none
///    exists — nothing was released before the first checkpoint), rewind
///    the ring's claim cursor, and respawn. Replaying the unreleased span
///    through the same BulkSlide path makes the recovered state
///    bit-identical to the no-fault run.
///  * A checkpoint that fails validation (torn/corrupt/alloc failure) is
///    discarded and counted; slots stay unreleased and the next batch
///    retries, trading ring backpressure for recoverability.
/// Event-time extension (DESIGN.md §13): when Agg is an
/// OutOfOrderAggregator (window::OooTree), the shard switches modes at
/// compile time — ring slots become window::Timed<value_type> pairs, the
/// drain feeds Agg::BulkInsert (timestamped, any order), and after every
/// batch the worker advances its LOW WATERMARK gauge to the maximum event
/// timestamp drained so far (counters().watermark). The coordinator reads
/// the minimum across shards at quiescent points and drives BulkEvict with
/// it; recovery resets the gauge to the restored tree's newest entry, and
/// the replay re-raises it — so the published watermark never runs ahead
/// of the durable state.
///
/// Ring selection: the second template parameter picks the shard's inbound
/// channel — SpscRing (default; the single router thread feeds the shard)
/// or MpmcRing (N producer threads / the ingest server's event loops feed
/// it directly, no router hop). The worker code is ring-agnostic: both
/// rings share the claim/release/ResetClaims consumer API (pinned by
/// tests/ring_conformance_test.cc), so zero-copy drains and supervised
/// recovery replay are identical either way.
template <typename Agg, template <typename> class Ring = SpscRing>
  requires window::FixedWindowAggregator<Agg> ||
           window::OutOfOrderAggregator<Agg>
class ShardWorker {
 public:
  using value_type = typename Agg::value_type;

  /// True when the shard runs in event-time mode (timestamped slots,
  /// out-of-order tree, watermark tracking).
  static constexpr bool kEventTime = window::OutOfOrderAggregator<Agg>;

  /// What one ring slot carries: a bare partial in count-based mode, a
  /// (timestamp, partial) pair in event-time mode.
  using slot_type =
      std::conditional_t<kEventTime, window::Timed<value_type>, value_type>;

  /// True when the aggregator supports SaveState/LoadState — required for
  /// supervised mode (checkpoint_interval > 0).
  static constexpr bool kCheckpointable = util::Checkpointable<Agg>;

  ShardWorker(std::size_t window, std::size_t ring_capacity, std::size_t batch,
              std::size_t checkpoint_interval = 0, std::size_t shard_index = 0)
      : ring_(ring_capacity),
        batch_(batch < 1 ? 1 : batch),
        checkpoint_interval_(checkpoint_interval),
        shard_index_(shard_index),
        window_(window),
        agg_(window) {
    SLICK_CHECK(checkpoint_interval == 0 || kCheckpointable,
                "checkpoint_interval > 0 needs SaveState/LoadState support");
    // A checkpoint (and its ReleasePop) must be reachable before the ring
    // can fill with unreleased slots, or producer and consumer deadlock.
    SLICK_CHECK(checkpoint_interval <= ring_.capacity() / 2,
                "checkpoint_interval must be at most half the ring capacity");
    ring_.set_fault_lane(shard_index);
  }

  ~ShardWorker() { Stop(); }

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Spawns the worker thread. Must be called exactly once before pushes.
  void Start() {
    SLICK_CHECK(!thread_.joinable(), "worker already started");
    state_.store(static_cast<uint32_t>(WorkerState::kRunning),
                 std::memory_order_release);
    thread_ = std::thread([this] { Run(); });
  }

  /// Graceful shutdown: closes the ring, lets the worker drain every
  /// element already routed to it, then joins. Idempotent. (A worker that
  /// is already dead joins immediately; its unprocessed backlog stays in
  /// the ring — the supervised engine drains via recovery before closing.)
  void Stop() {
    ring_.close();
    if (thread_.joinable()) thread_.join();
  }

  Ring<slot_type>& ring() { return ring_; }

  /// Cumulative number of elements slid into the aggregator
  /// (release-published per batch; pair with an acquire load via this call).
  uint64_t processed() const {
    return processed_.load(std::memory_order_acquire);
  }

  /// Worker lifecycle, for the supervisor (acquire pairs with the worker's
  /// release store at its exit edges).
  WorkerState state() const {
    return static_cast<WorkerState>(state_.load(std::memory_order_acquire));
  }

  /// Nanosecond timestamp of the worker's last drain-loop iteration — the
  /// supervisor's stall detector input. 0 until the thread first runs.
  uint64_t heartbeat_ns() const { return heartbeat_.Get(); }

  /// Arms a deterministic fail-stop: the worker dies at `point` while
  /// draining its `nth_batch`-th claimed batch (1-based, cumulative across
  /// restarts). Always compiled — this is the recovery tests' crash switch;
  /// the SLICK_FAULT_INJECTION build adds seeded schedule variants on top.
  /// One shot: the trigger disarms when it fires.
  void KillWorker(KillPoint point, uint64_t nth_batch) {
    SLICK_CHECK(nth_batch >= 1, "kill batch ordinal is 1-based");
    auto& trigger =
        point == KillPoint::kBeforeSlide ? kill_before_ : kill_after_;
    // relaxed: a kill request is advisory — the worker's relaxed poll sees
    // it on its next batch; no payload rides on this store.
    trigger.store(nth_batch, std::memory_order_relaxed);
  }

  /// Restores the shard after a fail-stop and respawns the thread. Must be
  /// called with state() == kKilled, from the supervising thread only; the
  /// join/spawn pair orders every access to worker-owned state. Returns the
  /// number of elements slid twice: published since the restored checkpoint
  /// and about to be re-slid from the ring. A batch slid but not yet
  /// *published* at death is also re-slid but not counted — from out here it
  /// is indistinguishable from one never slid, so `replayed` is a lower
  /// bound, tight to within one batch.
  uint64_t RecoverAndRestart() {
    SLICK_CHECK(state() == WorkerState::kKilled,
                "RecoverAndRestart on a live worker");
    SLICK_CHECK(thread_.joinable(), "killed worker has no thread");
    thread_.join();
    uint64_t replayed = 0;
    if constexpr (kCheckpointable) {
      // relaxed: the join above ordered every store the dead thread made.
      const uint64_t observed = processed_.load(std::memory_order_relaxed);
      uint64_t restored = 0;
      if (!last_good_.empty()) {
        std::istringstream frame(last_good_);
        restored = RestoreCheckpoint(&frame);
      } else {
        // No checkpoint yet => nothing was ever released: replaying the
        // whole ring from a fresh aggregator reproduces the run exactly.
        agg_ = Agg(window_);
      }
      SLICK_CHECK(observed >= restored,
                  "checkpoint is ahead of the published processed count");
      replayed = observed - restored;
      if constexpr (kEventTime) {
        // Rewind the watermark to what the durable state actually covers;
        // the ring replay re-raises it. (The restored tree's newest entry
        // is a lower bound when bulk eviction removed the true maximum —
        // conservative is the safe direction for a low watermark.)
        counters_.watermark.Set(agg_.empty() ? 0 : agg_.newest());
      }
      ring_.ResetClaims();
      last_ckpt_processed_ = restored;
      resume_processed_ = restored;
      processed_.store(restored, std::memory_order_release);
      counters_.tuples_out.Set(restored);
      counters_.replayed.Add(replayed);
      counters_.restarts.Add(1);
    } else {
      SLICK_CHECK(false, "recovery requires a checkpointable aggregator");
    }
    state_.store(static_cast<uint32_t>(WorkerState::kRunning),
                 std::memory_order_release);
    thread_ = std::thread([this] { Run(); });
    return replayed;
  }

  /// Event-time mode: installs the eviction-floor probe the drain loop
  /// polls once per batch, bulk-evicting its own tree below the returned
  /// floor. The probe runs on the WORKER thread and must be safe to call
  /// concurrently with every shard (the engine's probe reads relaxed
  /// watermark gauges only). It must return a floor that can never exceed
  /// a future quiescent query's eviction point — the engine derives it
  /// from the raw minimum watermark across ALL shards, which lower-bounds
  /// GlobalWatermark() (a conservative 0 until every shard has drained
  /// something). Install before Start(); never re-install.
  void SetEvictionFloorProbe(std::function<uint64_t()> probe)
    requires kEventTime
  {
    SLICK_CHECK(!thread_.joinable(),
                "eviction-floor probe must be installed before Start()");
    evict_floor_probe_ = std::move(probe);
  }

  /// The shard's aggregator. Safe for the coordinator to read only at a
  /// quiescent point (processed() == elements routed); see class comment.
  const Agg& aggregator() const { return agg_; }
  Agg& aggregator() { return agg_; }

  /// Always-on flow telemetry. tuples_out/batches are bumped once per
  /// drained batch (relaxed), so the per-element overhead is a fraction of
  /// an atomic add; any thread may read concurrently with relaxed loads.
  const telemetry::ShardCounters& counters() const { return counters_; }
  telemetry::ShardCounters& counters() { return counters_; }

  /// Per-batch drain latency (time to slide one popped batch into the
  /// aggregator), recorded wait-free by the worker; mergeable across shards
  /// into the runtime-wide distribution.
  const telemetry::LatencyHistogram& batch_latency() const {
    return batch_latency_;
  }

  /// Distribution of drained-batch sizes (elements per ClaimPop span) —
  /// shows how much of the configured batch knob the ring actually delivers
  /// under the current load. Same wait-free recording as batch_latency().
  const telemetry::LatencyHistogram& batch_sizes() const {
    return batch_sizes_;
  }

 private:
  /// True when the shard op is the thread-attributed counting wrapper
  /// (ops::ThreadCountingOp): the worker then folds its thread-local ⊕/⊖
  /// tallies into the shard telemetry after every batch, unifying the
  /// paper's Table-1 metric with the runtime's live counters.
  static constexpr bool kCountedOp = requires {
    requires std::is_same_v<typename Agg::op_type::counter_type,
                            ops::ThreadLocalOpCounter>;
  };

  bool Supervised() const { return checkpoint_interval_ > 0; }

  /// One relaxed load per batch: did a kill trigger fire for this batch
  /// ordinal (or a seeded fault-injection kill for this point)?
  bool ShouldDie(std::atomic<uint64_t>& trigger, uint64_t batch_ordinal,
                 fault::Point point) {
    // relaxed: the trigger carries no payload; a stale read only delays
    // the injected crash by one batch, which no invariant depends on.
    const uint64_t t = trigger.load(std::memory_order_relaxed);
    if (t != 0 && batch_ordinal >= t) {
      // relaxed: one-shot disarm, same reasoning as the load above.
      trigger.store(0, std::memory_order_relaxed);
      return true;
    }
    return fault::Fire(point, shard_index_);
  }

  SLICK_REALTIME void Run() {
    uint64_t done = resume_processed_;
    std::size_t pending_release = 0;
    uint64_t seen_combines = 0, seen_inverses = 0;
    if constexpr (kCountedOp) {
      // The thread-local tallies are per OS thread: a respawned worker
      // starts from this thread's base line, not zero.
      seen_combines = ops::ThreadLocalOpCounter::combines;
      seen_inverses = ops::ThreadLocalOpCounter::inverses;
    }
    for (;;) {
      heartbeat_.Set(util::MonotonicNanos());
      // Retry a due-but-failed checkpoint before a claim that might park:
      // a transient failure (alloc, corruption) must not strand the
      // unreleased span until the next batch happens to arrive.
      if (Supervised() && pending_release > 0 &&
          done - last_ckpt_processed_ >= checkpoint_interval_) {
        if (TakeCheckpoint(done)) {
          ring_.ReleasePop(pending_release);
          pending_release = 0;
        }
      }
      // Zero-copy drain: claim a contiguous ring span and feed it straight
      // into the aggregator's batch entry point — no bounce buffer. An
      // empty poll is counted as an idle poll instead of polluting the
      // batch-size distribution with zero-length entries (ingest benches
      // spend most polls idle at low producer counts).
      std::size_t n = 0;
      slot_type* span = ring_.TryClaimPop(batch_, &n);
      if (span == nullptr) {
        counters_.idle_polls.Add(1);
        span = ring_.ClaimPop(batch_, &n);
        if (span == nullptr) break;  // closed and fully drained
      }
      ++batches_drained_;
      if (ShouldDie(kill_before_, batches_drained_,
                    fault::Point::kWorkerKillBeforeSlide)) {
        Die();
        return;
      }
      const uint64_t t0 = util::MonotonicNanos();
      if constexpr (kEventTime) {
        agg_.BulkInsert(span, n);
        // Advance the shard low watermark: the max event ts drained so
        // far. Published AFTER the insert (relaxed gauge, but ordered for
        // the coordinator by the processed() release below), so a
        // watermark the coordinator trusts always covers inserted data.
        uint64_t wm = counters_.watermark.Get();
        for (std::size_t k = 0; k < n; ++k) {
          if (span[k].t > wm) wm = span[k].t;
        }
        counters_.watermark.Set(wm);
        // Lazy watermark-driven eviction: expire this shard's dead prefix
        // HERE, in parallel across workers, so the coordinator's serial
        // BulkEvict at query time finds an already-trimmed tree. The probe
        // floor is conservative (<= any future quiescent query's eviction
        // point), so this only ever removes entries the next query would
        // discard anyway — tree content at a quiescent point stays a pure
        // function of the routed stream, which is what keeps supervised
        // recovery bit-identical.
        if (evict_floor_probe_) {
          const uint64_t floor = evict_floor_probe_();
          if (floor > 0) agg_.BulkEvict(floor);
        }
      } else {
        window::BulkSlide(agg_, span, n);
      }
      batch_latency_.Record(util::MonotonicNanos() - t0);
      if (ShouldDie(kill_after_, batches_drained_,
                    fault::Point::kWorkerKillAfterSlide)) {
        Die();
        return;
      }
      done += n;
      if (Supervised()) {
        // Slots stay claimed until a validated checkpoint covers them; the
        // unreleased span is the crash-replay log. The capacity backstop
        // forces a checkpoint attempt before the ring can wedge on
        // unreleased slots alone.
        pending_release += n;
        if (done - last_ckpt_processed_ >= checkpoint_interval_ ||
            pending_release + batch_ >= ring_.capacity()) {
          if (TakeCheckpoint(done)) {
            ring_.ReleasePop(pending_release);
            pending_release = 0;
          }
        }
      } else {
        // Release only after the slide: the moment the head cursor moves
        // the router may overwrite the span.
        ring_.ReleasePop(n);
      }
      batch_sizes_.Record(n);
      processed_.store(done, std::memory_order_release);
      counters_.tuples_out.Add(n);
      counters_.batches.Add(1);
      if constexpr (kCountedOp) {
        using Tally = ops::ThreadLocalOpCounter;
        counters_.combines.Add(Tally::combines - seen_combines);
        counters_.inverses.Add(Tally::inverses - seen_inverses);
        seen_combines = Tally::combines;
        seen_inverses = Tally::inverses;
      }
    }
    // Clean close: everything drained is final — hand the replay log back.
    if (pending_release > 0) ring_.ReleasePop(pending_release);
    state_.store(static_cast<uint32_t>(WorkerState::kStopped),
                 std::memory_order_release);
  }

  /// Fail-stop: abandon the claimed span, publish nothing, flag the
  /// supervisor. Simulates a worker crash at an arbitrary drain point.
  void Die() {
    state_.store(static_cast<uint32_t>(WorkerState::kKilled),
                 std::memory_order_release);
  }

  /// Serializes {tag, processed, aggregator} into a CRC32 frame, validates
  /// it by re-reading, and commits it as the durable checkpoint. Returns
  /// false (counting a failure, releasing nothing) when serialization or
  /// validation fails — including the injected alloc-fail and corruption
  /// faults, which land exactly like real torn writes.
  SLICK_REALTIME_ALLOW(
      "checkpoint cadence: serializes aggregator state into a CRC-"
      "framed buffer once per checkpoint_interval_ batches — amortized "
      "far off the per-tuple path, and only in supervised mode")
  bool TakeCheckpoint(uint64_t done) {
    if constexpr (kCheckpointable) {
      if (fault::Fire(fault::Point::kCheckpointAllocFail, shard_index_)) {
        counters_.checkpoint_failures.Add(1);
        return false;
      }
      std::ostringstream payload;
      util::WriteTag(payload, kCheckpointTag, 1);
      util::WritePod<uint64_t>(payload, done);
      agg_.SaveState(payload);
      std::ostringstream framed;
      util::WriteFramed(framed, payload.str());
      std::string frame = framed.str();
      if (fault::Fire(fault::Point::kCheckpointCorrupt, shard_index_)) {
        fault::CorruptOneBit(&frame);
      }
      // Validate before commit: a checkpoint that cannot be restored must
      // never unlock the release of its covered ring slots.
      std::istringstream reread(frame);
      std::string verified;
      if (util::ReadFramed(reread, &verified) != util::FrameError::kOk) {
        counters_.checkpoint_failures.Add(1);
        return false;
      }
      last_good_ = std::move(frame);
      last_ckpt_processed_ = done;
      counters_.checkpoints.Add(1);
      return true;
    } else {
      SLICK_CHECK(false, "checkpoint on a non-checkpointable aggregator");
      return false;
    }
  }

  /// Restores agg_ + the processed count from a validated frame. The frame
  /// was CRC-checked at write time, so any failure here is a logic bug, not
  /// bit rot — hence hard SLICK_CHECKs rather than soft errors.
  uint64_t RestoreCheckpoint(std::istream* frame) {
    if constexpr (kCheckpointable) {
      std::string payload;
      SLICK_CHECK(util::ReadFramed(*frame, &payload) == util::FrameError::kOk,
                  "stored checkpoint frame failed validation");
      std::istringstream body(payload);
      SLICK_CHECK(util::ExpectTag(body, kCheckpointTag, 1),
                  "stored checkpoint has a foreign tag");
      uint64_t done = 0;
      SLICK_CHECK(util::ReadPod(body, &done),
                  "stored checkpoint truncated before the processed count");
      SLICK_CHECK(agg_.LoadState(body),
                  "stored checkpoint rejected by the aggregator");
      return done;
    } else {
      SLICK_CHECK(false, "restore on a non-checkpointable aggregator");
      return 0;
    }
  }

  static constexpr uint32_t kCheckpointTag =
      util::MakeTag('S', 'C', 'K', 'P');

  Ring<slot_type> ring_;
  const std::size_t batch_;
  const std::size_t checkpoint_interval_;  // tuples per checkpoint; 0 = off
  const std::size_t shard_index_;          // fault-injection lane
  const std::size_t window_;               // for fresh-aggregator recovery
  Agg agg_;
  alignas(64) std::atomic<uint64_t> processed_{0};
  // Cold supervisor-facing control words; they share processed_'s padding
  // region rather than burning a cache line each (all are written at most
  // once per batch / per crash). slick-lint: allow(atomic-alignas)
  alignas(64) std::atomic<uint32_t> state_{
      static_cast<uint32_t>(WorkerState::kRunning)};
  // slick-lint: allow(atomic-alignas)
  std::atomic<uint64_t> kill_before_{0};  // batch ordinal to die at; 0 = off
  // slick-lint: allow(atomic-alignas)
  std::atomic<uint64_t> kill_after_{0};
  // Worker-thread-owned recovery bookkeeping. Accessed by the supervisor
  // only between join and respawn (ordered by the thread lifecycle).
  uint64_t batches_drained_ = 0;      // cumulative across restarts
  // Event-time only: polled once per drained batch (worker thread). Set
  // before Start(), immutable afterwards — no synchronization needed.
  std::function<uint64_t()> evict_floor_probe_;
  uint64_t last_ckpt_processed_ = 0;  // processed count in last_good_
  uint64_t resume_processed_ = 0;     // where a respawned Run() resumes
  std::string last_good_;             // last validated checkpoint frame
  telemetry::Gauge heartbeat_;
  telemetry::ShardCounters counters_;
  telemetry::LatencyHistogram batch_latency_;
  telemetry::LatencyHistogram batch_sizes_;
  std::thread thread_;
};

}  // namespace slick::runtime
