#ifndef SLICKDEQUE_RUNTIME_SHARD_WORKER_H_
#define SLICKDEQUE_RUNTIME_SHARD_WORKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/spsc_ring.h"
#include "util/check.h"
#include "window/aggregator.h"

namespace slick::runtime {

/// One shard of the parallel runtime: a dedicated thread that drains its
/// SPSC ring in batches and drives any FixedWindowAggregator (SlickDeque
/// Inv/Non-Inv, TwoStacks-via-Windowed, DABA-via-Windowed, Naive, ...).
///
/// Synchronization contract with the coordinator:
///  * Only the worker thread touches `aggregator()` while running. After
///    every drained batch the worker release-stores its cumulative count
///    into `processed()`; a coordinator that acquire-loads `processed()`
///    and sees it equal to the number of elements it routed here therefore
///    observes all slides, and — being the only producer — knows the worker
///    cannot slide again until the coordinator itself pushes more. That
///    quiescent read is the runtime's epoch-snapshot edge.
///  * The coordinator's post-snapshot pushes release-publish the ring tail,
///    and the worker acquire-loads it before sliding, so snapshot reads and
///    later slides never race (the edge the TSan CI job machine-checks).
template <window::FixedWindowAggregator Agg>
class ShardWorker {
 public:
  using value_type = typename Agg::value_type;

  ShardWorker(std::size_t window, std::size_t ring_capacity, std::size_t batch)
      : ring_(ring_capacity), batch_(batch < 1 ? 1 : batch), agg_(window) {}

  ~ShardWorker() { Stop(); }

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Spawns the worker thread. Must be called exactly once before pushes.
  void Start() {
    SLICK_CHECK(!thread_.joinable(), "worker already started");
    thread_ = std::thread([this] { Run(); });
  }

  /// Graceful shutdown: closes the ring, lets the worker drain every
  /// element already routed to it, then joins. Idempotent.
  void Stop() {
    ring_.close();
    if (thread_.joinable()) thread_.join();
  }

  SpscRing<value_type>& ring() { return ring_; }

  /// Cumulative number of elements slid into the aggregator
  /// (release-published per batch; pair with an acquire load via this call).
  uint64_t processed() const {
    return processed_.load(std::memory_order_acquire);
  }

  /// The shard's aggregator. Safe for the coordinator to read only at a
  /// quiescent point (processed() == elements routed); see class comment.
  const Agg& aggregator() const { return agg_; }
  Agg& aggregator() { return agg_; }

 private:
  void Run() {
    std::vector<value_type> buf(batch_);
    uint64_t done = 0;
    for (;;) {
      const std::size_t n = ring_.pop_n(buf.data(), batch_);
      if (n == 0) break;  // closed and fully drained
      for (std::size_t i = 0; i < n; ++i) agg_.slide(std::move(buf[i]));
      done += n;
      processed_.store(done, std::memory_order_release);
    }
  }

  SpscRing<value_type> ring_;
  const std::size_t batch_;
  Agg agg_;
  alignas(64) std::atomic<uint64_t> processed_{0};
  std::thread thread_;
};

}  // namespace slick::runtime

#endif  // SLICKDEQUE_RUNTIME_SHARD_WORKER_H_
