#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "ops/traits.h"
#include "runtime/mpmc_ring.h"
#include "runtime/shard_worker.h"
#include "runtime/spsc_ring.h"
#include "telemetry/counters.h"
#include "telemetry/snapshot.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/clock.h"
#include "window/aggregator.h"

namespace slick::runtime {

/// What the router does when a shard's ring is full (bounded by design —
/// backpressure is never an unbounded queue). Policy matrix in DESIGN.md
/// §12.4.
enum class Backpressure {
  kBlock,       ///< Park the router until the worker frees space (lossless).
  kDropNewest,  ///< Shed the incoming element and count it (load shedding;
                ///< answers then cover only the admitted prefix per shard).
  kBlockWithDeadline,  ///< Block up to Options::deadline_ns, then shed the
                       ///< batch and count a deadline expiry (bounded-latency
                       ///< ingest).
  kShedOldest,  ///< Never block: shed the *oldest* unadmitted element to
                ///< make progress, keeping the newest data (freshness over
                ///< completeness).
  kError,       ///< Treat ring-full as a configuration bug: SLICK_CHECK
                ///< aborts (for pipelines sized to never be overrun).
};

inline const char* BackpressureName(Backpressure b) {
  switch (b) {
    case Backpressure::kBlock: return "block";
    case Backpressure::kDropNewest: return "drop-newest";
    case Backpressure::kBlockWithDeadline: return "block-with-deadline";
    case Backpressure::kShedOldest: return "shed-oldest";
    case Backpressure::kError: return "error";
  }
  return "unknown";
}

/// Genuinely multi-threaded sharded window aggregation — the runtime the
/// paper's §6 leaves as future work ("evaluate SlickDeque in multi-core /
/// multi-node environments"). The calling thread routes the stream
/// round-robin across N shard rings; each shard is a ShardWorker thread
/// driving its own FixedWindowAggregator over a window of W/N partials.
///
/// Exactness — same argument as engine::RoundRobinSharded: with a global
/// window of W = k·N tuples, the last W admitted tuples are exactly the
/// last k tuples of every shard whenever the total admitted count is a
/// multiple of N (a *slide barrier*), so for a commutative ⊕ the N-way
/// combine of local answers equals the single-node answer. Per-shard order
/// is preserved end-to-end (SPSC rings are FIFO), which is all the combine
/// needs. Non-commutative ops (ArgMax's earlier-tie rule, Concat) are
/// admitted at shards == 1 only, where no combine reorders anything — the
/// constructor enforces this at runtime.
///
/// Epoch snapshot — how query() gets a consistent cut without pausing
/// ingest structurally: the router flushes its staging buffers, fixing the
/// epoch at "everything admitted so far" (per-shard targets pushed_[i]);
/// it then waits until every worker's release-published processed counter
/// reaches its target. At that point each ring is drained, every slide is
/// visible (acquire/release edge, see ShardWorker), and no worker can touch
/// its aggregator again until this same thread routes more data — so the
/// coordinator reads the N local answers race-free and folds them. Workers
/// park on their rings' eventcounts meanwhile; they are never busy-polled.
///
/// Supervision (DESIGN.md §12) — when Options::checkpoint_interval > 0 the
/// engine is *supervised*: workers checkpoint their aggregators into
/// CRC32-framed buffers every `checkpoint_interval` processed tuples and
/// defer ring releases until a checkpoint validates, so the unreleased ring
/// span is always a complete replay log. The router doubles as supervisor:
/// wherever it would otherwise park (flush on a full ring, AwaitEpoch) it
/// polls Supervise(), which detects fail-stopped workers (state() ==
/// kKilled), restores them from their last checkpoint, rewinds the ring's
/// claim cursor, and respawns the thread — the replay makes recovered
/// answers bit-identical to a no-fault run. Stalled-but-live workers (a
/// heartbeat older than Options::stall_ns with backlog waiting) cannot be
/// safely restarted (the thread still owns the aggregator), so they are
/// detected and counted, never killed.
///
/// Warm-up — identical semantics to RoundRobinSharded: query() requires
/// ready(), i.e. every shard's window is full. Folding before warm-up would
/// combine ⊕-identity sentinels (±inf, NaN) into selective-op answers, and
/// SlickDeque (Non-Inv) shards would assert on an empty deque.
///
/// Shutdown — the destructor (or stop()) closes every ring; workers drain
/// what was already routed, publish their final counts, and join. No
/// element that push() admitted is ever lost.
/// Event-time extension (DESIGN.md §13): instantiating the engine over an
/// OutOfOrderAggregator (window::OooTree) switches it into EVENT-TIME mode
/// at compile time. `global_window` is then a TIME RANGE, not a tuple
/// count; push(ts, v) routes timestamped tuples (any order) round-robin,
/// ring slots carry window::Timed pairs, and each worker advances a
/// per-shard low-watermark gauge as it drains. query() answers the window
/// (wm − range, wm] where wm is the GLOBAL watermark — the minimum shard
/// watermark at the quiescent cut — and drives watermark-driven BulkEvict
/// on every shard tree while it is parked. Per-shard answers combine by ⊕
/// (commutative ops for shards > 1, as in count mode: round-robin striping
/// interleaves the sub-streams). There is no warm-up gate: an event-time
/// window is conceptually always defined, empty ranges answer ⊕'s
/// identity. Supervision/recovery works unchanged — the tree checkpoints
/// through the same framed serde, and a recovered shard's watermark is
/// rewound to its restored tree and re-raised by the replay.
///
/// MPMC ingress extension (DESIGN.md §14): instantiating the engine with
/// Ring = MpmcRing turns each shard ring multi-producer. The routing
/// thread's API is unchanged, but MakeProducer() additionally hands out
/// Producer handles — each with its own staging buffers and round-robin
/// cursor — that N threads (or the ingest server's event loops) drive
/// concurrently, feeding shard rings directly with no router hop. Admission
/// accounting (pushed_/dropped_) is per-shard relaxed atomics so producer
/// handles and the router compose. The quiescence contract extends
/// naturally: flush/destroy every Producer (and join its thread) BEFORE
/// query()/stop() — the epoch snapshot still reads "everything admitted so
/// far", it just requires the admission edge to be quiesced by the caller.
/// Under supervision, blocking producers park on ring eventcounts, so some
/// thread must keep polling SupervisePoll() (query()/AwaitEpoch do) to
/// recover a dead worker they are parked on.
template <typename Agg, template <typename> class Ring = SpscRing>
  requires window::FixedWindowAggregator<Agg> ||
           window::OutOfOrderAggregator<Agg>
class ParallelShardedEngine {
 public:
  using op_type = typename Agg::op_type;
  using value_type = typename Agg::value_type;
  using result_type = typename Agg::result_type;
  using Worker = ShardWorker<Agg, Ring>;

  /// True when the engine runs in event-time mode (see class comment).
  static constexpr bool kEventTime = Worker::kEventTime;

  /// True when shard rings admit concurrent producers (Producer handles).
  static constexpr bool kMultiProducer = Ring<int>::kMultiProducer;

  /// What one ring/staging slot carries (Timed pairs in event-time mode).
  using slot_type = typename Worker::slot_type;

  struct Options {
    std::size_t ring_capacity = 1 << 12;  ///< Per-shard ring slots (bounded).
    std::size_t batch = 256;              ///< Router/worker batch size.
    Backpressure backpressure = Backpressure::kBlock;
    /// Tuples a shard processes between checkpoints; 0 disables
    /// supervision (the PR 4 fast path: per-batch releases, futex parking).
    std::size_t checkpoint_interval = 0;
    /// kBlockWithDeadline: how long a flush may wait on a full ring.
    uint64_t deadline_ns = 5'000'000;
    /// Supervisor stall detector: a live worker whose heartbeat is older
    /// than this while backlog waits is counted as stalled.
    uint64_t stall_ns = 500'000'000;
    /// Shm producer lease TTL (DESIGN.md §17): a lease whose holder pid is
    /// gone, or whose heartbeat is older than this, is fenced and its
    /// abandoned claim repaired by the supervisor-polled reaper. 0
    /// disables reaping. Meaningful only when the ring type is shm-backed
    /// (exposes ReapExpiredLeases); ignored otherwise.
    uint64_t lease_ns = 500'000'000;
  };

  struct Stats {
    uint64_t admitted = 0;   ///< Elements accepted into shard rings.
    uint64_t dropped = 0;    ///< Elements shed by the backpressure policy.
    uint64_t processed = 0;  ///< Elements slid into shard aggregators.
    uint64_t restarts = 0;   ///< Worker fail-stops recovered.
  };

  /// `global_window` must be a multiple of `shards`. Worker threads start
  /// immediately.
  ParallelShardedEngine(std::size_t global_window, std::size_t shards,
                        Options options = {})
      : global_window_(global_window), options_(options) {
    SLICK_CHECK(shards >= 1, "need at least one shard");
    if constexpr (kEventTime) {
      // `global_window` is a time range; every shard sees the full range
      // over its own sub-stream, so no divisibility constraint applies.
      SLICK_CHECK(global_window >= 1, "time range must be >= 1");
    } else {
      SLICK_CHECK(global_window % shards == 0,
                  "global window must be a multiple of the shard count");
      SLICK_CHECK(global_window / shards >= 1,
                  "shard windows must be nonempty");
    }
    SLICK_CHECK(shards == 1 || op_type::kCommutative,
                "multi-shard aggregation needs a commutative op "
                "(the N-way combine reorders shard answers)");
    SLICK_CHECK(options_.checkpoint_interval == 0 || Worker::kCheckpointable,
                "supervision (checkpoint_interval > 0) needs an aggregator "
                "with SaveState/LoadState");
    const std::size_t batch = options_.batch < 1 ? 1 : options_.batch;
    workers_.reserve(shards);
    staging_.resize(shards);
    admit_ = std::make_unique<AdmitCounters[]>(shards);
    stall_latched_.assign(shards, 0);
    const std::size_t shard_window =
        kEventTime ? global_window : global_window / shards;
    for (std::size_t i = 0; i < shards; ++i) {
      workers_.push_back(std::make_unique<Worker>(
          shard_window, options_.ring_capacity, batch,
          options_.checkpoint_interval, i));
      staging_[i].reserve(batch);
    }
    if constexpr (kEventTime) {
      // Worker-side lazy eviction (DESIGN.md §13): each worker polls this
      // probe once per drained batch and BulkEvicts its own tree below the
      // returned floor, spreading eviction work across shard threads as
      // the stream runs instead of serializing all of it on the
      // coordinator at query time. The floor uses the RAW minimum over
      // every shard's watermark gauge — no pushed_[] filter, since
      // pushed_ is coordinator-owned — so a shard that has not drained
      // yet pins the floor at 0 (no eviction). That raw minimum can only
      // lag GlobalWatermark(), hence floor <= the quiescent query's `lo`
      // and lazy eviction only ever removes entries the query's own
      // BulkEvict(lo) would discard.
      for (auto& w : workers_) {
        w->SetEvictionFloorProbe([this] {
          uint64_t wm = std::numeric_limits<uint64_t>::max();
          for (const auto& peer : workers_) {
            wm = std::min(wm, peer->counters().watermark.Get());
          }
          return wm >= global_window_ ? wm - global_window_ + 1 : 0;
        });
      }
    }
    for (auto& w : workers_) w->Start();
  }

  ~ParallelShardedEngine() { stop(); }

  ParallelShardedEngine(const ParallelShardedEngine&) = delete;
  ParallelShardedEngine& operator=(const ParallelShardedEngine&) = delete;

  /// Routes the newest element to its shard (round-robin, matching
  /// RoundRobinSharded::slide). Elements are staged per shard and handed to
  /// the ring a batch at a time; call flush() (or query()) to force out a
  /// partial batch. Single-threaded producer: call from one thread only.
  void push(value_type v)
    requires(!kEventTime)
  {
    SLICK_CHECK(!stopped_, "push after stop()");
    std::vector<slot_type>& stage = staging_[next_];
    stage.push_back(std::move(v));
    if (stage.size() >= BatchSize()) FlushShard(next_);
    next_ = next_ + 1 == workers_.size() ? 0 : next_ + 1;
  }

  /// Event-time mode: routes one tuple observed at event time `ts` — in
  /// any order — to its round-robin shard.
  void push(uint64_t ts, value_type v)
    requires kEventTime
  {
    SLICK_CHECK(!stopped_, "push after stop()");
    RouteMaxTs(ts);
    std::vector<slot_type>& stage = staging_[next_];
    stage.push_back(slot_type{ts, std::move(v)});
    if (stage.size() >= BatchSize()) FlushShard(next_);
    next_ = next_ + 1 == workers_.size() ? 0 : next_ + 1;
  }

  /// Routes a contiguous batch.
  void push_n(const value_type* src, std::size_t n)
    requires(!kEventTime)
  {
    for (std::size_t i = 0; i < n; ++i) push(src[i]);
  }

  /// Event-time mode: routes a contiguous batch of timestamped tuples.
  void push_n(const slot_type* src, std::size_t n)
    requires kEventTime
  {
    for (std::size_t i = 0; i < n; ++i) push(src[i].t, src[i].v);
  }

  /// Forces every staged element into its shard ring (blocking or shedding
  /// per the backpressure policy).
  void flush() {
    for (std::size_t i = 0; i < workers_.size(); ++i) FlushShard(i);
  }

  /// Concurrent producer handle (MPMC rings only). Each Producer owns its
  /// own per-shard staging buffers and round-robin cursor, so N handles on
  /// N threads feed the shard rings directly — no router hop, no shared
  /// mutable router state. Admission runs the same backpressure policies as
  /// the router (DirectFlushShard); tallies land in the per-shard atomic
  /// AdmitCounters, so producer pushes and router pushes compose.
  ///
  /// Contract: a Producer must be flushed (flush(), or just destroyed) and
  /// its thread joined BEFORE the engine's query()/stop() — the epoch
  /// snapshot reads "everything admitted so far" and needs the admission
  /// edge quiesced. On a supervised engine a blocking producer can park on
  /// a dead worker's ring; the coordinating thread must keep calling
  /// SupervisePoll() to recover it (query()/stop() do so while waiting).
  class Producer {
   public:
    Producer(Producer&& other) noexcept
        : engine_(std::exchange(other.engine_, nullptr)),
          staging_(std::move(other.staging_)),
          next_(other.next_) {}
    Producer(const Producer&) = delete;
    Producer& operator=(const Producer&) = delete;
    Producer& operator=(Producer&&) = delete;

    ~Producer() {
      if (engine_ != nullptr) flush();
    }

    void push(value_type v)
      requires(!kEventTime)
    {
      std::vector<slot_type>& stage = staging_[next_];
      stage.push_back(std::move(v));
      if (stage.size() >= engine_->BatchSize()) FlushShard(next_);
      Advance();
    }

    /// Event-time mode: one tuple observed at event time `ts`, any order.
    void push(uint64_t ts, value_type v)
      requires kEventTime
    {
      engine_->RouteMaxTs(ts);
      std::vector<slot_type>& stage = staging_[next_];
      stage.push_back(slot_type{ts, std::move(v)});
      if (stage.size() >= engine_->BatchSize()) FlushShard(next_);
      Advance();
    }

    /// Admits every staged element (blocking/shedding per policy).
    void flush() {
      for (std::size_t i = 0; i < staging_.size(); ++i) FlushShard(i);
    }

   private:
    friend class ParallelShardedEngine;

    explicit Producer(ParallelShardedEngine* e) : engine_(e) {
      staging_.resize(e->workers_.size());
      for (auto& s : staging_) s.reserve(e->BatchSize());
    }

    void Advance() {
      next_ = next_ + 1 == staging_.size() ? 0 : next_ + 1;
    }

    void FlushShard(std::size_t i) {
      std::vector<slot_type>& stage = staging_[i];
      if (stage.empty()) return;
      engine_->DirectFlushShard(i, stage.data(), stage.size());
      stage.clear();
    }

    ParallelShardedEngine* engine_;
    std::vector<std::vector<slot_type>> staging_;
    std::size_t next_ = 0;
  };

  /// Hands out a concurrent producer handle; see Producer. Requires MPMC
  /// shard rings — an SPSC-ring engine admits exactly one pushing thread,
  /// which the plain push()/flush() API already is.
  Producer MakeProducer()
    requires kMultiProducer
  {
    SLICK_CHECK(!stopped_, "MakeProducer after stop()");
    return Producer(this);
  }

  /// One supervisor poll from the coordinating thread: recovers
  /// fail-stopped workers so parked producers can make progress. Call this
  /// in a loop while direct producers run against a supervised engine (the
  /// engine's own query()/stop() paths poll it automatically). Router
  /// thread only — not safe to call concurrently with push()/flush().
  void SupervisePoll() { Supervise(); }

  /// True once every shard's window is full — the warm-up gate for query().
  /// Event-time mode has no warm-up: the window is always defined (empty
  /// time ranges answer ⊕'s identity), so ready() is always true.
  bool ready() const {
    if constexpr (kEventTime) return true;
    const uint64_t shard_window = global_window_ / workers_.size();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (Pushed(i) + StagedCount(i) < shard_window) return false;
    }
    return true;
  }

  /// Global window answer via the epoch snapshot described above. Exact at
  /// slide barriers (admitted count a multiple of the shard count) under
  /// lossless policies; under shedding policies it aggregates each shard's
  /// admitted suffix. Folds the shards' local answers directly (never
  /// starting from ⊕-identity, whose sentinel would pollute selective ops).
  result_type query() {
    if constexpr (kEventTime) return EventQuery();
    SLICK_CHECK(ready(),
                "query before the global window is warm "
                "(every shard window must be full)");
    flush();
    // A shedding flush may drop staged elements, so re-verify the warm-up
    // gate against what the rings actually admitted.
    const uint64_t shard_window = global_window_ / workers_.size();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      SLICK_CHECK(Pushed(i) >= shard_window,
                  "query before the global window is warm "
                  "(backpressure shed the warm-up tuples)");
    }
    AwaitEpoch();
    value_type acc = workers_[0]->aggregator().query();
    for (std::size_t i = 1; i < workers_.size(); ++i) {
      acc = op_type::combine(acc, workers_[i]->aggregator().query());
    }
    return op_type::lower(acc);
  }

  /// Graceful shutdown: flush staged elements, drain every ring (recovering
  /// dead workers first when supervised, so their backlog is not stranded),
  /// join every worker. Idempotent; the destructor calls it.
  void stop() {
    if (stopped_) return;
    flush();
    if (Supervised()) AwaitEpoch();
    stopped_ = true;
    for (auto& w : workers_) w->Stop();
  }

  std::size_t shard_count() const { return workers_.size(); }
  std::size_t window_size() const { return global_window_; }

  /// Event-time mode: the global low watermark — the minimum over shards
  /// (that ever received data) of the max event ts the shard has drained.
  /// Exact at a quiescent cut (after query()/stop()); a conservative lower
  /// bound while workers drain. An idle shard with old data holds this
  /// back — see RUNBOOK.md's stuck-watermark triage.
  uint64_t watermark() const
    requires kEventTime
  {
    return GlobalWatermark();
  }

  /// Event-time mode: the newest event ts the router has admitted
  /// (router-owned; exact from the router thread). watermark lag in event
  /// time is `max_ts_routed() - watermark()`.
  uint64_t max_ts_routed() const
    requires kEventTime
  {
    // relaxed: monotonic gauge (CAS-max writes); exact at quiescence.
    return max_ts_routed_.load(std::memory_order_relaxed);
  }

  /// The shard's aggregator — safe only at a quiescent point (after
  /// query()/stop(), before further push()).
  const Agg& shard(std::size_t i) const { return workers_[i]->aggregator(); }

  /// Direct access to shard `i`'s ingress ring — the attachment point for
  /// external producers (ShmRing::AttachProducer from fork()ed or named-
  /// segment processes; also what tests and benches feed directly). The
  /// ring's producer side is safe concurrent with the router.
  Ring<slot_type>& shard_ring(std::size_t i) {
    SLICK_CHECK(i < workers_.size(), "ring access on a nonexistent shard");
    return workers_[i]->ring();
  }

  /// Chaos/test hook: arms a deterministic fail-stop of shard `i`'s worker
  /// at its `nth_batch`-th drained batch (cumulative across restarts); see
  /// ShardWorker::KillWorker. The supervisor recovers it on its next poll —
  /// meaningful only in supervised engines (checkpoint_interval > 0).
  void InjectWorkerKill(std::size_t i, KillPoint point, uint64_t nth_batch) {
    SLICK_CHECK(i < workers_.size(), "kill on a nonexistent shard");
    workers_[i]->KillWorker(point, nth_batch);
  }

  /// Lifecycle of shard `i`'s worker thread (supervisor view).
  WorkerState worker_state(std::size_t i) const {
    return workers_[i]->state();
  }

  Stats stats() const {
    Stats s;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      s.admitted += Pushed(i);
      s.dropped += Dropped(i);
      s.processed += workers_[i]->processed();
      s.restarts += workers_[i]->counters().restarts.Get();
    }
    return s;
  }

  /// Live telemetry cut: per-shard flow counters, ring occupancy and
  /// high-water, watermark lag, fault-tolerance metrics (restarts,
  /// checkpoints, replay, heartbeat age), per-shard ⊕/⊖ counts (when the op
  /// is ops::ThreadCountingOp), and the merged per-batch drain-latency
  /// histogram. Counters are relaxed atomics, so this is safe to call from
  /// any thread while the runtime serves; the conservation identity
  /// tuples_in == tuples_out + in_flight is exact at a quiescent cut
  /// (after query()/stop()) and within one in-transit batch otherwise.
  /// `staged` is router-owned and exact only from the router thread.
  telemetry::RuntimeSnapshot snapshot() const {
    telemetry::RuntimeSnapshot r;
    r.backpressure = BackpressureName(options_.backpressure);
    r.checkpoint_interval = options_.checkpoint_interval;
    const uint64_t now = util::MonotonicNanos();
    // relaxed: monotonic gauge; exact at quiescence (see max_ts_routed()).
    const uint64_t max_routed =
        max_ts_routed_.load(std::memory_order_relaxed);
    r.shards.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const telemetry::ShardCounters& c = workers_[i]->counters();
      telemetry::ShardSnapshot s;
      s.tuples_in = c.tuples_in.Get();
      s.tuples_out = c.tuples_out.Get();
      s.dropped = c.dropped.Get();
      s.batches = c.batches.Get();
      s.idle_polls = c.idle_polls.Get();
      s.in_flight = workers_[i]->ring().unconsumed();
      s.unreleased = workers_[i]->ring().unreleased();
      s.staged = staging_[i].size();
      s.ring_highwater = workers_[i]->ring().occupancy_highwater();
      // Saturating: out can transiently lead in between the worker's batch
      // publish and the router's counter bump.
      s.watermark_lag =
          s.tuples_in > s.tuples_out ? s.tuples_in - s.tuples_out : 0;
      if constexpr (kEventTime) {
        // Re-express the lag in EVENT TIME: how far this shard's drained
        // watermark trails the newest timestamp the router admitted.
        s.watermark = c.watermark.Get();
        s.watermark_lag =
            max_routed > s.watermark ? max_routed - s.watermark : 0;
      }
      s.combines = c.combines.Get();
      s.inverses = c.inverses.Get();
      s.worker_restarts = c.restarts.Get();
      s.checkpoints = c.checkpoints.Get();
      s.checkpoint_failures = c.checkpoint_failures.Get();
      s.replayed = c.replayed.Get();
      s.deadline_expiries = c.deadline_expiries.Get();
      s.stall_detections = c.stall_detections.Get();
      if constexpr (requires { workers_[i]->ring().lease_stats(); }) {
        const auto lease = workers_[i]->ring().lease_stats();
        s.leases_reclaimed = lease.leases_reclaimed;
        s.slots_tombstoned = lease.slots_tombstoned;
        s.zombie_fences = lease.zombie_fences;
      }
      const uint64_t beat = workers_[i]->heartbeat_ns();
      s.heartbeat_age_ns = (beat != 0 && now > beat) ? now - beat : 0;
      r.shards.push_back(s);
      r.batch_latency_ns.Merge(workers_[i]->batch_latency().TakeSnapshot());
      r.batch_sizes.Merge(workers_[i]->batch_sizes().TakeSnapshot());
    }
    return r;
  }

  std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    for (const auto& w : workers_) {
      bytes += sizeof(*w) + w->aggregator().memory_bytes() +
               w->ring().capacity() * sizeof(slot_type);
    }
    for (const auto& s : staging_) bytes += s.capacity() * sizeof(slot_type);
    return bytes;
  }

 private:
  bool Supervised() const { return options_.checkpoint_interval > 0; }

  /// Event-time answer at the quiescent cut: window (wm − range, wm] over
  /// the global watermark wm. While parked, also drives watermark-driven
  /// bulk eviction on every shard tree, so the steady-state memory is
  /// bounded by range + in-flight data regardless of stream length.
  result_type EventQuery()
    requires kEventTime
  {
    flush();
    AwaitEpoch();
    const uint64_t wm = GlobalWatermark();
    const uint64_t lo = wm >= global_window_ ? wm - global_window_ + 1 : 0;
    for (auto& w : workers_) w->aggregator().BulkEvict(lo);
    bool have = false;
    value_type acc = op_type::identity();
    for (auto& w : workers_) {
      value_type a = op_type::identity();
      if (w->aggregator().RangeAggregate(lo, wm, &a)) {
        acc = have ? op_type::combine(std::move(acc), std::move(a))
                   : std::move(a);
        have = true;
      }
    }
    return op_type::lower(acc);
  }

  uint64_t GlobalWatermark() const
    requires kEventTime
  {
    uint64_t wm = std::numeric_limits<uint64_t>::max();
    bool any = false;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      // A shard that never received data holds no entries and cannot hold
      // the watermark back; one that received data long ago legitimately
      // does (RUNBOOK.md stuck-watermark triage).
      if (Pushed(i) == 0) continue;
      wm = std::min(wm, workers_[i]->counters().watermark.Get());
      any = true;
    }
    return any ? wm : 0;
  }

  std::size_t BatchSize() const {
    return options_.batch < 1 ? 1 : options_.batch;
  }

  std::size_t StagedCount(std::size_t i) const { return staging_[i].size(); }

  /// Reaps dead/expired producer leases on every shard ring. Compiles to
  /// nothing for in-process ring types (no ReapExpiredLeases); for shm
  /// rings it is throttled to lease_ns/4 so the per-lease pid probes stay
  /// off the per-poll cost. Router thread only (last_reap_ns_ is
  /// router-owned).
  void ReapShmLeases() {
    if constexpr (requires(Ring<slot_type>& r) {
                    r.ReapExpiredLeases(uint64_t{}, uint64_t{});
                  }) {
      if (options_.lease_ns == 0) return;
      const uint64_t now = util::MonotonicNanos();
      if (now - last_reap_ns_ < options_.lease_ns / 4) return;
      last_reap_ns_ = now;
      for (auto& w : workers_) {
        (void)w->ring().ReapExpiredLeases(now, options_.lease_ns);
      }
    }
  }

  /// One supervisor poll (router thread only): reap dead shm producer
  /// leases; recover fail-stopped workers; latch-count heartbeat stalls on
  /// live ones. Lease reaping runs even when checkpoint supervision is off
  /// — a dead external producer must not wedge an unsupervised engine
  /// either — so it sits before the Supervised() gate.
  void Supervise() {
    ReapShmLeases();
    if (!Supervised()) return;
    const uint64_t now = util::MonotonicNanos();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = *workers_[i];
      if (w.state() == WorkerState::kKilled) {
        w.RecoverAndRestart();
        stall_latched_[i] = 0;
        continue;
      }
      // Stall detector: live thread, backlog waiting, heartbeat stale. A
      // stalled worker still owns its aggregator, so it is reported (once
      // per episode), never restarted — see DESIGN.md §12.3.
      const uint64_t beat = w.heartbeat_ns();
      const bool stalled = w.state() == WorkerState::kRunning && beat != 0 &&
                           w.ring().unconsumed() > 0 && now > beat &&
                           now - beat > options_.stall_ns;
      if (stalled && stall_latched_[i] == 0) {
        w.counters().stall_detections.Add(1);
        stall_latched_[i] = 1;
      } else if (!stalled) {
        stall_latched_[i] = 0;
      }
    }
  }

  /// Admits stage[from..) into the ring without ever parking: polls
  /// try_push_n, supervising between attempts, until done or (deadline_ns
  /// != 0) the deadline passes. Returns the count admitted.
  SLICK_NODISCARD std::size_t PollPush(Ring<slot_type>& ring,
                                       const slot_type* src,
                                       std::size_t n,
                                       uint64_t deadline_ns) {
    const uint64_t t0 = deadline_ns != 0 ? util::MonotonicNanos() : 0;
    std::size_t done = 0;
    while (done < n) {
      done += ring.try_push_n(src + done, n - done);
      if (done == n) break;
      Supervise();
      if (deadline_ns != 0 && util::MonotonicNanos() - t0 >= deadline_ns) {
        break;
      }
      std::this_thread::yield();
    }
    return done;
  }

  void FlushShard(std::size_t i) {
    std::vector<slot_type>& stage = staging_[i];
    if (stage.empty()) return;
    Ring<slot_type>& ring = workers_[i]->ring();
    telemetry::ShardCounters& tel = workers_[i]->counters();
    std::size_t accepted = 0;
    switch (options_.backpressure) {
      case Backpressure::kBlock:
        if (!Supervised()) {
          // Fast path (PR 4 object code): futex-parked blocking push.
          accepted = ring.push_n(stage.data(), stage.size());
          SLICK_CHECK(accepted == stage.size(), "ring closed during push");
        } else {
          // Supervised engines must keep polling: a parked router could
          // never restart the dead worker it is waiting on.
          accepted = PollPush(ring, stage.data(), stage.size(), 0);
          SLICK_CHECK(accepted == stage.size(), "ring closed during push");
        }
        break;
      case Backpressure::kDropNewest:
        accepted = ring.try_push_n(stage.data(), stage.size());
        break;
      case Backpressure::kBlockWithDeadline: {
        accepted =
            PollPush(ring, stage.data(), stage.size(), options_.deadline_ns);
        if (accepted < stage.size()) tel.deadline_expiries.Add(1);
        break;
      }
      case Backpressure::kShedOldest: {
        // Never park: when the ring is full, shed the *oldest* unadmitted
        // element and keep going, so the admitted stream is always the
        // freshest suffix. (The ring itself cannot evict — exactly-once
        // spans — so shedding happens at the admission edge.)
        std::size_t from = 0;
        while (from + accepted < stage.size()) {
          const std::size_t got = ring.try_push_n(
              stage.data() + from + accepted, stage.size() - from - accepted);
          accepted += got;
          if (from + accepted == stage.size()) break;
          if (got == 0) {
            ++from;  // shed stage[from-1], the oldest unadmitted element
            Supervise();
          }
        }
        break;
      }
      case Backpressure::kError:
        accepted = ring.try_push_n(stage.data(), stage.size());
        SLICK_CHECK(accepted == stage.size(),
                    "shard ring full under Backpressure::kError "
                    "(size the ring for the peak burst, or pick a "
                    "shedding/blocking policy)");
        break;
    }
    AccountAdmission(i, accepted, stage.size() - accepted);
    stage.clear();
  }

  /// Thread-safe admission of a producer batch into shard `i`'s ring —
  /// the Producer-handle analogue of FlushShard. Runs the same five
  /// backpressure policies but never supervises: recovery stays owned by
  /// the coordinating thread (SupervisePoll), so a producer parked on a
  /// dead worker's ring waits until that thread's next poll revives it.
  /// All counter updates are relaxed atomics; any number of producers (and
  /// the router) compose.
  void DirectFlushShard(std::size_t i, const slot_type* data, std::size_t n) {
    Ring<slot_type>& ring = workers_[i]->ring();
    telemetry::ShardCounters& tel = workers_[i]->counters();
    std::size_t accepted = 0;
    switch (options_.backpressure) {
      case Backpressure::kBlock:
        accepted = ring.push_n(data, n);
        SLICK_CHECK(accepted == n, "ring closed during producer push");
        break;
      case Backpressure::kDropNewest:
        accepted = ring.try_push_n(data, n);
        break;
      case Backpressure::kBlockWithDeadline: {
        const uint64_t t0 = util::MonotonicNanos();
        while (accepted < n) {
          accepted += ring.try_push_n(data + accepted, n - accepted);
          if (accepted == n) break;
          if (util::MonotonicNanos() - t0 >= options_.deadline_ns) break;
          std::this_thread::yield();
        }
        if (accepted < n) tel.deadline_expiries.Add(1);
        break;
      }
      case Backpressure::kShedOldest: {
        std::size_t from = 0;
        while (from + accepted < n) {
          const std::size_t got =
              ring.try_push_n(data + from + accepted, n - from - accepted);
          accepted += got;
          if (from + accepted == n) break;
          if (got == 0) {
            ++from;  // shed the oldest unadmitted element, keep the freshest
            std::this_thread::yield();
          }
        }
        break;
      }
      case Backpressure::kError:
        accepted = ring.try_push_n(data, n);
        SLICK_CHECK(accepted == n,
                    "shard ring full under Backpressure::kError "
                    "(size the ring for the peak burst, or pick a "
                    "shedding/blocking policy)");
        break;
    }
    AccountAdmission(i, accepted, n - accepted);
  }

  /// Blocks until every worker has processed exactly what was routed to it,
  /// supervising (recovering dead workers) while it waits. Rings are
  /// claim-drained afterwards, so the workers are parked — the quiescent
  /// cut the combine reads from.
  void AwaitEpoch() {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      while (workers_[i]->processed() < Pushed(i)) {
        Supervise();
        std::this_thread::yield();
      }
    }
  }

  /// Per-shard admission tallies. Atomic (relaxed) so Producer handles and
  /// the router compose; cache-line padded so concurrent producers landing
  /// on different shards never false-share. Exactness of the quiescent
  /// reads (ready()/query()/AwaitEpoch) comes from the caller's quiesce
  /// contract: every producer is flushed and synchronized-with (joined)
  /// before the read, which orders its relaxed adds.
  struct alignas(64) AdmitCounters {
    // Shares the padded line with `dropped` by design: both are written by
    // whichever thread admits to this shard, and a snapshot reads them
    // together. slick-lint: allow(atomic-alignas)
    std::atomic<uint64_t> pushed{0};
    // slick-lint: allow(atomic-alignas)
    std::atomic<uint64_t> dropped{0};
  };

  uint64_t Pushed(std::size_t i) const {
    // relaxed: see AdmitCounters — quiescence supplies the ordering.
    return admit_[i].pushed.load(std::memory_order_relaxed);
  }
  uint64_t Dropped(std::size_t i) const {
    // relaxed: see AdmitCounters.
    return admit_[i].dropped.load(std::memory_order_relaxed);
  }

  void AccountAdmission(std::size_t i, std::size_t accepted,
                        std::size_t dropped) {
    telemetry::ShardCounters& tel = workers_[i]->counters();
    // relaxed: flow tallies; see AdmitCounters.
    admit_[i].pushed.fetch_add(accepted, std::memory_order_relaxed);
    if (dropped > 0) {
      admit_[i].dropped.fetch_add(dropped, std::memory_order_relaxed);
      tel.dropped.Add(dropped);
    }
    tel.tuples_in.Add(accepted);
  }

  /// CAS-max on the newest-admitted event timestamp (multi-producer safe).
  void RouteMaxTs(uint64_t ts) {
    // relaxed: monotonic gauge — watermark math reads it at quiescence,
    // and a transiently stale value only under-reports the lag.
    uint64_t cur = max_ts_routed_.load(std::memory_order_relaxed);
    while (ts > cur && !max_ts_routed_.compare_exchange_weak(
                           cur, ts, std::memory_order_relaxed,
                           std::memory_order_relaxed)) {
    }
  }

  const std::size_t global_window_;
  const Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::vector<slot_type>> staging_;  // router-side batches
  std::unique_ptr<AdmitCounters[]> admit_;  // per-shard admit/drop tallies
  std::vector<uint8_t> stall_latched_;  // per-shard stall episode latch
  uint64_t last_reap_ns_ = 0;  // router-owned lease-reap throttle clock
  std::size_t next_ = 0;           // round-robin cursor
  // Event mode: newest admitted event ts (CAS-max; router + producers).
  alignas(64) std::atomic<uint64_t> max_ts_routed_{0};
  bool stopped_ = false;
};

}  // namespace slick::runtime
