#pragma once

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>

#include "util/annotations.h"

namespace slick::runtime::fault {

/// Deterministic fault injection for the parallel runtime (DESIGN.md §12).
///
/// Every hazardous edge in the runtime is annotated with a named fault
/// *point*; a test arms a point for a specific *lane* (shard index) to fire
/// on the Nth time execution reaches it. Because the per-shard pipeline is
/// deterministic (one producer, FIFO ring, fixed batch sizes), "the Nth
/// hit of point P on lane L" names one exact program state — the same
/// seeded schedule reproduces the same crash every run, which is what the
/// recovery-determinism differential tests rely on.
///
/// When SLICK_FAULT_INJECTION is not defined (the default build), Fire()
/// is a constant-false inline and every hook compiles away — the hot path
/// pays zero overhead, which the perf-smoke CI gate checks. The CI `chaos`
/// job builds with -DSLICK_FAULT_INJECTION=ON.
enum class Point : uint32_t {
  kWorkerKillBeforeSlide = 0,  ///< worker dies after claiming, before sliding
  kWorkerKillAfterSlide,       ///< worker dies after sliding, before publish
  kPublishDelay,               ///< producer stalls just before a ring publish
  kRingSpuriousFull,           ///< a ring claim spuriously reports "full"
  kCheckpointAllocFail,        ///< checkpoint serialization reports ENOMEM
  kCheckpointCorrupt,          ///< one checkpoint byte flips before validate
  // Process-lane triggers for the shm ingestion path (DESIGN.md §17): a
  // lease-holding producer PROCESS dies (SIGKILL to itself, no cleanup) or
  // degrades at a seeded point, and the consumer-side reaper must fence
  // the lease and repair the ring. Hit counters advance per claim attempt
  // (die-before-claim / die-before-publish) or per published slot
  // (die-mid-span), so an armed ordinal names one exact ring position.
  kShmDieBeforeClaim,    ///< producer dies before its tail CAS (clean loss)
  kShmDieMidSpan,        ///< producer dies after publishing part of a span
  kShmDieBeforePublish,  ///< producer dies owning a fully unpublished span
  kShmStallHeartbeat,    ///< producer stops refreshing its lease heartbeat
  kShmZombieResume,      ///< producer stalls past the lease, then publishes
};

inline constexpr std::size_t kPointCount = 11;
inline constexpr std::size_t kMaxLanes = 16;

#ifdef SLICK_FAULT_INJECTION

/// Global armed-fault registry. Arm/Disarm run from the test thread before
/// (or between) runs; Fire runs from router and worker threads. The only
/// cross-thread state is the per-(point, lane) trigger/hit/fired atomics.
class Injector {
 public:
  static Injector& Instance() {
    static Injector g;
    return g;
  }

  /// Arms `point` on `lane` to fire on the `nth` hit (1-based). nth == 0
  /// disarms. Re-arming resets the hit counter.
  void Arm(Point point, std::size_t lane, uint64_t nth) {
    Slot& s = slot(point, lane);
    // relaxed: test-thread configuration done before the run's threads
    // start (or between runs at a quiescent point); the thread spawn /
    // join that follows publishes these stores.
    s.hits.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
    s.trigger.store(nth, std::memory_order_relaxed);
  }

  /// Disarms every point on every lane and clears all counters.
  void DisarmAll() {
    for (std::size_t p = 0; p < kPointCount; ++p) {
      for (std::size_t l = 0; l < kMaxLanes; ++l) {
        Arm(static_cast<Point>(p), l, 0);
      }
    }
  }

  /// Counts a hit; true exactly when this hit is the armed trigger.
  bool Fire(Point point, std::size_t lane) {
    Slot& s = slot(point, lane);
    // relaxed: a disarmed slot (the overwhelmingly common case) needs no
    // ordering — no data is published through the trigger value.
    const uint64_t trigger = s.trigger.load(std::memory_order_relaxed);
    if (trigger == 0) return false;
    // relaxed: the hit counter is private to the one thread that executes
    // this (point, lane) — shards are single-threaded pipelines — so the
    // fetch_add only needs atomicity for the test thread's reads.
    const uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (hit != trigger) return false;
    // relaxed: telemetry for test assertions, read after join/quiesce.
    s.fired.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Total times `point` actually fired (any lane) since the last Arm.
  uint64_t FiredCount(Point point) const {
    uint64_t n = 0;
    for (std::size_t l = 0; l < kMaxLanes; ++l) {
      // relaxed: test-side telemetry read at a quiescent point.
      n += slots_[Index(point, l)].fired.load(std::memory_order_relaxed);
    }
    return n;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> trigger{0};  ///< fire on this hit count; 0 = off
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fired{0};
  };

  static std::size_t Index(Point point, std::size_t lane) {
    return static_cast<std::size_t>(point) * kMaxLanes + (lane % kMaxLanes);
  }
  Slot& slot(Point point, std::size_t lane) {
    return slots_[Index(point, lane)];
  }

  Slot slots_[kPointCount * kMaxLanes];
};

inline constexpr bool Enabled() { return true; }

inline bool Fire(Point point, std::size_t lane) {
  return Injector::Instance().Fire(point, lane);
}

inline void Arm(Point point, std::size_t lane, uint64_t nth) {
  Injector::Instance().Arm(point, lane, nth);
}

inline void DisarmAll() { Injector::Instance().DisarmAll(); }

inline uint64_t FiredCount(Point point) {
  return Injector::Instance().FiredCount(point);
}

/// The kPublishDelay payload: yield a few quanta so a racing consumer (or
/// supervisor heartbeat check) observes the stall window.
SLICK_REALTIME_ALLOW(
    "fault-injection chaos hook: deliberately stalls the publish to "
    "widen race windows under test; compiled to a no-op unless "
    "SLICK_FAULT_INJECTION")
inline void InjectDelay() {
  for (int i = 0; i < 32; ++i) std::this_thread::yield();
}

/// The kShmZombieResume payload: stall far past any test-sized lease
/// period, so the reaper provably completes fence + repair before the
/// producer's publish resumes — the deterministic "zombie" schedule.
SLICK_REALTIME_ALLOW(
    "fault-injection chaos hook: deliberate long stall forcing the "
    "zombie-resume schedule; compiled to a no-op unless "
    "SLICK_FAULT_INJECTION")
inline void InjectLongStall() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

/// The kCheckpointCorrupt payload: deterministically flip one bit of the
/// serialized checkpoint, position seeded by the bytes' own CRC-free hash.
inline void CorruptOneBit(std::string* bytes) {
  if (bytes->empty()) return;
  uint64_t h = 0x9E3779B97F4A7C15ull ^ bytes->size();
  for (std::size_t i = 0; i < bytes->size(); i += 7) {
    h = (h ^ static_cast<unsigned char>((*bytes)[i])) * 0x2545F4914F6CDD1Dull;
  }
  const std::size_t pos = static_cast<std::size_t>(h % bytes->size());
  (*bytes)[pos] = static_cast<char>((*bytes)[pos] ^ (1 << (h >> 61)));
}

#else  // !SLICK_FAULT_INJECTION — every hook folds to a constant no-op.

inline constexpr bool Enabled() { return false; }
inline constexpr bool Fire(Point /*point*/, std::size_t /*lane*/) {
  return false;
}
inline constexpr void Arm(Point /*point*/, std::size_t /*lane*/,
                          uint64_t /*nth*/) {}
inline constexpr void DisarmAll() {}
inline constexpr uint64_t FiredCount(Point /*point*/) { return 0; }
inline constexpr void InjectDelay() {}
inline constexpr void InjectLongStall() {}
inline constexpr void CorruptOneBit(std::string* /*bytes*/) {}

#endif  // SLICK_FAULT_INJECTION

/// The kShmDie* payload: a real fail-stop of THIS PROCESS — SIGKILL to
/// self, so no destructor, atexit handler, or unwinder runs, exactly like
/// an OOM kill or operator `kill -9`. The lease record and any claimed
/// ring span are abandoned mid-protocol for the reaper to repair. Defined
/// unconditionally (call sites are compiled out when Fire() is constant
/// false); never returns.
[[noreturn]] inline void DieHard() {
  ::kill(::getpid(), SIGKILL);
  for (;;) ::pause();  // unreachable: SIGKILL cannot be blocked
}

}  // namespace slick::runtime::fault
