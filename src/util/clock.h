#pragma once

#include <chrono>
#include <cstdint>

namespace slick::util {

/// Monotonic wall time in nanoseconds — the library-side twin of the bench
/// harness's NowNs(), used by the telemetry layer to timestamp latency
/// samples. steady_clock so the value never jumps backwards under NTP.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace slick::util

