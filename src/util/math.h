#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>

#include "util/check.h"

namespace slick::util {

/// Returns true if `x` is a power of two. Zero is not a power of two.
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x must be >= 1 and representable).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// floor(log2(x)) for x >= 1.
constexpr uint32_t FloorLog2(uint64_t x) {
  uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr uint32_t CeilLog2(uint64_t x) {
  return IsPowerOfTwo(x) ? FloorLog2(x) : FloorLog2(x) + 1;
}

/// Least common multiple of a list of positive integers. Aborts on overflow.
inline uint64_t LcmAll(const uint64_t* values, size_t count) {
  SLICK_CHECK(count > 0, "LcmAll requires at least one value");
  uint64_t acc = 1;
  for (size_t i = 0; i < count; ++i) {
    SLICK_CHECK(values[i] > 0, "LcmAll requires positive values");
    const uint64_t g = std::gcd(acc, values[i]);
    const uint64_t q = values[i] / g;
    SLICK_CHECK(acc <= UINT64_MAX / q, "LCM overflow");
    acc *= q;
  }
  return acc;
}

}  // namespace slick::util

