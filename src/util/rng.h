#pragma once

#include <cstdint>

namespace slick::util {

/// SplitMix64: tiny, fast, seedable PRNG used for deterministic synthetic
/// workloads. Quality is more than sufficient for workload generation and it
/// keeps benches reproducible across platforms/compilers (unlike
/// std::mt19937 + std::uniform_*_distribution whose outputs are not
/// standardized across library implementations for floating point).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

 private:
  uint64_t state_;
};

}  // namespace slick::util

