#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace slick::util {

/// Summary statistics over a set of latency samples (nanoseconds), matching
/// the categories reported in the paper's Exp 3 (Fig 14): Min, 25th
/// percentile, Median, 75th percentile, Max, and Average.
struct LatencySummary {
  uint64_t count = 0;
  double min_ns = 0;
  double p25_ns = 0;
  double median_ns = 0;
  double p75_ns = 0;
  double p99_ns = 0;
  double p999_ns = 0;
  double max_ns = 0;
  double avg_ns = 0;
};

/// Computes a LatencySummary. `drop_top_fraction` removes that fraction of
/// the highest samples as outliers before summarizing (the paper drops the
/// top 0.005%). `samples` is consumed (sorted in place). Edge cases are
/// explicit: an empty input yields an all-zero summary with count == 0; a
/// single sample is reported as every percentile (and is never dropped as
/// an outlier).
LatencySummary Summarize(std::vector<uint64_t>& samples,
                         double drop_top_fraction = 0.0);

/// Linear-interpolated percentile over sorted data; q in [0, 1].
double PercentileSorted(const std::vector<uint64_t>& sorted, double q);

/// Renders a one-line human-readable summary.
std::string ToString(const LatencySummary& s);

/// Records per-event latencies with minimal overhead (preallocated storage).
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t expected_samples) {
    samples_.reserve(expected_samples);
  }

  void Record(uint64_t ns) { samples_.push_back(ns); }

  /// Summarizes and leaves the recorder empty.
  LatencySummary Finish(double drop_top_fraction = 0.0) {
    LatencySummary s = Summarize(samples_, drop_top_fraction);
    samples_.clear();
    return s;
  }

  const std::vector<uint64_t>& samples() const { return samples_; }

 private:
  std::vector<uint64_t> samples_;
};

}  // namespace slick::util

