#pragma once

// Hot-path annotations for the semantic analyzer (tools/analyze/
// slick_analyzer.py, DESIGN.md §15).
//
// SLICK_REALTIME marks a function as a worst-case-O(1) hot path: the
// analyzer reports any allocation, lock, blocking wait, or throw reachable
// from it through the per-TU call graph. SLICK_REALTIME_ALLOW(reason)
// marks a function whose impurities are a documented, bounded exception
// (amortized chunk growth, idle-only parking, checkpoint cadence, ...);
// the purity walk stops there and the reason is the reviewable proof.
// Every ALLOW must carry a non-empty reason string — the analyzer rejects
// bare ones.
//
// The macros expand to clang annotate attributes only when BOTH __clang__
// and SLICK_ANALYZE are defined — i.e. only inside the analyzer's own
// libclang parse. Production builds (gcc or clang, SLICK_ANALYZE off) see
// empty token sequences: zero code, zero layout, zero overhead, pinned by
// tests/annotations_test.cc. The token-level fallback frontend reads the
// macro names straight from the source, so annotations stay visible to the
// analyzer even where libclang is unavailable.
#if defined(__clang__) && defined(SLICK_ANALYZE)
#define SLICK_REALTIME [[clang::annotate("slick::realtime")]]
#define SLICK_REALTIME_ALLOW(reason) \
  [[clang::annotate("slick::realtime_allow:" reason)]]
#else
#define SLICK_REALTIME
#define SLICK_REALTIME_ALLOW(reason)
#endif

// Must-use results: Try*/Poll*/Offer verdicts and typed error codes
// (util::FrameError, stream::Admission) silently dropped on the floor are
// the wedge/loss bug class the analyzer's ignored-result check hunts.
// Spelled as a macro (not bare [[nodiscard]]) so the analyzer can sweep
// for declarations that *should* carry it, and so a future toolchain
// without the attribute degrades in one place.
#define SLICK_NODISCARD [[nodiscard]]
