#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace slick::util {
namespace {

uint64_t ReadStatusKb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + key_len, " %llu", &v) == 1) kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

uint64_t PeakRssBytes() { return ReadStatusKb("VmHWM:"); }

uint64_t CurrentRssBytes() { return ReadStatusKb("VmRSS:"); }

}  // namespace slick::util
