#pragma once

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>

#include "util/annotations.h"
#include "util/check.h"
#include "util/clock.h"

namespace slick::util {

/// RAII POSIX shared-memory mapping (DESIGN.md §17) — the substrate the
/// cross-process ingestion ring (runtime/shm/shm_ring.h) places its slots,
/// cursors and lease table in.
///
/// Three acquisition modes:
///  * CreateAnonymous — a fresh segment under a generated name, unlinked
///    the moment it is mapped: the mapping is then reachable only through
///    this process and anything it fork()s (MAP_SHARED survives fork), so
///    a crash can never leak a name into /dev/shm. This is what an
///    engine-owned ring uses by default.
///  * CreateNamed — a fresh segment under a caller-chosen name that stays
///    linked until the owning mapping is destroyed, so other processes
///    (producers, tools/telemetry_dump --shm=...) can attach by name.
///  * OpenNamed — attach to an existing segment, read-write for producers
///    or read-only for inspection tooling.
///
/// Failures surface through valid()/error() rather than aborting: whether
/// a missing or undersized segment is fatal is the caller's call (a
/// telemetry tool should print a message, a ring constructor CHECKs).
class ShmMapping {
 public:
  ShmMapping() = default;

  ShmMapping(ShmMapping&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        name_(std::exchange(other.name_, std::string())),
        unlink_on_destroy_(std::exchange(other.unlink_on_destroy_, false)),
        error_(other.error_) {}

  ShmMapping& operator=(ShmMapping&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      name_ = std::exchange(other.name_, std::string());
      unlink_on_destroy_ = std::exchange(other.unlink_on_destroy_, false);
      error_ = other.error_;
    }
    return *this;
  }

  ShmMapping(const ShmMapping&) = delete;
  ShmMapping& operator=(const ShmMapping&) = delete;

  ~ShmMapping() { Reset(); }

  /// A fresh zero-filled segment under a collision-proof generated name,
  /// unlinked immediately after mapping (see class comment). The returned
  /// mapping is shared with any later fork() children.
  static ShmMapping CreateAnonymous(std::size_t bytes) {
    // pid + a process-local counter + the monotonic clock: unique against
    // concurrent creators, and O_EXCL retries close any residual race.
    static std::atomic<uint64_t> counter{0};
    for (int attempt = 0; attempt < 16; ++attempt) {
      char name[96];
      std::snprintf(name, sizeof(name), "/slick.%ld.%llu.%llu",
                    static_cast<long>(::getpid()),
                    static_cast<unsigned long long>(
                        counter.fetch_add(1, std::memory_order_relaxed)),
                    static_cast<unsigned long long>(MonotonicNanos()));
      ShmMapping m = CreateExclusive(name, bytes);
      if (m.valid()) {
        ::shm_unlink(name);
        m.unlink_on_destroy_ = false;
        // The name no longer resolves; keeping it would make name()
        // point triage tools at a nonexistent /dev/shm entry instead of
        // identifying the mapping as anonymous.
        m.name_.clear();
        return m;
      }
      if (m.error_ != EEXIST) return m;
    }
    ShmMapping failed;
    failed.error_ = EEXIST;
    return failed;
  }

  /// A fresh zero-filled segment under `name` (leading '/' per shm_open),
  /// left linked so other processes can OpenNamed() it; unlinked when this
  /// owning mapping is destroyed. Fails with EEXIST if the name is taken.
  static ShmMapping CreateNamed(const std::string& name, std::size_t bytes) {
    ShmMapping m = CreateExclusive(name.c_str(), bytes);
    if (m.valid()) m.unlink_on_destroy_ = true;
    return m;
  }

  /// Attaches to an existing segment, mapping its full current size.
  /// `read_only` maps PROT_READ — the inspection mode tools use so a
  /// telemetry dump can never corrupt a live ring.
  static ShmMapping OpenNamed(const std::string& name, bool read_only) {
    ShmMapping m;
    const int fd = ::shm_open(name.c_str(), read_only ? O_RDONLY : O_RDWR, 0);
    if (fd < 0) {
      m.error_ = errno;
      return m;
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
      m.error_ = errno != 0 ? errno : EINVAL;
      ::close(fd);
      return m;
    }
    const auto bytes = static_cast<std::size_t>(st.st_size);
    void* p = ::mmap(nullptr, bytes, read_only ? PROT_READ
                                               : PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
    ::close(fd);  // the mapping keeps the segment alive; the fd is done
    if (p == MAP_FAILED) {
      m.error_ = errno;
      return m;
    }
    m.data_ = p;
    m.size_ = bytes;
    m.name_ = name;
    return m;
  }

  SLICK_NODISCARD bool valid() const { return data_ != nullptr; }
  void* data() const { return data_; }
  std::size_t size() const { return size_; }
  /// The shm name this mapping is (or was) linked under; empty for
  /// anonymous segments after their immediate unlink.
  const std::string& name() const { return name_; }
  /// errno of the failed acquisition; 0 while valid.
  int error() const { return error_; }

 private:
  static ShmMapping CreateExclusive(const char* name, std::size_t bytes) {
    ShmMapping m;
    SLICK_CHECK(bytes > 0, "shm segment must be non-empty");
    const int fd = ::shm_open(name, O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
      m.error_ = errno;
      return m;
    }
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
      m.error_ = errno;
      ::close(fd);
      ::shm_unlink(name);
      return m;
    }
    void* p =
        ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) {
      m.error_ = errno;
      ::shm_unlink(name);
      return m;
    }
    m.data_ = p;
    m.size_ = bytes;
    m.name_ = name;
    return m;
  }

  void Reset() {
    if (data_ != nullptr) {
      ::munmap(data_, size_);
      if (unlink_on_destroy_) ::shm_unlink(name_.c_str());
    }
    data_ = nullptr;
    size_ = 0;
    unlink_on_destroy_ = false;
  }

  void* data_ = nullptr;
  std::size_t size_ = 0;
  std::string name_;
  bool unlink_on_destroy_ = false;
  int error_ = 0;
};

}  // namespace slick::util
