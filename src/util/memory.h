#pragma once

#include <cstddef>
#include <cstdint>

namespace slick::util {

/// Peak resident set size (VmHWM) of the current process in bytes, read from
/// /proc/self/status. Returns 0 if unavailable. This is the measurement the
/// paper's Exp 4 uses; the benches additionally report exact per-structure
/// byte accounting via each aggregator's memory_bytes(), which is
/// deterministic and free of allocator noise.
uint64_t PeakRssBytes();

/// Current resident set size (VmRSS) in bytes, or 0 if unavailable.
uint64_t CurrentRssBytes();

}  // namespace slick::util

