#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <istream>

#include "util/annotations.h"
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace slick::util {

// Minimal binary serialization helpers for aggregator checkpoints (DSMS
// fault tolerance: snapshot the window state, restore after a crash, keep
// answering). Little-endian host format, versioned per structure via
// WriteTag/ExpectTag. Trivially copyable payloads are written raw; other
// value types (std::string, structs with SaveValue/LoadValue members) go
// through the WriteVal/ReadVal customization layer below. Checkpoint
// streams as a whole are wrapped in a magic+version+CRC32 frame
// (WriteFramed/ReadFramed) so truncation and bit flips fail with a typed
// FrameError instead of relying on per-algorithm invariant checks.

template <typename T>
  requires std::is_trivially_copyable_v<T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
bool ReadPod(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(is);
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void WritePodVec(std::ostream& os, const std::vector<T>& v) {
  WritePod<uint64_t>(os, v.size());
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
bool ReadPodVec(std::istream& is, std::vector<T>* v) {
  uint64_t count = 0;
  if (!ReadPod(is, &count)) return false;
  // Guard against corrupt counts before allocating.
  if (count > (uint64_t{1} << 40) / sizeof(T)) return false;
  v->resize(count);
  if (count > 0) {
    is.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(count * sizeof(T)));
  }
  return static_cast<bool>(is);
}

/// Structure tag + version header.
inline void WriteTag(std::ostream& os, uint32_t tag, uint32_t version) {
  WritePod(os, tag);
  WritePod(os, version);
}

inline bool ExpectTag(std::istream& is, uint32_t tag, uint32_t version) {
  uint32_t t = 0, v = 0;
  return ReadPod(is, &t) && ReadPod(is, &v) && t == tag && v == version;
}

/// Four-character structure tags.
constexpr uint32_t MakeTag(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

// ---------------------------------------------------------------------
// Generalized value serde: WriteVal/ReadVal extend the POD helpers to
// std::string (length-prefixed) and to types that provide their own
// SaveValue/LoadValue members — which is what lets string-valued ops
// (AlphaMax) checkpoint through ChunkedArrayQueue and SlickDequeNonInv.
// Trivially copyable types keep the raw WritePod layout, so every stream
// written by the PR 1 format is byte-identical under WriteVal.
// ---------------------------------------------------------------------

/// A type that serializes itself element-wise (used for non-POD structs
/// like SlickDequeNonInv's (pos, string) node).
template <typename T>
concept MemberSerde = requires(const T& c, T& m, std::ostream& os,
                               std::istream& is) {
  { c.SaveValue(os) } -> std::same_as<void>;
  { m.LoadValue(is) } -> std::convertible_to<bool>;
};

/// Everything WriteVal/ReadVal can move through a checkpoint stream.
template <typename T>
concept Serializable = std::is_trivially_copyable_v<T> ||
                       std::same_as<T, std::string> || MemberSerde<T>;

template <Serializable T>
void WriteVal(std::ostream& os, const T& v) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    WritePod(os, v);
  } else if constexpr (std::same_as<T, std::string>) {
    WritePod<uint64_t>(os, v.size());
    if (!v.empty()) {
      os.write(v.data(), static_cast<std::streamsize>(v.size()));
    }
  } else {
    v.SaveValue(os);
  }
}

template <Serializable T>
bool ReadVal(std::istream& is, T* v) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    return ReadPod(is, v);
  } else if constexpr (std::same_as<T, std::string>) {
    uint64_t len = 0;
    if (!ReadPod(is, &len)) return false;
    // Guard against corrupt lengths before allocating.
    if (len > (uint64_t{1} << 32)) return false;
    v->resize(static_cast<std::size_t>(len));
    if (len > 0) {
      is.read(v->data(), static_cast<std::streamsize>(len));
    }
    return static_cast<bool>(is);
  } else {
    return v->LoadValue(is);
  }
}

template <Serializable T>
void WriteValVec(std::ostream& os, const std::vector<T>& v) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    WritePodVec(os, v);
  } else {
    WritePod<uint64_t>(os, v.size());
    for (const T& x : v) WriteVal(os, x);
  }
}

template <Serializable T>
bool ReadValVec(std::istream& is, std::vector<T>* v) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    return ReadPodVec(is, v);
  } else {
    uint64_t count = 0;
    if (!ReadPod(is, &count)) return false;
    if (count > (uint64_t{1} << 32)) return false;
    v->clear();
    v->reserve(static_cast<std::size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      T x{};
      if (!ReadVal(is, &x)) return false;
      v->push_back(std::move(x));
    }
    return true;
  }
}

// ---------------------------------------------------------------------
// CRC32-framed checkpoint container (DESIGN.md §12). Frame layout:
//
//   u32 magic 'SLKF' | u32 version | u64 payload_size | u32 crc32(payload)
//   | payload bytes
//
// The payload is whatever the per-structure SaveState wrote (its own
// tag+version streams nest inside, unframed — one frame per checkpoint,
// not one per structure). ReadFramed classifies every failure mode with a
// typed error so callers can distinguish "wrong file" from "torn write"
// from "bit rot". LoadStateFramed additionally accepts the unframed PR 1
// format: a stream whose first word is not the frame magic is handed to
// the structure's own LoadState untouched.
// ---------------------------------------------------------------------

inline constexpr uint32_t kFrameMagic = MakeTag('S', 'L', 'K', 'F');
inline constexpr uint32_t kFrameVersion = 1;

enum class FrameError {
  kOk = 0,
  kBadMagic,     ///< first word is neither the frame magic nor legacy data
  kBadVersion,   ///< framed, but by an unknown frame version
  kTruncated,    ///< stream ended before the declared payload size
  kCrcMismatch,  ///< payload bytes do not match the stored CRC32
  kBadPayload,   ///< frame intact, but the structure rejected the payload
};

inline const char* FrameErrorName(FrameError e) {
  switch (e) {
    case FrameError::kOk: return "ok";
    case FrameError::kBadMagic: return "bad-magic";
    case FrameError::kBadVersion: return "bad-version";
    case FrameError::kTruncated: return "truncated";
    case FrameError::kCrcMismatch: return "crc-mismatch";
    case FrameError::kBadPayload: return "bad-payload";
  }
  return "unknown";
}

namespace detail {
/// IEEE CRC32 (poly 0xEDB88320), table-driven; the table is computed at
/// compile time so there is no runtime init order to worry about.
constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();
}  // namespace detail

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  uint32_t crc = ~seed;
  for (const char ch : data) {
    crc = detail::kCrc32Table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^
          (crc >> 8);
  }
  return ~crc;
}

/// Wraps `payload` in the magic+version+size+CRC32 frame.
inline void WriteFramed(std::ostream& os, std::string_view payload) {
  WritePod(os, kFrameMagic);
  WritePod(os, kFrameVersion);
  WritePod<uint64_t>(os, payload.size());
  WritePod<uint32_t>(os, Crc32(payload));
  if (!payload.empty()) {
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
}

/// Reads one frame, placing the verified payload bytes in *payload.
SLICK_NODISCARD inline FrameError ReadFramed(std::istream& is,
                                             std::string* payload) {
  uint32_t magic = 0;
  if (!ReadPod(is, &magic)) return FrameError::kTruncated;
  if (magic != kFrameMagic) return FrameError::kBadMagic;
  uint32_t version = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
  if (!ReadPod(is, &version)) return FrameError::kTruncated;
  if (version != kFrameVersion) return FrameError::kBadVersion;
  if (!ReadPod(is, &size) || !ReadPod(is, &crc)) return FrameError::kTruncated;
  // Guard against corrupt sizes before allocating (a flipped bit in the
  // size field must not become a 2^60-byte resize).
  if (size > (uint64_t{1} << 32)) return FrameError::kTruncated;
  payload->resize(static_cast<std::size_t>(size));
  if (size > 0) {
    is.read(payload->data(), static_cast<std::streamsize>(size));
    if (!is) return FrameError::kTruncated;
  }
  if (Crc32(*payload) != crc) return FrameError::kCrcMismatch;
  return FrameError::kOk;
}

/// A structure with the repo's checkpoint protocol (SaveState/LoadState).
template <typename T>
concept Checkpointable = requires(const T& c, T& m, std::ostream& os,
                                  std::istream& is) {
  { c.SaveState(os) } -> std::same_as<void>;
  { m.LoadState(is) } -> std::convertible_to<bool>;
};

/// Checkpoints `obj` inside a CRC32 frame.
template <Checkpointable T>
void SaveStateFramed(const T& obj, std::ostream& os) {
  std::ostringstream payload;
  obj.SaveState(payload);
  WriteFramed(os, payload.str());
}

/// Restores `obj` from a framed checkpoint — or, for compatibility, from an
/// unframed PR 1 stream (detected by the missing magic; the stream is
/// rewound and handed to LoadState verbatim).
template <Checkpointable T>
SLICK_NODISCARD FrameError LoadStateFramed(T* obj, std::istream& is) {
  uint32_t magic = 0;
  if (!ReadPod(is, &magic)) return FrameError::kTruncated;
  if (magic != kFrameMagic) {
    // Legacy unframed stream: rewind the probe and let the structure's own
    // tag check decide. Integrity then rests on its invariant validation.
    is.clear();
    is.seekg(-static_cast<std::streamoff>(sizeof(magic)), std::ios::cur);
    return obj->LoadState(is) ? FrameError::kOk : FrameError::kBadPayload;
  }
  is.clear();
  is.seekg(-static_cast<std::streamoff>(sizeof(magic)), std::ios::cur);
  std::string payload;
  const FrameError err = ReadFramed(is, &payload);
  if (err != FrameError::kOk) return err;
  std::istringstream body(payload);
  return obj->LoadState(body) ? FrameError::kOk : FrameError::kBadPayload;
}

}  // namespace slick::util
