#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <type_traits>
#include <vector>

namespace slick::util {

// Minimal binary serialization helpers for aggregator checkpoints (DSMS
// fault tolerance: snapshot the window state, restore after a crash, keep
// answering). Little-endian host format, versioned per structure via
// WriteTag/ExpectTag. Only trivially copyable payloads are supported —
// every hot-path value type in this library qualifies.

template <typename T>
  requires std::is_trivially_copyable_v<T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
bool ReadPod(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(is);
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void WritePodVec(std::ostream& os, const std::vector<T>& v) {
  WritePod<uint64_t>(os, v.size());
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
bool ReadPodVec(std::istream& is, std::vector<T>* v) {
  uint64_t count = 0;
  if (!ReadPod(is, &count)) return false;
  // Guard against corrupt counts before allocating.
  if (count > (uint64_t{1} << 40) / sizeof(T)) return false;
  v->resize(count);
  if (count > 0) {
    is.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(count * sizeof(T)));
  }
  return static_cast<bool>(is);
}

/// Structure tag + version header.
inline void WriteTag(std::ostream& os, uint32_t tag, uint32_t version) {
  WritePod(os, tag);
  WritePod(os, version);
}

inline bool ExpectTag(std::istream& is, uint32_t tag, uint32_t version) {
  uint32_t t = 0, v = 0;
  return ReadPod(is, &t) && ReadPod(is, &v) && t == tag && v == version;
}

/// Four-character structure tags.
constexpr uint32_t MakeTag(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

}  // namespace slick::util

