#pragma once

#include <cstdio>
#include <cstdlib>

// Lightweight runtime assertion macros.
//
// SLICK_CHECK is always on and used to guard API contracts (e.g., querying a
// range larger than the window). SLICK_DCHECK compiles away in release
// builds and is used for internal invariants on hot paths.

#define SLICK_CHECK(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SLICK_CHECK failed at %s:%d: %s -- %s\n",        \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define SLICK_DCHECK(cond, msg) SLICK_CHECK(cond, msg)
#else
#define SLICK_DCHECK(cond, msg) \
  do {                          \
  } while (0)
#endif

