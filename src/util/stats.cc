#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/check.h"

namespace slick::util {

double PercentileSorted(const std::vector<uint64_t>& sorted, double q) {
  SLICK_CHECK(!sorted.empty(), "percentile of empty sample set");
  SLICK_CHECK(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  if (sorted.size() == 1) return static_cast<double>(sorted[0]);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

LatencySummary Summarize(std::vector<uint64_t>& samples,
                         double drop_top_fraction) {
  LatencySummary s;
  // Explicit empty/single-sample handling: the interpolation in
  // PercentileSorted needs at least one element, and a single sample IS
  // every percentile — no interpolation, no outlier dropping (dropping the
  // only sample would turn a measurement into "no data").
  if (samples.empty()) return s;
  if (samples.size() == 1) {
    const auto v = static_cast<double>(samples[0]);
    s.count = 1;
    s.min_ns = s.p25_ns = s.median_ns = s.p75_ns = v;
    s.p99_ns = s.p999_ns = s.max_ns = s.avg_ns = v;
    return s;
  }
  std::sort(samples.begin(), samples.end());
  size_t keep = samples.size();
  if (drop_top_fraction > 0.0) {
    const auto dropped = static_cast<size_t>(
        std::floor(drop_top_fraction * static_cast<double>(samples.size())));
    keep = samples.size() - std::min(dropped, samples.size() - 1);
  }
  samples.resize(keep);
  s.count = keep;
  s.min_ns = static_cast<double>(samples.front());
  s.max_ns = static_cast<double>(samples.back());
  s.p25_ns = PercentileSorted(samples, 0.25);
  s.median_ns = PercentileSorted(samples, 0.50);
  s.p75_ns = PercentileSorted(samples, 0.75);
  s.p99_ns = PercentileSorted(samples, 0.99);
  s.p999_ns = PercentileSorted(samples, 0.999);
  const auto total = std::accumulate(samples.begin(), samples.end(),
                                     static_cast<long double>(0));
  s.avg_ns = static_cast<double>(total / static_cast<long double>(keep));
  return s;
}

std::string ToString(const LatencySummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "min=%.0f p25=%.0f med=%.0f p75=%.0f p99=%.0f max=%.0f "
                "avg=%.1f (ns, n=%llu)",
                s.min_ns, s.p25_ns, s.median_ns, s.p75_ns, s.p99_ns, s.max_ns,
                s.avg_ns, static_cast<unsigned long long>(s.count));
  return buf;
}

}  // namespace slick::util
