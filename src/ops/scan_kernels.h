#pragma once

// Structural scan kernels (DESIGN.md §16): the SIMD layer behind the
// TwoStacks flip, SlickDeque (Non-Inv)'s staircase reduction, and the
// shared multi-query answer walk.
//
//  * SuffixAdd/SuffixMax/SuffixMin — out[i] = v[i] ⊕ out[i+1], seeded
//    out[n-1] = v[n-1] ⊕ carry. This is the flip: it turns a region of
//    values into its suffix-aggregate array in one reverse pass, with a
//    carried lane prefix across blocks (and across a ring wrap, via the
//    carry argument). `out` may be disjoint from `v` or exactly equal to
//    it; partial overlap is not allowed.
//  * PrefixAdd/PrefixMax/PrefixMin — out[i] = out[i-1] ⊕ v[i], seeded
//    out[0] = carry ⊕ v[0]: the bulk-insert prefix-aggregate chain.
//  * MaxSurvivors/MinSurvivors — the staircase reduction: one reverse
//    pass that sets mask bit k iff v[k] strictly dominates the aggregate
//    of v[k+1..n) (i.e. survives the batch), and returns the whole-batch
//    aggregate. Callers must zero the mask words first.
//  * PrefixCountGreater — length of the maximal leading run of a
//    descending-sorted array strictly greater than a bound: one node of
//    the multi-query walk answers exactly that many ranges.
//  * SubtractArrays — out[i] = a[i] - b[i], the Range = Max - Min
//    projection over a batch of due answers.
//
// Exactness contract (same shape as ops/kernels.h): integer scans and all
// min/max scans and survivor masks are bit-identical to the sequential
// combine recurrence regardless of dispatch level — blocked evaluation
// only regroups the chain, association order within the sequence is
// preserved, and left-biased selection is associative. Floating-point
// *sum* scans reassociate (in-register log-step scan), so they are
// ULP-bounded, not bit-equal. The min/max kernels assume NaN-free input:
// a NaN breaks the total order that kAbsorbsTotal (and the blocked
// regrouping) relies on; NaN-laden streams take the generic scalar paths
// by using ops without registered kernels.
//
// Every wide variant carries a per-function target attribute; dispatch is
// ops/simd_dispatch.h's cached one-time level resolution. The scalar
// kernels are the always-available fallback and the differential oracle
// (tests/kernels_test.cc drives every compiled variant against them).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>

#include "ops/arith.h"
#include "ops/minmax.h"
#include "ops/simd_dispatch.h"
#include "ops/traits.h"
#include "util/annotations.h"

namespace slick::ops {
namespace kernels {

// ------------------------------------------------------------------
// Scalar scans: the exact sequential recurrences, comparison shapes
// matching each op's combine() (including NaN behaviour and tie bias).
// ------------------------------------------------------------------

SLICK_REALTIME inline void SuffixAddScalar(const double* v, double* out,
                                           std::size_t n, double carry) {
  for (std::size_t i = n; i-- > 0;) {
    carry = v[i] + carry;
    out[i] = carry;
  }
}

SLICK_REALTIME inline void SuffixAddScalar(const int64_t* v, int64_t* out,
                                           std::size_t n, int64_t carry) {
  for (std::size_t i = n; i-- > 0;) {
    carry = v[i] + carry;
    out[i] = carry;
  }
}

// combine(v, carry) = v < carry ? carry : v — Max::combine exactly.
SLICK_REALTIME inline void SuffixMaxScalar(const double* v, double* out,
                                           std::size_t n, double carry) {
  for (std::size_t i = n; i-- > 0;) {
    carry = v[i] < carry ? carry : v[i];
    out[i] = carry;
  }
}

SLICK_REALTIME inline void SuffixMaxScalar(const int64_t* v, int64_t* out,
                                           std::size_t n, int64_t carry) {
  for (std::size_t i = n; i-- > 0;) {
    carry = v[i] < carry ? carry : v[i];
    out[i] = carry;
  }
}

// combine(v, carry) = carry < v ? carry : v — Min::combine exactly.
SLICK_REALTIME inline void SuffixMinScalar(const double* v, double* out,
                                           std::size_t n, double carry) {
  for (std::size_t i = n; i-- > 0;) {
    carry = carry < v[i] ? carry : v[i];
    out[i] = carry;
  }
}

SLICK_REALTIME inline void SuffixMinScalar(const int64_t* v, int64_t* out,
                                           std::size_t n, int64_t carry) {
  for (std::size_t i = n; i-- > 0;) {
    carry = carry < v[i] ? carry : v[i];
    out[i] = carry;
  }
}

SLICK_REALTIME inline void PrefixAddScalar(const double* v, double* out,
                                           std::size_t n, double carry) {
  for (std::size_t i = 0; i < n; ++i) {
    carry = carry + v[i];
    out[i] = carry;
  }
}

SLICK_REALTIME inline void PrefixAddScalar(const int64_t* v, int64_t* out,
                                           std::size_t n, int64_t carry) {
  for (std::size_t i = 0; i < n; ++i) {
    carry = carry + v[i];
    out[i] = carry;
  }
}

// combine(carry, v) = carry < v ? v : carry.
SLICK_REALTIME inline void PrefixMaxScalar(const double* v, double* out,
                                           std::size_t n, double carry) {
  for (std::size_t i = 0; i < n; ++i) {
    carry = carry < v[i] ? v[i] : carry;
    out[i] = carry;
  }
}

SLICK_REALTIME inline void PrefixMaxScalar(const int64_t* v, int64_t* out,
                                           std::size_t n, int64_t carry) {
  for (std::size_t i = 0; i < n; ++i) {
    carry = carry < v[i] ? v[i] : carry;
    out[i] = carry;
  }
}

// combine(carry, v) = v < carry ? v : carry.
SLICK_REALTIME inline void PrefixMinScalar(const double* v, double* out,
                                           std::size_t n, double carry) {
  for (std::size_t i = 0; i < n; ++i) {
    carry = v[i] < carry ? v[i] : carry;
    out[i] = carry;
  }
}

SLICK_REALTIME inline void PrefixMinScalar(const int64_t* v, int64_t* out,
                                           std::size_t n, int64_t carry) {
  for (std::size_t i = 0; i < n; ++i) {
    carry = v[i] < carry ? v[i] : carry;
    out[i] = carry;
  }
}

// ------------------------------------------------------------------
// Scalar staircase survivor masks. Bit k is set iff v[k] strictly
// dominates the aggregate of everything after it — !Absorbs(suffix, v[k])
// for the order-induced absorbs of Max/Min. Mask words must arrive
// zeroed; the newest element (k = n-1) gets the identity as its suffix,
// so callers that must keep it unconditionally (SlickDeque) force its
// bit afterwards.
// ------------------------------------------------------------------

SLICK_REALTIME inline double MaxSurvivorsScalar(const double* v, std::size_t n,
                                                uint64_t* mask) {
  double carry = Max::identity();
  for (std::size_t i = n; i-- > 0;) {
    if (carry < v[i]) mask[i >> 6] |= uint64_t{1} << (i & 63);
    carry = carry < v[i] ? v[i] : carry;
  }
  return carry;
}

SLICK_REALTIME inline int64_t MaxSurvivorsScalar(const int64_t* v,
                                                 std::size_t n,
                                                 uint64_t* mask) {
  int64_t carry = MaxInt::identity();
  for (std::size_t i = n; i-- > 0;) {
    if (carry < v[i]) mask[i >> 6] |= uint64_t{1} << (i & 63);
    carry = carry < v[i] ? v[i] : carry;
  }
  return carry;
}

SLICK_REALTIME inline double MinSurvivorsScalar(const double* v, std::size_t n,
                                                uint64_t* mask) {
  double carry = Min::identity();
  for (std::size_t i = n; i-- > 0;) {
    if (v[i] < carry) mask[i >> 6] |= uint64_t{1} << (i & 63);
    carry = v[i] < carry ? v[i] : carry;
  }
  return carry;
}

SLICK_REALTIME inline int64_t MinSurvivorsScalar(const int64_t* v,
                                                 std::size_t n,
                                                 uint64_t* mask) {
  int64_t carry = MinInt::identity();
  for (std::size_t i = n; i-- > 0;) {
    if (v[i] < carry) mask[i >> 6] |= uint64_t{1} << (i & 63);
    carry = v[i] < carry ? v[i] : carry;
  }
  return carry;
}

// ------------------------------------------------------------------
// Scalar multi-query helpers.
// ------------------------------------------------------------------

/// Length of the maximal leading run of `v` (sorted descending) with
/// v[j] > bound. With a descending array this is also the count of all
/// elements > bound, which is what the multi-query walk needs: the
/// current deque node answers exactly the ranges still above its age.
SLICK_REALTIME inline std::size_t PrefixCountGreaterScalar(
    const std::size_t* v, std::size_t n, std::size_t bound) {
  std::size_t i = 0;
  while (i < n && v[i] > bound) ++i;
  return i;
}

SLICK_REALTIME inline void SubtractArraysScalar(
    const double* SLICK_RESTRICT a, const double* SLICK_RESTRICT b,
    double* SLICK_RESTRICT out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

#if defined(SLICK_SIMD_X86)

// ------------------------------------------------------------------
// AVX2 variants. Lane-shift helpers move elements toward lane 0 (Down,
// suffix scans) or lane 3 (Up, prefix scans), filling vacated lanes from
// `fill` (the op identity). The combine helpers order maxpd/minpd
// operands so each lane behaves exactly like the scalar comparison (the
// second operand wins compares-false and NaN, matching ops/kernels.h).
//
// Blocked scan shape: 2 log-steps build the in-block running aggregate
// preserving sequence order, the block result combines with the carried
// aggregate of everything already scanned, and only a 1-lane broadcast +
// combine stays on the block-to-block critical path.
// ------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256d Avx2AddPd(__m256d a,
                                                         __m256d b) {
  return _mm256_add_pd(a, b);
}
// combine(a, b) = a < b ? b : a, NaN keeps a.
__attribute__((target("avx2"))) inline __m256d Avx2MaxPd(__m256d a,
                                                         __m256d b) {
  return _mm256_max_pd(b, a);
}
// combine(a, b) = b < a ? b : a, NaN keeps a.
__attribute__((target("avx2"))) inline __m256d Avx2MinPd(__m256d a,
                                                         __m256d b) {
  return _mm256_min_pd(b, a);
}
__attribute__((target("avx2"))) inline __m256i Avx2AddI64(__m256i a,
                                                          __m256i b) {
  return _mm256_add_epi64(a, b);
}
// combine(a, b) = a < b ? b : a (AVX2 has no packed 64-bit max).
__attribute__((target("avx2"))) inline __m256i Avx2MaxI64(__m256i a,
                                                          __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(b, a));
}
// combine(a, b) = b < a ? b : a.
__attribute__((target("avx2"))) inline __m256i Avx2MinI64(__m256i a,
                                                          __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

__attribute__((target("avx2"))) inline __m256d Avx2Down1Pd(__m256d x,
                                                           __m256d fill) {
  return _mm256_blend_pd(_mm256_permute4x64_pd(x, _MM_SHUFFLE(3, 3, 2, 1)),
                         fill, 0b1000);
}
__attribute__((target("avx2"))) inline __m256d Avx2Down2Pd(__m256d x,
                                                           __m256d fill) {
  return _mm256_blend_pd(_mm256_permute4x64_pd(x, _MM_SHUFFLE(3, 3, 3, 2)),
                         fill, 0b1100);
}
__attribute__((target("avx2"))) inline __m256d Avx2Up1Pd(__m256d x,
                                                         __m256d fill) {
  return _mm256_blend_pd(_mm256_permute4x64_pd(x, _MM_SHUFFLE(2, 1, 0, 0)),
                         fill, 0b0001);
}
__attribute__((target("avx2"))) inline __m256d Avx2Up2Pd(__m256d x,
                                                         __m256d fill) {
  return _mm256_blend_pd(_mm256_permute4x64_pd(x, _MM_SHUFFLE(1, 0, 0, 0)),
                         fill, 0b0011);
}
__attribute__((target("avx2"))) inline __m256i Avx2Down1I64(__m256i x,
                                                            __m256i fill) {
  return _mm256_blend_epi32(_mm256_permute4x64_epi64(x, _MM_SHUFFLE(3, 3, 2, 1)),
                            fill, 0b11000000);
}
__attribute__((target("avx2"))) inline __m256i Avx2Down2I64(__m256i x,
                                                            __m256i fill) {
  return _mm256_blend_epi32(_mm256_permute4x64_epi64(x, _MM_SHUFFLE(3, 3, 3, 2)),
                            fill, 0b11110000);
}
__attribute__((target("avx2"))) inline __m256i Avx2Up1I64(__m256i x,
                                                          __m256i fill) {
  return _mm256_blend_epi32(_mm256_permute4x64_epi64(x, _MM_SHUFFLE(2, 1, 0, 0)),
                            fill, 0b00000011);
}
__attribute__((target("avx2"))) inline __m256i Avx2Up2I64(__m256i x,
                                                          __m256i fill) {
  return _mm256_blend_epi32(_mm256_permute4x64_epi64(x, _MM_SHUFFLE(1, 0, 0, 0)),
                            fill, 0b00001111);
}

__attribute__((target("avx2"))) inline __m256d Avx2Lane0Pd(__m256d x) {
  return _mm256_permute4x64_pd(x, 0);
}
__attribute__((target("avx2"))) inline __m256d Avx2Lane3Pd(__m256d x) {
  return _mm256_permute4x64_pd(x, 0xFF);
}
__attribute__((target("avx2"))) inline __m256i Avx2Lane0I64(__m256i x) {
  return _mm256_permute4x64_epi64(x, 0);
}
__attribute__((target("avx2"))) inline __m256i Avx2Lane3I64(__m256i x) {
  return _mm256_permute4x64_epi64(x, 0xFF);
}

#define SLICK_AVX2_SUFFIX_SCAN(NAME, TYPE, VEC, COMBINE, DOWN1, DOWN2,       \
                               LANE0, SET1, LOAD, STORE, IDENT, SCALAR_STEP) \
  __attribute__((target("avx2"))) inline void NAME(                         \
      const TYPE* v, TYPE* out, std::size_t n, TYPE carry) {                \
    const VEC fill = SET1(IDENT);                                           \
    std::size_t i = n;                                                      \
    while (i % 4 != 0) {                                                    \
      --i;                                                                  \
      SCALAR_STEP;                                                          \
      out[i] = carry;                                                       \
    }                                                                       \
    VEC c = SET1(carry);                                                    \
    for (; i != 0; i -= 4) {                                                \
      VEC x = LOAD(v + i - 4);                                              \
      x = COMBINE(x, DOWN1(x, fill));                                       \
      x = COMBINE(x, DOWN2(x, fill));                                       \
      STORE(out + i - 4, COMBINE(x, c));                                    \
      c = COMBINE(LANE0(x), c);                                             \
    }                                                                       \
  }

#define SLICK_AVX2_PREFIX_SCAN(NAME, TYPE, VEC, COMBINE, UP1, UP2, LANE3,   \
                               SET1, LOAD, STORE, IDENT, SCALAR_STEP)       \
  __attribute__((target("avx2"))) inline void NAME(                         \
      const TYPE* v, TYPE* out, std::size_t n, TYPE carry) {                \
    const VEC fill = SET1(IDENT);                                           \
    VEC c = SET1(carry);                                                    \
    std::size_t i = 0;                                                      \
    for (; i + 4 <= n; i += 4) {                                            \
      VEC x = LOAD(v + i);                                                  \
      x = COMBINE(UP1(x, fill), x);                                         \
      x = COMBINE(UP2(x, fill), x);                                         \
      STORE(out + i, COMBINE(c, x));                                        \
      c = COMBINE(c, LANE3(x));                                             \
    }                                                                       \
    if (i < n) {                                                            \
      TYPE lanes[4];                                                        \
      STORE(lanes, c);                                                      \
      carry = lanes[0];                                                     \
      for (; i < n; ++i) {                                                  \
        SCALAR_STEP;                                                        \
        out[i] = carry;                                                     \
      }                                                                     \
    }                                                                       \
  }

#define SLICK_LOADU_PD(p) _mm256_loadu_pd(p)
#define SLICK_STOREU_PD(p, x) _mm256_storeu_pd((p), (x))
#define SLICK_LOADU_I64(p) \
  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))
#define SLICK_STOREU_I64(p, x) \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), (x))

SLICK_AVX2_SUFFIX_SCAN(SuffixAddAvx2, double, __m256d, Avx2AddPd, Avx2Down1Pd,
                       Avx2Down2Pd, Avx2Lane0Pd, _mm256_set1_pd,
                       SLICK_LOADU_PD, SLICK_STOREU_PD, 0.0,
                       carry = v[i] + carry)
SLICK_AVX2_SUFFIX_SCAN(SuffixAddAvx2, int64_t, __m256i, Avx2AddI64,
                       Avx2Down1I64, Avx2Down2I64, Avx2Lane0I64,
                       _mm256_set1_epi64x, SLICK_LOADU_I64, SLICK_STOREU_I64,
                       int64_t{0}, carry = v[i] + carry)
SLICK_AVX2_SUFFIX_SCAN(SuffixMaxAvx2, double, __m256d, Avx2MaxPd, Avx2Down1Pd,
                       Avx2Down2Pd, Avx2Lane0Pd, _mm256_set1_pd,
                       SLICK_LOADU_PD, SLICK_STOREU_PD, Max::identity(),
                       carry = v[i] < carry ? carry : v[i])
SLICK_AVX2_SUFFIX_SCAN(SuffixMaxAvx2, int64_t, __m256i, Avx2MaxI64,
                       Avx2Down1I64, Avx2Down2I64, Avx2Lane0I64,
                       _mm256_set1_epi64x, SLICK_LOADU_I64, SLICK_STOREU_I64,
                       MaxInt::identity(),
                       carry = v[i] < carry ? carry : v[i])
SLICK_AVX2_SUFFIX_SCAN(SuffixMinAvx2, double, __m256d, Avx2MinPd, Avx2Down1Pd,
                       Avx2Down2Pd, Avx2Lane0Pd, _mm256_set1_pd,
                       SLICK_LOADU_PD, SLICK_STOREU_PD, Min::identity(),
                       carry = carry < v[i] ? carry : v[i])
SLICK_AVX2_SUFFIX_SCAN(SuffixMinAvx2, int64_t, __m256i, Avx2MinI64,
                       Avx2Down1I64, Avx2Down2I64, Avx2Lane0I64,
                       _mm256_set1_epi64x, SLICK_LOADU_I64, SLICK_STOREU_I64,
                       MinInt::identity(),
                       carry = carry < v[i] ? carry : v[i])

SLICK_AVX2_PREFIX_SCAN(PrefixAddAvx2, double, __m256d, Avx2AddPd, Avx2Up1Pd,
                       Avx2Up2Pd, Avx2Lane3Pd, _mm256_set1_pd, SLICK_LOADU_PD,
                       SLICK_STOREU_PD, 0.0, carry = carry + v[i])
SLICK_AVX2_PREFIX_SCAN(PrefixAddAvx2, int64_t, __m256i, Avx2AddI64,
                       Avx2Up1I64, Avx2Up2I64, Avx2Lane3I64,
                       _mm256_set1_epi64x, SLICK_LOADU_I64, SLICK_STOREU_I64,
                       int64_t{0}, carry = carry + v[i])
SLICK_AVX2_PREFIX_SCAN(PrefixMaxAvx2, double, __m256d, Avx2MaxPd, Avx2Up1Pd,
                       Avx2Up2Pd, Avx2Lane3Pd, _mm256_set1_pd, SLICK_LOADU_PD,
                       SLICK_STOREU_PD, Max::identity(),
                       carry = carry < v[i] ? v[i] : carry)
SLICK_AVX2_PREFIX_SCAN(PrefixMaxAvx2, int64_t, __m256i, Avx2MaxI64,
                       Avx2Up1I64, Avx2Up2I64, Avx2Lane3I64,
                       _mm256_set1_epi64x, SLICK_LOADU_I64, SLICK_STOREU_I64,
                       MaxInt::identity(), carry = carry < v[i] ? v[i] : carry)
SLICK_AVX2_PREFIX_SCAN(PrefixMinAvx2, double, __m256d, Avx2MinPd, Avx2Up1Pd,
                       Avx2Up2Pd, Avx2Lane3Pd, _mm256_set1_pd, SLICK_LOADU_PD,
                       SLICK_STOREU_PD, Min::identity(),
                       carry = v[i] < carry ? v[i] : carry)
SLICK_AVX2_PREFIX_SCAN(PrefixMinAvx2, int64_t, __m256i, Avx2MinI64,
                       Avx2Up1I64, Avx2Up2I64, Avx2Lane3I64,
                       _mm256_set1_epi64x, SLICK_LOADU_I64, SLICK_STOREU_I64,
                       MinInt::identity(), carry = v[i] < carry ? v[i] : carry)

// Survivor masks: the in-block exclusive suffix is the inclusive scan
// shifted down one lane (identity-filled) combined with the carry, so one
// packed compare yields 4 survivor bits at once.

__attribute__((target("avx2"))) inline int64_t MaxSurvivorsAvx2(
    const int64_t* v, std::size_t n, uint64_t* mask) {
  const __m256i fill = _mm256_set1_epi64x(MaxInt::identity());
  std::size_t i = n;
  int64_t carry = MaxInt::identity();
  while (i % 4 != 0) {
    --i;
    if (carry < v[i]) mask[i >> 6] |= uint64_t{1} << (i & 63);
    carry = carry < v[i] ? v[i] : carry;
  }
  __m256i c = _mm256_set1_epi64x(carry);
  for (; i != 0; i -= 4) {
    const __m256i x = SLICK_LOADU_I64(v + i - 4);
    __m256i incl = Avx2MaxI64(x, Avx2Down1I64(x, fill));
    incl = Avx2MaxI64(incl, Avx2Down2I64(incl, fill));
    const __m256i excl = Avx2MaxI64(Avx2Down1I64(incl, fill), c);
    const int m4 =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(x, excl)));
    mask[(i - 4) >> 6] |= static_cast<uint64_t>(static_cast<unsigned>(m4))
                          << ((i - 4) & 63);
    c = Avx2MaxI64(Avx2Lane0I64(incl), c);
  }
  return _mm256_extract_epi64(c, 0);
}

__attribute__((target("avx2"))) inline double MaxSurvivorsAvx2(
    const double* v, std::size_t n, uint64_t* mask) {
  const __m256d fill = _mm256_set1_pd(Max::identity());
  std::size_t i = n;
  double carry = Max::identity();
  while (i % 4 != 0) {
    --i;
    if (carry < v[i]) mask[i >> 6] |= uint64_t{1} << (i & 63);
    carry = carry < v[i] ? v[i] : carry;
  }
  __m256d c = _mm256_set1_pd(carry);
  for (; i != 0; i -= 4) {
    const __m256d x = SLICK_LOADU_PD(v + i - 4);
    __m256d incl = Avx2MaxPd(x, Avx2Down1Pd(x, fill));
    incl = Avx2MaxPd(incl, Avx2Down2Pd(incl, fill));
    const __m256d excl = Avx2MaxPd(Avx2Down1Pd(incl, fill), c);
    const int m4 = _mm256_movemask_pd(_mm256_cmp_pd(x, excl, _CMP_GT_OQ));
    mask[(i - 4) >> 6] |= static_cast<uint64_t>(static_cast<unsigned>(m4))
                          << ((i - 4) & 63);
    c = Avx2MaxPd(Avx2Lane0Pd(incl), c);
  }
  return _mm256_cvtsd_f64(c);
}

__attribute__((target("avx2"))) inline int64_t MinSurvivorsAvx2(
    const int64_t* v, std::size_t n, uint64_t* mask) {
  const __m256i fill = _mm256_set1_epi64x(MinInt::identity());
  std::size_t i = n;
  int64_t carry = MinInt::identity();
  while (i % 4 != 0) {
    --i;
    if (v[i] < carry) mask[i >> 6] |= uint64_t{1} << (i & 63);
    carry = v[i] < carry ? v[i] : carry;
  }
  __m256i c = _mm256_set1_epi64x(carry);
  for (; i != 0; i -= 4) {
    const __m256i x = SLICK_LOADU_I64(v + i - 4);
    __m256i incl = Avx2MinI64(x, Avx2Down1I64(x, fill));
    incl = Avx2MinI64(incl, Avx2Down2I64(incl, fill));
    const __m256i excl = Avx2MinI64(Avx2Down1I64(incl, fill), c);
    const int m4 =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(excl, x)));
    mask[(i - 4) >> 6] |= static_cast<uint64_t>(static_cast<unsigned>(m4))
                          << ((i - 4) & 63);
    c = Avx2MinI64(Avx2Lane0I64(incl), c);
  }
  return _mm256_extract_epi64(c, 0);
}

__attribute__((target("avx2"))) inline double MinSurvivorsAvx2(
    const double* v, std::size_t n, uint64_t* mask) {
  const __m256d fill = _mm256_set1_pd(Min::identity());
  std::size_t i = n;
  double carry = Min::identity();
  while (i % 4 != 0) {
    --i;
    if (v[i] < carry) mask[i >> 6] |= uint64_t{1} << (i & 63);
    carry = v[i] < carry ? v[i] : carry;
  }
  __m256d c = _mm256_set1_pd(carry);
  for (; i != 0; i -= 4) {
    const __m256d x = SLICK_LOADU_PD(v + i - 4);
    __m256d incl = Avx2MinPd(x, Avx2Down1Pd(x, fill));
    incl = Avx2MinPd(incl, Avx2Down2Pd(incl, fill));
    const __m256d excl = Avx2MinPd(Avx2Down1Pd(incl, fill), c);
    const int m4 = _mm256_movemask_pd(_mm256_cmp_pd(x, excl, _CMP_LT_OQ));
    mask[(i - 4) >> 6] |= static_cast<uint64_t>(static_cast<unsigned>(m4))
                          << ((i - 4) & 63);
    c = Avx2MinPd(Avx2Lane0Pd(incl), c);
  }
  return _mm256_cvtsd_f64(c);
}

__attribute__((target("avx2"))) inline std::size_t PrefixCountGreaterAvx2(
    const std::size_t* v, std::size_t n, std::size_t bound) {
  static_assert(sizeof(std::size_t) == sizeof(int64_t),
                "64-bit size_t assumed by the packed compare");
  // Bias by 2^63 so the signed packed compare orders unsigned values.
  const __m256i sign = _mm256_set1_epi64x(std::numeric_limits<int64_t>::min());
  const __m256i b = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<int64_t>(bound)), sign);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)), sign);
    const int m =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(x, b)));
    if (m != 0b1111) {
      return i + static_cast<std::size_t>(
                     std::countr_one(static_cast<unsigned>(m)));
    }
  }
  while (i < n && v[i] > bound) ++i;
  return i;
}

__attribute__((target("avx2"))) inline void SubtractArraysAvx2(
    const double* SLICK_RESTRICT a, const double* SLICK_RESTRICT b,
    double* SLICK_RESTRICT out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                   _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

// ------------------------------------------------------------------
// AVX-512F variants: 8 lanes, valignq-based lane shifts, native 64-bit
// integer min/max, and compare-to-mask producing 8 survivor bits per
// block. (-mavx512f implies AVX2 in GCC/clang, and any host passing the
// avx512f CPUID test has AVX2, so the 256-bit helpers remain usable.)
//
// GCC's _mm512_max_pd/_mm512_alignr_epi64 are built on
// _mm512_undefined_*(), whose self-initialized local trips a
// -Wmaybe-uninitialized false positive when inlined here (GCC PR105593);
// the pragma scopes the suppression to this section only.
// ------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

__attribute__((target("avx512f"))) inline __m512d Avx512AddPd(__m512d a,
                                                              __m512d b) {
  return _mm512_add_pd(a, b);
}
__attribute__((target("avx512f"))) inline __m512d Avx512MaxPd(__m512d a,
                                                              __m512d b) {
  return _mm512_max_pd(b, a);
}
__attribute__((target("avx512f"))) inline __m512d Avx512MinPd(__m512d a,
                                                              __m512d b) {
  return _mm512_min_pd(b, a);
}
__attribute__((target("avx512f"))) inline __m512i Avx512AddI64(__m512i a,
                                                               __m512i b) {
  return _mm512_add_epi64(a, b);
}
__attribute__((target("avx512f"))) inline __m512i Avx512MaxI64(__m512i a,
                                                               __m512i b) {
  return _mm512_max_epi64(a, b);
}
__attribute__((target("avx512f"))) inline __m512i Avx512MinI64(__m512i a,
                                                               __m512i b) {
  return _mm512_min_epi64(a, b);
}

// Lane j of DownK is x[j+k] (identity above); lane j of UpK is x[j-k]
// (identity below) — valignq over the {x, identity} pair.
__attribute__((target("avx512f"))) inline __m512i Avx512DownKI64(
    __m512i x, __m512i fill, int k) {
  switch (k) {
    case 1: return _mm512_alignr_epi64(fill, x, 1);
    case 2: return _mm512_alignr_epi64(fill, x, 2);
    default: return _mm512_alignr_epi64(fill, x, 4);
  }
}
__attribute__((target("avx512f"))) inline __m512i Avx512UpKI64(__m512i x,
                                                               __m512i fill,
                                                               int k) {
  switch (k) {
    case 1: return _mm512_alignr_epi64(x, fill, 7);
    case 2: return _mm512_alignr_epi64(x, fill, 6);
    default: return _mm512_alignr_epi64(x, fill, 4);
  }
}
__attribute__((target("avx512f"))) inline __m512d Avx512DownKPd(__m512d x,
                                                                __m512d fill,
                                                                int k) {
  return _mm512_castsi512_pd(Avx512DownKI64(
      _mm512_castpd_si512(x), _mm512_castpd_si512(fill), k));
}
__attribute__((target("avx512f"))) inline __m512d Avx512UpKPd(__m512d x,
                                                              __m512d fill,
                                                              int k) {
  return _mm512_castsi512_pd(Avx512UpKI64(
      _mm512_castpd_si512(x), _mm512_castpd_si512(fill), k));
}

__attribute__((target("avx512f"))) inline __m512d Avx512Lane0Pd(__m512d x) {
  return _mm512_broadcastsd_pd(_mm512_castpd512_pd128(x));
}
__attribute__((target("avx512f"))) inline __m512d Avx512Lane7Pd(__m512d x) {
  return _mm512_permutexvar_pd(_mm512_set1_epi64(7), x);
}
__attribute__((target("avx512f"))) inline __m512i Avx512Lane0I64(__m512i x) {
  return _mm512_broadcastq_epi64(_mm512_castsi512_si128(x));
}
__attribute__((target("avx512f"))) inline __m512i Avx512Lane7I64(__m512i x) {
  return _mm512_permutexvar_epi64(_mm512_set1_epi64(7), x);
}

#define SLICK_AVX512_SUFFIX_SCAN(NAME, TYPE, VEC, COMBINE, DOWNK, LANE0,    \
                                 SET1, LOAD, STORE, IDENT, SCALAR_STEP)     \
  __attribute__((target("avx512f"))) inline void NAME(                      \
      const TYPE* v, TYPE* out, std::size_t n, TYPE carry) {                \
    const VEC fill = SET1(IDENT);                                           \
    std::size_t i = n;                                                      \
    while (i % 8 != 0) {                                                    \
      --i;                                                                  \
      SCALAR_STEP;                                                          \
      out[i] = carry;                                                       \
    }                                                                       \
    VEC c = SET1(carry);                                                    \
    for (; i != 0; i -= 8) {                                                \
      VEC x = LOAD(v + i - 8);                                              \
      x = COMBINE(x, DOWNK(x, fill, 1));                                    \
      x = COMBINE(x, DOWNK(x, fill, 2));                                    \
      x = COMBINE(x, DOWNK(x, fill, 4));                                    \
      STORE(out + i - 8, COMBINE(x, c));                                    \
      c = COMBINE(LANE0(x), c);                                             \
    }                                                                       \
  }

#define SLICK_AVX512_PREFIX_SCAN(NAME, TYPE, VEC, COMBINE, UPK, LANE7,      \
                                 SET1, LOAD, STORE, IDENT, SCALAR_STEP)     \
  __attribute__((target("avx512f"))) inline void NAME(                      \
      const TYPE* v, TYPE* out, std::size_t n, TYPE carry) {                \
    const VEC fill = SET1(IDENT);                                           \
    VEC c = SET1(carry);                                                    \
    std::size_t i = 0;                                                      \
    for (; i + 8 <= n; i += 8) {                                            \
      VEC x = LOAD(v + i);                                                  \
      x = COMBINE(UPK(x, fill, 1), x);                                      \
      x = COMBINE(UPK(x, fill, 2), x);                                      \
      x = COMBINE(UPK(x, fill, 4), x);                                      \
      STORE(out + i, COMBINE(c, x));                                        \
      c = COMBINE(c, LANE7(x));                                             \
    }                                                                       \
    if (i < n) {                                                            \
      TYPE lanes[8];                                                        \
      STORE(lanes, c);                                                      \
      carry = lanes[0];                                                     \
      for (; i < n; ++i) {                                                  \
        SCALAR_STEP;                                                        \
        out[i] = carry;                                                     \
      }                                                                     \
    }                                                                       \
  }

#define SLICK_LOADU_PD512(p) _mm512_loadu_pd(p)
#define SLICK_STOREU_PD512(p, x) _mm512_storeu_pd((p), (x))
#define SLICK_LOADU_I512(p) _mm512_loadu_si512(p)
#define SLICK_STOREU_I512(p, x) _mm512_storeu_si512((p), (x))

SLICK_AVX512_SUFFIX_SCAN(SuffixAddAvx512, double, __m512d, Avx512AddPd,
                         Avx512DownKPd, Avx512Lane0Pd, _mm512_set1_pd,
                         SLICK_LOADU_PD512, SLICK_STOREU_PD512, 0.0,
                         carry = v[i] + carry)
SLICK_AVX512_SUFFIX_SCAN(SuffixAddAvx512, int64_t, __m512i, Avx512AddI64,
                         Avx512DownKI64, Avx512Lane0I64, _mm512_set1_epi64,
                         SLICK_LOADU_I512, SLICK_STOREU_I512, int64_t{0},
                         carry = v[i] + carry)
SLICK_AVX512_SUFFIX_SCAN(SuffixMaxAvx512, double, __m512d, Avx512MaxPd,
                         Avx512DownKPd, Avx512Lane0Pd, _mm512_set1_pd,
                         SLICK_LOADU_PD512, SLICK_STOREU_PD512,
                         Max::identity(), carry = v[i] < carry ? carry : v[i])
SLICK_AVX512_SUFFIX_SCAN(SuffixMaxAvx512, int64_t, __m512i, Avx512MaxI64,
                         Avx512DownKI64, Avx512Lane0I64, _mm512_set1_epi64,
                         SLICK_LOADU_I512, SLICK_STOREU_I512,
                         MaxInt::identity(),
                         carry = v[i] < carry ? carry : v[i])
SLICK_AVX512_SUFFIX_SCAN(SuffixMinAvx512, double, __m512d, Avx512MinPd,
                         Avx512DownKPd, Avx512Lane0Pd, _mm512_set1_pd,
                         SLICK_LOADU_PD512, SLICK_STOREU_PD512,
                         Min::identity(), carry = carry < v[i] ? carry : v[i])
SLICK_AVX512_SUFFIX_SCAN(SuffixMinAvx512, int64_t, __m512i, Avx512MinI64,
                         Avx512DownKI64, Avx512Lane0I64, _mm512_set1_epi64,
                         SLICK_LOADU_I512, SLICK_STOREU_I512,
                         MinInt::identity(),
                         carry = carry < v[i] ? carry : v[i])

SLICK_AVX512_PREFIX_SCAN(PrefixAddAvx512, double, __m512d, Avx512AddPd,
                         Avx512UpKPd, Avx512Lane7Pd, _mm512_set1_pd,
                         SLICK_LOADU_PD512, SLICK_STOREU_PD512, 0.0,
                         carry = carry + v[i])
SLICK_AVX512_PREFIX_SCAN(PrefixAddAvx512, int64_t, __m512i, Avx512AddI64,
                         Avx512UpKI64, Avx512Lane7I64, _mm512_set1_epi64,
                         SLICK_LOADU_I512, SLICK_STOREU_I512, int64_t{0},
                         carry = carry + v[i])
SLICK_AVX512_PREFIX_SCAN(PrefixMaxAvx512, double, __m512d, Avx512MaxPd,
                         Avx512UpKPd, Avx512Lane7Pd, _mm512_set1_pd,
                         SLICK_LOADU_PD512, SLICK_STOREU_PD512,
                         Max::identity(), carry = carry < v[i] ? v[i] : carry)
SLICK_AVX512_PREFIX_SCAN(PrefixMaxAvx512, int64_t, __m512i, Avx512MaxI64,
                         Avx512UpKI64, Avx512Lane7I64, _mm512_set1_epi64,
                         SLICK_LOADU_I512, SLICK_STOREU_I512,
                         MaxInt::identity(),
                         carry = carry < v[i] ? v[i] : carry)
SLICK_AVX512_PREFIX_SCAN(PrefixMinAvx512, double, __m512d, Avx512MinPd,
                         Avx512UpKPd, Avx512Lane7Pd, _mm512_set1_pd,
                         SLICK_LOADU_PD512, SLICK_STOREU_PD512,
                         Min::identity(), carry = v[i] < carry ? v[i] : carry)
SLICK_AVX512_PREFIX_SCAN(PrefixMinAvx512, int64_t, __m512i, Avx512MinI64,
                         Avx512UpKI64, Avx512Lane7I64, _mm512_set1_epi64,
                         SLICK_LOADU_I512, SLICK_STOREU_I512,
                         MinInt::identity(),
                         carry = v[i] < carry ? v[i] : carry)

#define SLICK_AVX512_SURVIVORS(NAME, TYPE, VEC, COMBINE, DOWNK, LANE0,      \
                               SET1, LOAD, CMPMASK, EXTRACT0, IDENT,        \
                               SCALAR_TEST, SCALAR_STEP)                    \
  __attribute__((target("avx512f"))) inline TYPE NAME(                     \
      const TYPE* v, std::size_t n, uint64_t* mask) {                       \
    const VEC fill = SET1(IDENT);                                           \
    std::size_t i = n;                                                      \
    TYPE carry = IDENT;                                                     \
    while (i % 8 != 0) {                                                    \
      --i;                                                                  \
      if (SCALAR_TEST) mask[i >> 6] |= uint64_t{1} << (i & 63);             \
      SCALAR_STEP;                                                          \
    }                                                                       \
    VEC c = SET1(carry);                                                    \
    for (; i != 0; i -= 8) {                                                \
      const VEC x = LOAD(v + i - 8);                                        \
      VEC incl = COMBINE(x, DOWNK(x, fill, 1));                             \
      incl = COMBINE(incl, DOWNK(incl, fill, 2));                           \
      incl = COMBINE(incl, DOWNK(incl, fill, 4));                           \
      const VEC excl = COMBINE(DOWNK(incl, fill, 1), c);                    \
      const __mmask8 m = CMPMASK(x, excl);                                  \
      mask[(i - 8) >> 6] |= static_cast<uint64_t>(m) << ((i - 8) & 63);     \
      c = COMBINE(LANE0(incl), c);                                          \
    }                                                                       \
    return EXTRACT0(c);                                                     \
  }

#define SLICK_CMP_GT_PD512(x, excl) _mm512_cmp_pd_mask((x), (excl), _CMP_GT_OQ)
#define SLICK_CMP_LT_PD512(x, excl) _mm512_cmp_pd_mask((x), (excl), _CMP_LT_OQ)
#define SLICK_CMP_GT_I512(x, excl) _mm512_cmpgt_epi64_mask((x), (excl))
#define SLICK_CMP_LT_I512(x, excl) _mm512_cmpgt_epi64_mask((excl), (x))
#define SLICK_EXTRACT0_PD512(c) _mm512_cvtsd_f64(c)
#define SLICK_EXTRACT0_I512(c) _mm_cvtsi128_si64(_mm512_castsi512_si128(c))

SLICK_AVX512_SURVIVORS(MaxSurvivorsAvx512, double, __m512d, Avx512MaxPd,
                       Avx512DownKPd, Avx512Lane0Pd, _mm512_set1_pd,
                       SLICK_LOADU_PD512, SLICK_CMP_GT_PD512,
                       SLICK_EXTRACT0_PD512, Max::identity(), carry < v[i],
                       carry = carry < v[i] ? v[i] : carry)
SLICK_AVX512_SURVIVORS(MaxSurvivorsAvx512, int64_t, __m512i, Avx512MaxI64,
                       Avx512DownKI64, Avx512Lane0I64, _mm512_set1_epi64,
                       SLICK_LOADU_I512, SLICK_CMP_GT_I512,
                       SLICK_EXTRACT0_I512, MaxInt::identity(), carry < v[i],
                       carry = carry < v[i] ? v[i] : carry)
SLICK_AVX512_SURVIVORS(MinSurvivorsAvx512, double, __m512d, Avx512MinPd,
                       Avx512DownKPd, Avx512Lane0Pd, _mm512_set1_pd,
                       SLICK_LOADU_PD512, SLICK_CMP_LT_PD512,
                       SLICK_EXTRACT0_PD512, Min::identity(), v[i] < carry,
                       carry = v[i] < carry ? v[i] : carry)
SLICK_AVX512_SURVIVORS(MinSurvivorsAvx512, int64_t, __m512i, Avx512MinI64,
                       Avx512DownKI64, Avx512Lane0I64, _mm512_set1_epi64,
                       SLICK_LOADU_I512, SLICK_CMP_LT_I512,
                       SLICK_EXTRACT0_I512, MinInt::identity(), v[i] < carry,
                       carry = v[i] < carry ? v[i] : carry)

__attribute__((target("avx512f"))) inline std::size_t PrefixCountGreaterAvx512(
    const std::size_t* v, std::size_t n, std::size_t bound) {
  static_assert(sizeof(std::size_t) == sizeof(uint64_t),
                "64-bit size_t assumed by the packed compare");
  const __m512i b = _mm512_set1_epi64(static_cast<int64_t>(bound));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __mmask8 m =
        _mm512_cmpgt_epu64_mask(_mm512_loadu_si512(v + i), b);
    if (m != 0xFF) {
      return i + static_cast<std::size_t>(
                     std::countr_one(static_cast<unsigned char>(m)));
    }
  }
  while (i < n && v[i] > bound) ++i;
  return i;
}

__attribute__((target("avx512f"))) inline void SubtractArraysAvx512(
    const double* SLICK_RESTRICT a, const double* SLICK_RESTRICT b,
    double* SLICK_RESTRICT out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(out + i, _mm512_sub_pd(_mm512_loadu_pd(a + i),
                                            _mm512_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // SLICK_SIMD_X86

#if defined(SLICK_SIMD_NEON)

// ------------------------------------------------------------------
// NEON variants (aarch64, 2 × 64-bit lanes). NEON lacks vmaxq_s64 and its
// vmaxq_f64 has the wrong NaN/tie behaviour for our combine shape, so all
// four min/max combines are compare + select. The 2-wide scan still beats
// the scalar recurrence on FP chains: the serialized per-block work is a
// single lane-0 combine instead of two dependent combines.
// ------------------------------------------------------------------

inline float64x2_t NeonAddF64(float64x2_t a, float64x2_t b) {
  return vaddq_f64(a, b);
}
inline float64x2_t NeonMaxF64(float64x2_t a, float64x2_t b) {
  return vbslq_f64(vcltq_f64(a, b), b, a);  // a < b ? b : a, NaN keeps a
}
inline float64x2_t NeonMinF64(float64x2_t a, float64x2_t b) {
  return vbslq_f64(vcltq_f64(b, a), b, a);  // b < a ? b : a, NaN keeps a
}
inline int64x2_t NeonAddI64(int64x2_t a, int64x2_t b) {
  return vaddq_s64(a, b);
}
inline int64x2_t NeonMaxI64(int64x2_t a, int64x2_t b) {
  return vbslq_s64(vcltq_s64(a, b), b, a);
}
inline int64x2_t NeonMinI64(int64x2_t a, int64x2_t b) {
  return vbslq_s64(vcltq_s64(b, a), b, a);
}

#define SLICK_NEON_SUFFIX_SCAN(NAME, TYPE, VEC, COMBINE, EXT, DUP0, SET1,   \
                               LOAD, STORE, IDENT, SCALAR_STEP)             \
  SLICK_REALTIME inline void NAME(const TYPE* v, TYPE* out, std::size_t n,  \
                                  TYPE carry) {                             \
    const VEC fill = SET1(IDENT);                                           \
    std::size_t i = n;                                                      \
    while (i % 2 != 0) {                                                    \
      --i;                                                                  \
      SCALAR_STEP;                                                          \
      out[i] = carry;                                                       \
    }                                                                       \
    VEC c = SET1(carry);                                                    \
    for (; i != 0; i -= 2) {                                                \
      VEC x = LOAD(v + i - 2);                                              \
      x = COMBINE(x, EXT(x, fill, 1));                                      \
      STORE(out + i - 2, COMBINE(x, c));                                    \
      c = COMBINE(DUP0(x, 0), c);                                           \
    }                                                                       \
  }

#define SLICK_NEON_PREFIX_SCAN(NAME, TYPE, VEC, COMBINE, EXT, DUP, SET1,    \
                               LOAD, STORE, IDENT, SCALAR_STEP)             \
  SLICK_REALTIME inline void NAME(const TYPE* v, TYPE* out, std::size_t n,  \
                                  TYPE carry) {                             \
    const VEC fill = SET1(IDENT);                                           \
    VEC c = SET1(carry);                                                    \
    std::size_t i = 0;                                                      \
    for (; i + 2 <= n; i += 2) {                                            \
      VEC x = LOAD(v + i);                                                  \
      x = COMBINE(EXT(fill, x, 1), x);                                      \
      STORE(out + i, COMBINE(c, x));                                        \
      c = COMBINE(c, DUP(x, 1));                                            \
    }                                                                       \
    if (i < n) {                                                            \
      TYPE lanes[2];                                                        \
      STORE(lanes, c);                                                      \
      carry = lanes[0];                                                     \
      for (; i < n; ++i) {                                                  \
        SCALAR_STEP;                                                        \
        out[i] = carry;                                                     \
      }                                                                     \
    }                                                                       \
  }

SLICK_NEON_SUFFIX_SCAN(SuffixAddNeon, double, float64x2_t, NeonAddF64,
                       vextq_f64, vdupq_laneq_f64, vdupq_n_f64, vld1q_f64,
                       vst1q_f64, 0.0, carry = v[i] + carry)
SLICK_NEON_SUFFIX_SCAN(SuffixAddNeon, int64_t, int64x2_t, NeonAddI64,
                       vextq_s64, vdupq_laneq_s64, vdupq_n_s64, vld1q_s64,
                       vst1q_s64, int64_t{0}, carry = v[i] + carry)
SLICK_NEON_SUFFIX_SCAN(SuffixMaxNeon, double, float64x2_t, NeonMaxF64,
                       vextq_f64, vdupq_laneq_f64, vdupq_n_f64, vld1q_f64,
                       vst1q_f64, Max::identity(),
                       carry = v[i] < carry ? carry : v[i])
SLICK_NEON_SUFFIX_SCAN(SuffixMaxNeon, int64_t, int64x2_t, NeonMaxI64,
                       vextq_s64, vdupq_laneq_s64, vdupq_n_s64, vld1q_s64,
                       vst1q_s64, MaxInt::identity(),
                       carry = v[i] < carry ? carry : v[i])
SLICK_NEON_SUFFIX_SCAN(SuffixMinNeon, double, float64x2_t, NeonMinF64,
                       vextq_f64, vdupq_laneq_f64, vdupq_n_f64, vld1q_f64,
                       vst1q_f64, Min::identity(),
                       carry = carry < v[i] ? carry : v[i])
SLICK_NEON_SUFFIX_SCAN(SuffixMinNeon, int64_t, int64x2_t, NeonMinI64,
                       vextq_s64, vdupq_laneq_s64, vdupq_n_s64, vld1q_s64,
                       vst1q_s64, MinInt::identity(),
                       carry = carry < v[i] ? carry : v[i])

SLICK_NEON_PREFIX_SCAN(PrefixAddNeon, double, float64x2_t, NeonAddF64,
                       vextq_f64, vdupq_laneq_f64, vdupq_n_f64, vld1q_f64,
                       vst1q_f64, 0.0, carry = carry + v[i])
SLICK_NEON_PREFIX_SCAN(PrefixAddNeon, int64_t, int64x2_t, NeonAddI64,
                       vextq_s64, vdupq_laneq_s64, vdupq_n_s64, vld1q_s64,
                       vst1q_s64, int64_t{0}, carry = carry + v[i])
SLICK_NEON_PREFIX_SCAN(PrefixMaxNeon, double, float64x2_t, NeonMaxF64,
                       vextq_f64, vdupq_laneq_f64, vdupq_n_f64, vld1q_f64,
                       vst1q_f64, Max::identity(),
                       carry = carry < v[i] ? v[i] : carry)
SLICK_NEON_PREFIX_SCAN(PrefixMaxNeon, int64_t, int64x2_t, NeonMaxI64,
                       vextq_s64, vdupq_laneq_s64, vdupq_n_s64, vld1q_s64,
                       vst1q_s64, MaxInt::identity(),
                       carry = carry < v[i] ? v[i] : carry)
SLICK_NEON_PREFIX_SCAN(PrefixMinNeon, double, float64x2_t, NeonMinF64,
                       vextq_f64, vdupq_laneq_f64, vdupq_n_f64, vld1q_f64,
                       vst1q_f64, Min::identity(),
                       carry = v[i] < carry ? v[i] : carry)
SLICK_NEON_PREFIX_SCAN(PrefixMinNeon, int64_t, int64x2_t, NeonMinI64,
                       vextq_s64, vdupq_laneq_s64, vdupq_n_s64, vld1q_s64,
                       vst1q_s64, MinInt::identity(),
                       carry = v[i] < carry ? v[i] : carry)

#define SLICK_NEON_SURVIVORS(NAME, TYPE, VEC, COMBINE, EXT, DUP0, SET1,     \
                             LOAD, CMP, GETLANE, IDENT, SCALAR_TEST,        \
                             SCALAR_STEP)                                   \
  SLICK_REALTIME inline TYPE NAME(const TYPE* v, std::size_t n,             \
                                  uint64_t* mask) {                         \
    const VEC fill = SET1(IDENT);                                           \
    std::size_t i = n;                                                      \
    TYPE carry = IDENT;                                                     \
    while (i % 2 != 0) {                                                    \
      --i;                                                                  \
      if (SCALAR_TEST) mask[i >> 6] |= uint64_t{1} << (i & 63);             \
      SCALAR_STEP;                                                          \
    }                                                                       \
    VEC c = SET1(carry);                                                    \
    for (; i != 0; i -= 2) {                                                \
      const VEC x = LOAD(v + i - 2);                                        \
      const VEC incl = COMBINE(x, EXT(x, fill, 1));                         \
      const VEC excl = COMBINE(EXT(incl, fill, 1), c);                      \
      const uint64x2_t gt = CMP(x, excl);                                   \
      const uint64_t bits = (vgetq_lane_u64(gt, 0) & 1u) |                  \
                            ((vgetq_lane_u64(gt, 1) & 1u) << 1);            \
      mask[(i - 2) >> 6] |= bits << ((i - 2) & 63);                         \
      c = COMBINE(DUP0(incl, 0), c);                                        \
    }                                                                       \
    return GETLANE(c, 0);                                                   \
  }

#define SLICK_NEON_CMP_GT_F64(x, excl) vcgtq_f64((x), (excl))
#define SLICK_NEON_CMP_LT_F64(x, excl) vcltq_f64((x), (excl))
#define SLICK_NEON_CMP_GT_I64(x, excl) vcgtq_s64((x), (excl))
#define SLICK_NEON_CMP_LT_I64(x, excl) vcltq_s64((x), (excl))

SLICK_NEON_SURVIVORS(MaxSurvivorsNeon, double, float64x2_t, NeonMaxF64,
                     vextq_f64, vdupq_laneq_f64, vdupq_n_f64, vld1q_f64,
                     SLICK_NEON_CMP_GT_F64, vgetq_lane_f64, Max::identity(),
                     carry < v[i], carry = carry < v[i] ? v[i] : carry)
SLICK_NEON_SURVIVORS(MaxSurvivorsNeon, int64_t, int64x2_t, NeonMaxI64,
                     vextq_s64, vdupq_laneq_s64, vdupq_n_s64, vld1q_s64,
                     SLICK_NEON_CMP_GT_I64, vgetq_lane_s64, MaxInt::identity(),
                     carry < v[i], carry = carry < v[i] ? v[i] : carry)
SLICK_NEON_SURVIVORS(MinSurvivorsNeon, double, float64x2_t, NeonMinF64,
                     vextq_f64, vdupq_laneq_f64, vdupq_n_f64, vld1q_f64,
                     SLICK_NEON_CMP_LT_F64, vgetq_lane_f64, Min::identity(),
                     v[i] < carry, carry = v[i] < carry ? v[i] : carry)
SLICK_NEON_SURVIVORS(MinSurvivorsNeon, int64_t, int64x2_t, NeonMinI64,
                     vextq_s64, vdupq_laneq_s64, vdupq_n_s64, vld1q_s64,
                     SLICK_NEON_CMP_LT_I64, vgetq_lane_s64, MinInt::identity(),
                     v[i] < carry, carry = v[i] < carry ? v[i] : carry)

SLICK_REALTIME inline std::size_t PrefixCountGreaterNeon(const std::size_t* v,
                                                         std::size_t n,
                                                         std::size_t bound) {
  static_assert(sizeof(std::size_t) == sizeof(uint64_t),
                "64-bit size_t assumed by the packed compare");
  const uint64x2_t b = vdupq_n_u64(bound);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t gt =
        vcgtq_u64(vld1q_u64(reinterpret_cast<const uint64_t*>(v + i)), b);
    if (vgetq_lane_u64(gt, 0) == 0) return i;
    if (vgetq_lane_u64(gt, 1) == 0) return i + 1;
  }
  while (i < n && v[i] > bound) ++i;
  return i;
}

SLICK_REALTIME inline void SubtractArraysNeon(const double* SLICK_RESTRICT a,
                                              const double* SLICK_RESTRICT b,
                                              double* SLICK_RESTRICT out,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

#endif  // SLICK_SIMD_NEON

// ------------------------------------------------------------------
// Dispatching kernels: the widest compiled variant the active level
// allows when the region is long enough to amortize the carry plumbing;
// scalar otherwise.
// ------------------------------------------------------------------

#define SLICK_SCAN_DISPATCH(NAME, TYPE)                                     \
  SLICK_REALTIME inline void NAME(const TYPE* v, TYPE* out, std::size_t n,  \
                                  TYPE carry) {                             \
    SLICK_SCAN_DISPATCH_BODY(NAME, (v, out, n, carry))                      \
  }

#if defined(SLICK_SIMD_X86)
#define SLICK_SCAN_DISPATCH_BODY(NAME, ARGS)                                \
  if (n >= kSimdThreshold) {                                                \
    const SimdLevel level = ActiveSimdLevel();                              \
    if (level >= SimdLevel::kAvx512) return NAME##Avx512 ARGS;              \
    if (level >= SimdLevel::kAvx2) return NAME##Avx2 ARGS;                  \
  }                                                                         \
  return NAME##Scalar ARGS;
#elif defined(SLICK_SIMD_NEON)
#define SLICK_SCAN_DISPATCH_BODY(NAME, ARGS)                                \
  if (n >= kSimdThreshold && ActiveSimdLevel() >= SimdLevel::kNeon) {       \
    return NAME##Neon ARGS;                                                 \
  }                                                                         \
  return NAME##Scalar ARGS;
#else
#define SLICK_SCAN_DISPATCH_BODY(NAME, ARGS) return NAME##Scalar ARGS;
#endif

SLICK_SCAN_DISPATCH(SuffixAdd, double)
SLICK_SCAN_DISPATCH(SuffixAdd, int64_t)
SLICK_SCAN_DISPATCH(SuffixMax, double)
SLICK_SCAN_DISPATCH(SuffixMax, int64_t)
SLICK_SCAN_DISPATCH(SuffixMin, double)
SLICK_SCAN_DISPATCH(SuffixMin, int64_t)
SLICK_SCAN_DISPATCH(PrefixAdd, double)
SLICK_SCAN_DISPATCH(PrefixAdd, int64_t)
SLICK_SCAN_DISPATCH(PrefixMax, double)
SLICK_SCAN_DISPATCH(PrefixMax, int64_t)
SLICK_SCAN_DISPATCH(PrefixMin, double)
SLICK_SCAN_DISPATCH(PrefixMin, int64_t)

#define SLICK_SURVIVOR_DISPATCH(NAME, TYPE)                                 \
  SLICK_REALTIME inline TYPE NAME(const TYPE* v, std::size_t n,             \
                                  uint64_t* mask) {                         \
    SLICK_SCAN_DISPATCH_BODY(NAME, (v, n, mask))                            \
  }

SLICK_SURVIVOR_DISPATCH(MaxSurvivors, double)
SLICK_SURVIVOR_DISPATCH(MaxSurvivors, int64_t)
SLICK_SURVIVOR_DISPATCH(MinSurvivors, double)
SLICK_SURVIVOR_DISPATCH(MinSurvivors, int64_t)

SLICK_REALTIME inline std::size_t PrefixCountGreater(const std::size_t* v,
                                                     std::size_t n,
                                                     std::size_t bound) {
  SLICK_SCAN_DISPATCH_BODY(PrefixCountGreater, (v, n, bound))
}

SLICK_REALTIME inline void SubtractArrays(const double* SLICK_RESTRICT a,
                                          const double* SLICK_RESTRICT b,
                                          double* SLICK_RESTRICT out,
                                          std::size_t n) {
  SLICK_SCAN_DISPATCH_BODY(SubtractArrays, (a, b, out, n))
}

#undef SLICK_SCAN_DISPATCH
#undef SLICK_SCAN_DISPATCH_BODY
#undef SLICK_SURVIVOR_DISPATCH
#if defined(SLICK_SIMD_X86)
#undef SLICK_AVX2_SUFFIX_SCAN
#undef SLICK_AVX2_PREFIX_SCAN
#undef SLICK_AVX512_SUFFIX_SCAN
#undef SLICK_AVX512_PREFIX_SCAN
#undef SLICK_AVX512_SURVIVORS
#undef SLICK_LOADU_PD
#undef SLICK_STOREU_PD
#undef SLICK_LOADU_I64
#undef SLICK_STOREU_I64
#undef SLICK_LOADU_PD512
#undef SLICK_STOREU_PD512
#undef SLICK_LOADU_I512
#undef SLICK_STOREU_I512
#undef SLICK_CMP_GT_PD512
#undef SLICK_CMP_LT_PD512
#undef SLICK_CMP_GT_I512
#undef SLICK_CMP_LT_I512
#undef SLICK_EXTRACT0_PD512
#undef SLICK_EXTRACT0_I512
#endif
#if defined(SLICK_SIMD_NEON)
#undef SLICK_NEON_SUFFIX_SCAN
#undef SLICK_NEON_PREFIX_SCAN
#undef SLICK_NEON_SURVIVORS
#undef SLICK_NEON_CMP_GT_F64
#undef SLICK_NEON_CMP_LT_F64
#undef SLICK_NEON_CMP_GT_I64
#undef SLICK_NEON_CMP_LT_I64
#endif

}  // namespace kernels

// ------------------------------------------------------------------
// Kernel registrations (the ScanKernel/SurvivorKernel customization
// points declared in ops/traits.h). Same qualification rule as
// BulkKernel: the op's ⊕ must be one of the scan shapes above and an
// identity carry must be ⊕-neutral.
// ------------------------------------------------------------------

#define SLICK_REGISTER_SCAN_KERNEL(OP, TYPE, SUFFIX_FN, PREFIX_FN)          \
  template <>                                                               \
  struct ScanKernel<OP> {                                                   \
    static void Suffix(const TYPE* v, TYPE* out, std::size_t n,             \
                       TYPE carry) {                                        \
      kernels::SUFFIX_FN(v, out, n, carry);                                 \
    }                                                                       \
    static void Prefix(const TYPE* v, TYPE* out, std::size_t n,             \
                       TYPE carry) {                                        \
      kernels::PREFIX_FN(v, out, n, carry);                                 \
    }                                                                       \
  };

SLICK_REGISTER_SCAN_KERNEL(Sum, double, SuffixAdd, PrefixAdd)
SLICK_REGISTER_SCAN_KERNEL(SumInt, int64_t, SuffixAdd, PrefixAdd)
SLICK_REGISTER_SCAN_KERNEL(SumOfSquares, double, SuffixAdd, PrefixAdd)
SLICK_REGISTER_SCAN_KERNEL(Count, int64_t, SuffixAdd, PrefixAdd)
SLICK_REGISTER_SCAN_KERNEL(Max, double, SuffixMax, PrefixMax)
SLICK_REGISTER_SCAN_KERNEL(MaxInt, int64_t, SuffixMax, PrefixMax)
SLICK_REGISTER_SCAN_KERNEL(Min, double, SuffixMin, PrefixMin)
SLICK_REGISTER_SCAN_KERNEL(MinInt, int64_t, SuffixMin, PrefixMin)

#undef SLICK_REGISTER_SCAN_KERNEL

#define SLICK_REGISTER_SURVIVOR_KERNEL(OP, TYPE, FN)                        \
  template <>                                                               \
  struct SurvivorKernel<OP> {                                               \
    static TYPE Mask(const TYPE* v, std::size_t n, uint64_t* mask) {        \
      return kernels::FN(v, n, mask);                                       \
    }                                                                       \
  };

SLICK_REGISTER_SURVIVOR_KERNEL(Max, double, MaxSurvivors)
SLICK_REGISTER_SURVIVOR_KERNEL(MaxInt, int64_t, MaxSurvivors)
SLICK_REGISTER_SURVIVOR_KERNEL(Min, double, MinSurvivors)
SLICK_REGISTER_SURVIVOR_KERNEL(MinInt, int64_t, MinSurvivors)

#undef SLICK_REGISTER_SURVIVOR_KERNEL

/// Suffix scan of `n` contiguous values under Op, seeded with `carry`:
/// out[i] = v[i] ⊕ out[i+1], out[n-1] = v[n-1] ⊕ carry. Uses the op's
/// registered scan kernel when one exists; the fallback is the exact
/// sequential recurrence (preserving per-combine order for
/// non-commutative ops). `out` may equal `v` exactly or be disjoint.
template <AggregateOp Op>
SLICK_REALTIME void SuffixScanValues(const typename Op::value_type* v,
                                     typename Op::value_type* out,
                                     std::size_t n,
                                     typename Op::value_type carry) {
  if constexpr (HasScanKernel<Op>) {
    ScanKernel<Op>::Suffix(v, out, n, std::move(carry));
  } else {
    for (std::size_t i = n; i-- > 0;) {
      carry = Op::combine(v[i], carry);
      out[i] = carry;
    }
  }
}

/// Prefix scan: out[i] = out[i-1] ⊕ v[i], out[0] = carry ⊕ v[0].
template <AggregateOp Op>
SLICK_REALTIME void PrefixScanValues(const typename Op::value_type* v,
                                     typename Op::value_type* out,
                                     std::size_t n,
                                     typename Op::value_type carry) {
  if constexpr (HasScanKernel<Op>) {
    ScanKernel<Op>::Prefix(v, out, n, std::move(carry));
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      carry = Op::combine(carry, v[i]);
      out[i] = carry;
    }
  }
}

}  // namespace slick::ops
