#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace slick::ops {

// An aggregate operation in this library is a stateless struct describing a
// *distributive* aggregation (paper §3.1) with:
//
//   using input_type  = ...;  // raw stream element accepted by lift()
//   using value_type  = ...;  // partial aggregate carried by the window
//   using result_type = ...;  // final answer produced by lower()
//
//   static value_type identity();                        // ⊕-neutral value
//   static value_type lift(input_type);                  // element -> partial
//   static value_type combine(value_type, value_type);   // ⊕ (associative)
//   static result_type lower(value_type);                // partial -> answer
//
//   static constexpr const char* kName;
//   static constexpr bool kInvertible;   // has inverse(): (x ⊕ y) ⊖ y == x
//   static constexpr bool kCommutative;  // x ⊕ y == y ⊕ x
//   static constexpr bool kSelective;    // combine(x, y) ∈ {x, y}
//
// Invertible ops additionally provide:
//
//   static value_type inverse(value_type a, value_type b);  // a ⊖ b
//
// kSelective encodes the paper's assumption (§3.1, note under invertibility)
// that non-invertible non-holistic operations *select* one of their
// arguments (Max, Min, ArgMax, ...). SlickDeque (Non-Inv) requires it; the
// dispatching facade uses it to pick an algorithm.

template <typename Op>
concept AggregateOp =
    requires(const typename Op::value_type& a, const typename Op::value_type& b,
             const typename Op::input_type& in) {
      { Op::identity() } -> std::same_as<typename Op::value_type>;
      { Op::lift(in) } -> std::same_as<typename Op::value_type>;
      { Op::combine(a, b) } -> std::same_as<typename Op::value_type>;
      { Op::lower(a) } -> std::same_as<typename Op::result_type>;
      { Op::kName } -> std::convertible_to<const char*>;
      { Op::kInvertible } -> std::convertible_to<bool>;
      { Op::kCommutative } -> std::convertible_to<bool>;
      { Op::kSelective } -> std::convertible_to<bool>;
    };

template <typename Op>
concept InvertibleOp =
    AggregateOp<Op> && Op::kInvertible &&
    requires(const typename Op::value_type& a,
             const typename Op::value_type& b) {
      { Op::inverse(a, b) } -> std::same_as<typename Op::value_type>;
    };

template <typename Op>
concept SelectiveOp = AggregateOp<Op> && Op::kSelective;

/// Domination test for selective ops: true when the newer value absorbs the
/// older one, i.e. combine(older, newer) selects newer — the pop condition
/// of SlickDeque (Non-Inv)'s deque (Algorithm 2, line 16). Ops may provide
/// a one-comparison `absorbs(newer, older)` fast path; it is allowed to be
/// conservatively false on ties (the deque just keeps an extra node). The
/// generic fallback applies ⊕ and compares.
template <SelectiveOp Op>
bool Absorbs(const typename Op::value_type& newer,
             const typename Op::value_type& older) {
  if constexpr (requires {
                  { Op::absorbs(newer, older) } -> std::convertible_to<bool>;
                }) {
    return Op::absorbs(newer, older);
  } else {
    return Op::combine(older, newer) == newer;
  }
}

/// Selective ops whose Absorbs test is induced by a total preorder on the
/// value (Max, Min, ArgMax, ...) opt in with
/// `static constexpr bool kAbsorbsTotal = true`. The guarantee batch fast
/// paths rely on: for any set S of values,
///   ∃ y ∈ S: Absorbs(y, x)  ⟺  Absorbs(fold(S), x)
/// i.e. testing x once against the set's ⊕-aggregate is equivalent to
/// testing it against every member. Ops with ad-hoc absorbs predicates
/// (where domination is not order-induced) must leave the flag off and get
/// the exact per-element path.
template <typename Op>
concept TotalOrderSelectiveOp =
    SelectiveOp<Op> && requires {
      { Op::kAbsorbsTotal } -> std::convertible_to<bool>;
    } && Op::kAbsorbsTotal;

/// Customization point for contiguous fold kernels (ops/kernels.h):
/// specializations provide a static
/// `value_type Fold(const value_type*, std::size_t)` equal to an
/// identity-seeded left fold under Op::combine, implemented as a
/// vectorization-friendly loop. The primary template has no Fold, so
/// has_bulk_kernel stays false until a specialization exists.
template <typename Op>
struct BulkKernel {};

template <typename Op>
concept HasBulkKernel =
    AggregateOp<Op> &&
    requires(const typename Op::value_type* v, std::size_t n) {
      { BulkKernel<Op>::Fold(v, n) } ->
          std::same_as<typename Op::value_type>;
    };

template <typename Op>
inline constexpr bool has_bulk_kernel = HasBulkKernel<Op>;

/// Customization point for structural scan kernels (ops/scan_kernels.h):
/// specializations provide
///   Suffix(v, out, n, carry):  out[i] = v[i] ⊕ out[i+1],
///                              out[n-1] = v[n-1] ⊕ carry
///   Prefix(v, out, n, carry):  out[i] = out[i-1] ⊕ v[i],
///                              out[0] = carry ⊕ v[0]
/// as vectorized passes equal (bit-identical for integer and min/max ⊕,
/// ULP-bounded for floating-point sum) to the sequential recurrence.
/// `out` must be disjoint from `v` or exactly equal to it; partial
/// overlap is not allowed. The flip paths of window/two_stacks*.h and
/// the bulk-insert prefix chains resolve through this.
template <typename Op>
struct ScanKernel {};

template <typename Op>
concept HasScanKernel =
    AggregateOp<Op> &&
    requires(const typename Op::value_type* v, typename Op::value_type* out,
             std::size_t n, typename Op::value_type carry) {
      { ScanKernel<Op>::Suffix(v, out, n, carry) } -> std::same_as<void>;
      { ScanKernel<Op>::Prefix(v, out, n, carry) } -> std::same_as<void>;
    };

template <typename Op>
inline constexpr bool has_scan_kernel = HasScanKernel<Op>;

/// Customization point for the staircase survivor masks
/// (ops/scan_kernels.h): for a TotalOrderSelectiveOp,
/// `Mask(v, n, mask)` sets bit k (in caller-zeroed words) iff
/// !Absorbs(fold(v[k+1..n)), v[k]) — element k survives the batch — and
/// returns the whole-batch aggregate. SlickDeque (Non-Inv)'s bulk insert
/// resolves its one-pass pop-boundary search through this.
template <typename Op>
struct SurvivorKernel {};

template <typename Op>
concept HasSurvivorKernel =
    SelectiveOp<Op> &&
    requires(const typename Op::value_type* v, std::size_t n,
             uint64_t* mask) {
      { SurvivorKernel<Op>::Mask(v, n, mask) } ->
          std::same_as<typename Op::value_type>;
    };

template <typename Op>
inline constexpr bool has_survivor_kernel = HasSurvivorKernel<Op>;

}  // namespace slick::ops

