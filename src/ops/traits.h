#pragma once

#include <concepts>
#include <cstddef>
#include <utility>

namespace slick::ops {

// An aggregate operation in this library is a stateless struct describing a
// *distributive* aggregation (paper §3.1) with:
//
//   using input_type  = ...;  // raw stream element accepted by lift()
//   using value_type  = ...;  // partial aggregate carried by the window
//   using result_type = ...;  // final answer produced by lower()
//
//   static value_type identity();                        // ⊕-neutral value
//   static value_type lift(input_type);                  // element -> partial
//   static value_type combine(value_type, value_type);   // ⊕ (associative)
//   static result_type lower(value_type);                // partial -> answer
//
//   static constexpr const char* kName;
//   static constexpr bool kInvertible;   // has inverse(): (x ⊕ y) ⊖ y == x
//   static constexpr bool kCommutative;  // x ⊕ y == y ⊕ x
//   static constexpr bool kSelective;    // combine(x, y) ∈ {x, y}
//
// Invertible ops additionally provide:
//
//   static value_type inverse(value_type a, value_type b);  // a ⊖ b
//
// kSelective encodes the paper's assumption (§3.1, note under invertibility)
// that non-invertible non-holistic operations *select* one of their
// arguments (Max, Min, ArgMax, ...). SlickDeque (Non-Inv) requires it; the
// dispatching facade uses it to pick an algorithm.

template <typename Op>
concept AggregateOp =
    requires(const typename Op::value_type& a, const typename Op::value_type& b,
             const typename Op::input_type& in) {
      { Op::identity() } -> std::same_as<typename Op::value_type>;
      { Op::lift(in) } -> std::same_as<typename Op::value_type>;
      { Op::combine(a, b) } -> std::same_as<typename Op::value_type>;
      { Op::lower(a) } -> std::same_as<typename Op::result_type>;
      { Op::kName } -> std::convertible_to<const char*>;
      { Op::kInvertible } -> std::convertible_to<bool>;
      { Op::kCommutative } -> std::convertible_to<bool>;
      { Op::kSelective } -> std::convertible_to<bool>;
    };

template <typename Op>
concept InvertibleOp =
    AggregateOp<Op> && Op::kInvertible &&
    requires(const typename Op::value_type& a,
             const typename Op::value_type& b) {
      { Op::inverse(a, b) } -> std::same_as<typename Op::value_type>;
    };

template <typename Op>
concept SelectiveOp = AggregateOp<Op> && Op::kSelective;

/// Domination test for selective ops: true when the newer value absorbs the
/// older one, i.e. combine(older, newer) selects newer — the pop condition
/// of SlickDeque (Non-Inv)'s deque (Algorithm 2, line 16). Ops may provide
/// a one-comparison `absorbs(newer, older)` fast path; it is allowed to be
/// conservatively false on ties (the deque just keeps an extra node). The
/// generic fallback applies ⊕ and compares.
template <SelectiveOp Op>
bool Absorbs(const typename Op::value_type& newer,
             const typename Op::value_type& older) {
  if constexpr (requires {
                  { Op::absorbs(newer, older) } -> std::convertible_to<bool>;
                }) {
    return Op::absorbs(newer, older);
  } else {
    return Op::combine(older, newer) == newer;
  }
}

/// Selective ops whose Absorbs test is induced by a total preorder on the
/// value (Max, Min, ArgMax, ...) opt in with
/// `static constexpr bool kAbsorbsTotal = true`. The guarantee batch fast
/// paths rely on: for any set S of values,
///   ∃ y ∈ S: Absorbs(y, x)  ⟺  Absorbs(fold(S), x)
/// i.e. testing x once against the set's ⊕-aggregate is equivalent to
/// testing it against every member. Ops with ad-hoc absorbs predicates
/// (where domination is not order-induced) must leave the flag off and get
/// the exact per-element path.
template <typename Op>
concept TotalOrderSelectiveOp =
    SelectiveOp<Op> && requires {
      { Op::kAbsorbsTotal } -> std::convertible_to<bool>;
    } && Op::kAbsorbsTotal;

/// Customization point for contiguous fold kernels (ops/kernels.h):
/// specializations provide a static
/// `value_type Fold(const value_type*, std::size_t)` equal to an
/// identity-seeded left fold under Op::combine, implemented as a
/// vectorization-friendly loop. The primary template has no Fold, so
/// has_bulk_kernel stays false until a specialization exists.
template <typename Op>
struct BulkKernel {};

template <typename Op>
concept HasBulkKernel =
    AggregateOp<Op> &&
    requires(const typename Op::value_type* v, std::size_t n) {
      { BulkKernel<Op>::Fold(v, n) } ->
          std::same_as<typename Op::value_type>;
    };

template <typename Op>
inline constexpr bool has_bulk_kernel = HasBulkKernel<Op>;

}  // namespace slick::ops

