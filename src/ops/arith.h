#pragma once

#include <cstdint>

namespace slick::ops {

/// Sum: the canonical invertible aggregation (paper Example 2).
struct Sum {
  using input_type = double;
  using value_type = double;
  using result_type = double;

  static constexpr const char* kName = "sum";
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = false;

  static value_type identity() { return 0.0; }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) { return a + b; }
  static value_type inverse(value_type a, value_type b) { return a - b; }
  static result_type lower(value_type a) { return a; }
};

/// Count: counts stream elements; invertible.
struct Count {
  using input_type = double;
  using value_type = int64_t;
  using result_type = int64_t;

  static constexpr const char* kName = "count";
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = false;

  static value_type identity() { return 0; }
  static value_type lift(input_type /*x*/) { return 1; }
  static value_type combine(value_type a, value_type b) { return a + b; }
  static value_type inverse(value_type a, value_type b) { return a - b; }
  static result_type lower(value_type a) { return a; }
};

/// Product: invertible via division. As in the paper's classification, the
/// inverse is only exact when evicted values are non-zero; stream sources in
/// this repo generate strictly positive readings. For data with zeros, use
/// the general (non-invertible) execution path instead.
struct Product {
  using input_type = double;
  using value_type = double;
  using result_type = double;

  static constexpr const char* kName = "product";
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = false;

  static value_type identity() { return 1.0; }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) { return a * b; }
  static value_type inverse(value_type a, value_type b) { return a / b; }
  static result_type lower(value_type a) { return a; }
};

/// Sum of squares: distributive building block for standard deviation.
struct SumOfSquares {
  using input_type = double;
  using value_type = double;
  using result_type = double;

  static constexpr const char* kName = "sum_of_squares";
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = false;

  static value_type identity() { return 0.0; }
  static value_type lift(input_type x) { return x * x; }
  static value_type combine(value_type a, value_type b) { return a + b; }
  static value_type inverse(value_type a, value_type b) { return a - b; }
  static result_type lower(value_type a) { return a; }
};

/// Integer sum over int64 (exact arithmetic; used heavily by tests, where
/// floating-point non-associativity would otherwise blur oracle comparisons).
struct SumInt {
  using input_type = int64_t;
  using value_type = int64_t;
  using result_type = int64_t;

  static constexpr const char* kName = "sum_int";
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = false;

  static value_type identity() { return 0; }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) { return a + b; }
  static value_type inverse(value_type a, value_type b) { return a - b; }
  static result_type lower(value_type a) { return a; }
};

}  // namespace slick::ops

