#pragma once

namespace slick::ops {

/// Logical AND over the window ("were all readings in range?"). Selective:
/// combine(x, y) always equals one of its arguments.
struct BoolAnd {
  using input_type = bool;
  using value_type = bool;
  using result_type = bool;

  static constexpr const char* kName = "bool_and";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = true;

  static value_type identity() { return true; }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) { return a && b; }
  static result_type lower(value_type a) { return a; }
};

/// Logical OR over the window ("did any alarm fire?").
struct BoolOr {
  using input_type = bool;
  using value_type = bool;
  using result_type = bool;

  static constexpr const char* kName = "bool_or";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = true;

  static value_type identity() { return false; }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) { return a || b; }
  static result_type lower(value_type a) { return a; }
};

}  // namespace slick::ops

