#pragma once

#include <string>

namespace slick::ops {

/// Alphabetical Max for strings (paper §1 and §3.1 list it among supported
/// non-invertible aggregates). The empty string is the identity, which is
/// correct for non-empty stream values.
struct AlphaMax {
  using input_type = std::string;
  using value_type = std::string;
  using result_type = std::string;

  static constexpr const char* kName = "alpha_max";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = true;
  /// The generic Absorbs fallback reduces to older <= newer — a total
  /// order, so batch paths may prune against a single ⊕-aggregate.
  static constexpr bool kAbsorbsTotal = true;

  static value_type identity() { return std::string(); }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) {
    return a < b ? b : a;
  }
  static result_type lower(value_type a) { return a; }
};

/// Concat: string concatenation. Associative, NON-commutative,
/// NON-invertible and NON-selective. SlickDeque cannot execute it (no
/// algorithm in the paper targets this class directly either); the
/// dispatching facade routes it to the general TwoStacks/DABA path. It is
/// also the library's canonical order-correctness probe: any aggregator that
/// combines values out of stream order produces a visibly wrong string.
struct Concat {
  using input_type = std::string;
  using value_type = std::string;
  using result_type = std::string;

  static constexpr const char* kName = "concat";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = false;
  static constexpr bool kSelective = false;

  static value_type identity() { return std::string(); }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) { return a + b; }
  static result_type lower(value_type a) { return a; }
};

}  // namespace slick::ops

