#pragma once

// Umbrella header for the aggregate-operation framework.

#include "ops/algebraic.h"    // IWYU pragma: export
#include "ops/arith.h"        // IWYU pragma: export
#include "ops/bool_ops.h"     // IWYU pragma: export
#include "ops/counting.h"     // IWYU pragma: export
#include "ops/minmax.h"       // IWYU pragma: export
#include "ops/string_ops.h"   // IWYU pragma: export
#include "ops/traits.h"       // IWYU pragma: export

