#pragma once

// Contiguous fold kernels for the batch ingestion path (DESIGN.md §11).
//
// Each kernel computes an identity-seeded fold of a contiguous value array
// under one ⊕, written as a restrict-qualified loop the compiler can
// auto-vectorize; behind SLICK_SIMD an AVX2 variant is also compiled and
// selected at runtime (__builtin_cpu_supports), so one binary runs
// everywhere and uses the wide path where the host has it.
//
// Exactness contract: the integer kernels (FoldAdd/FoldMax/FoldMin over
// int64) and the min/max kernels are bit-identical to the sequential
// combine fold regardless of dispatch — addition on int64 wraps
// associatively and min/max are idempotent-associative. The
// floating-point *sum* kernels reassociate (lane-parallel partial sums),
// so their results are ULP-bounded relative to the sequential fold, not
// bit-equal; callers needing exact oracle comparisons use the integer ops
// (kernels_test.cc pins both guarantees).
//
// BulkKernel<Op> (declared in ops/traits.h) maps ops onto kernels; the
// generic FoldValues<Op> falls back to a plain combine loop for everything
// without a registered kernel, so counting wrappers and holistic ops keep
// their exact per-combine semantics.

#include <cstddef>
#include <cstdint>

#include "ops/arith.h"
#include "ops/minmax.h"
#include "ops/traits.h"

#if defined(__GNUC__) || defined(__clang__)
#define SLICK_RESTRICT __restrict__
#else
#define SLICK_RESTRICT
#endif

#if defined(SLICK_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SLICK_SIMD_X86 1
#include <immintrin.h>
#endif

namespace slick::ops {
namespace kernels {

// ------------------------------------------------------------------
// Scalar kernels. SLICK_RESTRICT promises the input does not alias any
// store the caller makes, which is what lets -O2 unroll and vectorize
// these loops even without the explicit AVX2 variants below.
// ------------------------------------------------------------------

inline int64_t FoldAddScalar(const int64_t* SLICK_RESTRICT v, std::size_t n) {
  int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += v[i];
  return acc;
}

inline double FoldAddScalar(const double* SLICK_RESTRICT v, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += v[i];
  return acc;
}

inline int64_t FoldMaxScalar(const int64_t* SLICK_RESTRICT v, std::size_t n) {
  int64_t acc = MaxInt::identity();
  for (std::size_t i = 0; i < n; ++i) acc = acc < v[i] ? v[i] : acc;
  return acc;
}

// The comparison shape matches Max::combine(acc, v) exactly, including its
// NaN behaviour (a NaN element never replaces the accumulator).
inline double FoldMaxScalar(const double* SLICK_RESTRICT v, std::size_t n) {
  double acc = Max::identity();
  for (std::size_t i = 0; i < n; ++i) acc = acc < v[i] ? v[i] : acc;
  return acc;
}

inline double FoldMinScalar(const double* SLICK_RESTRICT v, std::size_t n) {
  double acc = Min::identity();
  for (std::size_t i = 0; i < n; ++i) acc = v[i] < acc ? v[i] : acc;
  return acc;
}

#if defined(SLICK_SIMD_X86)

// ------------------------------------------------------------------
// AVX2 kernels, compiled with a per-function target attribute so the rest
// of the binary keeps the baseline ISA. Dispatch is one cached CPUID test.
// ------------------------------------------------------------------

/// True when the host supports AVX2 (resolved once, then a plain load).
inline bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}

/// Batches below this length are not worth the dispatch + horizontal
/// reduction; the scalar loop wins.
inline constexpr std::size_t kSimdThreshold = 16;

__attribute__((target("avx2"))) inline double FoldAddAvx2(
    const double* SLICK_RESTRICT v, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + i));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double r = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) r += v[i];
  return r;
}

__attribute__((target("avx2"))) inline int64_t FoldAddAvx2(
    const int64_t* SLICK_RESTRICT v, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  }
  int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t r = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) r += v[i];
  return r;
}

// maxpd/minpd return the SECOND operand when the compare fails (including
// on NaN), so ordering the element first and the accumulator second makes
// the lanes behave exactly like `acc = acc < v ? v : acc` — a NaN element
// keeps the accumulator, a NaN accumulator stays NaN, matching the scalar
// kernel bit for bit.
__attribute__((target("avx2"))) inline double FoldMaxAvx2(
    const double* SLICK_RESTRICT v, std::size_t n) {
  __m256d acc = _mm256_set1_pd(Max::identity());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(_mm256_loadu_pd(v + i), acc);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double r = Max::identity();
  for (int k = 0; k < 4; ++k) r = r < lanes[k] ? lanes[k] : r;
  for (; i < n; ++i) r = r < v[i] ? v[i] : r;
  return r;
}

__attribute__((target("avx2"))) inline double FoldMinAvx2(
    const double* SLICK_RESTRICT v, std::size_t n) {
  __m256d acc = _mm256_set1_pd(Min::identity());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_min_pd(_mm256_loadu_pd(v + i), acc);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double r = Min::identity();
  for (int k = 0; k < 4; ++k) r = lanes[k] < r ? lanes[k] : r;
  for (; i < n; ++i) r = v[i] < r ? v[i] : r;
  return r;
}

// AVX2 has no packed 64-bit max (that is AVX-512), so compare + blend.
__attribute__((target("avx2"))) inline int64_t FoldMaxAvx2(
    const int64_t* SLICK_RESTRICT v, std::size_t n) {
  __m256i acc = _mm256_set1_epi64x(MaxInt::identity());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    acc = _mm256_blendv_epi8(acc, x, _mm256_cmpgt_epi64(x, acc));
  }
  int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t r = MaxInt::identity();
  for (int k = 0; k < 4; ++k) r = r < lanes[k] ? lanes[k] : r;
  for (; i < n; ++i) r = r < v[i] ? v[i] : r;
  return r;
}

#endif  // SLICK_SIMD_X86

// ------------------------------------------------------------------
// Public dispatching kernels: AVX2 when compiled in, runtime-supported,
// and the batch is long enough to amortize the reduction; scalar otherwise.
// ------------------------------------------------------------------

inline double FoldAdd(const double* SLICK_RESTRICT v, std::size_t n) {
#if defined(SLICK_SIMD_X86)
  if (n >= kSimdThreshold && CpuHasAvx2()) return FoldAddAvx2(v, n);
#endif
  return FoldAddScalar(v, n);
}

inline int64_t FoldAdd(const int64_t* SLICK_RESTRICT v, std::size_t n) {
#if defined(SLICK_SIMD_X86)
  if (n >= kSimdThreshold && CpuHasAvx2()) return FoldAddAvx2(v, n);
#endif
  return FoldAddScalar(v, n);
}

inline double FoldMax(const double* SLICK_RESTRICT v, std::size_t n) {
#if defined(SLICK_SIMD_X86)
  if (n >= kSimdThreshold && CpuHasAvx2()) return FoldMaxAvx2(v, n);
#endif
  return FoldMaxScalar(v, n);
}

inline int64_t FoldMax(const int64_t* SLICK_RESTRICT v, std::size_t n) {
#if defined(SLICK_SIMD_X86)
  if (n >= kSimdThreshold && CpuHasAvx2()) return FoldMaxAvx2(v, n);
#endif
  return FoldMaxScalar(v, n);
}

inline double FoldMin(const double* SLICK_RESTRICT v, std::size_t n) {
#if defined(SLICK_SIMD_X86)
  if (n >= kSimdThreshold && CpuHasAvx2()) return FoldMinAvx2(v, n);
#endif
  return FoldMinScalar(v, n);
}

}  // namespace kernels

// ------------------------------------------------------------------
// Kernel registrations. An op qualifies when its ⊕ over value_type is one
// of the fold shapes above AND an identity-seeded fold equals the kernel's
// result (true for these: + seeded with 0, min/max seeded with ±∞/INT_MIN).
// ------------------------------------------------------------------

template <>
struct BulkKernel<Sum> {
  static double Fold(const double* v, std::size_t n) {
    return kernels::FoldAdd(v, n);
  }
};

template <>
struct BulkKernel<SumInt> {
  static int64_t Fold(const int64_t* v, std::size_t n) {
    return kernels::FoldAdd(v, n);
  }
};

template <>
struct BulkKernel<SumOfSquares> {
  // value_type carries already-lifted squares, so the fold is a plain add.
  static double Fold(const double* v, std::size_t n) {
    return kernels::FoldAdd(v, n);
  }
};

template <>
struct BulkKernel<Count> {
  // Partials are lifted 1s (or merged counts); still an integer sum.
  static int64_t Fold(const int64_t* v, std::size_t n) {
    return kernels::FoldAdd(v, n);
  }
};

template <>
struct BulkKernel<Max> {
  static double Fold(const double* v, std::size_t n) {
    return kernels::FoldMax(v, n);
  }
};

template <>
struct BulkKernel<MaxInt> {
  static int64_t Fold(const int64_t* v, std::size_t n) {
    return kernels::FoldMax(v, n);
  }
};

template <>
struct BulkKernel<Min> {
  static double Fold(const double* v, std::size_t n) {
    return kernels::FoldMin(v, n);
  }
};

/// Identity-seeded fold of `n` contiguous partials under Op: the op's
/// registered vector kernel when one exists, a plain combine loop
/// otherwise. n == 0 yields Op::identity(). This is the single entry point
/// the aggregators' batch fast paths fold through.
template <AggregateOp Op>
typename Op::value_type FoldValues(const typename Op::value_type* v,
                                   std::size_t n) {
  if constexpr (HasBulkKernel<Op>) {
    return BulkKernel<Op>::Fold(v, n);
  } else {
    typename Op::value_type acc = Op::identity();
    for (std::size_t i = 0; i < n; ++i) acc = Op::combine(acc, v[i]);
    return acc;
  }
}

}  // namespace slick::ops
