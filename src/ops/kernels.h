#pragma once

// Contiguous fold kernels for the batch ingestion path (DESIGN.md §11).
//
// Each kernel computes an identity-seeded fold of a contiguous value array
// under one ⊕, written as a restrict-qualified loop the compiler can
// auto-vectorize; behind SLICK_SIMD, AVX2 + AVX-512F variants (x86-64) or
// a NEON variant (aarch64) are also compiled and selected through the
// cached runtime dispatch in ops/simd_dispatch.h, so one binary runs
// everywhere and uses the widest path the host has.
//
// Exactness contract: the integer kernels (FoldAdd/FoldMax/FoldMin over
// int64) and the min/max kernels are bit-identical to the sequential
// combine fold regardless of dispatch — addition on int64 wraps
// associatively and min/max are idempotent-associative. The
// floating-point *sum* kernels reassociate (lane-parallel partial sums),
// so their results are ULP-bounded relative to the sequential fold, not
// bit-equal; callers needing exact oracle comparisons use the integer ops
// (kernels_test.cc pins both guarantees).
//
// BulkKernel<Op> (declared in ops/traits.h) maps ops onto kernels; the
// generic FoldValues<Op> falls back to a plain combine loop for everything
// without a registered kernel, so counting wrappers and holistic ops keep
// their exact per-combine semantics. The structural scan kernels (flip,
// staircase, multi-query walk) live in ops/scan_kernels.h.

#include <cstddef>
#include <cstdint>

#include "ops/arith.h"
#include "ops/minmax.h"
#include "ops/simd_dispatch.h"
#include "ops/traits.h"
#include "util/annotations.h"

namespace slick::ops {
namespace kernels {

// ------------------------------------------------------------------
// Scalar kernels. SLICK_RESTRICT promises the input does not alias any
// store the caller makes, which is what lets -O2 unroll and vectorize
// these loops even without the explicit wide variants below.
// ------------------------------------------------------------------

SLICK_REALTIME inline int64_t FoldAddScalar(const int64_t* SLICK_RESTRICT v,
                                            std::size_t n) {
  int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += v[i];
  return acc;
}

SLICK_REALTIME inline double FoldAddScalar(const double* SLICK_RESTRICT v,
                                           std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += v[i];
  return acc;
}

SLICK_REALTIME inline int64_t FoldMaxScalar(const int64_t* SLICK_RESTRICT v,
                                            std::size_t n) {
  int64_t acc = MaxInt::identity();
  for (std::size_t i = 0; i < n; ++i) acc = acc < v[i] ? v[i] : acc;
  return acc;
}

// The comparison shape matches Max::combine(acc, v) exactly, including its
// NaN behaviour (a NaN element never replaces the accumulator).
SLICK_REALTIME inline double FoldMaxScalar(const double* SLICK_RESTRICT v,
                                           std::size_t n) {
  double acc = Max::identity();
  for (std::size_t i = 0; i < n; ++i) acc = acc < v[i] ? v[i] : acc;
  return acc;
}

SLICK_REALTIME inline double FoldMinScalar(const double* SLICK_RESTRICT v,
                                           std::size_t n) {
  double acc = Min::identity();
  for (std::size_t i = 0; i < n; ++i) acc = v[i] < acc ? v[i] : acc;
  return acc;
}

SLICK_REALTIME inline int64_t FoldMinScalar(const int64_t* SLICK_RESTRICT v,
                                            std::size_t n) {
  int64_t acc = MinInt::identity();
  for (std::size_t i = 0; i < n; ++i) acc = v[i] < acc ? v[i] : acc;
  return acc;
}

#if defined(SLICK_SIMD_X86)

// ------------------------------------------------------------------
// AVX2 kernels, compiled with a per-function target attribute so the rest
// of the binary keeps the baseline ISA.
// ------------------------------------------------------------------

__attribute__((target("avx2"))) inline double FoldAddAvx2(
    const double* SLICK_RESTRICT v, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + i));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double r = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) r += v[i];
  return r;
}

__attribute__((target("avx2"))) inline int64_t FoldAddAvx2(
    const int64_t* SLICK_RESTRICT v, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  }
  int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t r = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) r += v[i];
  return r;
}

// maxpd/minpd return the SECOND operand when the compare fails (including
// on NaN), so ordering the element first and the accumulator second makes
// the lanes behave exactly like `acc = acc < v ? v : acc` — a NaN element
// keeps the accumulator, a NaN accumulator stays NaN, matching the scalar
// kernel bit for bit.
__attribute__((target("avx2"))) inline double FoldMaxAvx2(
    const double* SLICK_RESTRICT v, std::size_t n) {
  __m256d acc = _mm256_set1_pd(Max::identity());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(_mm256_loadu_pd(v + i), acc);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double r = Max::identity();
  for (int k = 0; k < 4; ++k) r = r < lanes[k] ? lanes[k] : r;
  for (; i < n; ++i) r = r < v[i] ? v[i] : r;
  return r;
}

__attribute__((target("avx2"))) inline double FoldMinAvx2(
    const double* SLICK_RESTRICT v, std::size_t n) {
  __m256d acc = _mm256_set1_pd(Min::identity());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_min_pd(_mm256_loadu_pd(v + i), acc);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double r = Min::identity();
  for (int k = 0; k < 4; ++k) r = lanes[k] < r ? lanes[k] : r;
  for (; i < n; ++i) r = v[i] < r ? v[i] : r;
  return r;
}

// AVX2 has no packed 64-bit max/min (that is AVX-512), so compare + blend.
__attribute__((target("avx2"))) inline int64_t FoldMaxAvx2(
    const int64_t* SLICK_RESTRICT v, std::size_t n) {
  __m256i acc = _mm256_set1_epi64x(MaxInt::identity());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    acc = _mm256_blendv_epi8(acc, x, _mm256_cmpgt_epi64(x, acc));
  }
  int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t r = MaxInt::identity();
  for (int k = 0; k < 4; ++k) r = r < lanes[k] ? lanes[k] : r;
  for (; i < n; ++i) r = r < v[i] ? v[i] : r;
  return r;
}

__attribute__((target("avx2"))) inline int64_t FoldMinAvx2(
    const int64_t* SLICK_RESTRICT v, std::size_t n) {
  __m256i acc = _mm256_set1_epi64x(MinInt::identity());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    acc = _mm256_blendv_epi8(acc, x, _mm256_cmpgt_epi64(acc, x));
  }
  int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t r = MinInt::identity();
  for (int k = 0; k < 4; ++k) r = lanes[k] < r ? lanes[k] : r;
  for (; i < n; ++i) r = v[i] < r ? v[i] : r;
  return r;
}

// ------------------------------------------------------------------
// AVX-512F kernels: 8 lanes and native 64-bit integer min/max. GCC's
// _mm512_* intrinsics built on _mm512_undefined_*() trip a
// -Wmaybe-uninitialized false positive when inlined (GCC PR105593), so
// the section scopes a suppression.
// ------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

__attribute__((target("avx512f"))) inline double FoldAddAvx512(
    const double* SLICK_RESTRICT v, std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_pd(acc, _mm512_loadu_pd(v + i));
  }
  double r = _mm512_reduce_add_pd(acc);
  for (; i < n; ++i) r += v[i];
  return r;
}

__attribute__((target("avx512f"))) inline int64_t FoldAddAvx512(
    const int64_t* SLICK_RESTRICT v, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_loadu_si512(v + i));
  }
  int64_t r = _mm512_reduce_add_epi64(acc);
  for (; i < n; ++i) r += v[i];
  return r;
}

__attribute__((target("avx512f"))) inline double FoldMaxAvx512(
    const double* SLICK_RESTRICT v, std::size_t n) {
  __m512d acc = _mm512_set1_pd(Max::identity());
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_max_pd(_mm512_loadu_pd(v + i), acc);
  }
  double lanes[8];
  _mm512_storeu_pd(lanes, acc);
  double r = Max::identity();
  for (int k = 0; k < 8; ++k) r = r < lanes[k] ? lanes[k] : r;
  for (; i < n; ++i) r = r < v[i] ? v[i] : r;
  return r;
}

__attribute__((target("avx512f"))) inline double FoldMinAvx512(
    const double* SLICK_RESTRICT v, std::size_t n) {
  __m512d acc = _mm512_set1_pd(Min::identity());
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_min_pd(_mm512_loadu_pd(v + i), acc);
  }
  double lanes[8];
  _mm512_storeu_pd(lanes, acc);
  double r = Min::identity();
  for (int k = 0; k < 8; ++k) r = lanes[k] < r ? lanes[k] : r;
  for (; i < n; ++i) r = v[i] < r ? v[i] : r;
  return r;
}

__attribute__((target("avx512f"))) inline int64_t FoldMaxAvx512(
    const int64_t* SLICK_RESTRICT v, std::size_t n) {
  __m512i acc = _mm512_set1_epi64(MaxInt::identity());
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_max_epi64(acc, _mm512_loadu_si512(v + i));
  }
  int64_t r = _mm512_reduce_max_epi64(acc);
  for (; i < n; ++i) r = r < v[i] ? v[i] : r;
  return r;
}

__attribute__((target("avx512f"))) inline int64_t FoldMinAvx512(
    const int64_t* SLICK_RESTRICT v, std::size_t n) {
  __m512i acc = _mm512_set1_epi64(MinInt::identity());
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_min_epi64(acc, _mm512_loadu_si512(v + i));
  }
  int64_t r = _mm512_reduce_min_epi64(acc);
  for (; i < n; ++i) r = v[i] < r ? v[i] : r;
  return r;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // SLICK_SIMD_X86

#if defined(SLICK_SIMD_NEON)

// ------------------------------------------------------------------
// NEON kernels (aarch64, 2 × 64-bit lanes). No vmaxq_s64/vminq_s64, and
// vmaxq_f64/vminq_f64 have the wrong NaN behaviour for our combine
// shape, so min/max are compare + select, same semantics as the scalar
// comparison.
// ------------------------------------------------------------------

SLICK_REALTIME inline double FoldAddNeon(const double* SLICK_RESTRICT v,
                                         std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) acc = vaddq_f64(acc, vld1q_f64(v + i));
  double r = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) r += v[i];
  return r;
}

SLICK_REALTIME inline int64_t FoldAddNeon(const int64_t* SLICK_RESTRICT v,
                                          std::size_t n) {
  int64x2_t acc = vdupq_n_s64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) acc = vaddq_s64(acc, vld1q_s64(v + i));
  int64_t r = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
  for (; i < n; ++i) r += v[i];
  return r;
}

SLICK_REALTIME inline double FoldMaxNeon(const double* SLICK_RESTRICT v,
                                         std::size_t n) {
  float64x2_t acc = vdupq_n_f64(Max::identity());
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t x = vld1q_f64(v + i);
    acc = vbslq_f64(vcltq_f64(acc, x), x, acc);
  }
  double r = Max::identity();
  for (int k = 0; k < 2; ++k) {
    const double lane = k == 0 ? vgetq_lane_f64(acc, 0) : vgetq_lane_f64(acc, 1);
    r = r < lane ? lane : r;
  }
  for (; i < n; ++i) r = r < v[i] ? v[i] : r;
  return r;
}

SLICK_REALTIME inline double FoldMinNeon(const double* SLICK_RESTRICT v,
                                         std::size_t n) {
  float64x2_t acc = vdupq_n_f64(Min::identity());
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t x = vld1q_f64(v + i);
    acc = vbslq_f64(vcltq_f64(x, acc), x, acc);
  }
  double r = Min::identity();
  for (int k = 0; k < 2; ++k) {
    const double lane = k == 0 ? vgetq_lane_f64(acc, 0) : vgetq_lane_f64(acc, 1);
    r = lane < r ? lane : r;
  }
  for (; i < n; ++i) r = v[i] < r ? v[i] : r;
  return r;
}

SLICK_REALTIME inline int64_t FoldMaxNeon(const int64_t* SLICK_RESTRICT v,
                                          std::size_t n) {
  int64x2_t acc = vdupq_n_s64(MaxInt::identity());
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t x = vld1q_s64(v + i);
    acc = vbslq_s64(vcltq_s64(acc, x), x, acc);
  }
  int64_t r = MaxInt::identity();
  for (int k = 0; k < 2; ++k) {
    const int64_t lane = k == 0 ? vgetq_lane_s64(acc, 0) : vgetq_lane_s64(acc, 1);
    r = r < lane ? lane : r;
  }
  for (; i < n; ++i) r = r < v[i] ? v[i] : r;
  return r;
}

SLICK_REALTIME inline int64_t FoldMinNeon(const int64_t* SLICK_RESTRICT v,
                                          std::size_t n) {
  int64x2_t acc = vdupq_n_s64(MinInt::identity());
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t x = vld1q_s64(v + i);
    acc = vbslq_s64(vcltq_s64(x, acc), x, acc);
  }
  int64_t r = MinInt::identity();
  for (int k = 0; k < 2; ++k) {
    const int64_t lane = k == 0 ? vgetq_lane_s64(acc, 0) : vgetq_lane_s64(acc, 1);
    r = lane < r ? lane : r;
  }
  for (; i < n; ++i) r = v[i] < r ? v[i] : r;
  return r;
}

#endif  // SLICK_SIMD_NEON

// ------------------------------------------------------------------
// Public dispatching kernels: the widest compiled variant the active
// level (ops/simd_dispatch.h) allows when the batch is long enough to
// amortize the reduction; scalar otherwise.
// ------------------------------------------------------------------

#if defined(SLICK_SIMD_X86)
#define SLICK_FOLD_DISPATCH_BODY(NAME, ARGS)                                \
  if (n >= kSimdThreshold) {                                                \
    const SimdLevel level = ActiveSimdLevel();                              \
    if (level >= SimdLevel::kAvx512) return NAME##Avx512 ARGS;              \
    if (level >= SimdLevel::kAvx2) return NAME##Avx2 ARGS;                  \
  }                                                                         \
  return NAME##Scalar ARGS;
#elif defined(SLICK_SIMD_NEON)
#define SLICK_FOLD_DISPATCH_BODY(NAME, ARGS)                                \
  if (n >= kSimdThreshold && ActiveSimdLevel() >= SimdLevel::kNeon) {       \
    return NAME##Neon ARGS;                                                 \
  }                                                                         \
  return NAME##Scalar ARGS;
#else
#define SLICK_FOLD_DISPATCH_BODY(NAME, ARGS) return NAME##Scalar ARGS;
#endif

SLICK_REALTIME inline double FoldAdd(const double* SLICK_RESTRICT v,
                                     std::size_t n) {
  SLICK_FOLD_DISPATCH_BODY(FoldAdd, (v, n))
}

SLICK_REALTIME inline int64_t FoldAdd(const int64_t* SLICK_RESTRICT v,
                                      std::size_t n) {
  SLICK_FOLD_DISPATCH_BODY(FoldAdd, (v, n))
}

SLICK_REALTIME inline double FoldMax(const double* SLICK_RESTRICT v,
                                     std::size_t n) {
  SLICK_FOLD_DISPATCH_BODY(FoldMax, (v, n))
}

SLICK_REALTIME inline int64_t FoldMax(const int64_t* SLICK_RESTRICT v,
                                      std::size_t n) {
  SLICK_FOLD_DISPATCH_BODY(FoldMax, (v, n))
}

SLICK_REALTIME inline double FoldMin(const double* SLICK_RESTRICT v,
                                     std::size_t n) {
  SLICK_FOLD_DISPATCH_BODY(FoldMin, (v, n))
}

SLICK_REALTIME inline int64_t FoldMin(const int64_t* SLICK_RESTRICT v,
                                      std::size_t n) {
  SLICK_FOLD_DISPATCH_BODY(FoldMin, (v, n))
}

#undef SLICK_FOLD_DISPATCH_BODY

}  // namespace kernels

// ------------------------------------------------------------------
// Kernel registrations. An op qualifies when its ⊕ over value_type is one
// of the fold shapes above AND an identity-seeded fold equals the kernel's
// result (true for these: + seeded with 0, min/max seeded with ±∞/INT_MIN).
// ------------------------------------------------------------------

template <>
struct BulkKernel<Sum> {
  static double Fold(const double* v, std::size_t n) {
    return kernels::FoldAdd(v, n);
  }
};

template <>
struct BulkKernel<SumInt> {
  static int64_t Fold(const int64_t* v, std::size_t n) {
    return kernels::FoldAdd(v, n);
  }
};

template <>
struct BulkKernel<SumOfSquares> {
  // value_type carries already-lifted squares, so the fold is a plain add.
  static double Fold(const double* v, std::size_t n) {
    return kernels::FoldAdd(v, n);
  }
};

template <>
struct BulkKernel<Count> {
  // Partials are lifted 1s (or merged counts); still an integer sum.
  static int64_t Fold(const int64_t* v, std::size_t n) {
    return kernels::FoldAdd(v, n);
  }
};

template <>
struct BulkKernel<Max> {
  static double Fold(const double* v, std::size_t n) {
    return kernels::FoldMax(v, n);
  }
};

template <>
struct BulkKernel<MaxInt> {
  static int64_t Fold(const int64_t* v, std::size_t n) {
    return kernels::FoldMax(v, n);
  }
};

template <>
struct BulkKernel<Min> {
  static double Fold(const double* v, std::size_t n) {
    return kernels::FoldMin(v, n);
  }
};

template <>
struct BulkKernel<MinInt> {
  static int64_t Fold(const int64_t* v, std::size_t n) {
    return kernels::FoldMin(v, n);
  }
};

/// Identity-seeded fold of `n` contiguous partials under Op: the op's
/// registered vector kernel when one exists, a plain combine loop
/// otherwise. n == 0 yields Op::identity(). This is the single entry point
/// the aggregators' batch fast paths fold through.
template <AggregateOp Op>
typename Op::value_type FoldValues(const typename Op::value_type* v,
                                   std::size_t n) {
  if constexpr (HasBulkKernel<Op>) {
    return BulkKernel<Op>::Fold(v, n);
  } else {
    typename Op::value_type acc = Op::identity();
    for (std::size_t i = 0; i < n; ++i) acc = Op::combine(acc, v[i]);
    return acc;
  }
}

}  // namespace slick::ops
