#pragma once

#include <cstdint>
#include <limits>

namespace slick::ops {

/// Max: the canonical non-invertible (selective) aggregation
/// (paper Example 3).
struct Max {
  using input_type = double;
  using value_type = double;
  using result_type = double;

  static constexpr const char* kName = "max";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = true;

  /// absorbs() is induced by <= on the value, so batch paths may test a
  /// whole prefix against one ⊕-aggregate (ops::TotalOrderSelectiveOp).
  static constexpr bool kAbsorbsTotal = true;

  static value_type identity() {
    return -std::numeric_limits<double>::infinity();
  }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) {
    return a < b ? b : a;
  }
  /// One-comparison domination test: newer absorbs older iff older <= newer.
  static bool absorbs(value_type newer, value_type older) {
    return older <= newer;
  }
  static result_type lower(value_type a) { return a; }
};

/// Min: selective, non-invertible.
struct Min {
  using input_type = double;
  using value_type = double;
  using result_type = double;

  static constexpr const char* kName = "min";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = true;

  static constexpr bool kAbsorbsTotal = true;

  static value_type identity() {
    return std::numeric_limits<double>::infinity();
  }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) {
    return b < a ? b : a;
  }
  static bool absorbs(value_type newer, value_type older) {
    return newer <= older;
  }
  static result_type lower(value_type a) { return a; }
};

/// Exact integer Max (used by oracle-driven tests).
struct MaxInt {
  using input_type = int64_t;
  using value_type = int64_t;
  using result_type = int64_t;

  static constexpr const char* kName = "max_int";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = true;

  static constexpr bool kAbsorbsTotal = true;

  static value_type identity() { return std::numeric_limits<int64_t>::min(); }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) {
    return a < b ? b : a;
  }
  static bool absorbs(value_type newer, value_type older) {
    return older <= newer;
  }
  static result_type lower(value_type a) { return a; }
};

/// Exact integer Min (pairs with MaxInt for oracle-driven tests and the
/// int64 bench rows).
struct MinInt {
  using input_type = int64_t;
  using value_type = int64_t;
  using result_type = int64_t;

  static constexpr const char* kName = "min_int";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = true;

  static constexpr bool kAbsorbsTotal = true;

  static value_type identity() { return std::numeric_limits<int64_t>::max(); }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) {
    return b < a ? b : a;
  }
  static bool absorbs(value_type newer, value_type older) {
    return newer <= older;
  }
  static result_type lower(value_type a) { return a; }
};

/// A keyed sample for ArgMax/ArgMin: key decides the order, id identifies
/// the winning element (e.g., a stock symbol index or a tuple timestamp).
struct ArgSample {
  double key = -std::numeric_limits<double>::infinity();
  uint64_t id = 0;

  friend bool operator==(const ArgSample&, const ArgSample&) = default;
};

/// ArgMax: returns the id of the element with the largest key. Ties keep the
/// *earlier* element, which makes the operation associative but not
/// commutative (paper §3.1 lists ArgMax of Cosine as a supported
/// non-invertible op; apply the key function in lift()'s caller).
struct ArgMax {
  using input_type = ArgSample;
  using value_type = ArgSample;
  using result_type = ArgSample;

  static constexpr const char* kName = "arg_max";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = false;
  static constexpr bool kSelective = true;

  /// The strict-key absorbs test is still order-induced (combine preserves
  /// the set's max key, and ties never absorb regardless of which tied
  /// sample the aggregate carries), so batch paths may use one aggregate
  /// comparison per element.
  static constexpr bool kAbsorbsTotal = true;

  static value_type identity() { return ArgSample{}; }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) {
    return a.key < b.key ? b : a;
  }
  /// Conservative on ties: equal keys keep the earlier sample.
  static bool absorbs(const value_type& newer, const value_type& older) {
    return older.key < newer.key;
  }
  static result_type lower(value_type a) { return a; }
};

/// ArgMin: id of the element with the smallest key; ties keep the earlier
/// element (paper §3.1 lists ArgMin of x^2).
struct ArgMin {
  using input_type = ArgSample;
  using value_type = ArgSample;
  using result_type = ArgSample;

  static constexpr const char* kName = "arg_min";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = false;
  static constexpr bool kSelective = true;

  static constexpr bool kAbsorbsTotal = true;

  static value_type identity() {
    return ArgSample{std::numeric_limits<double>::infinity(), 0};
  }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) {
    return b.key < a.key ? b : a;
  }
  static bool absorbs(const value_type& newer, const value_type& older) {
    return newer.key < older.key;
  }
  static result_type lower(value_type a) { return a; }
};

/// First: keeps the oldest value in the window. Associative, selective,
/// non-commutative. (Trivial for FIFO windows, but a useful stress test for
/// order-correctness of tree-based aggregators.)
struct First {
  using input_type = double;
  using value_type = double;
  using result_type = double;

  static constexpr const char* kName = "first";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = false;
  static constexpr bool kSelective = true;

  static value_type identity() {
    // Quiet NaN marks "no value yet"; combine() treats it as neutral.
    return std::numeric_limits<double>::quiet_NaN();
  }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) {
    return a != a ? b : a;  // NaN-aware: identity yields the other side
  }
  static result_type lower(value_type a) { return a; }
};

/// Last: keeps the newest value in the window.
struct Last {
  using input_type = double;
  using value_type = double;
  using result_type = double;

  static constexpr const char* kName = "last";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = false;
  static constexpr bool kSelective = true;

  static value_type identity() {
    return std::numeric_limits<double>::quiet_NaN();
  }
  static value_type lift(input_type x) { return x; }
  static value_type combine(value_type a, value_type b) {
    return b != b ? a : b;
  }
  static result_type lower(value_type a) { return a; }
};

}  // namespace slick::ops

