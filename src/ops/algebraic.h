#pragma once

#include <cmath>
#include <cstdint>

namespace slick::ops {

// Algebraic aggregations (paper §3.1) are computed from a bounded number of
// distributive aggregations. We carry the distributive components together
// in one struct-valued partial, so every algorithm in the library handles
// them unchanged; lower() performs the final algebraic step. Because every
// component below is invertible, these ops are invertible too and run on the
// SlickDeque (Inv) fast path.
//
// Range (Max and Min) is the one paper-listed algebraic aggregation whose
// components are non-invertible; it is provided as `core::RangeAggregator`
// (two SlickDeque (Non-Inv) instances) rather than as a single op, since a
// fused {max,min} partial would be neither invertible nor selective.

/// Carries (count, sum) to compute the mean.
struct AvgPartial {
  int64_t count = 0;
  double sum = 0.0;

  friend bool operator==(const AvgPartial&, const AvgPartial&) = default;
};

/// Average = Sum / Count (paper: "Average (Count and Sum)").
struct Average {
  using input_type = double;
  using value_type = AvgPartial;
  using result_type = double;

  static constexpr const char* kName = "average";
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = false;

  static value_type identity() { return AvgPartial{}; }
  static value_type lift(input_type x) { return AvgPartial{1, x}; }
  static value_type combine(value_type a, value_type b) {
    return AvgPartial{a.count + b.count, a.sum + b.sum};
  }
  static value_type inverse(value_type a, value_type b) {
    return AvgPartial{a.count - b.count, a.sum - b.sum};
  }
  static result_type lower(value_type a) {
    return a.count == 0 ? 0.0 : a.sum / static_cast<double>(a.count);
  }
};

/// Like Average, but lower() hands back the raw (count, sum) partial —
/// the shared carrier for the paper's §2.3 example of *different but
/// compatible* operations: Sum, Count and Average queries over the same
/// stream all project from this one aggregation (see
/// engine::SharedSumFamilyEngine).
struct SumCount {
  using input_type = double;
  using value_type = AvgPartial;
  using result_type = AvgPartial;

  static constexpr const char* kName = "sum_count";
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = false;

  static value_type identity() { return AvgPartial{}; }
  static value_type lift(input_type x) { return AvgPartial{1, x}; }
  static value_type combine(value_type a, value_type b) {
    return AvgPartial{a.count + b.count, a.sum + b.sum};
  }
  static value_type inverse(value_type a, value_type b) {
    return AvgPartial{a.count - b.count, a.sum - b.sum};
  }
  static result_type lower(value_type a) { return a; }
};

/// Carries (count, sum, sum of squares) for the standard deviation.
struct StdDevPartial {
  int64_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;

  friend bool operator==(const StdDevPartial&, const StdDevPartial&) = default;
};

/// Population standard deviation (paper: "Standard Deviation (Sum of
/// Squares, Sum, and Count)").
struct StdDev {
  using input_type = double;
  using value_type = StdDevPartial;
  using result_type = double;

  static constexpr const char* kName = "std_dev";
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = false;

  static value_type identity() { return StdDevPartial{}; }
  static value_type lift(input_type x) { return StdDevPartial{1, x, x * x}; }
  static value_type combine(value_type a, value_type b) {
    return StdDevPartial{a.count + b.count, a.sum + b.sum,
                         a.sum_sq + b.sum_sq};
  }
  static value_type inverse(value_type a, value_type b) {
    return StdDevPartial{a.count - b.count, a.sum - b.sum,
                         a.sum_sq - b.sum_sq};
  }
  static result_type lower(value_type a) {
    if (a.count == 0) return 0.0;
    const double n = static_cast<double>(a.count);
    const double mean = a.sum / n;
    const double variance = a.sum_sq / n - mean * mean;
    return variance <= 0.0 ? 0.0 : std::sqrt(variance);
  }
};

/// Carries (count, sum of logs) for the geometric mean. Using log-sums
/// instead of a running product keeps long windows away from overflow and
/// makes the inverse numerically stable; inputs must be positive.
struct GeoMeanPartial {
  int64_t count = 0;
  double log_sum = 0.0;

  friend bool operator==(const GeoMeanPartial&,
                         const GeoMeanPartial&) = default;
};

/// Geometric mean (paper: "Geometric Mean (Product and Count)").
struct GeoMean {
  using input_type = double;
  using value_type = GeoMeanPartial;
  using result_type = double;

  static constexpr const char* kName = "geo_mean";
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = false;

  static value_type identity() { return GeoMeanPartial{}; }
  static value_type lift(input_type x) {
    return GeoMeanPartial{1, std::log(x)};
  }
  static value_type combine(value_type a, value_type b) {
    return GeoMeanPartial{a.count + b.count, a.log_sum + b.log_sum};
  }
  static value_type inverse(value_type a, value_type b) {
    return GeoMeanPartial{a.count - b.count, a.log_sum - b.log_sum};
  }
  static result_type lower(value_type a) {
    return a.count == 0 ? 0.0
                        : std::exp(a.log_sum / static_cast<double>(a.count));
  }
};

}  // namespace slick::ops

