#pragma once

#include <cstdint>

#include "ops/traits.h"

namespace slick::ops {

/// Global tally of aggregate-operation invocations. The paper's complexity
/// analysis (§4.1, Table 1) counts ⊕/⊖ applications per slide; wrapping an
/// op in CountingOp<> lets tests and `bench/table1_opcounts` measure exactly
/// that metric. Single-threaded by design, like the paper's testbed.
struct OpCounter {
  static inline uint64_t combines = 0;
  static inline uint64_t inverses = 0;

  static void Reset() {
    combines = 0;
    inverses = 0;
  }
  static uint64_t Total() { return combines + inverses; }
};

/// Per-thread tally with the same shape as OpCounter: each thread sees its
/// own counts, so the parallel runtime can attribute Table-1 op work to the
/// shard worker that performed it (ShardWorker folds the deltas into its
/// telemetry::ShardCounters once per batch). No synchronization needed —
/// every access is thread-local.
struct ThreadLocalOpCounter {
  static inline thread_local uint64_t combines = 0;
  static inline thread_local uint64_t inverses = 0;

  static void Reset() {
    combines = 0;
    inverses = 0;
  }
  static uint64_t Total() { return combines + inverses; }
};

/// Instruments an op: forwards everything, counting combine()/inverse()
/// calls in `Counter` (OpCounter or ThreadLocalOpCounter — anything with
/// static `combines`/`inverses` tallies). lift() and lower() are free,
/// matching the paper's metric ("the number of aggregate operations
/// performed per slide").
template <AggregateOp Op, typename Counter>
struct CountingOpT {
  using input_type = typename Op::input_type;
  using value_type = typename Op::value_type;
  using result_type = typename Op::result_type;
  /// Exposes the tally so telemetry consumers (ShardWorker) can detect a
  /// counted op and read the per-thread deltas.
  using counter_type = Counter;

  static constexpr const char* kName = Op::kName;
  static constexpr bool kInvertible = Op::kInvertible;
  static constexpr bool kCommutative = Op::kCommutative;
  static constexpr bool kSelective = Op::kSelective;

  static value_type identity() { return Op::identity(); }
  static value_type lift(input_type x) { return Op::lift(x); }
  static value_type combine(const value_type& a, const value_type& b) {
    ++Counter::combines;
    return Op::combine(a, b);
  }
  static value_type inverse(const value_type& a, const value_type& b)
    requires InvertibleOp<Op>
  {
    ++Counter::inverses;
    return Op::inverse(a, b);
  }
  // The deque's domination test is an ⊕ application under the paper's
  // metric, whichever spelling the op provides.
  static bool absorbs(const value_type& newer, const value_type& older)
    requires SelectiveOp<Op>
  {
    ++Counter::combines;
    return Absorbs<Op>(newer, older);
  }
  static result_type lower(const value_type& a) { return Op::lower(a); }
};

/// The Table-1 default: global single-threaded tally, as in the paper's
/// testbed.
template <AggregateOp Op>
using CountingOp = CountingOpT<Op, OpCounter>;

/// Thread-attributed variant for the parallel runtime.
template <AggregateOp Op>
using ThreadCountingOp = CountingOpT<Op, ThreadLocalOpCounter>;

}  // namespace slick::ops

