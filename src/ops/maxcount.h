#pragma once

#include <cstdint>

namespace slick::ops {

/// (maximum, multiplicity-of-the-maximum) partial.
struct MaxCountPartial {
  double max = 0.0;
  int64_t count = 0;  // 0 encodes the identity (no elements yet)

  friend bool operator==(const MaxCountPartial&,
                         const MaxCountPartial&) = default;
};

/// MaxCount: the window maximum together with how many times it occurs —
/// e.g. "how many sensors are pinned at the ceiling reading". Associative
/// and commutative, but neither invertible (an evicted maximum cannot be
/// rolled back) nor selective (a tie produces a NEW value with a summed
/// count). Like BloomSketch, it exercises the facade's general
/// TwoStacks/DABA fallback path.
struct MaxCount {
  using input_type = double;
  using value_type = MaxCountPartial;
  using result_type = MaxCountPartial;

  static constexpr const char* kName = "max_count";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = false;

  static value_type identity() { return MaxCountPartial{}; }
  static value_type lift(input_type x) { return MaxCountPartial{x, 1}; }
  static value_type combine(const value_type& a, const value_type& b) {
    if (a.count == 0) return b;
    if (b.count == 0) return a;
    if (a.max < b.max) return b;
    if (b.max < a.max) return a;
    return MaxCountPartial{a.max, a.count + b.count};
  }
  static result_type lower(const value_type& a) { return a; }
};

}  // namespace slick::ops

