#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace slick::ops {

/// A 512-bit Bloom filter partial: the window's "distinct items sketch".
struct BloomPartial {
  std::array<uint64_t, 8> bits = {};

  friend bool operator==(const BloomPartial&, const BloomPartial&) = default;

  /// Approximate distinct count from the fill ratio (standard Bloom
  /// cardinality estimate with k = 2 hash functions).
  double EstimateDistinct() const {
    int set = 0;
    for (uint64_t w : bits) set += std::popcount(w);
    if (set == 0) return 0.0;
    if (set >= 512) return 512.0;  // saturated
    // n ≈ -(m/k) * ln(1 - X/m), m = 512, k = 2.
    const double x = static_cast<double>(set) / 512.0;
    return -(512.0 / 2.0) * std::log(1.0 - x);
  }
};

/// Bloom-union sketch of the window's distinct items (e.g. distinct stock
/// symbols in the last N trades). Associative and commutative but neither
/// invertible (bits cannot be un-set) nor selective (the union is a new
/// value) — the class of operations SlickDeque cannot run and the
/// dispatching facade routes to the general TwoStacks/DABA path, making the
/// paper's query-generality claim concrete with a realistic workload.
struct BloomSketch {
  using input_type = uint64_t;  // item identifier
  using value_type = BloomPartial;
  using result_type = BloomPartial;

  static constexpr const char* kName = "bloom_sketch";
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr bool kSelective = false;

  static value_type identity() { return BloomPartial{}; }

  static value_type lift(input_type item) {
    BloomPartial p;
    const uint64_t h1 = Mix(item);
    const uint64_t h2 = Mix(h1 ^ 0x9e3779b97f4a7c15ULL);
    p.bits[(h1 >> 6) & 7] |= uint64_t{1} << (h1 & 63);
    p.bits[(h2 >> 6) & 7] |= uint64_t{1} << (h2 & 63);
    return p;
  }

  static value_type combine(const value_type& a, const value_type& b) {
    BloomPartial p;
    for (int i = 0; i < 8; ++i) p.bits[static_cast<size_t>(i)] =
        a.bits[static_cast<size_t>(i)] | b.bits[static_cast<size_t>(i)];
    return p;
  }

  static result_type lower(const value_type& a) { return a; }

  /// Membership probe against a window sketch (may false-positive, never
  /// false-negative).
  static bool MightContain(const BloomPartial& p, uint64_t item) {
    const uint64_t h1 = Mix(item);
    const uint64_t h2 = Mix(h1 ^ 0x9e3779b97f4a7c15ULL);
    return (p.bits[(h1 >> 6) & 7] & (uint64_t{1} << (h1 & 63))) != 0 &&
           (p.bits[(h2 >> 6) & 7] & (uint64_t{1} << (h2 & 63))) != 0;
  }

 private:
  static uint64_t Mix(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

}  // namespace slick::ops

