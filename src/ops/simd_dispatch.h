#pragma once

// Runtime SIMD dispatch shared by ops/kernels.h (contiguous folds) and
// ops/scan_kernels.h (structural scan kernels) — DESIGN.md §16.
//
// One binary carries every variant the compiler can emit for the target
// architecture (scalar always; AVX2 + AVX-512F on x86-64; NEON on
// aarch64), each behind a per-function target attribute so the rest of
// the translation unit stays baseline-ISA portable. The host's best level
// is resolved once (__builtin_cpu_supports on x86; compile-time on
// aarch64, where NEON is mandatory) and cached; after that a dispatch is
// one relaxed atomic load and two compares.
//
// The active level is overridable at runtime (SetSimdLevel) so benches
// can emit scalar-twin rows and the differential tests can drive every
// compiled variant against the scalar oracle in one process. Overrides
// are clamped to what the host actually supports — requesting kAvx512 on
// an AVX2-only machine yields kAvx2.
//
// -DSLICK_SIMD_FORCE_SCALAR (CMake: SLICK_SIMD_FORCE_SCALAR) compiles the
// wide variants out entirely, which is the CI matrix leg that proves the
// scalar fallback is complete on its own.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/annotations.h"

#if defined(__GNUC__) || defined(__clang__)
#define SLICK_RESTRICT __restrict__
#else
#define SLICK_RESTRICT
#endif

#if defined(SLICK_SIMD) && !defined(SLICK_SIMD_FORCE_SCALAR) && \
    defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SLICK_SIMD_X86 1
#include <immintrin.h>
#endif

#if defined(SLICK_SIMD) && !defined(SLICK_SIMD_FORCE_SCALAR) && \
    defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define SLICK_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace slick::ops::kernels {

/// Kernel variants in ascending capability order. The numeric order only
/// matters within one architecture (kNeon is never reachable on x86 and
/// vice versa); dispatchers test `level >= kX` for the variants they
/// compiled.
enum class SimdLevel : uint8_t {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

inline const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kNeon: return "neon";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

/// Best level the running host supports among the compiled variants.
inline SimdLevel DetectSimdLevel() {
#if defined(SLICK_SIMD_X86)
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
#elif defined(SLICK_SIMD_NEON)
  return SimdLevel::kNeon;  // mandatory on aarch64
#else
  return SimdLevel::kScalar;
#endif
}

namespace detail {
SLICK_REALTIME_ALLOW(
    "one-time dispatch init: the function-local static resolves CPUID on "
    "first use only; every later call is a guard check plus a relaxed "
    "atomic load")
inline std::atomic<SimdLevel>& ActiveSimdLevelSlot() {
  static std::atomic<SimdLevel> level{DetectSimdLevel()};
  return level;
}
}  // namespace detail

/// Level the dispatching kernels currently use. Defaults to
/// DetectSimdLevel(); tests and benches may lower it via SetSimdLevel.
SLICK_REALTIME inline SimdLevel ActiveSimdLevel() {
  return detail::ActiveSimdLevelSlot().load(std::memory_order_relaxed);
}

/// Overrides the dispatch level (clamped to the host's detected best, so
/// an unsupported request degrades instead of faulting) and returns the
/// previous level. Test/bench hook — e.g. force kScalar, run the scalar
/// twin, restore.
inline SimdLevel SetSimdLevel(SimdLevel level) {
  const SimdLevel best = DetectSimdLevel();
  if (static_cast<uint8_t>(level) > static_cast<uint8_t>(best)) level = best;
  return detail::ActiveSimdLevelSlot().exchange(level,
                                                std::memory_order_relaxed);
}

/// Batches below this length are not worth the dispatch + horizontal
/// reduction (folds) or the carry plumbing (scans); the scalar loop wins.
inline constexpr std::size_t kSimdThreshold = 16;

}  // namespace slick::ops::kernels
