#pragma once

// Shared infrastructure for the reproduction benches: tiny flag parser,
// steady-clock timing, aligned table output, and the synthetic energy
// series standing in for the DEBS12 dataset (see DESIGN.md).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "stream/dataset.h"
#include "stream/synthetic.h"

namespace slick::bench {

/// Minimal --key=value flag parser (no external deps in bench binaries).
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      const char* eq = std::strchr(arg + 2, '=');
      if (eq == nullptr) {
        kv_.emplace_back(std::string(arg + 2), "1");
      } else {
        kv_.emplace_back(std::string(arg + 2, eq), std::string(eq + 1));
      }
    }
  }

  uint64_t GetU64(const char* name, uint64_t def) const {
    const std::string* v = Find(name);
    return v == nullptr ? def : std::strtoull(v->c_str(), nullptr, 10);
  }

  double GetDouble(const char* name, double def) const {
    const std::string* v = Find(name);
    return v == nullptr ? def : std::strtod(v->c_str(), nullptr);
  }

  std::string GetString(const char* name, const char* def) const {
    const std::string* v = Find(name);
    return v == nullptr ? def : *v;
  }

 private:
  const std::string* Find(const char* name) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, std::string>> kv_;
};

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The benchmark data: one energy channel of the synthetic DEBS12-like
/// stream. Benches cycle through it when they need more tuples than
/// `count`.
inline std::vector<double> EnergySeries(std::size_t count, uint64_t seed,
                                        int channel = 0) {
  stream::SyntheticSensorSource src(seed);
  return src.MakeEnergySeries(count, channel);
}

/// Like EnergySeries, honouring a --data=<file> flag (CSV column
/// `channel`, or a .bin cache) so the real DEBS12 dump can drive the
/// benches; falls back to the synthetic stream.
inline std::vector<double> BenchSeries(const Flags& flags, std::size_t count,
                                       uint64_t seed, int channel = 0) {
  return stream::LoadOrSynthesize(flags.GetString("data", ""), count, seed,
                                  channel);
}

/// Keeps results alive so the optimizer cannot delete the measured loop.
struct Checksum {
  double value = 0.0;
  void Add(double x) { value += x; }
  void Report() const { std::printf("# checksum %.6g\n", value); }
};

inline void PrintHeader(const char* title, const char* cols) {
  std::printf("\n== %s ==\n%s\n", title, cols);
}

}  // namespace slick::bench

