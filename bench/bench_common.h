#pragma once

// Shared infrastructure for the reproduction benches: tiny flag parser,
// steady-clock timing, aligned table output, and the synthetic energy
// series standing in for the DEBS12 dataset (see DESIGN.md).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "stream/dataset.h"
#include "stream/synthetic.h"

namespace slick::bench {

/// Minimal --key=value flag parser (no external deps in bench binaries).
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      const char* eq = std::strchr(arg + 2, '=');
      if (eq == nullptr) {
        kv_.emplace_back(std::string(arg + 2), "1");
      } else {
        kv_.emplace_back(std::string(arg + 2, eq), std::string(eq + 1));
      }
    }
  }

  uint64_t GetU64(const char* name, uint64_t def) const {
    const std::string* v = Find(name);
    return v == nullptr ? def : std::strtoull(v->c_str(), nullptr, 10);
  }

  double GetDouble(const char* name, double def) const {
    const std::string* v = Find(name);
    return v == nullptr ? def : std::strtod(v->c_str(), nullptr);
  }

  std::string GetString(const char* name, const char* def) const {
    const std::string* v = Find(name);
    return v == nullptr ? def : *v;
  }

 private:
  const std::string* Find(const char* name) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, std::string>> kv_;
};

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The benchmark data: one energy channel of the synthetic DEBS12-like
/// stream. Benches cycle through it when they need more tuples than
/// `count`.
inline std::vector<double> EnergySeries(std::size_t count, uint64_t seed,
                                        int channel = 0) {
  stream::SyntheticSensorSource src(seed);
  return src.MakeEnergySeries(count, channel);
}

/// Like EnergySeries, honouring a --data=<file> flag (CSV column
/// `channel`, or a .bin cache) so the real DEBS12 dump can drive the
/// benches; falls back to the synthetic stream.
inline std::vector<double> BenchSeries(const Flags& flags, std::size_t count,
                                       uint64_t seed, int channel = 0) {
  return stream::LoadOrSynthesize(flags.GetString("data", ""), count, seed,
                                  channel);
}

/// Keeps results alive so the optimizer cannot delete the measured loop.
struct Checksum {
  double value = 0.0;
  void Add(double x) { value += x; }
  void Report() const { std::printf("# checksum %.6g\n", value); }
};

inline void PrintHeader(const char* title, const char* cols) {
  std::printf("\n== %s ==\n%s\n", title, cols);
}

/// Machine-readable results: every bench accepts --json=<path> and, when
/// set, writes an array of rows with the shared schema
///
///   {"bench": "<name>", "config": {"key": "value", ...},
///    "tuples_per_sec": <num>, "p50_ns": <num|null>, "p99_ns": <num|null>}
///
/// tools/bench_summary.py merges these files into the committed
/// BENCH_<name>.json snapshots and gates CI on them. The human-readable
/// table output is unchanged — the report is purely additive.
class JsonReport {
 public:
  JsonReport(const Flags& flags, const char* bench)
      : path_(flags.GetString("json", "")), bench_(bench) {}

  bool enabled() const { return !path_.empty(); }

  /// Stringifies a numeric config value (config values are all strings so
  /// the schema stays uniform across benches).
  static std::string Num(uint64_t v) { return std::to_string(v); }

  /// Appends one result row. Negative percentiles emit JSON null — the
  /// convention for throughput-only benches.
  void Row(std::initializer_list<std::pair<const char*, std::string>> config,
           double tuples_per_sec, double p50_ns = -1.0,
           double p99_ns = -1.0) {
    if (!enabled()) return;
    std::string row = "{\"bench\":\"" + bench_ + "\",\"config\":{";
    bool first = true;
    for (const auto& [k, v] : config) {
      if (!first) row += ",";
      first = false;
      row += "\"";
      row += k;
      row += "\":\"";
      row += v;
      row += "\"";
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "},\"tuples_per_sec\":%.1f",
                  tuples_per_sec);
    row += buf;
    AppendNsField(row, "p50_ns", p50_ns);
    AppendNsField(row, "p99_ns", p99_ns);
    row += "}";
    rows_.push_back(std::move(row));
  }

  /// Writes the accumulated array to the --json path; no-op when disabled.
  void Write() const {
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json report: cannot open %s\n", path_.c_str());
      return;
    }
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fputs(rows_[i].c_str(), f);
      std::fputs(i + 1 < rows_.size() ? ",\n" : "\n", f);
    }
    std::fputs("]\n", f);
    std::fclose(f);
  }

 private:
  static void AppendNsField(std::string& row, const char* key, double v) {
    char buf[96];
    if (v < 0.0) {
      std::snprintf(buf, sizeof(buf), ",\"%s\":null", key);
    } else {
      std::snprintf(buf, sizeof(buf), ",\"%s\":%.1f", key, v);
    }
    row += buf;
  }

  std::string path_;
  std::string bench_;
  std::vector<std::string> rows_;
};

}  // namespace slick::bench

