// Exp 3 (paper Fig 14): per-query processing latency at window 1024.
//
// A single query (Sum, then Max) runs over a fixed 1024-tuple window for 1M
// tuples; the time to process each tuple and return the answer is recorded,
// the top 0.005% dropped as outliers (as in the paper), and the
// distribution summarized as Min / 25th / Median / 75th / Max / Average.
//
// Expected shape (paper §5.2): SlickDeque lowest in every category;
// TwoStacks and FlatFIT show the largest max spikes (their O(n) flip /
// window-reset steps); DABA bounds the spike but pays in the median;
// SlickDeque's max spike is far below DABA's.
//
// Flags: --window=W (default 1024)  --tuples=T (default 1000000)
//        --drop-top=F (default 0.00005)  --seed=S

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "util/stats.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick::bench {
namespace {

struct Config {
  std::size_t window = 1024;
  uint64_t tuples = 1'000'000;
  double drop_top = 0.00005;
  uint64_t seed = 42;
};

template <typename Agg>
void RunPoint(const char* name, const std::vector<double>& data,
              const Config& cfg, Checksum& cs) {
  using Op = typename Agg::op_type;
  Agg agg(cfg.window);
  std::size_t di = 0;
  auto next = [&] {
    const double v = data[di];
    di = di + 1 == data.size() ? 0 : di + 1;
    return v;
  };
  for (std::size_t i = 0; i < cfg.window; ++i) agg.slide(Op::lift(next()));

  util::LatencyRecorder rec(cfg.tuples);
  double sink = 0.0;
  for (uint64_t i = 0; i < cfg.tuples; ++i) {
    const double x = next();
    const uint64_t t0 = NowNs();
    agg.slide(Op::lift(x));
    sink += static_cast<double>(agg.query());
    rec.Record(NowNs() - t0);
  }
  cs.Add(sink);
  const util::LatencySummary s = rec.Finish(cfg.drop_top);
  std::printf("%-22s %8.0f %8.0f %8.0f %8.0f %8.0f %8.0f %10.0f %9.1f\n",
              name, s.min_ns, s.p25_ns, s.median_ns, s.p75_ns, s.p99_ns,
              s.p999_ns, s.max_ns, s.avg_ns);
  std::fflush(stdout);
}

template <typename Op>
void RunOp(const char* title, const std::vector<double>& data,
           const Config& cfg, Checksum& cs) {
  PrintHeader(title,
              "# algorithm                 min      p25   median      p75"
              "      p99    p99.9        max       avg   (ns/query)");
  RunPoint<window::NaiveWindow<Op>>("naive", data, cfg, cs);
  RunPoint<window::FlatFat<Op>>("flatfat", data, cfg, cs);
  RunPoint<window::BInt<Op>>("bint", data, cfg, cs);
  RunPoint<window::FlatFit<Op>>("flatfit", data, cfg, cs);
  RunPoint<core::Windowed<window::TwoStacks<Op>>>("twostacks", data, cfg, cs);
  RunPoint<core::Windowed<window::Daba<Op>>>("daba", data, cfg, cs);
  if constexpr (ops::InvertibleOp<Op>) {
    RunPoint<core::SlickDequeInv<Op>>("slickdeque(inv)", data, cfg, cs);
  }
  if constexpr (ops::SelectiveOp<Op>) {
    RunPoint<core::SlickDequeNonInv<Op>>("slickdeque(non-inv)", data, cfg, cs);
  }
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  const Flags flags(argc, argv);
  Config cfg;
  cfg.window = flags.GetU64("window", 1024);
  cfg.tuples = flags.GetU64("tuples", 1'000'000);
  cfg.drop_top = flags.GetDouble("drop-top", 0.00005);
  cfg.seed = flags.GetU64("seed", 42);

  std::printf("Exp 3: query processing latency (paper Fig 14)\n");
  std::printf("# window=%zu tuples=%llu drop-top=%g seed=%llu\n", cfg.window,
              (unsigned long long)cfg.tuples, cfg.drop_top,
              (unsigned long long)cfg.seed);

  const std::vector<double> data = BenchSeries(flags, 1 << 20, cfg.seed);
  Checksum cs;
  RunOp<slick::ops::Sum>("Sum (invertible)", data, cfg, cs);
  RunOp<slick::ops::Max>("Max (non-invertible)", data, cfg, cs);
  cs.Report();
  return 0;
}
