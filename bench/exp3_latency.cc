// Exp 3 (paper Fig 14): per-query processing latency at window 1024.
//
// A single query (Sum, then Max) runs over a fixed 1024-tuple window for 1M
// tuples; the time to process each tuple and return the answer is recorded,
// the top 0.005% dropped as outliers (as in the paper), and the
// distribution summarized as Min / 25th / Median / 75th / Max / Average.
//
// Expected shape (paper §5.2): SlickDeque lowest in every category;
// TwoStacks and FlatFIT show the largest max spikes (their O(n) flip /
// window-reset steps); DABA bounds the spike but pays in the median;
// SlickDeque's max spike is far below DABA's.
//
// Each sample is recorded BOTH into the exact sorted-sample recorder and
// into the telemetry layer's constant-memory log-bucketed histogram
// (telemetry/histogram.h); after each exact row the histogram's estimates
// are printed and cross-validated: any percentile deviating from the exact
// value by more than the histogram's documented bucket-relative error
// (plus rank-convention slack) fails the run. This is the acceptance check
// that always-on production telemetry reports the same Fig-14 numbers as
// the post-hoc research harness.
//
// Flags: --window=W (default 1024)  --tuples=T (default 1000000)
//        --drop-top=F (default 0.00005)  --seed=S

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "telemetry/histogram.h"
#include "util/stats.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick::bench {
namespace {

struct Config {
  std::size_t window = 1024;
  uint64_t tuples = 1'000'000;
  double drop_top = 0.00005;
  uint64_t seed = 42;
};

void PrintRow(const char* name, const util::LatencySummary& s) {
  std::printf("%-22s %8.0f %8.0f %8.0f %8.0f %8.0f %8.0f %10.0f %9.1f\n",
              name, s.min_ns, s.p25_ns, s.median_ns, s.p75_ns, s.p99_ns,
              s.p999_ns, s.max_ns, s.avg_ns);
  std::fflush(stdout);
}

/// Cross-validates the histogram estimate for quantile `q` against the
/// exact (nearest-rank) order statistic of the full sorted sample set.
/// Aborts the bench when the deviation exceeds the histogram's documented
/// bucket-relative error — the acceptance bound is machine-checked on
/// every run, not just in unit tests.
void CheckQuantile(const char* name, double q,
                   const std::vector<uint64_t>& sorted,
                   const telemetry::LatencyHistogram::Snapshot& snap,
                   double& worst_rel) {
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  const auto exact = static_cast<double>(sorted[rank]);
  const double est = snap.Quantile(q);
  const double rel = std::fabs(est - exact) / (exact > 1.0 ? exact : 1.0);
  if (rel > worst_rel) worst_rel = rel;
  if (rel > telemetry::LatencyHistogram::kRelativeError) {
    std::fprintf(stderr,
                 "histogram/exact divergence: %s q=%g exact=%.0f est=%.0f "
                 "rel=%.4f > bound=%.4f\n",
                 name, q, exact, est, rel,
                 telemetry::LatencyHistogram::kRelativeError);
    std::exit(1);
  }
}

template <typename Agg>
void RunPoint(const char* name, const char* opname,
              const std::vector<double>& data, const Config& cfg,
              Checksum& cs, double& worst_rel, JsonReport& report) {
  using Op = typename Agg::op_type;
  Agg agg(cfg.window);
  std::size_t di = 0;
  auto next = [&] {
    const double v = data[di];
    di = di + 1 == data.size() ? 0 : di + 1;
    return v;
  };
  for (std::size_t i = 0; i < cfg.window; ++i) agg.slide(Op::lift(next()));

  util::LatencyRecorder rec(cfg.tuples);
  telemetry::LatencyHistogram hist;
  double sink = 0.0;
  for (uint64_t i = 0; i < cfg.tuples; ++i) {
    const double x = next();
    const uint64_t t0 = NowNs();
    agg.slide(Op::lift(x));
    sink += static_cast<double>(agg.query());
    const uint64_t dt = NowNs() - t0;
    rec.Record(dt);
    hist.Record(dt);
  }
  cs.Add(sink);

  // Cross-validate before Finish() drops outliers: the histogram holds
  // every sample, so it must be compared against the undropped set.
  std::vector<uint64_t> sorted = rec.samples();
  std::sort(sorted.begin(), sorted.end());
  const telemetry::LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.99, 0.999, 1.0}) {
    CheckQuantile(name, q, sorted, snap, worst_rel);
  }

  const util::LatencySummary summary = rec.Finish(cfg.drop_top);
  PrintRow(name, summary);
  const std::string hist_name = std::string("  ~hist(") + name + ")";
  PrintRow(hist_name.c_str(), snap.Summarize());
  report.Row({{"algo", name},
              {"op", opname},
              {"window", JsonReport::Num(cfg.window)}},
             summary.avg_ns > 0.0 ? 1e9 / summary.avg_ns : 0.0,
             summary.median_ns, summary.p99_ns);
}

template <typename Op>
void RunOp(const char* title, const char* opname,
           const std::vector<double>& data, const Config& cfg, Checksum& cs,
           double& worst_rel, JsonReport& report) {
  PrintHeader(title,
              "# algorithm                 min      p25   median      p75"
              "      p99    p99.9        max       avg   (ns/query)");
  RunPoint<window::NaiveWindow<Op>>("naive", opname, data, cfg, cs, worst_rel,
                                    report);
  RunPoint<window::FlatFat<Op>>("flatfat", opname, data, cfg, cs, worst_rel,
                                report);
  RunPoint<window::BInt<Op>>("bint", opname, data, cfg, cs, worst_rel, report);
  RunPoint<window::FlatFit<Op>>("flatfit", opname, data, cfg, cs, worst_rel,
                                report);
  RunPoint<core::Windowed<window::TwoStacks<Op>>>("twostacks", opname, data,
                                                  cfg, cs, worst_rel, report);
  RunPoint<core::Windowed<window::Daba<Op>>>("daba", opname, data, cfg, cs,
                                             worst_rel, report);
  if constexpr (ops::InvertibleOp<Op>) {
    RunPoint<core::SlickDequeInv<Op>>("slickdeque(inv)", opname, data, cfg,
                                      cs, worst_rel, report);
  }
  if constexpr (ops::SelectiveOp<Op>) {
    RunPoint<core::SlickDequeNonInv<Op>>("slickdeque(non-inv)", opname, data,
                                         cfg, cs, worst_rel, report);
  }
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  const Flags flags(argc, argv);
  Config cfg;
  cfg.window = flags.GetU64("window", 1024);
  cfg.tuples = flags.GetU64("tuples", 1'000'000);
  cfg.drop_top = flags.GetDouble("drop-top", 0.00005);
  cfg.seed = flags.GetU64("seed", 42);

  std::printf("Exp 3: query processing latency (paper Fig 14)\n");
  std::printf("# window=%zu tuples=%llu drop-top=%g seed=%llu\n", cfg.window,
              (unsigned long long)cfg.tuples, cfg.drop_top,
              (unsigned long long)cfg.seed);

  const std::vector<double> data = BenchSeries(flags, 1 << 20, cfg.seed);
  Checksum cs;
  double worst_rel = 0.0;
  JsonReport report(flags, "exp3_latency");
  RunOp<slick::ops::Sum>("Sum (invertible)", "sum", data, cfg, cs, worst_rel,
                         report);
  RunOp<slick::ops::Max>("Max (non-invertible)", "max", data, cfg, cs,
                         worst_rel, report);
  report.Write();
  cs.Report();
  std::printf(
      "# histogram cross-validation: worst relative deviation %.5f "
      "(bound %.5f)\n",
      worst_rel, slick::telemetry::LatencyHistogram::kRelativeError);
  return 0;
}
