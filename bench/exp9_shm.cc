// Exp 9: shm producer path cost — what does crash-robust ingestion cost
// at the batch sizes the ingest path actually runs? (DESIGN.md §17)
//
// Four ways N producers feed the same sharded engine, same workload:
//
//  - mpmc-inproc: engine Producer handles over in-process MpmcRing shard
//    rings (exp7's mpmc-direct) — the baseline a crash of any producer
//    THREAD takes the whole process down with.
//  - shm-inproc:  the same Producer handles over ShmRing shard rings —
//    the shm ring's own lease-less in-process path. Publish is a CAS per
//    slot here too: that is the price of SIGKILL-survivability itself
//    (only an atomic RMW keeps a lap-late zombie from regressing a seq
//    word), paid by every shm producer, leased or not.
//  - shm-lease:   LeaseProducer handles into the same ShmRing engine —
//    what this PR's crash-robust producer path adds ON TOP: lease-row
//    claim handshake, heartbeats, epoch fence gates. Producers stage per
//    shard and flush at `batch`, the same shape as the Producer handle.
//  - tcp:         loopback client processes -> epoll IngestServer ->
//    Producer sinks over the SAME ShmRing engine — what the front door
//    adds on top of the direct shm path.
//
// The gate (ci.yml perf-smoke) holds shm-lease to the shm-inproc rate
// per (producers, batch) point at batch >= 64: amortized over a real
// batch, the LEASE machinery must disappear — crash attribution is free
// once you are on a crash-safe ring. The shm-vs-mpmc ratio is gated only
// as a bounded regression and recorded in BENCH_shm.json with `cores`
// provenance: per-slot CAS vs release store is ~5ns vs ~0.3ns of pure
// protocol cost per tuple (measured on the snapshot box), so on a single
// core the crash-safe ring cannot reach in-process parity at any batch —
// the gap is the measured price of surviving producer SIGKILL, not an
// implementation regression. Rates are best-of-`laps`, same as exp7.
//
// Flags: --window=W (default 65536)  --tuples=T per lap (default 400000)
//        --ring=R   (default 4096)   --laps=L (default 3)
//        --shards=S (default 2)      --seed=S
//        --producers=CSV (default 1,2,4)  --batches=CSV (default 64,256)
//        --mode=mpmc|shm-inproc|shm|tcp|all (default all)  --json=PATH

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "ops/arith.h"
#include "runtime/mpmc_ring.h"
#include "runtime/parallel_engine.h"
#include "runtime/shm/shm_ring.h"

namespace slick::bench {
namespace {

using Agg = core::SlickDequeInv<ops::Sum>;
using DirectEngine = runtime::ParallelShardedEngine<Agg, runtime::MpmcRing>;
using ShmEngine = runtime::ParallelShardedEngine<Agg, runtime::ShmRing>;

struct Config {
  std::size_t window;
  uint64_t tuples;
  std::size_t ring;
  std::size_t shards;
  uint64_t laps;
  std::vector<std::size_t> producers;
  std::vector<std::size_t> batches;
};

std::vector<std::size_t> ParseList(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    out.push_back(std::strtoull(csv.c_str() + pos, nullptr, 10));
    const std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

template <typename Engine>
typename Engine::Options EngineOpts(const Config& cfg, std::size_t batch) {
  typename Engine::Options o;
  o.ring_capacity = cfg.ring;
  o.batch = batch;
  o.backpressure = runtime::Backpressure::kBlock;
  // No reaper runs in this bench (unsupervised, nobody dies); a huge
  // lease period keeps even a descheduled producer unfenced.
  o.lease_ns = 3'600'000'000'000ull;
  return o;
}

/// Per-producer slice [first, first + count) of the lap's tuple budget.
struct Slice {
  uint64_t first;
  uint64_t count;
};

Slice SliceOf(uint64_t total, std::size_t producers, std::size_t p) {
  const uint64_t per = total / producers;
  const uint64_t first = per * p;
  const uint64_t count = p + 1 == producers ? total - first : per;
  return {first, count};
}

/// Wrapping cursor over the bench series (exp7's shape).
class DataCursor {
 public:
  DataCursor(const std::vector<double>& data, uint64_t start)
      : data_(data), i_(start % data.size()) {}
  double Next() {
    const double v = data_[i_];
    i_ = i_ + 1 == data_.size() ? 0 : i_ + 1;
    return v;
  }

 private:
  const std::vector<double>& data_;
  std::size_t i_;
};

template <typename Engine>
void Prefill(Engine& engine, const Config& cfg,
             const std::vector<double>& data) {
  for (std::size_t i = 0; i < cfg.window; ++i) {
    engine.push(ops::Sum::lift(data[i % data.size()]));
  }
  engine.flush();
}

/// In-process baseline: engine Producer handles over MpmcRing shard
/// rings (exp7's mpmc-direct). Returns best-lap tuples/s.
double RunMpmc(const Config& cfg, std::size_t producers, std::size_t batch,
               const std::vector<double>& data, Checksum& sink) {
  DirectEngine engine(cfg.window, cfg.shards,
                      EngineOpts<DirectEngine>(cfg, batch));
  Prefill(engine, cfg, data);
  double best = 0.0;
  for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
    const uint64_t t0 = NowNs();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        const Slice s = SliceOf(cfg.tuples, producers, p);
        DataCursor cur(data, s.first);
        DirectEngine::Producer prod = engine.MakeProducer();
        for (uint64_t i = 0; i < s.count; ++i) {
          prod.push(ops::Sum::lift(cur.Next()));
        }
      });
    }
    for (auto& t : threads) t.join();
    engine.flush();
    const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
    best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
  }
  sink.Add(static_cast<double>(engine.query()));
  engine.stop();
  return best;
}

/// The shm ring's lease-less in-process path: same Producer handles as
/// RunMpmc, same per-slot CAS publish as the lease path — isolates what
/// the ring protocol costs without any lease machinery on top.
double RunShmInproc(const Config& cfg, std::size_t producers,
                    std::size_t batch, const std::vector<double>& data,
                    Checksum& sink) {
  ShmEngine engine(cfg.window, cfg.shards, EngineOpts<ShmEngine>(cfg, batch));
  Prefill(engine, cfg, data);
  double best = 0.0;
  for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
    const uint64_t t0 = NowNs();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        const Slice s = SliceOf(cfg.tuples, producers, p);
        DataCursor cur(data, s.first);
        ShmEngine::Producer prod = engine.MakeProducer();
        for (uint64_t i = 0; i < s.count; ++i) {
          prod.push(ops::Sum::lift(cur.Next()));
        }
      });
    }
    for (auto& t : threads) t.join();
    engine.flush();
    const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
    best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
  }
  sink.Add(static_cast<double>(engine.query()));
  engine.stop();
  return best;
}

/// The crash-robust path: per-shard LeaseProducer handles with the same
/// stage-per-shard, flush-at-batch shape as the engine Producer handle.
/// Returns best-lap tuples/s.
double RunShm(const Config& cfg, std::size_t producers, std::size_t batch,
              const std::vector<double>& data, Checksum& sink) {
  using Lease = runtime::ShmRing<double>::LeaseProducer;
  ShmEngine engine(cfg.window, cfg.shards, EngineOpts<ShmEngine>(cfg, batch));
  Prefill(engine, cfg, data);
  double best = 0.0;
  for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
    const uint64_t t0 = NowNs();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        const Slice s = SliceOf(cfg.tuples, producers, p);
        DataCursor cur(data, s.first);
        std::vector<Lease> leases;
        leases.reserve(cfg.shards);
        for (std::size_t sh = 0; sh < cfg.shards; ++sh) {
          leases.push_back(engine.shard_ring(sh).AttachProducer());
        }
        std::vector<std::vector<double>> stage(cfg.shards);
        for (auto& st : stage) st.reserve(batch);
        const auto flush_shard = [&](std::size_t sh) {
          const double* src = stage[sh].data();
          std::size_t left = stage[sh].size();
          while (left > 0) {
            std::size_t pushed = 0;
            const auto r = leases[sh].TryPush(src, left, &pushed);
            src += pushed;
            left -= pushed;
            if (left > 0) {
              SLICK_CHECK(r == Lease::Result::kFull,
                          "bench ring fenced or closed");
              std::this_thread::yield();
            }
          }
          stage[sh].clear();
        };
        std::size_t next = 0;
        for (uint64_t i = 0; i < s.count; ++i) {
          stage[next].push_back(ops::Sum::lift(cur.Next()));
          if (stage[next].size() >= batch) flush_shard(next);
          next = next + 1 == cfg.shards ? 0 : next + 1;
        }
        for (std::size_t sh = 0; sh < cfg.shards; ++sh) flush_shard(sh);
        for (auto& l : leases) l.Detach();
      });
    }
    for (auto& t : threads) t.join();
    engine.flush();
    const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
    best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
  }
  sink.Add(static_cast<double>(engine.query()));
  engine.stop();
  return best;
}

/// One forked loopback client (exp7's ClientProcess).
[[noreturn]] void ClientProcess(uint16_t port, const Config& cfg,
                                std::size_t producers, std::size_t p,
                                std::size_t batch,
                                const std::vector<double>& data) {
  net::IngestClient client;
  if (!client.Connect("127.0.0.1", port)) _exit(1);
  const Slice s = SliceOf(cfg.tuples, producers, p);
  DataCursor cur(data, s.first);
  std::vector<net::WireTuple> stage;
  stage.reserve(batch);
  for (uint64_t i = 0; i < s.count; ++i) {
    stage.push_back({s.first + i + 1, cur.Next()});
    if (stage.size() == batch) {
      if (!client.SendBatch(stage.data(), stage.size())) _exit(1);
      stage.clear();
    }
  }
  if (!stage.empty() &&
      !client.SendBatch(stage.data(), stage.size())) {
    _exit(1);
  }
  client.CloseSend();
  client.Close();
  _exit(0);
}

/// Front door over the shm engine: client processes -> epoll server ->
/// Producer sinks -> ShmRing shard rings. Returns best-lap tuples/s.
double RunTcp(const Config& cfg, std::size_t producers, std::size_t batch,
              const std::vector<double>& data, Checksum& sink) {
  ShmEngine engine(cfg.window, cfg.shards, EngineOpts<ShmEngine>(cfg, batch));
  Prefill(engine, cfg, data);
  double best = 0.0;
  uint64_t expected = 0;
  {
    net::IngestServer server(
        {.port = 0, .threads = producers,
         .backpressure = runtime::Backpressure::kBlock},
        [&engine](std::size_t) {
          auto prod =
              std::make_shared<ShmEngine::Producer>(engine.MakeProducer());
          return [prod](const net::WireTuple* tuples, std::size_t n) {
            for (std::size_t i = 0; i < n; ++i) prod->push(tuples[i].v);
            return n;
          };
        });
    if (!server.Start()) {
      std::fprintf(stderr, "exp9: cannot start ingest server\n");
      return 0.0;
    }
    for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
      expected += cfg.tuples;
      const uint64_t t0 = NowNs();
      std::vector<pid_t> pids;
      pids.reserve(producers);
      for (std::size_t p = 0; p < producers; ++p) {
        const pid_t pid = fork();
        if (pid == 0) {
          ClientProcess(server.port(), cfg, producers, p, batch, data);
        }
        pids.push_back(pid);
      }
      for (pid_t pid : pids) {
        int status = 0;
        waitpid(pid, &status, 0);
      }
      while (server.snapshot().tuples_accepted < expected) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
      best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
    }
    server.Stop();
  }  // server (and its Producer sinks) destroyed before the engine quiesces
  engine.flush();
  sink.Add(static_cast<double>(engine.query()));
  engine.stop();
  return best;
}

using RunFn = double (*)(const Config&, std::size_t, std::size_t,
                         const std::vector<double>&, Checksum&);

void RunSweep(const char* algo, RunFn run, const Config& cfg,
              const std::vector<double>& data, JsonReport& report) {
  std::printf("\n== %s ==\n%-10s %8s %14s\n", algo, "producers", "batch",
              "Mtuples/s");
  Checksum sink;
  for (std::size_t producers : cfg.producers) {
    for (std::size_t batch : cfg.batches) {
      const double rate = run(cfg, producers, batch, data, sink);
      std::printf("%-10zu %8zu %14.2f\n", producers, batch, rate / 1e6);
      std::fflush(stdout);
      // `cores` is provenance (see exp7): on one core the comparison is
      // pure path length; real producer scaling needs real CPUs.
      report.Row({{"algo", algo},
                  {"producers", JsonReport::Num(producers)},
                  {"batch", JsonReport::Num(batch)},
                  {"window", JsonReport::Num(cfg.window)},
                  {"shards", JsonReport::Num(cfg.shards)},
                  {"cores",
                   JsonReport::Num(std::thread::hardware_concurrency())}},
                 rate);
    }
  }
  sink.Report();
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  const Flags flags(argc, argv);
  Config cfg;
  cfg.window = flags.GetU64("window", 1 << 16);
  cfg.tuples = flags.GetU64("tuples", 400'000);
  cfg.ring = flags.GetU64("ring", 1 << 12);
  cfg.shards = flags.GetU64("shards", 2);
  cfg.laps = std::max<uint64_t>(1, flags.GetU64("laps", 3));
  cfg.producers = ParseList(flags.GetString("producers", "1,2,4"));
  cfg.batches = ParseList(flags.GetString("batches", "64,256"));
  const std::string mode = flags.GetString("mode", "all");
  const uint64_t seed = flags.GetU64("seed", 42);

  std::printf(
      "Exp 9: shm lease-producer path vs in-process MPMC (best of %llu "
      "laps)\n"
      "# window=%zu tuples=%llu ring=%zu shards=%zu seed=%llu mode=%s\n",
      (unsigned long long)cfg.laps, cfg.window,
      (unsigned long long)cfg.tuples, cfg.ring, cfg.shards,
      (unsigned long long)seed, mode.c_str());

  const std::vector<double> data = BenchSeries(flags, 1 << 20, seed);
  JsonReport report(flags, "exp9_shm");
  if (mode == "all" || mode == "mpmc") {
    RunSweep("mpmc-inproc", RunMpmc, cfg, data, report);
  }
  if (mode == "all" || mode == "shm-inproc") {
    RunSweep("shm-inproc", RunShmInproc, cfg, data, report);
  }
  if (mode == "all" || mode == "shm") {
    RunSweep("shm-lease", RunShm, cfg, data, report);
  }
  if (mode == "all" || mode == "tcp") {
    RunSweep("tcp", RunTcp, cfg, data, report);
  }
  report.Write();
  return 0;
}
