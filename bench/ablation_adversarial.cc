// Ablation (paper §4.1/§4.2): SlickDeque (Non-Inv)'s input sensitivity.
//
// The deque's per-slide cost and footprint depend on the input's ordering
// statistics: ascending input collapses the deque to one node; descending
// input (probability 1/n! under uniform data) fills it and provokes the
// worst-case O(n) eviction burst; real sensor data sits near the amortized
// bound (< 2 ops/slide). DABA is run alongside as the input-agnostic
// constant-worst-case yardstick the paper compares against.
//
// Flags: --window=N (default 1024)  --laps=K (default 8)  --seed=S

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "ops/counting.h"
#include "ops/minmax.h"
#include "window/daba.h"

namespace slick::bench {
namespace {

using ops::OpCounter;

std::vector<double> MakeInput(const char* kind, std::size_t count,
                              uint64_t seed) {
  std::vector<double> v(count);
  util::SplitMix64 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    if (kind == std::string("ascending")) {
      v[i] = static_cast<double>(i);
    } else if (kind == std::string("descending")) {
      v[i] = static_cast<double>(count - i);
    } else if (kind == std::string("sawtooth")) {
      v[i] = static_cast<double>(i % 64);
    } else if (kind == std::string("uniform")) {
      v[i] = rng.NextDouble();
    } else {  // sensor
      v = EnergySeries(count, seed);
      break;
    }
  }
  return v;
}

/// One descending lap followed by a spike value: forces the full-deque
/// eviction burst the paper prices at n operations with probability 1/n!.
std::vector<double> MakeSpikeInput(std::size_t window, std::size_t count) {
  std::vector<double> v(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t phase = i % (window + 1);
    v[i] = phase == window ? 1e9 + static_cast<double>(i)
                           : 1e6 - static_cast<double>(phase);
  }
  return v;
}

template <typename Agg>
void RunPoint(const char* algo, const char* input, std::size_t window,
              uint64_t laps, const std::vector<double>& data,
              JsonReport& report) {
  using Op = typename Agg::op_type;
  Agg agg(window);
  std::size_t di = 0;
  auto next = [&] {
    const double v = data[di];
    di = di + 1 == data.size() ? 0 : di + 1;
    return v;
  };
  for (std::size_t i = 0; i < window; ++i) agg.slide(Op::lift(next()));

  OpCounter::Reset();
  uint64_t worst = 0, total = 0;
  uint64_t nodes_sum = 0, nodes_max = 0;
  double sink = 0.0;
  const uint64_t slides = laps * window;
  const uint64_t t0 = NowNs();
  for (uint64_t i = 0; i < slides; ++i) {
    const uint64_t before = OpCounter::Total();
    agg.slide(Op::lift(next()));
    sink += static_cast<double>(agg.query());
    const uint64_t per = OpCounter::Total() - before;
    worst = std::max(worst, per);
    total += per;
    if constexpr (requires { agg.node_count(); }) {
      nodes_sum += agg.node_count();
      nodes_max = std::max<uint64_t>(nodes_max, agg.node_count());
    }
  }
  const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
  const double slides_per_s = static_cast<double>(slides) / elapsed_s;
  std::printf("%-20s %-11s %10.3f %8llu %10.1f %10llu %12.2f\n", algo, input,
              static_cast<double>(total) / static_cast<double>(slides),
              (unsigned long long)worst,
              nodes_sum > 0
                  ? static_cast<double>(nodes_sum) / static_cast<double>(slides)
                  : 0.0,
              (unsigned long long)nodes_max,
              slides_per_s / 1e6);
  std::fflush(stdout);
  report.Row({{"algo", algo},
              {"input", input},
              {"window", JsonReport::Num(window)},
              {"worst_ops", JsonReport::Num(worst)}},
             slides_per_s);
  (void)sink;
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  using CMax = slick::ops::CountingOp<slick::ops::Max>;
  const Flags flags(argc, argv);
  const std::size_t window = flags.GetU64("window", 1024);
  const uint64_t laps = flags.GetU64("laps", 8);
  const uint64_t seed = flags.GetU64("seed", 42);

  std::printf("Ablation: SlickDeque (Non-Inv) input sensitivity (paper "
              "§4.1, §4.2)\n");
  std::printf("# window=%zu laps=%llu seed=%llu\n", window,
              (unsigned long long)laps, (unsigned long long)seed);
  std::printf("%-20s %-11s %10s %8s %10s %10s %12s\n", "# algorithm", "input",
              "ops/slide", "worst", "avg-nodes", "max-nodes", "Mslides/s");

  const std::size_t count = 1 << 18;
  JsonReport report(flags, "ablation_adversarial");
  for (const char* kind :
       {"sensor", "uniform", "ascending", "descending", "sawtooth"}) {
    RunPoint<slick::core::SlickDequeNonInv<CMax>>(
        "slickdeque(non-inv)", kind, window, laps,
        MakeInput(kind, count, seed), report);
  }
  RunPoint<slick::core::SlickDequeNonInv<CMax>>(
      "slickdeque(non-inv)", "spike", window, laps,
      MakeSpikeInput(window, count), report);

  for (const char* kind : {"sensor", "descending"}) {
    RunPoint<slick::core::Windowed<slick::window::Daba<CMax>>>(
        "daba", kind, window, laps, MakeInput(kind, count, seed), report);
  }
  RunPoint<slick::core::Windowed<slick::window::Daba<CMax>>>(
      "daba", "spike", window, laps, MakeSpikeInput(window, count), report);
  report.Write();
  return 0;
}
