// Ablation (paper §2.1/§2.3): partial aggregation techniques and sharing.
//
// Part 1 reproduces the Panes -> Pairs -> Cutty partial-count hierarchy
// (Figs 1-3): Pairs halves Panes' partials per window when range % slide
// != 0; Cutty halves Pairs again (at the cost of mid-partial reads that our
// engine — like most systems without punctuation support — cannot execute).
//
// Part 2 quantifies shared-plan savings (Fig 7 / Example 1): partials per
// composite slide with and without sharing, and end-to-end engine
// throughput of a shared multi-ACQ workload under each PAT.
//
// Flags: --tuples=T (default 2000000)  --seed=S

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "engine/acq_engine.h"
#include "ops/arith.h"
#include "plan/optimizer.h"
#include "plan/pat.h"
#include "plan/shared_plan.h"

namespace slick::bench {
namespace {

using plan::Pat;
using plan::QuerySpec;
using plan::SharedPlan;

void PartialCountTable() {
  std::printf("\n== Partials per window by PAT (paper Figs 1-3) ==\n");
  std::printf("%-24s %8s %8s %8s\n", "# query (range,slide)", "panes",
              "pairs", "cutty");
  const std::vector<QuerySpec> queries = {
      {100, 8}, {100, 7}, {1000, 64}, {1000, 63}, {128, 16}, {7, 3}};
  for (const QuerySpec& q : queries) {
    std::printf("(%llu,%llu)%*s %8llu %8llu %8llu\n",
                (unsigned long long)q.range, (unsigned long long)q.slide,
                static_cast<int>(24 - 4 -
                                 std::to_string(q.range).size() -
                                 std::to_string(q.slide).size()),
                "",
                (unsigned long long)PartialsPerWindow(q, Pat::kPanes),
                (unsigned long long)PartialsPerWindow(q, Pat::kPairs),
                (unsigned long long)PartialsPerWindow(q, Pat::kCutty));
  }
}

void SharingTable() {
  std::printf("\n== Shared-plan edges per composite slide (paper §2.3) ==\n");
  std::printf("%-44s %10s %10s %12s\n", "# workload", "separate", "shared",
              "executable");
  const std::vector<std::pair<const char*, std::vector<QuerySpec>>> workloads =
      {{"example1: (6,2) (8,4)", {{6, 2}, {8, 4}}},
       {"aligned: (12,4) (24,4) (48,4)", {{12, 4}, {24, 4}, {48, 4}}},
       {"harmonics: (64,2) (64,4) (64,8)", {{64, 2}, {64, 4}, {64, 8}}},
       {"coprime: (30,2) (30,3) (30,5)", {{30, 2}, {30, 3}, {30, 5}}},
       {"fragmented: (7,3) (11,4)", {{7, 3}, {11, 4}}}};
  for (const auto& [name, queries] : workloads) {
    const SharedPlan shared = SharedPlan::Build(queries, Pat::kPairs);
    // "Separate" = sum of per-query plans scaled to the composite slide.
    uint64_t separate = 0;
    for (const QuerySpec& q : queries) {
      const SharedPlan solo = SharedPlan::Build({q}, Pat::kPairs);
      separate += solo.partials_per_composite_slide() *
                  (shared.composite_slide() / solo.composite_slide());
    }
    std::printf("%-44s %10llu %10llu %12s\n", name,
                (unsigned long long)separate,
                (unsigned long long)shared.partials_per_composite_slide(),
                shared.executable() ? "yes" : "no");
  }
}

void EngineThroughput(uint64_t tuples, uint64_t seed, JsonReport& report) {
  std::printf(
      "\n== Engine throughput of a shared plan by PAT (Sum, SlickDeque "
      "(Inv)) ==\n");
  std::printf("%-10s %14s %14s %14s\n", "# pat", "Mtuples/s", "answers",
              "partials/comp");
  const std::vector<QuerySpec> queries = {{96, 8}, {100, 8}, {60, 4}, {44, 8}};
  const std::vector<double> data = EnergySeries(1 << 20, seed);
  for (Pat pat : {Pat::kPanes, Pat::kPairs}) {
    engine::AcqEngine<core::SlickDequeInv<ops::Sum>> eng(queries, pat);
    double sink = 0.0;
    std::size_t di = 0;
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < tuples; ++i) {
      eng.Push(data[di], [&](uint32_t, double r) { sink += r; });
      di = di + 1 == data.size() ? 0 : di + 1;
    }
    const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
    const double rate = static_cast<double>(tuples) / elapsed_s;
    std::printf("%-10s %14.2f %14llu %14llu   # checksum %.6g\n",
                plan::ToString(pat), rate / 1e6,
                (unsigned long long)eng.answers_produced(),
                (unsigned long long)eng.plan().partials_per_composite_slide(),
                sink);
    std::fflush(stdout);
    report.Row({{"algo", "acq-engine"}, {"pat", plan::ToString(pat)}}, rate);
  }
}

void OptimizerTable() {
  std::printf("\n== Cost-based sharing optimizer (§2.3: maximum sharing is "
              "not always beneficial) ==\n");
  std::printf("%-44s %10s %10s %10s %8s\n", "# workload", "no-share",
              "max-share", "optimized", "groups");
  const std::vector<std::pair<const char*, std::vector<QuerySpec>>> workloads =
      {{"harmonics: (64,2) (64,4) (64,8)", {{64, 2}, {64, 4}, {64, 8}}},
       {"coprime: (10,7) (10,11)", {{10, 7}, {10, 11}}},
       {"mixed: (40,4) (80,8) (63,7) (21,7)",
        {{40, 4}, {80, 8}, {63, 7}, {21, 7}}},
       {"dashboards+auditor: 3x(.,100/200) (700,7)",
        {{600, 100}, {1200, 100}, {3000, 200}, {700, 7}}}};
  for (const auto& [name, queries] : workloads) {
    const plan::Grouping g = plan::OptimizeGrouping(queries, Pat::kPairs);
    std::printf("%-44s %10.2f %10.2f %10.2f %8zu\n", name,
                plan::NoSharingCost(queries, Pat::kPairs),
                plan::MaxSharingCost(queries, Pat::kPairs), g.cost_per_tuple,
                g.groups.size());
  }
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  const Flags flags(argc, argv);
  const uint64_t tuples = flags.GetU64("tuples", 2'000'000);
  const uint64_t seed = flags.GetU64("seed", 42);

  std::printf("Ablation: partial aggregation techniques and sharing\n");
  JsonReport report(flags, "ablation_pat");
  PartialCountTable();
  SharingTable();
  OptimizerTable();
  EngineThroughput(tuples, seed, report);
  report.Write();
  return 0;
}
