// Parallel runtime throughput (the paper's §6 future work, for real this
// time): the stream is routed round-robin across N shard worker threads
// through bounded SPSC rings, and tuples/s is reported per shard count
// against the plain single-thread aggregator baseline.
//
// What to expect: on a machine with >= N+1 cores the pipeline overlaps the
// router with N aggregating workers, so throughput grows with N until the
// router saturates. On an oversubscribed host (fewer cores than threads)
// the win comes from amortization instead: total ring buffering grows with
// N, so producer/worker alternation — park/wake and context-switch pairs —
// happens per `N * ring` tuples instead of per `ring`, and larger shard
// counts still beat the 1-shard pipeline. The single-thread baseline pays
// no handoff at all and bounds what the pipeline can reach on one core.
//
// Rates are best-of-`laps` (like table1_opcounts) so one unlucky scheduler
// quantum does not decide a row; every lap runs the full tuple budget
// against the already-warm window.
//
// The default ring is small (128 slots): tight bounded buffers keep the
// handoff-amortization effect visible even on a single core and bound the
// ingest-to-window latency; raise --ring for maximum throughput on a
// multi-core box.
//
// Flags: --window=W (default 65536)  --tuples=T (default 1000000)
//        --ring=R   (default 128)    --batch=B  (default 64)
//        --qevery=Q queries per Q tuples (default 65536)
//        --laps=L   (default 3)      --seed=S
//        --checkpoint-interval=C (default 0 = unsupervised)
//
// With --checkpoint-interval=C > 0 the engine runs supervised: each worker
// checkpoints its window state every C processed tuples and defers ring
// releases until the covering checkpoint commits. CI runs the bench twice
// (C=0 and C>0) and gates the paired ratio via bench_summary.py
// --baseline: the supervised tax must stay under 3%.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "runtime/parallel_engine.h"

namespace slick::bench {
namespace {

struct Config {
  std::size_t window;
  uint64_t tuples;
  std::size_t ring;
  std::size_t batch;
  uint64_t qevery;
  uint64_t laps;
  std::size_t checkpoint_interval;
};

/// Single-thread reference: the same aggregator, slide + periodic query,
/// no handoff. Returns best-lap tuples/s.
template <typename Agg>
double RunBaseline(const Config& cfg, const std::vector<double>& data,
                   Checksum& sink) {
  using Op = typename Agg::op_type;
  Agg agg(cfg.window);
  std::size_t di = 0;
  auto next = [&] {
    const double v = data[di];
    di = di + 1 == data.size() ? 0 : di + 1;
    return v;
  };
  for (std::size_t i = 0; i < cfg.window; ++i) agg.slide(Op::lift(next()));
  double best = 0.0;
  for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < cfg.tuples; ++i) {
      agg.slide(Op::lift(next()));
      if ((i + 1) % cfg.qevery == 0) {
        sink.Add(static_cast<double>(agg.query()));
      }
    }
    const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
    best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
  }
  sink.Add(static_cast<double>(agg.query()));
  return best;
}

/// The parallel engine at `shards` workers. Queries go through the epoch
/// snapshot at the same cadence as the baseline. Returns best-lap tuples/s.
template <typename Agg>
double RunParallel(std::size_t shards, const Config& cfg,
                   const std::vector<double>& data, Checksum& sink) {
  using Op = typename Agg::op_type;
  runtime::ParallelShardedEngine<Agg> engine(
      cfg.window, shards,
      {.ring_capacity = cfg.ring, .batch = cfg.batch,
       .backpressure = runtime::Backpressure::kBlock,
       .checkpoint_interval = cfg.checkpoint_interval});
  std::size_t di = 0;
  auto next = [&] {
    const double v = data[di];
    di = di + 1 == data.size() ? 0 : di + 1;
    return v;
  };
  for (std::size_t i = 0; i < cfg.window; ++i) engine.push(Op::lift(next()));
  double best = 0.0;
  for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < cfg.tuples; ++i) {
      engine.push(Op::lift(next()));
      if ((i + 1) % cfg.qevery == 0) {
        sink.Add(static_cast<double>(engine.query()));
      }
    }
    engine.flush();
    const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
    best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
  }
  sink.Add(static_cast<double>(engine.query()));
  engine.stop();
  return best;
}

template <typename Agg>
void RunWorkload(const char* name, const char* algo, const Config& cfg,
                 const std::vector<double>& data, JsonReport& report) {
  std::printf("\n== %s, window %zu ==\n", name, cfg.window);
  std::printf("%-14s %14s %12s\n", "config", "Mtuples/s", "vs 1-shard");
  Checksum sink;
  const double base = RunBaseline<Agg>(cfg, data, sink);
  std::printf("%-14s %14.2f %12s\n", "single-thread", base / 1e6, "-");
  report.Row({{"algo", algo},
              {"config", "single-thread"},
              {"window", JsonReport::Num(cfg.window)},
              {"batch", JsonReport::Num(cfg.batch)},
              {"checkpoint_interval",
               JsonReport::Num(cfg.checkpoint_interval)}},
             base);
  double one_shard = 0.0;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
    const double rate = RunParallel<Agg>(shards, cfg, data, sink);
    if (shards == 1) one_shard = rate;
    std::printf("%-14s", (std::to_string(shards) + "-shard").c_str());
    std::printf(" %14.2f %11.2fx\n", rate / 1e6, rate / one_shard);
    std::fflush(stdout);
    report.Row({{"algo", algo},
                {"config", std::to_string(shards) + "-shard"},
                {"window", JsonReport::Num(cfg.window)},
                {"batch", JsonReport::Num(cfg.batch)},
                {"checkpoint_interval",
                 JsonReport::Num(cfg.checkpoint_interval)}},
               rate);
  }
  sink.Report();
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  const Flags flags(argc, argv);
  Config cfg;
  cfg.window = flags.GetU64("window", 1 << 16);
  cfg.tuples = flags.GetU64("tuples", 1'000'000);
  cfg.ring = flags.GetU64("ring", 128);
  cfg.batch = flags.GetU64("batch", 64);
  cfg.qevery = flags.GetU64("qevery", 1 << 16);
  cfg.laps = std::max<uint64_t>(1, flags.GetU64("laps", 3));
  cfg.checkpoint_interval = flags.GetU64("checkpoint-interval", 0);
  const uint64_t seed = flags.GetU64("seed", 42);

  std::printf(
      "Parallel sharded runtime: tuples/s vs shard count (best of %llu "
      "laps)\n"
      "# window=%zu tuples=%llu ring=%zu batch=%zu qevery=%llu seed=%llu "
      "checkpoint-interval=%zu\n",
      (unsigned long long)cfg.laps, cfg.window, (unsigned long long)cfg.tuples,
      cfg.ring, cfg.batch, (unsigned long long)cfg.qevery,
      (unsigned long long)seed, cfg.checkpoint_interval);

  const std::vector<double> data = BenchSeries(flags, 1 << 20, seed);
  JsonReport report(flags, "parallel_throughput");
  RunWorkload<slick::core::SlickDequeInv<slick::ops::Sum>>(
      "SlickDeque (Inv), Sum", "slickdeque-inv-sum", cfg, data, report);
  RunWorkload<slick::core::SlickDequeNonInv<slick::ops::Max>>(
      "SlickDeque (Non-Inv), Max", "slickdeque-noninv-max", cfg, data,
      report);
  report.Write();
  return 0;
}
