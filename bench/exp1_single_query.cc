// Exp 1 (paper Figs 10 and 11): single-query throughput vs window size.
//
// One query computes Sum (invertible, Fig 10) or Max (non-invertible,
// Fig 11) over the entire window after every tuple arrival (slide 1, no
// partial aggregation), for window sizes 2^0 .. 2^max-exp.
//
// Expected shape (paper §5.2): {SlickDeque, FlatFIT, TwoStacks, DABA} hold
// constant throughput as the window grows; {FlatFAT, B-Int, Naive} degrade
// steadily. SlickDeque leads beyond small windows (>= ~4 for Sum, ~16 for
// Max); FlatFAT wins only at windows 1..8.
//
// Flags: --max-exp=N (default 20; the paper uses 27 = 134M tuples)
//        --budget-ms=M per (algorithm, window) point (default 200)
//        --max-tuples=T cap per point (default 1048576)
//        --op=sum|max|both    --seed=S

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick::bench {
namespace {

struct Config {
  uint64_t max_exp = 20;
  uint64_t budget_ns = 200'000'000;
  uint64_t max_tuples = 1 << 20;
  uint64_t seed = 42;
};

/// Runs one (algorithm, window) point: slide + full-window query per tuple.
/// Returns throughput in million results per second.
template <typename Agg>
double RunPoint(std::size_t window, const std::vector<double>& data,
                const Config& cfg, Checksum& cs) {
  using Op = typename Agg::op_type;
  Agg agg(window);
  std::size_t di = 0;
  auto next = [&] {
    const double v = data[di];
    di = di + 1 == data.size() ? 0 : di + 1;
    return v;
  };
  for (std::size_t i = 0; i < std::min<uint64_t>(window, cfg.max_tuples); ++i) {
    agg.slide(Op::lift(next()));
  }
  // Between-batch budget checks: size batches so even O(window)-per-tuple
  // algorithms cannot overshoot the budget by much.
  const uint64_t batch =
      std::max<uint64_t>(1, std::min<uint64_t>(4096, (1 << 22) / window));
  const uint64_t t0 = NowNs();
  uint64_t processed = 0;
  double sink = 0.0;
  while (processed < cfg.max_tuples) {
    for (uint64_t b = 0; b < batch && processed < cfg.max_tuples; ++b) {
      agg.slide(Op::lift(next()));
      sink += static_cast<double>(agg.query());
      ++processed;
    }
    if (NowNs() - t0 >= cfg.budget_ns) break;
  }
  const uint64_t elapsed = NowNs() - t0;
  cs.Add(sink);
  return static_cast<double>(processed) * 1e3 / static_cast<double>(elapsed);
}

template <typename Op>
void RunSweep(const char* title, const char* opname, const Config& cfg,
              const std::vector<double>& data, bool include_inv,
              bool include_noninv, JsonReport& report) {
  PrintHeader(title,
              "# window        naive      flatfat         bint      flatfit"
              "    twostacks         daba   slickdeque   (Mresults/s)");
  Checksum cs;
  for (uint64_t e = 0; e <= cfg.max_exp; ++e) {
    const std::size_t w = static_cast<std::size_t>(1) << e;
    std::printf("%8zu", w);
    const auto point = [&](const char* algo, double mps) {
      std::printf(" %12.2f", mps);
      report.Row({{"algo", algo},
                  {"op", opname},
                  {"window", JsonReport::Num(w)}},
                 mps * 1e6);
    };
    point("naive", RunPoint<window::NaiveWindow<Op>>(w, data, cfg, cs));
    point("flatfat", RunPoint<window::FlatFat<Op>>(w, data, cfg, cs));
    point("bint", RunPoint<window::BInt<Op>>(w, data, cfg, cs));
    point("flatfit", RunPoint<window::FlatFit<Op>>(w, data, cfg, cs));
    point("twostacks",
          RunPoint<core::Windowed<window::TwoStacks<Op>>>(w, data, cfg, cs));
    point("daba",
          RunPoint<core::Windowed<window::Daba<Op>>>(w, data, cfg, cs));
    if constexpr (ops::InvertibleOp<Op>) {
      if (include_inv) {
        point("slickdeque",
              RunPoint<core::SlickDequeInv<Op>>(w, data, cfg, cs));
      }
    }
    if constexpr (ops::SelectiveOp<Op>) {
      if (include_noninv) {
        point("slickdeque",
              RunPoint<core::SlickDequeNonInv<Op>>(w, data, cfg, cs));
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  cs.Report();
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  const Flags flags(argc, argv);
  Config cfg;
  cfg.max_exp = flags.GetU64("max-exp", 20);
  cfg.budget_ns = flags.GetU64("budget-ms", 200) * 1'000'000;
  cfg.max_tuples = flags.GetU64("max-tuples", 1 << 20);
  cfg.seed = flags.GetU64("seed", 42);
  const std::string op = flags.GetString("op", "both");

  std::printf("Exp 1: single-query throughput (paper Figs 10, 11)\n");
  std::printf("# max-exp=%llu budget-ms=%llu max-tuples=%llu seed=%llu\n",
              (unsigned long long)cfg.max_exp,
              (unsigned long long)(cfg.budget_ns / 1'000'000),
              (unsigned long long)cfg.max_tuples,
              (unsigned long long)cfg.seed);

  const std::vector<double> data = BenchSeries(
      flags, std::min<uint64_t>(cfg.max_tuples, 1 << 22), cfg.seed);

  JsonReport report(flags, "exp1_single_query");
  if (op == "sum" || op == "both") {
    RunSweep<slick::ops::Sum>("Exp1(a) Sum over window, slide 1 (Fig 10)",
                              "sum", cfg, data, /*include_inv=*/true,
                              /*include_noninv=*/false, report);
  }
  if (op == "max" || op == "both") {
    RunSweep<slick::ops::Max>("Exp1(b) Max over window, slide 1 (Fig 11)",
                              "max", cfg, data, /*include_inv=*/false,
                              /*include_noninv=*/true, report);
  }
  report.Write();
  return 0;
}
