// Table 1 (paper §4): number of aggregate operations (⊕/⊖ applications) per
// slide, measured with instrumented operators and compared against the
// paper's closed forms, in both the single-query and the max-multi-query
// environment.
//
// Flags: --window=N (default 64)  --laps=K (default 6)  --seed=S

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "ops/arith.h"
#include "ops/counting.h"
#include "ops/minmax.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick::bench {
namespace {

using ops::OpCounter;

struct OpStats {
  double amortized = 0.0;
  uint64_t worst = 0;
};

template <typename Agg, typename Factory, typename Answer>
OpStats Measure(std::size_t n, uint64_t laps, const std::vector<double>& data,
                Factory make, Answer answer) {
  using Op = typename Agg::op_type;
  Agg agg = make(n);
  std::size_t di = 0;
  auto next = [&] {
    const double v = data[di];
    di = di + 1 == data.size() ? 0 : di + 1;
    return v;
  };
  for (std::size_t i = 0; i < n; ++i) agg.slide(Op::lift(next()));

  OpCounter::Reset();
  OpStats stats;
  uint64_t total = 0;
  const uint64_t slides = laps * n;
  for (uint64_t i = 0; i < slides; ++i) {
    const uint64_t before = OpCounter::Total();
    agg.slide(Op::lift(next()));
    answer(agg);
    const uint64_t per_slide = OpCounter::Total() - before;
    stats.worst = std::max(stats.worst, per_slide);
    total += per_slide;
  }
  stats.amortized = static_cast<double>(total) / static_cast<double>(slides);
  return stats;
}

template <typename Agg>
Agg MakeDefault(std::size_t n) {
  return Agg(n);
}

void PrintRow(const char* name, const OpStats& s, const char* theory_amort,
              const char* theory_worst) {
  std::printf("%-22s %12.2f %10llu   %-14s %-14s\n", name, s.amortized,
              (unsigned long long)s.worst, theory_amort, theory_worst);
}

/// Op-count bench: the shared JSON schema's tuples_per_sec slot carries the
/// amortized ⊕/⊖ count per slide (the row's measured quantity); worst-case
/// rides in config.
void ReportRow(JsonReport& report, const char* env, std::size_t n,
               const char* algo, const OpStats& s) {
  report.Row({{"algo", algo},
              {"env", env},
              {"window", JsonReport::Num(n)},
              {"worst", JsonReport::Num(s.worst)}},
             s.amortized);
}

void SingleQueryTable(std::size_t n, uint64_t laps,
                      const std::vector<double>& data, JsonReport& report) {
  using CSum = ops::CountingOp<ops::Sum>;
  using CMax = ops::CountingOp<ops::Max>;
  auto full = [](auto& agg) { (void)agg.query(); };

  std::printf("\n== Single-query environment, window n=%zu ==\n", n);
  std::printf("%-22s %12s %10s   %-14s %-14s\n", "# algorithm", "amortized",
              "worst", "paper-amort", "paper-worst");
  const auto row = [&](const char* name, const OpStats& s,
                       const char* theory_amort, const char* theory_worst) {
    PrintRow(name, s, theory_amort, theory_worst);
    ReportRow(report, "single", n, name, s);
  };
  row("naive",
      Measure<window::NaiveWindow<CSum>>(n, laps, data,
                                         MakeDefault<window::NaiveWindow<CSum>>, full),
      "n-1", "n-1");
  row("flatfat",
      Measure<window::FlatFat<CSum>>(n, laps, data,
                                     MakeDefault<window::FlatFat<CSum>>, full),
      "log2(n)", "log2(n)");
  row("bint",
      Measure<window::BInt<CSum>>(n, laps, data,
                                  MakeDefault<window::BInt<CSum>>, full),
      "~log2(n)", "~log2(n)");
  row("flatfit",
      Measure<window::FlatFit<CSum>>(n, laps, data,
                                     MakeDefault<window::FlatFit<CSum>>, full),
      "3", "n-1");
  row("twostacks",
      Measure<core::Windowed<window::TwoStacks<CSum>>>(
          n, laps, data,
          MakeDefault<core::Windowed<window::TwoStacks<CSum>>>, full),
      "3", "n");
  row("daba",
      Measure<core::Windowed<window::Daba<CSum>>>(
          n, laps, data,
          MakeDefault<core::Windowed<window::Daba<CSum>>>, full),
      "5", "8");
  row("slickdeque(inv)",
      Measure<core::SlickDequeInv<CSum>>(
          n, laps, data, MakeDefault<core::SlickDequeInv<CSum>>, full),
      "2", "2");
  row("slickdeque(non-inv)",
      Measure<core::SlickDequeNonInv<CMax>>(
          n, laps, data, MakeDefault<core::SlickDequeNonInv<CMax>>, full),
      "<2 (input)", "n (1/n!)");
}

void MultiQueryTable(std::size_t n, uint64_t laps,
                     const std::vector<double>& data, JsonReport& report) {
  using CSum = ops::CountingOp<ops::Sum>;
  using CMax = ops::CountingOp<ops::Max>;

  auto all_ranges = [n](auto& agg) {
    double sink = 0.0;
    for (std::size_t r = n; r >= 1; --r) {
      sink += static_cast<double>(agg.query(r));
    }
    (void)sink;
  };
  auto inv_answers = [](core::SlickDequeInv<CSum>& agg) {
    agg.for_each_answer([](std::size_t, double) {});
  };
  auto make_inv = [](std::size_t w) {
    std::vector<std::size_t> ranges(w);
    for (std::size_t r = 1; r <= w; ++r) ranges[r - 1] = r;
    return core::SlickDequeInv<CSum>(w, std::move(ranges));
  };
  std::vector<std::size_t> ranges_desc(n);
  for (std::size_t r = 0; r < n; ++r) ranges_desc[r] = n - r;
  std::vector<double> out;
  auto noninv_answers = [&](core::SlickDequeNonInv<CMax>& agg) {
    out.clear();
    agg.query_multi(ranges_desc, out);
  };

  std::printf("\n== Max-multi-query environment, window n=%zu ==\n", n);
  std::printf("%-22s %12s %10s   %-14s %-14s\n", "# algorithm", "amortized",
              "worst", "paper-amort", "paper-worst");
  const auto row = [&](const char* name, const OpStats& s,
                       const char* theory_amort, const char* theory_worst) {
    PrintRow(name, s, theory_amort, theory_worst);
    ReportRow(report, "multi", n, name, s);
  };
  row("naive",
      Measure<window::NaiveWindow<CSum>>(
          n, laps, data, MakeDefault<window::NaiveWindow<CSum>>, all_ranges),
      "(n^2-n)/2", "(n^2-n)/2");
  row("flatfat",
      Measure<window::FlatFat<CSum>>(
          n, laps, data, MakeDefault<window::FlatFat<CSum>>, all_ranges),
      "~n*log2(n)", "~n*log2(n)");
  row("bint",
      Measure<window::BInt<CSum>>(n, laps, data,
                                  MakeDefault<window::BInt<CSum>>, all_ranges),
      "~n*log2(n)", "~n*log2(n)");
  row("flatfit",
      Measure<window::FlatFit<CSum>>(
          n, laps, data, MakeDefault<window::FlatFit<CSum>>, all_ranges),
      "n-1", "n-1");
  row("slickdeque(inv)",
      Measure<core::SlickDequeInv<CSum>>(n, laps, data, make_inv,
                                         inv_answers),
      "2n", "2n");
  row("slickdeque(non-inv)",
      Measure<core::SlickDequeNonInv<CMax>>(
          n, laps, data, MakeDefault<core::SlickDequeNonInv<CMax>>,
          noninv_answers),
      "<=2n (input)", "2n (1/n!)");
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  const Flags flags(argc, argv);
  const std::size_t n = flags.GetU64("window", 64);
  const uint64_t laps = flags.GetU64("laps", 6);
  const uint64_t seed = flags.GetU64("seed", 42);

  std::printf("Table 1: aggregate operations per slide (paper §4)\n");
  std::printf("# window=%zu laps=%llu seed=%llu\n", n,
              (unsigned long long)laps, (unsigned long long)seed);

  const std::vector<double> data = BenchSeries(flags, 1 << 18, seed);
  JsonReport report(flags, "table1_opcounts");
  SingleQueryTable(n, laps, data, report);
  SingleQueryTable(4 * n, laps, data, report);
  MultiQueryTable(n, laps, data, report);
  report.Write();
  return 0;
}
