// Ablation (paper §6 future work: "multi-node environments", simulated):
// a global window is served by N round-robin shards, each running its own
// SlickDeque. On one core there is no wall-clock speedup to show — the
// point is the per-node resource profile a real deployment would see:
// per-shard state shrinks as 1/N, per-shard aggregate operations shrink as
// 1/N, and the coordinator pays N-1 combines per global answer.
//
// Flags: --window=W (default 65536)  --tuples=T (default 1000000)  --seed=S

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "engine/sharded.h"
#include "ops/arith.h"
#include "ops/counting.h"
#include "ops/minmax.h"

namespace slick::bench {
namespace {

template <typename Agg>
void Run(const char* name, const char* algo, std::size_t window,
         uint64_t tuples, const std::vector<double>& data,
         JsonReport& report) {
  using Op = typename Agg::op_type;
  std::printf("\n== %s, global window %zu ==\n", name, window);
  std::printf("%8s %14s %14s %16s %12s\n", "# shards", "Mresults/s",
              "ops/tuple", "bytes/shard", "coord-ops");
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}, std::size_t{16}}) {
    engine::RoundRobinSharded<Agg> sharded(window, shards);
    std::size_t di = 0;
    auto next = [&] {
      const double v = data[di];
      di = di + 1 == data.size() ? 0 : di + 1;
      return v;
    };
    for (std::size_t i = 0; i < window; ++i) sharded.slide(Op::lift(next()));

    ops::OpCounter::Reset();
    double sink = 0.0;
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < tuples; ++i) {
      sharded.slide(Op::lift(next()));
      sink += static_cast<double>(sharded.query());
    }
    const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
    const double total_ops =
        static_cast<double>(ops::OpCounter::Total()) / static_cast<double>(tuples);
    // Coordinator cost: N combines per query (the cross-shard fold).
    const double coord_ops = static_cast<double>(shards);
    const double rate = static_cast<double>(tuples) / elapsed_s;
    std::printf("%8zu %14.2f %14.2f %16zu %12.1f   # checksum %.6g\n", shards,
                rate / 1e6, total_ops - coord_ops,
                sharded.shard(0).memory_bytes(), coord_ops, sink);
    std::fflush(stdout);
    report.Row({{"algo", algo},
                {"shards", JsonReport::Num(shards)},
                {"window", JsonReport::Num(window)},
                {"bytes_per_shard",
                 JsonReport::Num(sharded.shard(0).memory_bytes())}},
               rate);
  }
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  using CSum = slick::ops::CountingOp<slick::ops::Sum>;
  using CMax = slick::ops::CountingOp<slick::ops::Max>;
  const Flags flags(argc, argv);
  const std::size_t window = flags.GetU64("window", 1 << 16);
  const uint64_t tuples = flags.GetU64("tuples", 1'000'000);
  const uint64_t seed = flags.GetU64("seed", 42);

  std::printf("Ablation: simulated multi-node sharding (paper §6 future "
              "work)\n# window=%zu tuples=%llu seed=%llu\n",
              window, (unsigned long long)tuples, (unsigned long long)seed);

  const std::vector<double> data = BenchSeries(flags, 1 << 20, seed);
  JsonReport report(flags, "ablation_sharded");
  Run<slick::core::SlickDequeInv<CSum>>("SlickDeque (Inv), Sum",
                                        "slickdeque-inv-sum", window, tuples,
                                        data, report);
  Run<slick::core::SlickDequeNonInv<CMax>>("SlickDeque (Non-Inv), Max",
                                           "slickdeque-noninv-max", window,
                                           tuples, data, report);
  report.Write();
  return 0;
}
