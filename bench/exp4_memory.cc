// Exp 4 (paper Fig 15): memory requirement vs window size.
//
// Each structure is built at the given window size (including sizes that
// are NOT powers of two, where FlatFAT/B-Int round up), filled with real
// synthetic-sensor data, and its exact data-structure footprint reported
// via memory_bytes(). The process peak RSS (the paper's measurement) is
// printed at the end for reference.
//
// Expected shape (paper §4.2/§5.2): SlickDeque (Inv) matches Naive at ~n;
// FlatFIT/TwoStacks/DABA at ~2n; FlatFAT/B-Int at 2·2^ceil(log2 n) (worst
// 3n at n just above a power of two); SlickDeque (Non-Inv) well below 2n on
// ordinary input (the deque holds only the monotone candidate suffix —
// paper: up to 5x less than Naive).
//
// Flags: --max-exp=N (default 20)  --seed=S

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "util/memory.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"
#include "window/two_stacks_ring.h"

namespace slick::bench {
namespace {

template <typename Agg>
struct NeedsCapacityArg : std::false_type {};
template <typename Op>
struct NeedsCapacityArg<core::Windowed<window::TwoStacksRing<Op>>>
    : std::true_type {};

template <typename Agg>
Agg MakeForWindow(std::size_t window) {
  if constexpr (NeedsCapacityArg<Agg>::value) {
    return Agg(window, window);  // ring capacity = window
  } else {
    return Agg(window);
  }
}

template <typename Agg>
std::size_t Footprint(std::size_t window, const std::vector<double>& data) {
  using Op = typename Agg::op_type;
  Agg agg = MakeForWindow<Agg>(window);
  std::size_t di = 0;
  // Fill one full window plus a lap so dynamic structures reach steady
  // state (TwoStacks/DABA flip at least once; the deque sees real data).
  for (std::size_t i = 0; i < 2 * window + 2; ++i) {
    agg.slide(Op::lift(data[di]));
    di = di + 1 == data.size() ? 0 : di + 1;
  }
  return agg.memory_bytes();
}

void Row(std::size_t w, const std::vector<double>& data, JsonReport& report) {
  using slick::ops::Max;
  using slick::ops::Sum;
  std::printf("%9zu", w);
  // Memory bench: the shared schema's tuples_per_sec is not meaningful, so
  // rows carry 0 and the footprint rides in config.bytes.
  const auto point = [&](const char* algo, std::size_t bytes) {
    std::printf(" %12zu", bytes);
    report.Row({{"algo", algo},
                {"window", JsonReport::Num(w)},
                {"bytes", JsonReport::Num(bytes)}},
               0.0);
  };
  point("naive", Footprint<window::NaiveWindow<Sum>>(w, data));
  point("flatfat", Footprint<window::FlatFat<Sum>>(w, data));
  point("bint", Footprint<window::BInt<Sum>>(w, data));
  point("flatfit", Footprint<window::FlatFit<Sum>>(w, data));
  point("twostacks", Footprint<core::Windowed<window::TwoStacks<Sum>>>(w, data));
  point("2stk-ring",
        Footprint<core::Windowed<window::TwoStacksRing<Sum>>>(w, data));
  point("daba", Footprint<core::Windowed<window::Daba<Sum>>>(w, data));
  point("slick-inv", Footprint<core::SlickDequeInv<Sum>>(w, data));
  point("slick-noninv", Footprint<core::SlickDequeNonInv<Max>>(w, data));
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  const Flags flags(argc, argv);
  const uint64_t max_exp = flags.GetU64("max-exp", 20);
  const uint64_t seed = flags.GetU64("seed", 42);

  std::printf("Exp 4: memory requirement (paper Fig 15)\n");
  std::printf("# max-exp=%llu seed=%llu\n", (unsigned long long)max_exp,
              (unsigned long long)seed);
  PrintHeader("Structure footprint, bytes",
              "#  window        naive      flatfat         bint      flatfit"
              "    twostacks     2stk-ring         daba    slick-inv slick-noninv");

  const std::vector<double> data = BenchSeries(flags, 1 << 20, seed);

  JsonReport report(flags, "exp4_memory");
  for (uint64_t e = 0; e <= max_exp; ++e) {
    const std::size_t w = static_cast<std::size_t>(1) << e;
    Row(w, data, report);
    // Non-power-of-two sizes show the tree structures' rounding penalty.
    if (e >= 2 && e + 1 <= max_exp) {
      Row(w + w / 2, data, report);  // 1.5 * 2^e
    }
  }
  report.Write();

  std::printf("\n# peak RSS of this process: %llu bytes\n",
              (unsigned long long)slick::util::PeakRssBytes());
  return 0;
}
