// Ablation (paper §2.4): Temporal-Database "Historical Windows" vs DSMS
// suffix windows. The history tree answers ANY segment but pays O(log s)
// per update with memory proportional to the whole stream; the sliding
// algorithms answer only the suffix window but in amortized O(1) with O(W)
// memory — the architectural split §2.4 describes.
//
// Flags: --window=W (default 1024)  --tuples=T (default 2000000)  --seed=S

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "window/history_tree.h"

namespace slick::bench {
namespace {

template <typename Op>
void Run(const char* name, const char* opname, std::size_t window,
         uint64_t tuples, const std::vector<double>& data,
         auto&& make_sliding, JsonReport& report) {
  std::printf("\n== %s, suffix window %zu ==\n", name, window);
  std::printf("%-24s %14s %16s\n", "# structure", "Mresults/s", "bytes");

  {
    std::size_t di = 0;
    auto next = [&] {
      const double v = data[di];
      di = di + 1 == data.size() ? 0 : di + 1;
      return v;
    };
    window::HistoryTree<Op> tree(window);
    for (std::size_t i = 0; i < window; ++i) tree.Append(Op::lift(next()));
    double sink = 0.0;
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < tuples; ++i) {
      tree.Append(Op::lift(next()));
      sink += static_cast<double>(tree.QuerySuffix(window));
    }
    const double s = static_cast<double>(NowNs() - t0) * 1e-9;
    const double rate = static_cast<double>(tuples) / s;
    std::printf("%-24s %14.2f %16zu   # checksum %.6g\n",
                "history-tree (§2.4)", rate / 1e6, tree.memory_bytes(), sink);
    report.Row({{"algo", "history-tree"},
                {"op", opname},
                {"window", JsonReport::Num(window)},
                {"bytes", JsonReport::Num(tree.memory_bytes())}},
               rate);
  }
  {
    std::size_t di = 0;
    auto next = [&] {
      const double v = data[di];
      di = di + 1 == data.size() ? 0 : di + 1;
      return v;
    };
    auto agg = make_sliding(window);
    for (std::size_t i = 0; i < window; ++i) agg.slide(Op::lift(next()));
    double sink = 0.0;
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < tuples; ++i) {
      agg.slide(Op::lift(next()));
      sink += static_cast<double>(agg.query());
    }
    const double s = static_cast<double>(NowNs() - t0) * 1e-9;
    const double rate = static_cast<double>(tuples) / s;
    std::printf("%-24s %14.2f %16zu   # checksum %.6g\n", "slickdeque",
                rate / 1e6, agg.memory_bytes(), sink);
    report.Row({{"algo", "slickdeque"},
                {"op", opname},
                {"window", JsonReport::Num(window)},
                {"bytes", JsonReport::Num(agg.memory_bytes())}},
               rate);
  }
  std::fflush(stdout);
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  const Flags flags(argc, argv);
  const std::size_t window = flags.GetU64("window", 1024);
  const uint64_t tuples = flags.GetU64("tuples", 2'000'000);
  const uint64_t seed = flags.GetU64("seed", 42);

  std::printf("Ablation: historical windows (§2.4) vs sliding suffix "
              "windows\n# window=%zu tuples=%llu seed=%llu\n",
              window, (unsigned long long)tuples, (unsigned long long)seed);
  std::printf("# note: history-tree memory covers the WHOLE stream; the\n"
              "# sliding structures retain only the window.\n");

  const std::vector<double> data = BenchSeries(flags, 1 << 20, seed);
  JsonReport report(flags, "ablation_history");
  Run<slick::ops::Sum>(
      "Sum", "sum", window, tuples, data,
      [](std::size_t w) {
        return slick::core::SlickDequeInv<slick::ops::Sum>(w);
      },
      report);
  Run<slick::ops::Max>(
      "Max", "max", window, tuples, data,
      [](std::size_t w) {
        return slick::core::SlickDequeNonInv<slick::ops::Max>(w);
      },
      report);
  report.Write();
  return 0;
}
