// Exp 6 (DESIGN.md §13): out-of-order ingestion cost.
//
// The OooTree final aggregator charges O(log d) only for tuples that
// actually arrive out of order (d = displacement from the in-order
// position) and stays amortized O(1) on in-order input. This bench
// quantifies both claims against the in-order SlickDeque baselines:
//
//   * algo=slick-inv / slick-noninv, frac_ooo=0 — the count-based slide
//     loop, the per-tuple floor the paper's Figure 10 measures;
//   * algo=ooo-tree, frac_ooo=0 — the SAME in-order stream through the
//     event-time path at the runtime's drain cadence (BulkInsert spans of
//     `batch`, one watermark BulkEvict per span — exactly what
//     ShardWorker drives). CI gates both in-order pairs (see
//     EXPERIMENTS.md Exp 6): against SlickDeque-NonInv the tree lands at
//     ~1.25x (gated 1.5x); against SlickDeque-Inv, whose slide is two
//     arithmetic ops, it pays ~5x (gated 6x).
//   * algo=ooo-tree, frac_ooo in {1,5,10,25,50}%, dist in {16,256,4096}
//     — displaced tuples land up to `dist` ticks behind the front, the
//     degradation curve the OoO design trades for.
//
// Timed streams are pre-generated OUTSIDE the timed loop (the rng and the
// slot fill are not priced — a ring drain hands the worker ready spans),
// each lap rebuilds and re-warms the aggregator outside the timer, and
// rates are best-of-`laps`, so rows are directly comparable.
//
// Flags: --window=W (default 4096)  --tuples=T (default 2000000)
//        --laps=L   (default 3)     --seed=S   --batch=B (default 1024)
//        --json=<path>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "util/rng.h"
#include "window/ooo_tree.h"

namespace slick::bench {
namespace {

constexpr uint64_t kFracs[] = {0, 1, 5, 10, 25, 50};   // percent OoO
constexpr uint64_t kDists[] = {16, 256, 4096};          // max displacement

struct Config {
  std::size_t window;
  uint64_t tuples;
  uint64_t laps;
  uint64_t seed;
  std::size_t batch;
};

template <typename Op>
std::vector<typename Op::value_type> Lift(const std::vector<double>& data) {
  std::vector<typename Op::value_type> lifted(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) lifted[i] = Op::lift(data[i]);
  return lifted;
}

/// The in-order baseline: the plain per-tuple slide loop, identical to
/// exp5's batch=1 lane.
template <typename Agg>
void BaselineRow(const char* algo, const char* opname, const Config& cfg,
                 const std::vector<double>& data, JsonReport& report) {
  using Op = typename Agg::op_type;
  const auto lifted = Lift<Op>(data);
  Checksum sink;
  double best = 0.0;
  for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
    Agg agg(cfg.window);
    std::size_t di = 0;
    for (std::size_t i = 0; i < cfg.window; ++i) {
      agg.slide(lifted[di]);
      di = di + 1 == lifted.size() ? 0 : di + 1;
    }
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < cfg.tuples; ++i) {
      agg.slide(lifted[di]);
      di = di + 1 == lifted.size() ? 0 : di + 1;
    }
    const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
    best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
    sink.Add(static_cast<double>(agg.query()));
  }
  std::printf("%-12s %4s %8s %6s %14.2f\n", algo, opname, "-", "-",
              best / 1e6);
  std::fflush(stdout);
  // `batch` mirrors the ooo-tree rows so the cost-ratio gate can pair a
  // baseline with each tree row by config-minus-algo; the slide loop
  // itself is per-tuple regardless.
  report.Row({{"algo", algo},
              {"op", opname},
              {"mode", "ingest"},
              {"window", JsonReport::Num(cfg.window)},
              {"batch", JsonReport::Num(cfg.batch)},
              {"frac_ooo", "0"},
              {"dist", "0"}},
             best);
  sink.Report();
}

/// Pre-generated event-time stream: in-order tuples tick the clock by 1;
/// a `frac`% subset is displaced 1..dist ticks behind the front (clamped
/// inside the live window so displaced tuples are never instantly dead).
std::vector<uint64_t> MakeTimestamps(const Config& cfg, uint64_t frac,
                                     uint64_t dist) {
  std::vector<uint64_t> ts(cfg.tuples);
  util::SplitMix64 rng(cfg.seed ^ (frac * 1315423911u) ^ dist);
  const uint64_t max_disp =
      std::min<uint64_t>(dist, static_cast<uint64_t>(cfg.window) - 1);
  uint64_t now = static_cast<uint64_t>(cfg.window);  // warmup filled 1..W
  for (uint64_t i = 0; i < cfg.tuples; ++i) {
    ++now;
    uint64_t t = now;
    if (frac > 0 && rng.NextBounded(100) < frac) {
      t = now - (1 + rng.NextBounded(max_disp));
    }
    ts[i] = t;
  }
  return ts;
}

/// The event-time path, at the cadence the runtime actually drives it:
/// ShardWorker drains ring spans of `batch` Timed slots through
/// Agg::BulkInsert and advances the watermark (one BulkEvict) per span.
/// The timed stream is pre-generated, mirroring a zero-copy ring drain.
template <typename Op>
void OooRow(const char* opname, const Config& cfg,
            const std::vector<double>& data, uint64_t frac, uint64_t dist,
            JsonReport& report) {
  using Tree = window::OooTree<Op>;
  using Slot = typename Tree::timed_type;
  const auto lifted = Lift<Op>(data);
  Checksum sink;
  const std::vector<uint64_t> ts = MakeTimestamps(cfg, frac, dist);
  std::vector<Slot> stream(cfg.tuples);
  for (uint64_t i = 0; i < cfg.tuples; ++i) {
    stream[i] = Slot{ts[i], lifted[i % lifted.size()]};
  }
  double best = 0.0;
  for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
    Tree tree;
    for (std::size_t i = 0; i < cfg.window; ++i) {
      tree.Insert(static_cast<uint64_t>(i) + 1,
                  lifted[i % lifted.size()]);
    }
    uint64_t now = static_cast<uint64_t>(cfg.window);
    const uint64_t t0 = NowNs();
    for (uint64_t done = 0; done < cfg.tuples;) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<uint64_t>(cfg.batch, cfg.tuples - done));
      const Slot* span = stream.data() + done;
      tree.BulkInsert(span, n);
      for (std::size_t k = 0; k < n; ++k) {
        if (span[k].t > now) now = span[k].t;
      }
      tree.BulkEvict(now - static_cast<uint64_t>(cfg.window) + 1);
      done += n;
    }
    const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
    best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
    sink.Add(static_cast<double>(tree.query()));
  }
  if (frac == 0) {
    std::printf("%-12s %4s %8s %6s %14.2f\n", "ooo-tree", opname, "0", "-",
                best / 1e6);
  } else {
    std::printf("%-12s %4s %8llu %6llu %14.2f\n", "ooo-tree", opname,
                (unsigned long long)frac, (unsigned long long)dist,
                best / 1e6);
  }
  std::fflush(stdout);
  report.Row({{"algo", "ooo-tree"},
              {"op", opname},
              {"mode", "ingest"},
              {"window", JsonReport::Num(cfg.window)},
              {"batch", JsonReport::Num(cfg.batch)},
              {"frac_ooo", JsonReport::Num(frac)},
              {"dist", JsonReport::Num(frac == 0 ? 0 : dist)}},
             best);
  sink.Report();
}

template <typename Op>
void Sweep(const char* opname, const Config& cfg,
           const std::vector<double>& data, JsonReport& report) {
  for (uint64_t frac : kFracs) {
    if (frac == 0) {
      // One in-order row; the dist knob is meaningless without OoO.
      OooRow<Op>(opname, cfg, data, 0, 0, report);
      continue;
    }
    for (uint64_t dist : kDists) {
      OooRow<Op>(opname, cfg, data, frac, dist, report);
    }
  }
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  using slick::ops::Max;
  using slick::ops::Sum;
  const Flags flags(argc, argv);
  Config cfg;
  cfg.window = flags.GetU64("window", 4096);
  cfg.tuples = flags.GetU64("tuples", 2'000'000);
  cfg.laps = std::max<uint64_t>(1, flags.GetU64("laps", 3));
  cfg.seed = flags.GetU64("seed", 42);
  cfg.batch = std::max<std::size_t>(1, flags.GetU64("batch", 1024));

  std::printf(
      "Exp 6: out-of-order ingestion cost (DESIGN.md §13)\n"
      "# window=%zu tuples=%llu laps=%llu seed=%llu batch=%zu\n",
      cfg.window, (unsigned long long)cfg.tuples,
      (unsigned long long)cfg.laps, (unsigned long long)cfg.seed, cfg.batch);
  std::printf("%-12s %4s %8s %6s %14s\n", "# algo", "op", "frac%", "dist",
              "Mtuples/s");

  const std::vector<double> data = BenchSeries(flags, 1 << 20, cfg.seed);
  JsonReport report(flags, "exp6_ooo");

  BaselineRow<slick::core::SlickDequeInv<Sum>>("slick-inv", "sum", cfg, data,
                                               report);
  Sweep<Sum>("sum", cfg, data, report);
  BaselineRow<slick::core::SlickDequeNonInv<Max>>("slick-noninv", "max", cfg,
                                                  data, report);
  Sweep<Max>("max", cfg, data, report);

  report.Write();
  return 0;
}
