// Google-benchmark microbenches: steady-state slide+query cost of every
// final aggregator at a parameterized window size. Complements the
// experiment binaries with statistically managed per-op timings.

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "window/b_int.h"
#include "window/chunked_array_queue.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick::bench {
namespace {

const std::vector<double>& Data() {
  static const std::vector<double>* data =
      new std::vector<double>(EnergySeries(1 << 16, 42));
  return *data;
}

template <typename Agg>
void BM_SlideQuery(benchmark::State& state) {
  using Op = typename Agg::op_type;
  const auto window = static_cast<std::size_t>(state.range(0));
  const std::vector<double>& data = Data();
  Agg agg(window);
  std::size_t di = 0;
  for (std::size_t i = 0; i < window; ++i) {
    agg.slide(Op::lift(data[di]));
    di = di + 1 == data.size() ? 0 : di + 1;
  }
  for (auto _ : state) {
    agg.slide(Op::lift(data[di]));
    di = di + 1 == data.size() ? 0 : di + 1;
    benchmark::DoNotOptimize(agg.query());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

using slick::ops::Max;
using slick::ops::Sum;

BENCHMARK_TEMPLATE(BM_SlideQuery, window::NaiveWindow<Sum>)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, window::FlatFat<Sum>)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, window::BInt<Sum>)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, window::FlatFit<Sum>)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, core::Windowed<window::TwoStacks<Sum>>)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, core::Windowed<window::Daba<Sum>>)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, core::SlickDequeInv<Sum>)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, core::SlickDequeNonInv<Max>)
    ->Arg(64)
    ->Arg(1024);

void BM_ChunkedQueuePushPop(benchmark::State& state) {
  window::ChunkedArrayQueue<double> q(static_cast<std::size_t>(state.range(0)));
  for (int i = 0; i < 1024; ++i) q.push_back(i);
  for (auto _ : state) {
    q.push_back(1.0);
    q.pop_front();
    benchmark::DoNotOptimize(q.front());
  }
}
BENCHMARK(BM_ChunkedQueuePushPop)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace slick::bench

BENCHMARK_MAIN();
