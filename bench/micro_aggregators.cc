// Google-benchmark microbenches: steady-state slide+query cost of every
// final aggregator at a parameterized window size. Complements the
// experiment binaries with statistically managed per-op timings.

#include <cstdint>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "engine/acq_engine.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "telemetry/histogram.h"
#include "telemetry/sink.h"
#include "window/b_int.h"
#include "window/chunked_array_queue.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick::bench {
namespace {

const std::vector<double>& Data() {
  static const std::vector<double>* data =
      new std::vector<double>(EnergySeries(1 << 16, 42));
  return *data;
}

template <typename Agg>
void BM_SlideQuery(benchmark::State& state) {
  using Op = typename Agg::op_type;
  const auto window = static_cast<std::size_t>(state.range(0));
  const std::vector<double>& data = Data();
  Agg agg(window);
  std::size_t di = 0;
  for (std::size_t i = 0; i < window; ++i) {
    agg.slide(Op::lift(data[di]));
    di = di + 1 == data.size() ? 0 : di + 1;
  }
  for (auto _ : state) {
    agg.slide(Op::lift(data[di]));
    di = di + 1 == data.size() ? 0 : di + 1;
    benchmark::DoNotOptimize(agg.query());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

using slick::ops::Max;
using slick::ops::Sum;

BENCHMARK_TEMPLATE(BM_SlideQuery, window::NaiveWindow<Sum>)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, window::FlatFat<Sum>)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, window::BInt<Sum>)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, window::FlatFit<Sum>)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, core::Windowed<window::TwoStacks<Sum>>)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, core::Windowed<window::Daba<Sum>>)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, core::SlickDequeInv<Sum>)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_SlideQuery, core::SlickDequeNonInv<Max>)
    ->Arg(64)
    ->Arg(1024);

void BM_ChunkedQueuePushPop(benchmark::State& state) {
  window::ChunkedArrayQueue<double> q(static_cast<std::size_t>(state.range(0)));
  for (int i = 0; i < 1024; ++i) q.push_back(i);
  for (auto _ : state) {
    q.push_back(1.0);
    q.pop_front();
    benchmark::DoNotOptimize(q.front());
  }
}
BENCHMARK(BM_ChunkedQueuePushPop)->Arg(16)->Arg(64)->Arg(256);

// ---------------------------------------------------------------------
// Telemetry overhead: the acceptance bar is that an engine compiled with
// the default NullEngineSink is indistinguishable (±2%) from the
// pre-telemetry baseline — the sink is an empty [[no_unique_address]]
// member and every hook inlines to nothing, so Null vs the other variants
// quantifies exactly what instrumentation costs when switched on.
// ---------------------------------------------------------------------

template <typename Tel>
void BM_AcqEngineTelemetry(benchmark::State& state) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  const std::vector<plan::QuerySpec> queries = {
      {static_cast<std::size_t>(state.range(0)), 1}};
  engine::AcqEngine<Agg, Tel> eng(queries, plan::Pat::kPairs);
  const std::vector<double>& data = Data();
  std::size_t di = 0;
  int64_t sink = 0;
  for (auto _ : state) {
    eng.Push(static_cast<int64_t>(data[di] * 1024.0),
             [&sink](uint32_t, int64_t res) { sink += res; });
    di = di + 1 == data.size() ? 0 : di + 1;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK_TEMPLATE(BM_AcqEngineTelemetry, telemetry::NullEngineSink)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_TEMPLATE(BM_AcqEngineTelemetry, telemetry::CountingEngineSink)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_TEMPLATE(BM_AcqEngineTelemetry, telemetry::HistogramEngineSink)
    ->Arg(64)
    ->Arg(1024);

void BM_HistogramRecord(benchmark::State& state) {
  // Cost of one wait-free Record (two relaxed fetch_adds + a clz): the
  // per-sample price the always-on runtime telemetry pays.
  telemetry::LatencyHistogram hist;
  uint64_t v = 0x9E3779B97F4A7C15ull;
  for (auto _ : state) {
    v ^= v >> 33;  // cheap value scrambling, spread across buckets
    hist.Record(v >> (v & 31));
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
}  // namespace slick::bench

// Custom main instead of BENCHMARK_MAIN(): translate the repo-wide
// `--json <path>` / `--json=<path>` convention into google-benchmark's
// JSON reporter flags so every bench binary shares one CLI.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string path;
    if (args[i] == "--json" && i + 1 < args.size()) {
      path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (args[i].rfind("--json=", 0) == 0) {
      path = args[i].substr(7);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      continue;
    }
    args.push_back("--benchmark_out=" + path);
    args.push_back("--benchmark_out_format=json");
    break;
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (std::string& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
