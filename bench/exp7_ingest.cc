// Exp 7: ingest saturation — producer-count x batch-size sweep over the
// three ways tuples reach the shard workers (DESIGN.md §14):
//
//  - router:      N producer threads serialize through ONE router thread
//                 (per-producer SPSC ring -> router -> engine.push), the
//                 pre-MPMC architecture. Every tuple crosses two rings.
//  - mpmc-direct: N producer threads each hold an engine Producer handle
//                 and publish batches straight into the shard MPMC rings —
//                 no router hop, one ring crossing per tuple.
//  - tcp:         N loopback client PROCESSES send framed batches to the
//                 epoll IngestServer, whose event loops sink into Producer
//                 handles. Measures the full front door: syscalls, frame
//                 decode, CRC, admission.
//
// On a multi-core box mpmc-direct scales with producers until the shard
// workers saturate — the router thread caps the old path at one core's
// engine.push rate, so 4 producers on their own cores clear 2x the
// single-router throughput at batch 256. On ONE core (every thread
// timeshares a single CPU) no architecture can beat total-work physics:
// the mpmc-direct advantage compresses to path length alone — one ring
// crossing per tuple instead of two — and lands at ~1.1-1.5x. Each JSON
// row records `cores` so readers can tell which regime a snapshot
// measured. CI gates mpmc-direct >= the router baseline per (producers,
// batch) point via tools/bench_summary.py --baseline (see ci.yml), and the
// committed BENCH_ingest.json records the 4-producer batch-256 ratio.
//
// Rates are best-of-`laps` (like parallel_throughput) so one unlucky
// scheduler quantum does not decide a row.
//
// Flags: --window=W (default 65536)  --tuples=T per lap (default 400000)
//        --ring=R   (default 4096)   --laps=L (default 3)
//        --shards=S (default 2)      --seed=S
//        --producers=CSV (default 1,2,4)  --batches=CSV (default 64,256)
//        --mode=router|mpmc|tcp|all (default all)  --json=PATH

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "net/frame.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "ops/arith.h"
#include "runtime/mpmc_ring.h"
#include "runtime/parallel_engine.h"
#include "runtime/spsc_ring.h"

namespace slick::bench {
namespace {

using Agg = core::SlickDequeInv<ops::Sum>;
using RouterEngine = runtime::ParallelShardedEngine<Agg>;
using DirectEngine = runtime::ParallelShardedEngine<Agg, runtime::MpmcRing>;

struct Config {
  std::size_t window;
  uint64_t tuples;
  std::size_t ring;
  std::size_t shards;
  uint64_t laps;
  std::vector<std::size_t> producers;
  std::vector<std::size_t> batches;
};

std::vector<std::size_t> ParseList(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    out.push_back(std::strtoull(csv.c_str() + pos, nullptr, 10));
    const std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

template <typename Engine>
typename Engine::Options EngineOpts(const Config& cfg, std::size_t batch) {
  typename Engine::Options o;
  o.ring_capacity = cfg.ring;
  o.batch = batch;
  o.backpressure = runtime::Backpressure::kBlock;
  return o;
}

/// Per-producer slice [first, first + count) of the lap's tuple budget.
struct Slice {
  uint64_t first;
  uint64_t count;
};

Slice SliceOf(uint64_t total, std::size_t producers, std::size_t p) {
  const uint64_t per = total / producers;
  const uint64_t first = per * p;
  const uint64_t count = p + 1 == producers ? total - first : per;
  return {first, count};
}

/// Wrapping cursor over the bench series — a branch, not a per-tuple
/// divide, so data generation stays off the measured critical path.
class DataCursor {
 public:
  DataCursor(const std::vector<double>& data, uint64_t start)
      : data_(data), i_(start % data.size()) {}
  double Next() {
    const double v = data_[i_];
    i_ = i_ + 1 == data_.size() ? 0 : i_ + 1;
    return v;
  }

 private:
  const std::vector<double>& data_;
  std::size_t i_;
};

/// The pre-MPMC architecture: producers -> per-producer SPSC ring ->
/// one router thread -> engine.push. Returns best-lap tuples/s.
double RunRouter(const Config& cfg, std::size_t producers, std::size_t batch,
                 const std::vector<double>& data, Checksum& sink) {
  RouterEngine engine(cfg.window, cfg.shards, EngineOpts<RouterEngine>(cfg, batch));
  for (std::size_t i = 0; i < cfg.window; ++i) {
    engine.push(ops::Sum::lift(data[i % data.size()]));
  }
  double best = 0.0;
  for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
    std::vector<std::unique_ptr<runtime::SpscRing<double>>> rings;
    for (std::size_t p = 0; p < producers; ++p) {
      rings.push_back(std::make_unique<runtime::SpscRing<double>>(cfg.ring));
    }
    const uint64_t t0 = NowNs();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        const Slice s = SliceOf(cfg.tuples, producers, p);
        DataCursor cur(data, s.first);
        std::vector<double> stage;
        stage.reserve(batch);
        for (uint64_t i = 0; i < s.count; ++i) {
          stage.push_back(cur.Next());
          if (stage.size() == batch) {
            rings[p]->push_n(stage.data(), stage.size());
            stage.clear();
          }
        }
        if (!stage.empty()) rings[p]->push_n(stage.data(), stage.size());
        rings[p]->close();
      });
    }
    // The router hop: drain every producer ring round-robin and feed the
    // engine through its single-thread ingress — the serialization point
    // the MPMC path removes.
    std::vector<double> buf(batch);
    std::size_t open = producers;
    std::vector<bool> closed(producers, false);
    while (open > 0) {
      bool moved = false;
      for (std::size_t p = 0; p < producers; ++p) {
        if (closed[p]) continue;
        const std::size_t n = rings[p]->try_pop_n(buf.data(), buf.size());
        for (std::size_t i = 0; i < n; ++i) {
          engine.push(ops::Sum::lift(buf[i]));
        }
        if (n > 0) {
          moved = true;
        } else if (rings[p]->closed() && rings[p]->empty()) {
          closed[p] = true;
          --open;
        }
      }
      if (!moved && open > 0) std::this_thread::yield();
    }
    for (auto& t : threads) t.join();
    engine.flush();
    const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
    best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
  }
  sink.Add(static_cast<double>(engine.query()));
  engine.stop();
  return best;
}

/// The tentpole path: producers publish batches straight into the shard
/// MPMC rings through engine Producer handles. Returns best-lap tuples/s.
double RunDirect(const Config& cfg, std::size_t producers, std::size_t batch,
                 const std::vector<double>& data, Checksum& sink) {
  DirectEngine engine(cfg.window, cfg.shards, EngineOpts<DirectEngine>(cfg, batch));
  for (std::size_t i = 0; i < cfg.window; ++i) {
    engine.push(ops::Sum::lift(data[i % data.size()]));
  }
  engine.flush();
  double best = 0.0;
  for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
    const uint64_t t0 = NowNs();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        const Slice s = SliceOf(cfg.tuples, producers, p);
        DataCursor cur(data, s.first);
        DirectEngine::Producer prod = engine.MakeProducer();
        for (uint64_t i = 0; i < s.count; ++i) {
          prod.push(ops::Sum::lift(cur.Next()));
        }
        // Producer dtor flushes its staging before the thread exits.
      });
    }
    for (auto& t : threads) t.join();
    engine.flush();
    const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
    best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
  }
  sink.Add(static_cast<double>(engine.query()));
  engine.stop();
  return best;
}

/// One forked loopback client: sends its slice as framed batches of
/// `batch` tuples, half-closes, exits without running parent atexit state.
[[noreturn]] void ClientProcess(uint16_t port, const Config& cfg,
                                std::size_t producers, std::size_t p,
                                std::size_t batch,
                                const std::vector<double>& data) {
  net::IngestClient client;
  if (!client.Connect("127.0.0.1", port)) _exit(1);
  const Slice s = SliceOf(cfg.tuples, producers, p);
  DataCursor cur(data, s.first);
  std::vector<net::WireTuple> stage;
  stage.reserve(batch);
  for (uint64_t i = 0; i < s.count; ++i) {
    stage.push_back({s.first + i + 1, cur.Next()});
    if (stage.size() == batch) {
      if (!client.SendBatch(stage.data(), stage.size())) _exit(1);
      stage.clear();
    }
  }
  if (!stage.empty() &&
      !client.SendBatch(stage.data(), stage.size())) {
    _exit(1);
  }
  client.CloseSend();
  client.Close();
  _exit(0);
}

/// The full front door: loopback client processes -> epoll server ->
/// Producer sinks -> shard MPMC rings. Returns best-lap tuples/s.
double RunTcp(const Config& cfg, std::size_t producers, std::size_t batch,
              const std::vector<double>& data, Checksum& sink) {
  DirectEngine engine(cfg.window, cfg.shards, EngineOpts<DirectEngine>(cfg, batch));
  for (std::size_t i = 0; i < cfg.window; ++i) {
    engine.push(ops::Sum::lift(data[i % data.size()]));
  }
  engine.flush();
  double best = 0.0;
  uint64_t expected = 0;
  {
    net::IngestServer server(
        {.port = 0, .threads = producers,
         .backpressure = runtime::Backpressure::kBlock},
        [&engine](std::size_t) {
          auto prod =
              std::make_shared<DirectEngine::Producer>(engine.MakeProducer());
          return [prod](const net::WireTuple* tuples, std::size_t n) {
            for (std::size_t i = 0; i < n; ++i) prod->push(tuples[i].v);
            return n;
          };
        });
    if (!server.Start()) {
      std::fprintf(stderr, "exp7: cannot start ingest server\n");
      return 0.0;
    }
    for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
      expected += cfg.tuples;
      const uint64_t t0 = NowNs();
      std::vector<pid_t> pids;
      pids.reserve(producers);
      for (std::size_t p = 0; p < producers; ++p) {
        const pid_t pid = fork();
        if (pid == 0) {
          ClientProcess(server.port(), cfg, producers, p, batch, data);
        }
        pids.push_back(pid);
      }
      for (pid_t pid : pids) {
        int status = 0;
        waitpid(pid, &status, 0);
      }
      while (server.snapshot().tuples_accepted < expected) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
      best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
    }
    server.Stop();
  }  // server (and its Producer sinks) destroyed before the engine quiesces
  engine.flush();
  sink.Add(static_cast<double>(engine.query()));
  engine.stop();
  return best;
}

using RunFn = double (*)(const Config&, std::size_t, std::size_t,
                         const std::vector<double>&, Checksum&);

void RunSweep(const char* algo, RunFn run, const Config& cfg,
              const std::vector<double>& data, JsonReport& report) {
  std::printf("\n== %s ==\n%-10s %8s %14s\n", algo, "producers", "batch",
              "Mtuples/s");
  Checksum sink;
  for (std::size_t producers : cfg.producers) {
    for (std::size_t batch : cfg.batches) {
      const double rate = run(cfg, producers, batch, data, sink);
      std::printf("%-10zu %8zu %14.2f\n", producers, batch, rate / 1e6);
      std::fflush(stdout);
      // `cores` is provenance, not a knob: the producer-scaling headroom
      // is real only when producers own their own hardware threads. On a
      // single-core host every mode serializes onto one CPU and the
      // mpmc-direct advantage compresses to path length alone.
      report.Row({{"algo", algo},
                  {"producers", JsonReport::Num(producers)},
                  {"batch", JsonReport::Num(batch)},
                  {"window", JsonReport::Num(cfg.window)},
                  {"shards", JsonReport::Num(cfg.shards)},
                  {"cores",
                   JsonReport::Num(std::thread::hardware_concurrency())}},
                 rate);
    }
  }
  sink.Report();
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  const Flags flags(argc, argv);
  Config cfg;
  cfg.window = flags.GetU64("window", 1 << 16);
  cfg.tuples = flags.GetU64("tuples", 400'000);
  cfg.ring = flags.GetU64("ring", 1 << 12);
  cfg.shards = flags.GetU64("shards", 2);
  cfg.laps = std::max<uint64_t>(1, flags.GetU64("laps", 3));
  cfg.producers = ParseList(flags.GetString("producers", "1,2,4"));
  cfg.batches = ParseList(flags.GetString("batches", "64,256"));
  const std::string mode = flags.GetString("mode", "all");
  const uint64_t seed = flags.GetU64("seed", 42);

  std::printf(
      "Exp 7: ingest saturation, producer-count x batch-size (best of %llu "
      "laps)\n"
      "# window=%zu tuples=%llu ring=%zu shards=%zu seed=%llu mode=%s\n",
      (unsigned long long)cfg.laps, cfg.window,
      (unsigned long long)cfg.tuples, cfg.ring, cfg.shards,
      (unsigned long long)seed, mode.c_str());

  const std::vector<double> data = BenchSeries(flags, 1 << 20, seed);
  JsonReport report(flags, "exp7_ingest");
  if (mode == "all" || mode == "router") {
    RunSweep("router", RunRouter, cfg, data, report);
  }
  if (mode == "all" || mode == "mpmc") {
    RunSweep("mpmc-direct", RunDirect, cfg, data, report);
  }
  if (mode == "all" || mode == "tcp") {
    RunSweep("tcp", RunTcp, cfg, data, report);
  }
  report.Write();
  return 0;
}
