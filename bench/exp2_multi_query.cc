// Exp 2 (paper Figs 12 and 13): max-multi-query throughput vs window size.
//
// After every tuple arrival, queries over ALL ranges 1..window are answered
// (slide 1). Throughput counts shared-plan slides per second; each slide
// produces `window` answers.
//
// Expected shape (paper §5.2): SlickDeque leads from window >= 4 (by up to
// 60% for Sum, up to 345% for Max over the runner-up); Naive collapses
// quadratically, FlatFAT/B-Int as n·log(n). TwoStacks and DABA are absent —
// they do not support multi-query execution (§2.2).
//
// A second sweep fixes the window and varies the registered query COUNT
// (ranges evenly spaced over 1..window): the SlideSide-style fused
// query_multi answer walk vs one query() probe per range, plus the fused
// walk pinned to scalar kernels — the paired rows gate the vectorized
// PrefixCountGreater walk against its scalar twin (DESIGN.md §16).
//
// Flags: --max-exp=N (default 12)  --budget-ms=M (default 200)
//        --max-slides=T (default 262144)  --op=sum|max|both  --seed=S
//        --qc-window=W (default 4096; 0 skips the query-count sweep)

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/per_query_adapter.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "ops/arith.h"
#include "ops/kernels.h"
#include "ops/minmax.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick::bench {
namespace {

struct Config {
  uint64_t max_exp = 12;
  uint64_t budget_ns = 200'000'000;
  uint64_t max_slides = 1 << 18;
  uint64_t seed = 42;
  std::size_t qc_window = 4096;
};

// Per-algorithm "answer all ranges" strategies, each the idiomatic path.

template <typename Agg>
double AnswerAllRanges(Agg& agg, std::size_t window) {
  // Generic: one range lookup per query, largest first.
  double sink = 0.0;
  for (std::size_t r = window; r >= 1; --r) {
    sink += static_cast<double>(agg.query(r));
  }
  return sink;
}

template <ops::InvertibleOp Op>
double AnswerAllRanges(core::SlickDequeInv<Op>& agg, std::size_t /*window*/) {
  // SlickDeque (Inv): the answers map already holds every result.
  double sink = 0.0;
  agg.for_each_answer([&](std::size_t, const typename Op::result_type& res) {
    sink += static_cast<double>(res);
  });
  return sink;
}

std::vector<std::size_t> AllRanges(std::size_t window) {
  std::vector<std::size_t> ranges(window);
  for (std::size_t r = 1; r <= window; ++r) ranges[r - 1] = r;
  return ranges;
}

template <typename Agg>
struct MultiFactory {
  static Agg Make(std::size_t window) { return Agg(window); }
};
template <ops::InvertibleOp Op>
struct MultiFactory<core::SlickDequeInv<Op>> {
  static core::SlickDequeInv<Op> Make(std::size_t window) {
    return core::SlickDequeInv<Op>(window, AllRanges(window));
  }
};
template <window::FifoAggregator A>
struct MultiFactory<core::PerQueryAdapter<A>> {
  static core::PerQueryAdapter<A> Make(std::size_t window) {
    return core::PerQueryAdapter<A>(window, AllRanges(window));
  }
};

template <typename Agg>
double RunPoint(std::size_t window, const std::vector<double>& data,
                const Config& cfg, Checksum& cs) {
  using Op = typename Agg::op_type;
  Agg agg = MultiFactory<Agg>::Make(window);
  std::size_t di = 0;
  auto next = [&] {
    const double v = data[di];
    di = di + 1 == data.size() ? 0 : di + 1;
    return v;
  };
  for (std::size_t i = 0; i < window; ++i) agg.slide(Op::lift(next()));

  // Ranges buffer for the fused multi-answer path (SlickDeque (Non-Inv)).
  std::vector<std::size_t> ranges_desc;
  std::vector<typename Op::result_type> out;
  if constexpr (requires { agg.query_multi(ranges_desc, out); }) {
    ranges_desc.resize(window);
    for (std::size_t r = 0; r < window; ++r) ranges_desc[r] = window - r;
  }

  const uint64_t batch =
      std::max<uint64_t>(1, std::min<uint64_t>(1024, (1 << 20) / window));
  const uint64_t t0 = NowNs();
  uint64_t slides = 0;
  double sink = 0.0;
  while (slides < cfg.max_slides) {
    for (uint64_t b = 0; b < batch && slides < cfg.max_slides; ++b) {
      agg.slide(Op::lift(next()));
      if constexpr (requires { agg.query_multi(ranges_desc, out); }) {
        out.clear();
        agg.query_multi(ranges_desc, out);
        for (const auto& r : out) sink += static_cast<double>(r);
      } else {
        sink += AnswerAllRanges(agg, window);
      }
      ++slides;
    }
    if (NowNs() - t0 >= cfg.budget_ns) break;
  }
  const uint64_t elapsed = NowNs() - t0;
  cs.Add(sink);
  return static_cast<double>(slides) * 1e3 / static_cast<double>(elapsed);
}

template <typename Op, typename Slick>
void RunSweep(const char* title, const char* opname, const Config& cfg,
              const std::vector<double>& data, JsonReport& report) {
  PrintHeader(title,
              "# window        naive      flatfat         bint      flatfit"
              "  twostacks*q      daba*q   slickdeque   (Mslides/s; each "
              "slide answers `window` queries; *q = one instance per query, "
              "§2.2)");
  Checksum cs;
  for (uint64_t e = 0; e <= cfg.max_exp; ++e) {
    const std::size_t w = static_cast<std::size_t>(1) << e;
    std::printf("%8zu", w);
    const auto point = [&](const char* algo, double mslides) {
      std::printf(" %12.4f", mslides);
      report.Row({{"algo", algo},
                  {"op", opname},
                  {"window", JsonReport::Num(w)}},
                 mslides * 1e6);
    };
    point("naive", RunPoint<window::NaiveWindow<Op>>(w, data, cfg, cs));
    point("flatfat", RunPoint<window::FlatFat<Op>>(w, data, cfg, cs));
    point("bint", RunPoint<window::BInt<Op>>(w, data, cfg, cs));
    point("flatfit", RunPoint<window::FlatFit<Op>>(w, data, cfg, cs));
    if (w <= 1024) {
      // One aggregator instance per query needs Θ(w²) memory: capped.
      point("twostacks*q",
            RunPoint<core::PerQueryAdapter<window::TwoStacks<Op>>>(w, data,
                                                                   cfg, cs));
      point("daba*q", RunPoint<core::PerQueryAdapter<window::Daba<Op>>>(
                          w, data, cfg, cs));
    } else {
      std::printf(" %12s %12s", "-", "-");
    }
    point("slickdeque", RunPoint<Slick>(w, data, cfg, cs));
    std::printf("\n");
    std::fflush(stdout);
  }
  cs.Report();
}

// ------------------------- query-count sweep ------------------------------

/// One (query-count, answer-strategy) point: SlickDeque (Non-Inv) at a
/// fixed window answering `nq` evenly spaced ranges after every slide,
/// either through the fused query_multi walk or through one query() probe
/// per range. Returns answers per second.
template <typename Op>
double RunQueryCountPoint(std::size_t window, std::size_t nq, bool fused,
                          const std::vector<double>& data, const Config& cfg,
                          Checksum& cs) {
  core::SlickDequeNonInv<Op> agg(window);
  std::size_t di = 0;
  auto next = [&] {
    const double v = data[di];
    di = di + 1 == data.size() ? 0 : di + 1;
    return v;
  };
  for (std::size_t i = 0; i < window; ++i) {
    agg.slide(Op::lift(static_cast<typename Op::input_type>(next())));
  }

  // nq ranges evenly spaced over [1, window], descending, r[0] = window.
  std::vector<std::size_t> ranges_desc(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    ranges_desc[i] = window - (i * window) / nq;
  }
  std::vector<typename Op::result_type> out;
  out.reserve(nq);

  const uint64_t t0 = NowNs();
  uint64_t slides = 0;
  double sink = 0.0;
  while (slides < cfg.max_slides) {
    for (uint64_t b = 0; b < 512 && slides < cfg.max_slides; ++b) {
      agg.slide(Op::lift(static_cast<typename Op::input_type>(next())));
      if (fused) {
        out.clear();
        agg.query_multi(ranges_desc, out);
        for (const auto& r : out) sink += static_cast<double>(r);
      } else {
        for (const std::size_t r : ranges_desc) {
          sink += static_cast<double>(agg.query(r));
        }
      }
      ++slides;
    }
    if (NowNs() - t0 >= cfg.budget_ns) break;
  }
  const uint64_t elapsed = NowNs() - t0;
  cs.Add(sink);
  return static_cast<double>(slides * nq) * 1e9 /
         static_cast<double>(elapsed);
}

template <typename Op>
void RunQueryCountSweep(const char* opname, const Config& cfg,
                        const std::vector<double>& data, JsonReport& report) {
  const std::size_t window = cfg.qc_window;
  std::printf(
      "\nExp2(c) %s: Manswers/s vs registered query count, window %zu\n"
      "%8s %14s %14s %14s\n",
      opname, window, "# nq", "multi", "multi-scalar", "per-query");
  Checksum cs;
  for (std::size_t nq = 1; nq <= window; nq *= 4) {
    std::printf("%8zu", nq);
    const auto point = [&](const char* algo, double aps) {
      std::printf(" %14.2f", aps / 1e6);
      report.Row({{"algo", algo},
                  {"op", opname},
                  {"mode", "qcount"},
                  {"window", JsonReport::Num(window)},
                  {"queries", JsonReport::Num(nq)}},
                 aps);
    };
    point("slick-noninv-multi",
          RunQueryCountPoint<Op>(window, nq, true, data, cfg, cs));
    {
      const auto prev =
          ops::kernels::SetSimdLevel(ops::kernels::SimdLevel::kScalar);
      point("slick-noninv-multi-scalar",
            RunQueryCountPoint<Op>(window, nq, true, data, cfg, cs));
      ops::kernels::SetSimdLevel(prev);
    }
    point("slick-noninv-single",
          RunQueryCountPoint<Op>(window, nq, false, data, cfg, cs));
    std::printf("\n");
    std::fflush(stdout);
  }
  cs.Report();
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  const Flags flags(argc, argv);
  Config cfg;
  cfg.max_exp = flags.GetU64("max-exp", 12);
  cfg.budget_ns = flags.GetU64("budget-ms", 200) * 1'000'000;
  cfg.max_slides = flags.GetU64("max-slides", 1 << 18);
  cfg.seed = flags.GetU64("seed", 42);
  cfg.qc_window = flags.GetU64("qc-window", 4096);
  const std::string op = flags.GetString("op", "both");

  std::printf("Exp 2: max-multi-query throughput (paper Figs 12, 13)\n");
  std::printf("# max-exp=%llu budget-ms=%llu max-slides=%llu seed=%llu\n",
              (unsigned long long)cfg.max_exp,
              (unsigned long long)(cfg.budget_ns / 1'000'000),
              (unsigned long long)cfg.max_slides,
              (unsigned long long)cfg.seed);

  const std::vector<double> data = BenchSeries(flags, 1 << 20, cfg.seed);

  JsonReport report(flags, "exp2_multi_query");
  if (op == "sum" || op == "both") {
    RunSweep<slick::ops::Sum, slick::core::SlickDequeInv<slick::ops::Sum>>(
        "Exp2(a) Sum over all ranges 1..window, slide 1 (Fig 12)", "sum", cfg,
        data, report);
  }
  if (op == "max" || op == "both") {
    RunSweep<slick::ops::Max,
             slick::core::SlickDequeNonInv<slick::ops::Max>>(
        "Exp2(b) Max over all ranges 1..window, slide 1 (Fig 13)", "max", cfg,
        data, report);
  }
  if (cfg.qc_window > 0 && (op == "max" || op == "both")) {
    RunQueryCountSweep<slick::ops::Max>("max", cfg, data, report);
    RunQueryCountSweep<slick::ops::MaxInt>("max_int", cfg, data, report);
  }
  report.Write();
  return 0;
}
