// Exp 5 (DESIGN.md §11): ingestion throughput vs batch size.
//
// Single-thread mode drives each aggregator through window::BulkSlide with
// contiguous spans of B pre-lifted tuples (B = 1 runs the plain per-tuple
// slide loop — the true baseline), so the measured ratio is exactly what
// the bulk APIs and vectorized kernels buy. Sharded mode drives the
// parallel runtime with Options.batch = B: the router stages B tuples per
// ring handoff and each worker drains whole claimed spans into BulkSlide.
//
// Rates are best-of-`laps` (like table1_opcounts); each lap runs the full
// tuple budget against the already-warm window and queries once at lap end
// so O(n)-query structures (naive) are not priced on their query path.
//
// Flags: --window=W (default 4096)   --tuples=T (default 2000000)
//        --laps=L   (default 3)      --shards=S (default 4)
//        --ring=R   (default 4096)   --max-batch=B (default 4096)
//        --seed=S   --json=<path>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/subtract_on_evict.h"
#include "core/windowed.h"
#include "ops/arith.h"
#include "ops/kernels.h"
#include "ops/minmax.h"
#include "runtime/parallel_engine.h"
#include "window/aggregator.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"
#include "window/two_stacks_ring.h"

namespace slick::bench {
namespace {

constexpr std::size_t kBatches[] = {1, 4, 16, 64, 256, 1024, 4096};

struct Config {
  std::size_t window;
  uint64_t tuples;
  uint64_t laps;
  std::size_t shards;
  std::size_t ring;
  std::size_t max_batch;
};

template <typename Op>
std::vector<typename Op::value_type> Lift(const std::vector<double>& data) {
  std::vector<typename Op::value_type> lifted(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    lifted[i] = Op::lift(static_cast<typename Op::input_type>(data[i]));
  }
  return lifted;
}

/// One aggregator across the batch sweep, single-threaded. batch == 1 is
/// the per-tuple slide loop; batch > 1 goes through window::BulkSlide with
/// contiguous spans (shortened only at the data ring's wrap point).
/// Extra ctor_args are forwarded after the window (TwoStacksRing's fixed
/// capacity rides through Windowed this way).
template <typename Agg, typename... CtorArgs>
void SweepSingle(const char* algo, const char* opname, const Config& cfg,
                 const std::vector<double>& data, JsonReport& report,
                 CtorArgs... ctor_args) {
  using Op = typename Agg::op_type;
  const auto lifted = Lift<Op>(data);
  std::printf("\n== %s (%s), window %zu, single-thread ==\n", algo, opname,
              cfg.window);
  std::printf("%8s %14s %10s\n", "# batch", "Mtuples/s", "vs b=1");
  Checksum sink;
  double base = 0.0;
  for (std::size_t batch : kBatches) {
    if (batch > cfg.max_batch) break;
    Agg agg(cfg.window, ctor_args...);
    std::size_t di = 0;
    for (std::size_t i = 0; i < cfg.window; ++i) {
      agg.slide(lifted[di]);
      di = di + 1 == lifted.size() ? 0 : di + 1;
    }
    double best = 0.0;
    for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
      const uint64_t t0 = NowNs();
      if (batch == 1) {
        for (uint64_t i = 0; i < cfg.tuples; ++i) {
          agg.slide(lifted[di]);
          di = di + 1 == lifted.size() ? 0 : di + 1;
        }
      } else {
        uint64_t done = 0;
        while (done < cfg.tuples) {
          const std::size_t n = static_cast<std::size_t>(
              std::min<uint64_t>(std::min<uint64_t>(batch, cfg.tuples - done),
                                 lifted.size() - di));
          window::BulkSlide(agg, lifted.data() + di, n);
          di = di + n == lifted.size() ? 0 : di + n;
          done += n;
        }
      }
      const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
      best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
      sink.Add(static_cast<double>(agg.query()));
    }
    if (batch == 1) base = best;
    std::printf("%8zu %14.2f %9.2fx\n", batch, best / 1e6, best / base);
    std::fflush(stdout);
    report.Row({{"algo", algo},
                {"op", opname},
                {"mode", "single"},
                {"window", JsonReport::Num(cfg.window)},
                {"batch", JsonReport::Num(batch)}},
               best);
  }
  sink.Report();
}

/// SweepSingle twice: once at the detected SIMD level and once pinned to
/// the scalar kernels, the latter reported as "<algo>-scalar". The paired
/// rows let CI gate "vectorized never slower than scalar" as a same-run
/// cost ratio (tools/bench_summary.py --best-pair), robust to runner
/// speed, and let the committed snapshot record the SIMD win itself.
template <typename Agg, typename... CtorArgs>
void SweepSingleVsScalar(const char* algo, const char* opname,
                         const Config& cfg, const std::vector<double>& data,
                         JsonReport& report, CtorArgs... ctor_args) {
  SweepSingle<Agg>(algo, opname, cfg, data, report, ctor_args...);
  const auto prev =
      ops::kernels::SetSimdLevel(ops::kernels::SimdLevel::kScalar);
  const std::string twin = std::string(algo) + "-scalar";
  SweepSingle<Agg>(twin.c_str(), opname, cfg, data, report, ctor_args...);
  ops::kernels::SetSimdLevel(prev);
}

/// The parallel sharded runtime across the batch sweep: Options.batch is
/// both the router's staging size and the worker's maximum claimed span.
template <typename Agg>
void SweepSharded(const char* algo, const char* opname, const Config& cfg,
                  const std::vector<double>& data, JsonReport& report) {
  using Op = typename Agg::op_type;
  const auto lifted = Lift<Op>(data);
  std::printf("\n== %s (%s), window %zu, %zu shards ==\n", algo, opname,
              cfg.window, cfg.shards);
  std::printf("%8s %14s %10s\n", "# batch", "Mtuples/s", "vs b=1");
  Checksum sink;
  double base = 0.0;
  for (std::size_t batch : kBatches) {
    if (batch > cfg.max_batch || batch > cfg.ring) break;
    runtime::ParallelShardedEngine<Agg> engine(
        cfg.window, cfg.shards,
        {.ring_capacity = cfg.ring, .batch = batch,
         .backpressure = runtime::Backpressure::kBlock});
    std::size_t di = 0;
    auto next = [&] {
      const auto v = lifted[di];
      di = di + 1 == lifted.size() ? 0 : di + 1;
      return v;
    };
    for (std::size_t i = 0; i < cfg.window; ++i) engine.push(next());
    double best = 0.0;
    for (uint64_t lap = 0; lap < cfg.laps; ++lap) {
      const uint64_t t0 = NowNs();
      for (uint64_t i = 0; i < cfg.tuples; ++i) engine.push(next());
      engine.flush();
      const double elapsed_s = static_cast<double>(NowNs() - t0) * 1e-9;
      best = std::max(best, static_cast<double>(cfg.tuples) / elapsed_s);
      sink.Add(static_cast<double>(engine.query()));
    }
    engine.stop();
    if (batch == 1) base = best;
    std::printf("%8zu %14.2f %9.2fx\n", batch, best / 1e6, best / base);
    std::fflush(stdout);
    report.Row({{"algo", algo},
                {"op", opname},
                {"mode", "sharded"},
                {"shards", JsonReport::Num(cfg.shards)},
                {"window", JsonReport::Num(cfg.window)},
                {"batch", JsonReport::Num(batch)}},
               best);
  }
  sink.Report();
}

}  // namespace
}  // namespace slick::bench

int main(int argc, char** argv) {
  using namespace slick::bench;
  using slick::ops::Max;
  using slick::ops::Sum;
  const Flags flags(argc, argv);
  Config cfg;
  cfg.window = flags.GetU64("window", 4096);
  cfg.tuples = flags.GetU64("tuples", 2'000'000);
  cfg.laps = std::max<uint64_t>(1, flags.GetU64("laps", 3));
  cfg.shards = flags.GetU64("shards", 4);
  cfg.ring = flags.GetU64("ring", 4096);
  cfg.max_batch = flags.GetU64("max-batch", 4096);
  const uint64_t seed = flags.GetU64("seed", 42);

  std::printf(
      "Exp 5: ingestion throughput vs batch size (DESIGN.md §11)\n"
      "# window=%zu tuples=%llu laps=%llu shards=%zu ring=%zu max-batch=%zu "
      "seed=%llu\n",
      cfg.window, (unsigned long long)cfg.tuples,
      (unsigned long long)cfg.laps, cfg.shards, cfg.ring, cfg.max_batch,
      (unsigned long long)seed);

  const std::vector<double> data = BenchSeries(flags, 1 << 20, seed);
  JsonReport report(flags, "exp5_batch");

  // Sum: one invertible op per algorithm family.
  SweepSingle<slick::core::SlickDequeInv<Sum>>("slick-inv", "sum", cfg, data,
                                               report);
  SweepSingle<slick::core::Windowed<slick::core::SubtractOnEvict<Sum>>>(
      "sub-on-evict", "sum", cfg, data, report);
  SweepSingle<slick::core::Windowed<slick::window::TwoStacks<Sum>>>(
      "twostacks", "sum", cfg, data, report);
  SweepSingle<slick::core::Windowed<slick::window::Daba<Sum>>>(
      "daba", "sum", cfg, data, report);
  SweepSingle<slick::window::FlatFat<Sum>>("flatfat", "sum", cfg, data,
                                           report);
  SweepSingle<slick::window::FlatFit<Sum>>("flatfit", "sum", cfg, data,
                                           report);
  SweepSingle<slick::window::NaiveWindow<Sum>>("naive", "sum", cfg, data,
                                               report);

  // Max: the non-invertible side.
  SweepSingle<slick::core::SlickDequeNonInv<Max>>("slick-noninv", "max", cfg,
                                                  data, report);
  SweepSingle<slick::core::Windowed<slick::window::Daba<Max>>>(
      "daba", "max", cfg, data, report);
  SweepSingle<slick::window::FlatFat<Max>>("flatfat", "max", cfg, data,
                                           report);

  // Flip-heavy int64 rows for the vectorized structural kernels, each
  // paired with its scalar twin (DESIGN.md §16). TwoStacks/TwoStacksRing
  // exercise the carry-scan flip + prefix-scan BulkInsert (window ≫ batch
  // keeps the amortized flip span at ~window elements), slick-noninv
  // exercises the survivor-mask staircase AppendBatch, and the Sum ring
  // row covers the double-add scan. CI gates vectorized ≥ scalar on
  // these pairs; EXPERIMENTS.md Exp 8 records the measured speedups.
  {
    using slick::ops::MaxInt;
    using slick::ops::MinInt;
    using slick::window::TwoStacksRing;
    using RingMaxI = slick::core::Windowed<TwoStacksRing<MaxInt>>;
    using RingMinI = slick::core::Windowed<TwoStacksRing<MinInt>>;
    using RingSum = slick::core::Windowed<TwoStacksRing<Sum>>;
    using StacksMaxI = slick::core::Windowed<slick::window::TwoStacks<MaxInt>>;
    using StacksMinI = slick::core::Windowed<slick::window::TwoStacks<MinInt>>;
    SweepSingleVsScalar<RingMaxI>("twostacks-ring", "max_int", cfg, data,
                                  report, cfg.window);
    SweepSingleVsScalar<RingMinI>("twostacks-ring", "min_int", cfg, data,
                                  report, cfg.window);
    SweepSingleVsScalar<RingSum>("twostacks-ring", "sum", cfg, data, report,
                                 cfg.window);
    SweepSingleVsScalar<StacksMaxI>("twostacks", "max_int", cfg, data,
                                    report);
    SweepSingleVsScalar<StacksMinI>("twostacks", "min_int", cfg, data,
                                    report);
    SweepSingleVsScalar<slick::core::SlickDequeNonInv<MaxInt>>(
        "slick-noninv", "max_int", cfg, data, report);
    SweepSingleVsScalar<slick::core::SlickDequeNonInv<MinInt>>(
        "slick-noninv", "min_int", cfg, data, report);
  }

  // Sharded runtime: the two headline SlickDeque variants.
  SweepSharded<slick::core::SlickDequeInv<Sum>>("slick-inv", "sum", cfg, data,
                                                report);
  SweepSharded<slick::core::SlickDequeNonInv<Max>>("slick-noninv", "max", cfg,
                                                   data, report);

  report.Write();
  return 0;
}
