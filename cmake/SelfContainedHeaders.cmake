# Self-contained-header check: one generated TU per public header under
# src/, each including the header twice (self-containment + re-inclusion
# idempotence), compiled into an OBJECT library that produces no artifact
# anyone links. A header that silently leans on its includer's context
# breaks this target at build time instead of breaking the next user.
#
# configure_file() only rewrites a TU when its content changes, so
# re-configuring does not dirty the build.
option(SLICK_SELF_CONTAINED_HEADERS
       "Compile a generated include-check TU per public header" ON)

function(slick_add_header_check_target)
  if(NOT SLICK_SELF_CONTAINED_HEADERS)
    return()
  endif()
  file(GLOB_RECURSE _slick_headers RELATIVE ${PROJECT_SOURCE_DIR}/src
       ${PROJECT_SOURCE_DIR}/src/*.h)
  set(_tus "")
  foreach(_hdr IN LISTS _slick_headers)
    string(MAKE_C_IDENTIFIER ${_hdr} _hdr_id)
    set(SLICK_HEADER_CHECK_INCLUDE ${_hdr})
    set(_tu ${PROJECT_BINARY_DIR}/header_checks/check_${_hdr_id}.cc)
    configure_file(${PROJECT_SOURCE_DIR}/cmake/header_check.cc.in ${_tu} @ONLY)
    list(APPEND _tus ${_tu})
  endforeach()
  add_library(slick_header_checks OBJECT ${_tus})
  target_link_libraries(slick_header_checks PRIVATE slickdeque)
endfunction()

slick_add_header_check_target()
