// In-window update tests (paper §3.1: "all of the aforementioned
// algorithms allow updates on multiple partial aggregates already stored
// within the window"): Naive, FlatFAT, B-Int and SlickDeque (Inv) support
// UpdateAt(age, value); all four must agree with a brute-force model under
// interleaved slides and updates.

#include <cstdint>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "ops/arith.h"
#include "util/rng.h"
#include "window/b_int.h"
#include "window/flat_fat.h"
#include "window/naive.h"

namespace slick {
namespace {

class UpdateSweep : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Windows, UpdateSweep,
                         ::testing::Values(1, 2, 5, 8, 16, 33, 64),
                         [](const auto& tpi) {
                           std::string name("w");
                           name += std::to_string(tpi.param);
                           return name;
                         });

TEST_P(UpdateSweep, AllUpdatableAlgorithmsAgreeWithModel) {
  const std::size_t n = GetParam();
  window::NaiveWindow<ops::SumInt> naive(n);
  window::FlatFat<ops::SumInt> fat(n);
  window::BInt<ops::SumInt> bint(n);
  std::vector<std::size_t> all_ranges(n);
  for (std::size_t r = 1; r <= n; ++r) all_ranges[r - 1] = r;
  core::SlickDequeInv<ops::SumInt> slick(n, all_ranges);

  std::deque<int64_t> model(n, 0);
  util::SplitMix64 rng(n * 7919 + 3);

  for (int step = 0; step < 400; ++step) {
    if (rng.NextBounded(3) == 0) {
      // In-window correction of a random-age partial.
      const std::size_t age = rng.NextBounded(n);
      const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
      naive.UpdateAt(age, v);
      fat.UpdateAt(age, v);
      bint.UpdateAt(age, v);
      slick.UpdateAt(age, v);
      model[model.size() - 1 - age] = v;
    } else {
      const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
      naive.slide(v);
      fat.slide(v);
      bint.slide(v);
      slick.slide(v);
      model.pop_front();
      model.push_back(v);
    }
    for (std::size_t r = 1; r <= n; ++r) {
      int64_t expect = 0;
      for (std::size_t i = n - r; i < n; ++i) expect += model[i];
      ASSERT_EQ(naive.query(r), expect) << "naive r=" << r;
      ASSERT_EQ(fat.query(r), expect) << "flatfat r=" << r;
      ASSERT_EQ(bint.query(r), expect) << "bint r=" << r;
      ASSERT_EQ(slick.query(r), expect) << "slick r=" << r;
    }
  }
}

TEST(UpdateAtTest, NewestAndOldestEdges) {
  window::FlatFat<ops::SumInt> fat(4);
  for (int64_t v : {1, 2, 3, 4}) fat.slide(v);
  fat.UpdateAt(0, 40);  // newest: 4 -> 40
  EXPECT_EQ(fat.query(), 1 + 2 + 3 + 40);
  fat.UpdateAt(3, 10);  // oldest: 1 -> 10
  EXPECT_EQ(fat.query(), 10 + 2 + 3 + 40);
  EXPECT_EQ(fat.query(1), 40);
}

TEST(UpdateAtTest, SlickDequeInvOnlyPatchesCoveringRanges) {
  core::SlickDequeInv<ops::SumInt> slick(4, {1, 2, 4});
  for (int64_t v : {1, 2, 3, 4}) slick.slide(v);
  // Age 2 (value 2) is outside ranges 1 and 2 but inside range 4.
  slick.UpdateAt(2, 200);
  EXPECT_EQ(slick.query(1), 4);
  EXPECT_EQ(slick.query(2), 7);
  EXPECT_EQ(slick.query(4), 1 + 200 + 3 + 4);
}

TEST(UpdateAtTest, PeekAtReadsBack) {
  window::NaiveWindow<ops::SumInt> naive(3);
  for (int64_t v : {7, 8, 9}) naive.slide(v);
  EXPECT_EQ(naive.PeekAt(0), 9);
  EXPECT_EQ(naive.PeekAt(1), 8);
  EXPECT_EQ(naive.PeekAt(2), 7);
  EXPECT_DEATH(naive.PeekAt(3), "out of window");
}

TEST(UpdateAtTest, OutOfWindowAgeDies) {
  window::FlatFat<ops::SumInt> fat(4);
  fat.slide(1);
  EXPECT_DEATH(fat.UpdateAt(4, 9), "out of window");
}

}  // namespace
}  // namespace slick
